//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this crate vendors
//! the small, fully deterministic API subset the workspace actually
//! uses: [`rngs::StdRng`] seeded through [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] helpers `gen`, `gen_range`, and `gen_bool`.
//!
//! The generator is xoshiro256++ (public domain, Blackman & Vigna)
//! seeded via SplitMix64 — *not* the upstream ChaCha12 `StdRng`. Streams
//! therefore differ from real `rand`, but every consumer in this
//! workspace only requires determinism for a fixed seed, which this
//! crate guarantees independent of platform and Rust release.
//!
//! # Examples
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let a: u32 = rng.gen();
//! let b = rng.gen_range(0..10);
//! let c = rng.gen_bool(0.5);
//! let mut again = StdRng::seed_from_u64(42);
//! assert_eq!(a, again.gen::<u32>());
//! assert_eq!(b, again.gen_range(0..10));
//! assert_eq!(c, again.gen_bool(0.5));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (the high half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a 64-bit seed (the only seeding the workspace uses).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Uniform sampling over a value's full domain (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one value covering the type's whole range.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A type with uniform sampling over caller-supplied bounds.
///
/// Mirrors real rand's structure: [`SampleRange`] has exactly one
/// blanket impl per range shape, so type inference can flow from usage
/// context (e.g. indexing a slice with `gen_range(0..8)` infers
/// `usize`) exactly as it does upstream.
pub trait SampleUniform: Sized + PartialOrd {
    /// A uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// A uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let offset = u128::from(rng.next_u64()) % span;
                (lo as i128 + offset as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = u128::from(rng.next_u64()) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A draw in `[0, 1)` with 53 random bits, as `rand` computes it.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "cannot sample empty range");
        lo + (hi - lo) * unit_f64(rng)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * unit_f64(rng)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: f32, hi: f32) -> f32 {
        assert!(lo < hi, "cannot sample empty range");
        lo + (hi - lo) * unit_f64(rng) as f32
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: f32, hi: f32) -> f32 {
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * unit_f64(rng) as f32
    }
}

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics on an empty range, as the real `rand` does.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// The user-facing sampling helpers, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform draw over `T`'s full domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i16..5);
            assert!((-5..5).contains(&w));
            let x = rng.gen_range(0u32..=u32::MAX);
            let _ = x;
            let f = rng.gen_range(-100.0f32..100.0);
            assert!((-100.0..100.0).contains(&f));
        }
    }

    #[test]
    fn inclusive_range_hits_both_ends() {
        let mut rng = StdRng::seed_from_u64(3);
        let (mut lo, mut hi) = (false, false);
        for _ in 0..1_000 {
            match rng.gen_range(0u8..=1) {
                0 => lo = true,
                _ => hi = true,
            }
        }
        assert!(lo && hi);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn full_domain_draws_vary() {
        let mut rng = StdRng::seed_from_u64(9);
        let draws: Vec<u16> = (0..64).map(|_| rng.gen()).collect();
        assert!(draws.iter().any(|&v| v != draws[0]));
    }
}
