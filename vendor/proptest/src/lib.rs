//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this crate provides
//! the subset of proptest the workspace uses: the
//! [`Strategy`](strategy::Strategy) trait with `prop_map`, range /
//! `any` / [`Just`](strategy::Just) / tuple / collection / array /
//! sample strategies, [`Union`](strategy::Union) for `prop_oneof!`,
//! and the
//! `proptest!`, `prop_assert*`, `prop_oneof!`, and `prop_compose!`
//! macros.
//!
//! Semantics differ from real proptest in two deliberate ways:
//!
//! * **No shrinking.** A failing case reports the assertion directly;
//!   inputs are not minimised.
//! * **Fully deterministic sampling.** Each generated test derives its
//!   RNG seed from the test's module path and name, so failures
//!   reproduce exactly across runs and machines.
//!
//! Both trades are fine here: the suite treats property tests as
//! randomized-but-repeatable regression tests, not as a fuzzing
//! frontier.

#![forbid(unsafe_code)]

/// Deterministic RNG plumbing and run configuration.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Per-`proptest!` block configuration. Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each test function runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` iterations per test.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// The RNG handed to strategies while generating a case.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Seeds the generator from a stable hash of `name` (the test's
        /// fully qualified path), so every run samples the same cases.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a, 64-bit: tiny, stable, and well distributed.
            let mut hash = 0xcbf2_9ce4_8422_2325u64;
            for byte in name.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self(StdRng::seed_from_u64(hash))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Type-erases this strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `options`; each alternative is equally likely.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs an alternative");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let index = rng.gen_range(0..self.options.len());
            self.options[index].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

/// `any::<T>()` over primitive types.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// A type with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value from the type's whole domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_prim {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen()
                }
            }
        )*};
    }
    arbitrary_prim!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy producing arbitrary values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// `Vec` strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Element-count bounds for [`vec()`], inclusive on both ends.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            Self {
                lo: exact,
                hi: exact,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            assert!(range.start < range.end, "empty vec size range");
            Self {
                lo: range.start,
                hi: range.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(range: RangeInclusive<usize>) -> Self {
            assert!(range.start() <= range.end(), "empty vec size range");
            Self {
                lo: *range.start(),
                hi: *range.end(),
            }
        }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Fixed-size array strategies.
pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy returned by [`uniform8`].
    #[derive(Debug, Clone)]
    pub struct Uniform8<S>(S);

    impl<S: Strategy> Strategy for Uniform8<S> {
        type Value = [S::Value; 8];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; 8] {
            let drawn: Vec<S::Value> = (0..8).map(|_| self.0.generate(rng)).collect();
            match drawn.try_into() {
                Ok(array) => array,
                Err(_) => unreachable!("drew exactly 8 elements"),
            }
        }
    }

    /// An `[T; 8]` with every element drawn from `element`.
    pub fn uniform8<S: Strategy>(element: S) -> Uniform8<S> {
        Uniform8(element)
    }
}

/// Choosing from explicit value lists.
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// The strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }

    /// Uniform choice from `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn select<T: Clone>(options: impl Into<Vec<T>>) -> Select<T> {
        let options = options.into();
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }
}

/// The glob-import surface test modules use.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn` becomes a `#[test]` that samples
/// its parameters from the given strategies for `config.cases` rounds.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __proptest_config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __proptest_rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __proptest_case in 0..__proptest_config.cases {
                let _ = __proptest_case;
                $crate::__proptest_body!(__proptest_rng {$body} $($params)*);
            }
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($rng:ident {$body:block}) => { $body };
    ($rng:ident {$body:block} $pat:pat in $strat:expr) => {{
        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_body!($rng {$body});
    }};
    ($rng:ident {$body:block} $pat:pat in $strat:expr, $($rest:tt)*) => {{
        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_body!($rng {$body} $($rest)*);
    }};
    ($rng:ident {$body:block} $arg:ident: $ty:ty) => {{
        let $arg = $crate::strategy::Strategy::generate(
            &$crate::arbitrary::any::<$ty>(),
            &mut $rng,
        );
        $crate::__proptest_body!($rng {$body});
    }};
    ($rng:ident {$body:block} $arg:ident: $ty:ty, $($rest:tt)*) => {{
        let $arg = $crate::strategy::Strategy::generate(
            &$crate::arbitrary::any::<$ty>(),
            &mut $rng,
        );
        $crate::__proptest_body!($rng {$body} $($rest)*);
    }};
}

/// `assert!` under a proptest-flavoured name.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` under a proptest-flavoured name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` under a proptest-flavoured name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice between alternative strategies with a shared value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Defines a function returning a composed strategy: the second
/// parameter list is sampled, then mapped through the body.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($outer:tt)*)($($pat:pat in $strat:expr),* $(,)?)
            -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($outer)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::Strategy::prop_map(
                ($($strat,)*),
                move |($($pat,)*)| $body,
            )
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u32> {
        (0u32..1000).prop_map(|n| n * 2)
    }

    prop_compose! {
        fn arb_small()(n in 0u8..16) -> u8 { n }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn mixed_parameter_forms(seed: u64, n in 0u32..10, flag: bool) {
            let _ = (seed, flag);
            prop_assert!(n < 10);
        }

        #[test]
        fn map_compose_and_oneof(
            even in arb_even(),
            small in arb_small(),
            pick in prop_oneof![Just(1u8), Just(2u8), 10u8..20],
        ) {
            prop_assert_eq!(even % 2, 0);
            prop_assert!(small < 16);
            prop_assert!(pick == 1 || pick == 2 || (10..20).contains(&pick));
            prop_assert_ne!(pick, 0);
        }

        #[test]
        fn collections_and_arrays(
            bytes in crate::collection::vec(any::<u8>(), 3..7),
            lanes in crate::array::uniform8(1u32..=32),
            choice in crate::sample::select(&[5u8, 7, 9][..]),
        ) {
            prop_assert!((3..7).contains(&bytes.len()));
            prop_assert!(lanes.iter().all(|l| (1..=32).contains(l)));
            prop_assert!([5, 7, 9].contains(&choice));
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = (0u32..=u32::MAX, 0.0f64..1.0);
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        for _ in 0..64 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }
}
