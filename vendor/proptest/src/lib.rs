//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this crate provides
//! the subset of proptest the workspace uses: the
//! [`Strategy`](strategy::Strategy) trait with `prop_map`, range /
//! `any` / [`Just`](strategy::Just) / tuple / collection / array /
//! sample strategies, [`Union`](strategy::Union) for `prop_oneof!`,
//! and the
//! `proptest!`, `prop_assert*`, `prop_oneof!`, and `prop_compose!`
//! macros.
//!
//! Semantics differ from real proptest in two deliberate ways:
//!
//! * **Greedy shrinking, not a shrink tree.** When a case fails, the
//!   runner asks the strategy for candidate simplifications
//!   ([`Strategy::shrink`](strategy::Strategy::shrink)) — bisection and
//!   single-element removal for `vec` strategies, movement toward the
//!   lower bound for ranges, per-component shrinking for tuples — and
//!   greedily accepts any candidate that still fails, within a fixed
//!   re-run budget. The minimal input is printed before the original
//!   panic is re-raised.
//! * **Fully deterministic sampling.** Each generated test derives its
//!   RNG seed from the test's module path and name, so failures
//!   reproduce exactly across runs and machines.
//!
//! Both trades are fine here: the suite treats property tests as
//! randomized-but-repeatable regression tests, not as a fuzzing
//! frontier.

#![forbid(unsafe_code)]

/// Deterministic RNG plumbing and run configuration.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Per-`proptest!` block configuration. Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each test function runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` iterations per test.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// The RNG handed to strategies while generating a case.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Seeds the generator from a stable hash of `name` (the test's
        /// fully qualified path), so every run samples the same cases.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a, 64-bit: tiny, stable, and well distributed.
            let mut hash = 0xcbf2_9ce4_8422_2325u64;
            for byte in name.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self(StdRng::seed_from_u64(hash))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Candidate simplifications of `value`, simplest first.
        ///
        /// The runner re-runs the failing test on each candidate and
        /// greedily keeps the first that still fails, so candidates
        /// only need to be plausible members of the strategy's domain —
        /// they are never trusted without a re-run. The default is no
        /// shrinking.
        fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
            let _ = value;
            Vec::new()
        }

        /// Transforms generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Type-erases this strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
        fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
            (**self).shrink(value)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
        fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
            (**self).shrink(value)
        }
    }

    /// The zero-strategy tuple: produces `()` and never shrinks. Anchors
    /// the recursive tuple impls and parameterless `proptest!` bodies.
    impl Strategy for () {
        type Value = ();
        fn generate(&self, _rng: &mut TestRng) -> Self::Value {}
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `options`; each alternative is equally likely.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs an alternative");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let index = rng.gen_range(0..self.options.len());
            self.options[index].generate(rng)
        }
        fn shrink(&self, value: &T) -> Vec<T> {
            // A union cannot know which alternative produced `value`,
            // so it pools every alternative's candidates; wrong guesses
            // are weeded out by the runner's re-run.
            self.options
                .iter()
                .flat_map(|option| option.shrink(value))
                .collect()
        }
    }

    /// Shrink candidates for an integer drawn from `lo..`: the lower
    /// bound itself, the midpoint toward it (bisection), and the
    /// predecessor. Arithmetic is widened to `i128` so extreme signed
    /// bounds cannot overflow.
    fn shrink_int(lo: i128, value: i128) -> Vec<i128> {
        if value <= lo {
            return Vec::new();
        }
        let mut out = vec![lo];
        let mid = lo + (value - lo) / 2;
        if mid != lo {
            out.push(mid);
        }
        let prev = value - 1;
        if prev != lo && prev != mid {
            out.push(prev);
        }
        out
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    shrink_int(self.start as i128, *value as i128)
                        .into_iter()
                        .map(|v| v as $t)
                        .collect()
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    shrink_int(*self.start() as i128, *value as i128)
                        .into_iter()
                        .map(|v| v as $t)
                        .collect()
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            rng.gen_range(self.clone())
        }
    }

    // Tuple impls are generated by peeling the head: an N-tuple shrinks
    // its head directly and delegates the rest to the (N-1)-tuple of
    // references, bottoming out at `()`. The `Clone` bounds on the
    // component values exist only to rebuild the tuple around a shrunk
    // component; every strategy value in this workspace is `Clone`.
    macro_rules! tuple_strategy {
        () => {};
        ($head:ident $head_v:ident $(, $tail:ident $tail_v:ident)*) => {
            impl<$head: Strategy $(, $tail: Strategy)*> Strategy for ($head, $($tail,)*)
            where
                $head::Value: Clone,
                $($tail::Value: Clone,)*
            {
                type Value = ($head::Value, $($tail::Value,)*);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($head, $($tail,)*) = self;
                    ($head.generate(rng), $($tail.generate(rng),)*)
                }
                #[allow(non_snake_case)]
                fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                    let ($head, $($tail,)*) = self;
                    let ($head_v, $($tail_v,)*) = value;
                    let mut out = Vec::new();
                    for candidate in $head.shrink($head_v) {
                        out.push((candidate, $($tail_v.clone(),)*));
                    }
                    let tail_strategy = ($(&$tail,)*);
                    let tail_value = ($($tail_v.clone(),)*);
                    for candidate in Strategy::shrink(&tail_strategy, &tail_value) {
                        let ($($tail_v,)*) = candidate;
                        out.push(($head_v.clone(), $($tail_v,)*));
                    }
                    out
                }
            }
            tuple_strategy!($($tail $tail_v),*);
        };
    }
    tuple_strategy!(A a, B b, C c, D d, E e, F f);
}

/// `any::<T>()` over primitive types.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// A type with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value from the type's whole domain.
        fn arbitrary(rng: &mut TestRng) -> Self;

        /// Candidate simplifications of `self` (see
        /// [`Strategy::shrink`]). Defaults to none.
        fn shrink(&self) -> Vec<Self> {
            Vec::new()
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen()
        }
        fn shrink(&self) -> Vec<Self> {
            if *self {
                vec![false]
            } else {
                Vec::new()
            }
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen()
                }
                fn shrink(&self) -> Vec<Self> {
                    // Toward zero: zero, halving, predecessor in
                    // magnitude (also walks negatives up toward zero).
                    let v = *self;
                    if v == 0 {
                        return Vec::new();
                    }
                    let mut out = vec![0];
                    let half = v / 2;
                    if half != 0 {
                        out.push(half);
                    }
                    let nearer = if v > 0 { v - 1 } else { v + 1 };
                    if nearer != 0 && nearer != half {
                        out.push(nearer);
                    }
                    out
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
        fn shrink(&self, value: &T) -> Vec<T> {
            value.shrink()
        }
    }

    /// A strategy producing arbitrary values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// `Vec` strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Element-count bounds for [`vec()`], inclusive on both ends.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            Self {
                lo: exact,
                hi: exact,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            assert!(range.start < range.end, "empty vec size range");
            Self {
                lo: range.start,
                hi: range.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(range: RangeInclusive<usize>) -> Self {
            assert!(range.start() <= range.end(), "empty vec size range");
            Self {
                lo: *range.start(),
                hi: *range.end(),
            }
        }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let len = value.len();
            let mut out = Vec::new();
            // Bisection first: either half alone, when still long
            // enough — collapses large failing inputs in O(log n)
            // accepted steps.
            let half = len / 2;
            if half >= self.size.lo && half < len {
                out.push(value[..half].to_vec());
                out.push(value[len - half..].to_vec());
            }
            // Then single-element removal, which finishes the job once
            // bisection stalls.
            if len > self.size.lo {
                for index in 0..len {
                    let mut shorter = value.clone();
                    shorter.remove(index);
                    out.push(shorter);
                }
            }
            // Finally shrink elements in place.
            for index in 0..len {
                for candidate in self.element.shrink(&value[index]) {
                    let mut simpler = value.clone();
                    simpler[index] = candidate;
                    out.push(simpler);
                }
            }
            out
        }
    }

    /// A `Vec` whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Fixed-size array strategies.
pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy returned by [`uniform8`].
    #[derive(Debug, Clone)]
    pub struct Uniform8<S>(S);

    impl<S: Strategy> Strategy for Uniform8<S>
    where
        S::Value: Clone,
    {
        type Value = [S::Value; 8];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; 8] {
            let drawn: Vec<S::Value> = (0..8).map(|_| self.0.generate(rng)).collect();
            match drawn.try_into() {
                Ok(array) => array,
                Err(_) => unreachable!("drew exactly 8 elements"),
            }
        }
        fn shrink(&self, value: &[S::Value; 8]) -> Vec<[S::Value; 8]> {
            // Fixed length: only the elements can simplify.
            let mut out = Vec::new();
            for index in 0..8 {
                for candidate in self.0.shrink(&value[index]) {
                    let mut simpler = value.clone();
                    simpler[index] = candidate;
                    out.push(simpler);
                }
            }
            out
        }
    }

    /// An `[T; 8]` with every element drawn from `element`.
    pub fn uniform8<S: Strategy>(element: S) -> Uniform8<S> {
        Uniform8(element)
    }

    /// The strategy returned by [`uniform32`].
    #[derive(Debug, Clone)]
    pub struct Uniform32<S>(S);

    impl<S: Strategy> Strategy for Uniform32<S>
    where
        S::Value: Clone,
    {
        type Value = [S::Value; 32];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; 32] {
            let drawn: Vec<S::Value> = (0..32).map(|_| self.0.generate(rng)).collect();
            match drawn.try_into() {
                Ok(array) => array,
                Err(_) => unreachable!("drew exactly 32 elements"),
            }
        }
        fn shrink(&self, value: &[S::Value; 32]) -> Vec<[S::Value; 32]> {
            // Fixed length: only the elements can simplify.
            let mut out = Vec::new();
            for index in 0..32 {
                for candidate in self.0.shrink(&value[index]) {
                    let mut simpler = value.clone();
                    simpler[index] = candidate;
                    out.push(simpler);
                }
            }
            out
        }
    }

    /// An `[T; 32]` with every element drawn from `element` — sized for
    /// one CCRP cache line.
    pub fn uniform32<S: Strategy>(element: S) -> Uniform32<S> {
        Uniform32(element)
    }
}

/// Choosing from explicit value lists.
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// The strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }

    /// Uniform choice from `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn select<T: Clone>(options: impl Into<Vec<T>>) -> Select<T> {
        let options = options.into();
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }
}

/// Case execution and greedy minimization (used by `proptest!`).
#[doc(hidden)]
pub mod runner {
    use crate::strategy::Strategy;
    use std::any::Any;
    use std::fmt::Debug;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

    /// Hard ceiling on shrink-candidate re-runs per failing case, so a
    /// slow test body cannot turn minimization into a hang.
    pub const SHRINK_BUDGET: usize = 1024;

    /// Runs one sampled case; on failure, minimizes the input and
    /// re-raises the panic with the minimal reproduction printed.
    pub fn run_case<S, F>(strategy: &S, value: S::Value, run: &F)
    where
        S: Strategy,
        S::Value: Clone + Debug,
        F: Fn(&S::Value),
    {
        let Err(payload) = catch_unwind(AssertUnwindSafe(|| run(&value))) else {
            return;
        };
        eprintln!("proptest shim: failing input: {value:?}");
        let (minimal, payload) = minimize(strategy, value, run, payload);
        eprintln!("proptest shim: minimal failing input: {minimal:?}");
        resume_unwind(payload);
    }

    /// Greedily walks `strategy`'s shrink candidates from `value`,
    /// keeping the first candidate at each step that still fails `run`,
    /// until no candidate fails or [`SHRINK_BUDGET`] re-runs are spent.
    /// Returns the minimal failing value and its panic payload.
    pub fn minimize<S, F>(
        strategy: &S,
        mut value: S::Value,
        run: &F,
        mut payload: Box<dyn Any + Send>,
    ) -> (S::Value, Box<dyn Any + Send>)
    where
        S: Strategy,
        S::Value: Clone + Debug,
        F: Fn(&S::Value),
    {
        let mut budget = SHRINK_BUDGET;
        loop {
            let mut advanced = false;
            for candidate in strategy.shrink(&value) {
                if budget == 0 {
                    return (value, payload);
                }
                budget -= 1;
                match catch_unwind(AssertUnwindSafe(|| run(&candidate))) {
                    Ok(()) => {}
                    Err(candidate_payload) => {
                        value = candidate;
                        payload = candidate_payload;
                        advanced = true;
                        break;
                    }
                }
            }
            if !advanced {
                return (value, payload);
            }
        }
    }
}

/// The glob-import surface test modules use.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn` becomes a `#[test]` that samples
/// its parameters from the given strategies for `config.cases` rounds.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __proptest_config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __proptest_rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __proptest_case in 0..__proptest_config.cases {
                let _ = __proptest_case;
                $crate::__proptest_body!(__proptest_rng {$body} @parse () () $($params)*);
            }
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

// Normalizes the mixed parameter forms (`pat in strategy` and
// `name: Type`) into parallel pattern/strategy lists, then runs the
// body through one tuple strategy so a failure can shrink every
// parameter jointly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    // Fully parsed, no parameters: run the body directly.
    ($rng:ident {$body:block} @parse () ()) => { $body };
    // Fully parsed: bundle the strategies into a tuple, sample once,
    // and hand the case to the runner (which owns shrinking).
    ($rng:ident {$body:block} @parse ($($pat:pat),+) ($($strat:expr),+)) => {{
        let __proptest_strategy = ($($strat,)+);
        let __proptest_value =
            $crate::strategy::Strategy::generate(&__proptest_strategy, &mut $rng);
        $crate::runner::run_case(
            &__proptest_strategy,
            __proptest_value,
            &|__proptest_case| {
                let ($($pat,)+) = ::std::clone::Clone::clone(__proptest_case);
                $body
            },
        );
    }};
    // Munch `pat in strategy`.
    ($rng:ident {$body:block} @parse ($($pats:pat),*) ($($strats:expr),*)
        $pat:pat in $strat:expr) => {
        $crate::__proptest_body!($rng {$body} @parse ($($pats,)* $pat) ($($strats,)* $strat))
    };
    ($rng:ident {$body:block} @parse ($($pats:pat),*) ($($strats:expr),*)
        $pat:pat in $strat:expr, $($rest:tt)*) => {
        $crate::__proptest_body!(
            $rng {$body} @parse ($($pats,)* $pat) ($($strats,)* $strat) $($rest)*
        )
    };
    // Munch `name: Type` (sugar for `name in any::<Type>()`).
    ($rng:ident {$body:block} @parse ($($pats:pat),*) ($($strats:expr),*)
        $arg:ident: $ty:ty) => {
        $crate::__proptest_body!(
            $rng {$body}
            @parse ($($pats,)* $arg) ($($strats,)* $crate::arbitrary::any::<$ty>())
        )
    };
    ($rng:ident {$body:block} @parse ($($pats:pat),*) ($($strats:expr),*)
        $arg:ident: $ty:ty, $($rest:tt)*) => {
        $crate::__proptest_body!(
            $rng {$body}
            @parse ($($pats,)* $arg) ($($strats,)* $crate::arbitrary::any::<$ty>()) $($rest)*
        )
    };
}

/// `assert!` under a proptest-flavoured name.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` under a proptest-flavoured name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` under a proptest-flavoured name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice between alternative strategies with a shared value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Defines a function returning a composed strategy: the second
/// parameter list is sampled, then mapped through the body.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($outer:tt)*)($($pat:pat in $strat:expr),* $(,)?)
            -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($outer)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::Strategy::prop_map(
                ($($strat,)*),
                move |($($pat,)*)| $body,
            )
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u32> {
        (0u32..1000).prop_map(|n| n * 2)
    }

    prop_compose! {
        fn arb_small()(n in 0u8..16) -> u8 { n }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn mixed_parameter_forms(seed: u64, n in 0u32..10, flag: bool) {
            let _ = (seed, flag);
            prop_assert!(n < 10);
        }

        #[test]
        fn map_compose_and_oneof(
            even in arb_even(),
            small in arb_small(),
            pick in prop_oneof![Just(1u8), Just(2u8), 10u8..20],
        ) {
            prop_assert_eq!(even % 2, 0);
            prop_assert!(small < 16);
            prop_assert!(pick == 1 || pick == 2 || (10..20).contains(&pick));
            prop_assert_ne!(pick, 0);
        }

        #[test]
        fn collections_and_arrays(
            bytes in crate::collection::vec(any::<u8>(), 3..7),
            lanes in crate::array::uniform8(1u32..=32),
            choice in crate::sample::select(&[5u8, 7, 9][..]),
        ) {
            prop_assert!((3..7).contains(&bytes.len()));
            prop_assert!(lanes.iter().all(|l| (1..=32).contains(l)));
            prop_assert!([5, 7, 9].contains(&choice));
        }
    }

    #[test]
    fn shrinking_minimizes_vec_case() {
        use crate::runner::minimize;
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let strategy = crate::collection::vec(any::<u8>(), 0..=16);
        let run = |v: &Vec<u8>| assert!(!v.iter().any(|&b| b >= 10), "found a big element");
        let start = vec![3u8, 12, 200, 7, 10, 10];
        let payload = catch_unwind(AssertUnwindSafe(|| run(&start))).unwrap_err();
        let (minimal, _) = minimize(&strategy, start, &run, payload);
        assert_eq!(
            minimal,
            vec![10],
            "bisect + removal + element shrink bottoms out"
        );
    }

    #[test]
    fn shrinking_minimizes_range_case_to_boundary() {
        use crate::runner::minimize;
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let strategy = 5u32..100;
        let run = |v: &u32| assert!(*v < 37);
        let payload = catch_unwind(AssertUnwindSafe(|| run(&80))).unwrap_err();
        let (minimal, _) = minimize(&strategy, 80, &run, payload);
        assert_eq!(minimal, 37, "bisection walks to the smallest failing value");
    }

    #[test]
    fn run_case_reraises_the_failure_after_minimizing() {
        let strategy = 0u32..1000;
        let run = |v: &u32| assert!(*v < 10);
        let outcome = std::panic::catch_unwind(|| crate::runner::run_case(&strategy, 500, &run));
        assert!(outcome.is_err(), "a failing case must still fail the test");
    }

    #[test]
    fn tuples_shrink_one_component_at_a_time() {
        use crate::strategy::Strategy;
        let strategy = (0u32..10, 0u8..4);
        let candidates = strategy.shrink(&(6, 3));
        assert!(!candidates.is_empty());
        for (a, b) in candidates {
            assert!(
                (a, b) != (6, 3) && ((a, 3u8) == (a, b) || (6u32, b) == (a, b)),
                "each candidate changes exactly one component"
            );
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = (0u32..=u32::MAX, 0.0f64..1.0);
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        for _ in 0..64 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }
}
