#!/usr/bin/env bash
# Benchmark reproduction gate.
#
# Four checks, the first two against the results files committed at the
# repo root:
#
#   1. Reproduction: re-run the tables1_8 and fig5 sweeps (trace-replay
#      engine, the default) plus the codec × memory-model ablation
#      matrix (`sweep --codecs`) and the cross-ISA comparison
#      (`sweep --isa-compare`) and require the deterministic sections
#      of the fresh BENCH_<experiment>.json / BENCH_codecs.json /
#      BENCH_isa_compare.json to be byte-identical to the committed
#      files.  Only the `jobs` and `timing` keys are host-dependent;
#      everything else (schema, experiment, cells, results — including
#      every simulated cycle count) must reproduce exactly, on any
#      machine, at any job count.
#
#   2. Decoder speedup: run the decoder_bench target and require the
#      table-driven fast path to beat the canonical bit-walk reference
#      by at least MIN_SPEEDUP (default 2.0).  The committed
#      BENCH_decoder.json records one blessed run; the gate re-measures
#      on the CI host rather than trusting the committed numbers.
#
#   3. Trace-engine worker independence: run the trace-replay sweep at
#      --jobs 1 and --jobs 4 and require the deterministic sections to
#      be byte-identical — the capture/replay decomposition must not
#      leak scheduling into results.
#
#   4. Trace-replay speedup: run the tracereplay_bench target and
#      require the capture-once/replay-many engine to beat per-cell
#      re-execution by at least MIN_SPEEDUP (default 2.0), as recorded
#      in the committed BENCH_tracereplay.json.
#
# Mirrors tests/observability.rs (probe_off_sweep_reproduces_committed_
# bench_files) so the property holds both under `cargo test` and as a
# standalone CI step against release binaries.

set -euo pipefail
cd "$(dirname "$0")/.."

MIN_SPEEDUP="${MIN_SPEEDUP:-2.0}"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "bench_gate: re-running sweeps into $tmp"
cargo run --release -p ccrp-cli --bin ccrp-tools -- \
    sweep --experiment tables1_8 --engine trace --jobs 2 --out "$tmp"
cargo run --release -p ccrp-cli --bin ccrp-tools -- \
    sweep --experiment fig5 --out "$tmp"
cargo run --release -p ccrp-cli --bin ccrp-tools -- \
    sweep --codecs --jobs 2 --out "$tmp"
cargo run --release -p ccrp-cli --bin ccrp-tools -- \
    sweep --isa-compare --jobs 2 --out "$tmp"

for name in tables1_8 fig5 codecs isa_compare; do
    python3 - "BENCH_${name}.json" "$tmp/BENCH_${name}.json" <<'PY'
import json, sys

committed_path, fresh_path = sys.argv[1:3]
with open(committed_path) as f:
    committed = json.load(f)
with open(fresh_path) as f:
    fresh = json.load(f)

# Host-dependent keys; everything that remains must match byte-for-byte
# once serialized with a canonical writer.
for doc in (committed, fresh):
    for key in ("jobs", "timing"):
        doc.pop(key, None)

a = json.dumps(committed, sort_keys=True)
b = json.dumps(fresh, sort_keys=True)
if a != b:
    print(f"bench_gate: FAIL {committed_path} no longer reproduces", file=sys.stderr)
    for key in sorted(set(committed) | set(fresh)):
        ca = json.dumps(committed.get(key), sort_keys=True)
        cb = json.dumps(fresh.get(key), sort_keys=True)
        if ca != cb:
            print(f"  section {key!r} differs", file=sys.stderr)
    sys.exit(1)
print(f"bench_gate: {committed_path} reproduces byte-for-byte")
PY
done

echo "bench_gate: trace-engine jobs independence (--jobs 1 vs --jobs 4)"
mkdir -p "$tmp/j1" "$tmp/j4"
cargo run --release -p ccrp-cli --bin ccrp-tools -- \
    sweep --experiment tables1_8 --engine trace --jobs 1 --out "$tmp/j1"
cargo run --release -p ccrp-cli --bin ccrp-tools -- \
    sweep --experiment tables1_8 --engine trace --jobs 4 --out "$tmp/j4"
diff <(grep -vE '"jobs"|"total_wall_us"|"wall_us"|"suite_build_us"' "$tmp/j1/BENCH_tables1_8.json") \
     <(grep -vE '"jobs"|"total_wall_us"|"wall_us"|"suite_build_us"' "$tmp/j4/BENCH_tables1_8.json") \
    || { echo "bench_gate: FAIL trace engine diverged between 1 and 4 workers" >&2; exit 1; }
echo "bench_gate: trace engine is worker-count independent"

echo "bench_gate: measuring decoder speedup (gate: >= ${MIN_SPEEDUP}x)"
cargo bench -p ccrp-bench --bench decoder_bench -- --out "$tmp/BENCH_decoder.json"

python3 - "$tmp/BENCH_decoder.json" "$MIN_SPEEDUP" <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    report = json.load(f)
minimum = float(sys.argv[2])
speedup = report["speedup"]
if report["schema"] != "ccrp-bench-decoder/1":
    print(f"bench_gate: FAIL unexpected schema {report['schema']!r}", file=sys.stderr)
    sys.exit(1)
if speedup < minimum:
    print(
        f"bench_gate: FAIL decoder speedup {speedup:.2f}x < {minimum}x "
        f"(bit-walk {report['bitwalk']['lines_per_sec']:.0f} lines/s, "
        f"table {report['table']['lines_per_sec']:.0f} lines/s)",
        file=sys.stderr,
    )
    sys.exit(1)
print(f"bench_gate: decoder speedup {speedup:.2f}x >= {minimum}x")
PY

echo "bench_gate: measuring trace-replay speedup (gate: >= ${MIN_SPEEDUP}x)"
cargo bench -p ccrp-bench --bench tracereplay_bench -- --out "$tmp/BENCH_tracereplay.json"

python3 - "$tmp/BENCH_tracereplay.json" "$MIN_SPEEDUP" <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    report = json.load(f)
minimum = float(sys.argv[2])
speedup = report["speedup"]
if report["schema"] != "ccrp-bench-tracereplay/1":
    print(f"bench_gate: FAIL unexpected schema {report['schema']!r}", file=sys.stderr)
    sys.exit(1)
if speedup < minimum:
    print(
        f"bench_gate: FAIL trace-replay speedup {speedup:.2f}x < {minimum}x "
        f"(reexec {report['reexec']['wall_us']:.0f} us, "
        f"trace {report['trace']['wall_us']:.0f} us)",
        file=sys.stderr,
    )
    sys.exit(1)
print(f"bench_gate: trace-replay speedup {speedup:.2f}x >= {minimum}x")
PY

echo "bench_gate: all checks passed"
