#!/usr/bin/env bash
# Forbid panicking constructs in the decode-path library code.
#
# The fault-injection campaign proves the loader and decoder never panic
# on corrupt input; this guard keeps new `.unwrap()` / `.expect(` /
# `panic!(` / `unreachable!(` calls from creeping back into the crates
# that sit on that path (ccrp-core, ccrp-compress, and — since the
# table-driven fast decoder landed — ccrp-bitstream, whose peek/consume
# primitives feed the lookup table).  Decode-table construction must
# likewise report CompressError on bad inputs, never panic.
#
# The differential co-simulation harness (ccrp-difftest) and the shared
# test utilities (ccrp-testutil) are scanned too: campaign trials run
# under catch_unwind and count any panic as a harness bug, so their
# library code must degrade through Result — except where a `panic-ok:`
# marker documents that panicking IS the contract (golden-test helpers
# fail tests by panicking, exactly like `assert_eq!`).
#
# The emulator (ccrp-emu) joined the scan with the checkpoint layer:
# Checkpoint::from_bytes consumes untrusted files, and the corruption
# battery requires a typed CheckpointError on every stomped input —
# never a panic.
#
# The service (ccrp-served) joined with the daemon: every byte it reads
# off a socket is attacker-controlled, request handlers run under
# catch_unwind where a panic counts against the servesim campaign, and
# failures must surface as typed protocol errors.  (The deliberate
# chaos-endpoint panic that tests that isolation carries a `panic-ok:`
# marker.)
#
# The simulator's trace layer joined with the trace-replay sweep engine:
# AccessTrace::from_bytes consumes untrusted `.trace` files and must
# reject every corruption with a typed TraceError, and the Simulation
# builder sits under it, so crates/sim/src/{trace,simulation}.rs are
# scanned (the rest of ccrp-sim predates the guard and keeps its
# documented internal expects).
#
# With the pluggable LineCodec backends (codec.rs, positional.rs,
# lzw.rs — all under the already-scanned crates/compress/src) the
# pattern also catches `assert!` / `assert_eq!` / `assert_ne!` and
# their `debug_assert` variants: codec_from_container feeds
# attacker-controlled codec-params bytes into every backend, so even
# an assertion on that path is a loader panic.  Assertions that state
# a documented API contract carry `panic-ok:` markers.
#
# The RV32 backend (ccrp-rv32) joined with the cross-ISA difftest: its
# decoder, RVC expander, and machine run inside the same catch_unwind
# campaign trials as the MIPS side, and its compressed-text refill path
# consumes ROMs built from fuzzed programs, so every fault must surface
# as a typed Rv32Error/Rv32Fault — never a panic.
#
# Scope and escape hatches:
#   * only library source under
#     crates/{core,compress,bitstream,testutil,difftest,emu,served,rv32}/src
#     plus crates/sim/src/{trace,simulation}.rs is scanned;
#   * everything from the first `#[cfg(test)]` line to end-of-file is
#     ignored (test modules may panic freely);
#   * `//` comment and doc-comment lines are ignored;
#   * a line carrying a `panic-ok:` marker comment is exempt, as is the
#     single line following a comment that carries one — the marker
#     documents why the panic is part of a stated contract.

set -euo pipefail
cd "$(dirname "$0")/.."

hits=$( { find crates/core/src crates/compress/src crates/bitstream/src \
            crates/testutil/src crates/difftest/src crates/emu/src \
            crates/served/src crates/rv32/src \
            -name '*.rs'; \
          echo crates/sim/src/trace.rs; \
          echo crates/sim/src/simulation.rs; } | sort | while IFS= read -r file; do
    awk '
        /^[[:space:]]*#\[cfg\(test\)\]/ { exit }
        /^[[:space:]]*\/\// { if (/panic-ok:/) skip = 1; next }
        /panic-ok:/ { next }
        skip { skip = 0; next }
        /\.unwrap\(\)|\.expect\(|panic!\(|unreachable!\(|assert!\(|assert_eq!\(|assert_ne!\(/ {
            printf "%s:%d: %s\n", FILENAME, FNR, $0
        }
    ' "$file"
done)

if [ -n "$hits" ]; then
    echo "$hits" >&2
    echo >&2
    echo "error: panicking constructs found in decode-path library code." >&2
    echo "       Return a structured CcrpError/CompressError instead, or" >&2
    echo "       mark a documented contract with a 'panic-ok:' comment." >&2
    exit 1
fi
echo "forbid_panics: crates/{core,compress,bitstream,testutil,difftest,emu,served,rv32} and sim trace/simulation library code is panic-free."
