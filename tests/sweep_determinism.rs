//! The parallel sweep runner must be scheduling-independent: for every
//! experiment, `--jobs 8` produces bit-identical rows and byte-identical
//! key-sorted results JSON to `--jobs 1`. Rows carry raw `f64`s compared
//! with `PartialEq`, so "equal" here means bit-identical floating-point
//! results, not approximately close.

use ccrp_bench::{runner, Experiment, SweepOptions, ToJson};

fn options(jobs: usize) -> SweepOptions {
    SweepOptions {
        jobs,
        ..Default::default()
    }
}

#[test]
fn eight_jobs_match_one_job_bit_for_bit() {
    for experiment in Experiment::ALL {
        let serial = runner::run(experiment, &options(1));
        let parallel = runner::run(experiment, &options(8));
        assert_eq!(
            serial.results,
            parallel.results,
            "{}: rows diverged between 1 and 8 workers",
            experiment.name()
        );
        assert_eq!(
            serial.results_json().to_compact(),
            parallel.results_json().to_compact(),
            "{}: results JSON diverged between 1 and 8 workers",
            experiment.name()
        );
        assert_eq!(serial.cells.len(), parallel.cells.len());
        for (a, b) in serial.cells.iter().zip(&parallel.cells) {
            assert_eq!(a.label, b.label, "{}: cell order", experiment.name());
        }
    }
}

#[test]
fn full_json_differs_from_results_json_only_by_run_metadata() {
    let report = runner::run(Experiment::Fig5, &options(2));
    let results = report.results_json().to_compact();
    let full = report.to_json().to_compact();
    assert!(!results.contains("\"timing\""));
    assert!(full.contains("\"timing\""));
    assert!(full.contains("\"jobs\":2"));
    // The deterministic rows are embedded verbatim in the full report:
    // with sorted keys, `"results":...,"schema":...` is contiguous in
    // both serializations.
    let tail = &results[results.find("\"results\"").expect("results key")..results.len() - 1];
    assert!(full.contains(tail));
}
