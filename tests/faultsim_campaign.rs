//! The fault-injection campaign's acceptance properties, end to end:
//! scheduling-independent outcomes, zero panics and hangs under every
//! fault region, and zero silent miscompares once the v2 container's
//! CRC records are in play.

use ccrp_bench::faultsim::{self, FaultsimOptions, Mode, Outcome};

#[test]
fn eight_jobs_match_one_job_bit_for_bit() {
    let options = |jobs| FaultsimOptions {
        trials: 240,
        seed: 42,
        jobs,
    };
    let serial = faultsim::run(options(1));
    let parallel = faultsim::run(options(8));
    assert_eq!(serial.outcomes, parallel.outcomes);
    assert_eq!(
        serial.results_json().to_compact(),
        parallel.results_json().to_compact(),
        "campaign results JSON diverged between 1 and 8 workers"
    );
}

#[test]
fn campaign_meets_the_hardening_contract() {
    let report = faultsim::run(FaultsimOptions {
        trials: 240,
        seed: 42,
        jobs: 8,
    });
    assert_eq!(report.count(Outcome::Panic, None), 0, "no-panic contract");
    assert_eq!(report.count(Outcome::Hang, None), 0, "termination contract");
    assert_eq!(
        report.count(Outcome::SilentMiscompare, Some(Mode::V2)),
        0,
        "v2 CRC records must catch every miscompare"
    );
    assert!(report.acceptable());
    // Sanity: the campaign actually exercises detection.
    assert!(report.count(Outcome::Detected, None) > 0);
}
