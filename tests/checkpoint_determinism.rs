//! Checkpointing must be observationally pure: a run that checkpoints
//! (and even hops machines at every checkpoint) retires the same
//! instructions, produces the same output, the same final architectural
//! state, and the same probe event stream as an unbroken run — for
//! every degradation policy, on v2 (CRC-carrying) compressed text, and
//! for checkpoint intervals spanning every-instruction to
//! almost-never.

use ccrp::{CompressedImage, DegradePolicy};
use ccrp_asm::ProgramImage;
use ccrp_difftest::{build_rom, run_cosim, run_cosim_segmented, ProgGen};
use ccrp_emu::{ArchState, Checkpoint, Machine, MachineConfig, NullSink};
use ccrp_probe::EventLog;

const BUDGET: u64 = 2_000_000;
const INTERVALS: [u64; 3] = [1, 7, 100];
const POLICIES: [DegradePolicy; 3] = [
    DegradePolicy::Abort,
    DegradePolicy::Trap,
    DegradePolicy::Retry { attempts: 2 },
];

fn config() -> MachineConfig {
    MachineConfig {
        max_steps: BUDGET,
        ..MachineConfig::default()
    }
}

fn fixture() -> (ProgramImage, CompressedImage) {
    let image = ccrp_asm::assemble(&ProgGen::generate(11).source()).expect("assembles");
    let rom = build_rom(&image).expect("compresses");
    let rom_v2 = CompressedImage::from_bytes(&rom.to_bytes_v2()).expect("v2 round-trips");
    (image, rom_v2)
}

/// Runs to completion, returning the final state and the probe log.
fn run_monolithic(
    image: &ProgramImage,
    rom: &CompressedImage,
    policy: DegradePolicy,
) -> (ArchState, EventLog) {
    let mut machine =
        Machine::with_compressed_text(image, rom, policy, config()).expect("machine builds");
    machine.enable_probe();
    while machine.exit_code().is_none() {
        machine.step(&mut NullSink).expect("program runs clean");
    }
    let log = machine.take_probe_log().expect("probe enabled");
    (machine.arch_state().clone(), log)
}

/// The same run, but every `every` retired instructions the machine is
/// checkpointed through the byte format and execution continues on a
/// *fresh* machine restored from those bytes — a chain of resumes.
fn run_chained(
    image: &ProgramImage,
    rom: &CompressedImage,
    policy: DegradePolicy,
    every: u64,
) -> ArchState {
    let mut machine =
        Machine::with_compressed_text(image, rom, policy, config()).expect("machine builds");
    while machine.exit_code().is_none() {
        machine.step(&mut NullSink).expect("program runs clean");
        if machine.exit_code().is_none() && machine.steps().is_multiple_of(every) {
            let checkpoint = Checkpoint::from_bytes(&machine.checkpoint().to_bytes())
                .expect("checkpoint bytes parse");
            let mut next = Machine::with_compressed_text(image, rom, policy, config())
                .expect("machine builds");
            next.restore(&checkpoint).expect("restore succeeds");
            machine = next;
        }
    }
    machine.arch_state().clone()
}

#[test]
fn chained_resume_matches_monolithic_for_all_policies_and_intervals() {
    let (image, rom_v2) = fixture();
    for policy in POLICIES {
        let (monolithic, _) = run_monolithic(&image, &rom_v2, policy);
        for every in INTERVALS {
            let chained = run_chained(&image, &rom_v2, policy, every);
            assert_eq!(
                chained, monolithic,
                "{policy:?} every {every}: final state drifted"
            );
        }
    }
}

#[test]
fn taking_checkpoints_does_not_perturb_the_probe_stream() {
    let (image, rom_v2) = fixture();
    for policy in POLICIES {
        let (_, clean_log) = run_monolithic(&image, &rom_v2, policy);
        // Same run, but a checkpoint is serialized every 7 instructions
        // while the probe is live: the event stream must be identical.
        let mut machine = Machine::with_compressed_text(&image, &rom_v2, policy, config())
            .expect("machine builds");
        machine.enable_probe();
        while machine.exit_code().is_none() {
            machine.step(&mut NullSink).expect("program runs clean");
            if machine.steps().is_multiple_of(7) {
                let bytes = machine.checkpoint().to_bytes();
                Checkpoint::from_bytes(&bytes).expect("checkpoint bytes parse");
            }
        }
        let log = machine.take_probe_log().expect("probe enabled");
        assert_eq!(log.events(), clean_log.events(), "{policy:?}");
    }
}

#[test]
fn segmented_cosim_matches_monolithic_across_intervals() {
    for seed in [2u64, 11] {
        let image = ccrp_asm::assemble(&ProgGen::generate(seed).source()).expect("assembles");
        let monolithic = run_cosim(&image, BUDGET).expect("monolithic runs");
        for every in INTERVALS {
            let segmented = run_cosim_segmented(&image, BUDGET, every).expect("segmented runs");
            assert_eq!(
                segmented.verdict, monolithic,
                "seed {seed} every {every}: verdict drifted"
            );
        }
    }
}
