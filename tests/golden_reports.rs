//! Golden-file snapshots of the rendered report output for the two
//! headline experiments. The renderers consume only deterministic sweep
//! results (never timing), so the text is stable across runs, worker
//! counts, and machines; any drift is a real change to the experiment
//! pipeline or its formatting. Refresh intentionally changed snapshots
//! with `UPDATE_GOLDEN=1 cargo test --test golden_reports`.

use std::path::PathBuf;

use ccrp_bench::{render, runner, Experiment, SweepOptions};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, rendered: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, rendered).expect("golden file writes");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e}; run with UPDATE_GOLDEN=1 to (re)create it",
            path.display()
        )
    });
    assert!(
        rendered == expected,
        "{name} drifted from its snapshot; if the change is intended, \
         refresh with UPDATE_GOLDEN=1 cargo test --test golden_reports"
    );
}

#[test]
fn tables_1_to_8_report_matches_golden() {
    let report = runner::run(Experiment::Tables1To8, &SweepOptions::default());
    check_golden("tables1_8.txt", &render::report(&report));
}

#[test]
fn fig5_report_matches_golden() {
    let report = runner::run(Experiment::Fig5, &SweepOptions::default());
    check_golden("fig5.txt", &render::report(&report));
}
