//! Golden-file snapshots of the rendered report output for the two
//! headline experiments. The renderers consume only deterministic sweep
//! results (never timing), so the text is stable across runs, worker
//! counts, and machines; any drift is a real change to the experiment
//! pipeline or its formatting. Refresh intentionally changed snapshots
//! with `UPDATE_GOLDEN=1 cargo test --test golden_reports`.

use std::path::PathBuf;

use ccrp_bench::{render, runner, Experiment, SweepOptions};
use ccrp_testutil::GoldenDir;

fn golden() -> GoldenDir {
    GoldenDir::new(
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden"),
        "cargo test --test golden_reports",
    )
}

#[test]
fn tables_1_to_8_report_matches_golden() {
    let report = runner::run(Experiment::Tables1To8, &SweepOptions::default());
    golden().check("tables1_8.txt", &render::report(&report));
}

#[test]
fn fig5_report_matches_golden() {
    let report = runner::run(Experiment::Fig5, &SweepOptions::default());
    golden().check("fig5.txt", &render::report(&report));
}
