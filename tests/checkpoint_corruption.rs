//! Hostile checkpoint files must be *rejected*, never executed: every
//! corruption is caught at [`Checkpoint::from_bytes`] with a typed
//! error (the frame header and payload are CRC-32 protected), and a
//! valid checkpoint from a different program is refused by
//! [`Machine::restore`] without touching the machine.

use ccrp::FaultInjector;
use ccrp_difftest::ProgGen;
use ccrp_emu::{Checkpoint, CheckpointError, Machine, MachineConfig, NullSink};

fn checkpoint_bytes(seed: u64, prefix: u64) -> Vec<u8> {
    let image = ccrp_asm::assemble(&ProgGen::generate(seed).source()).expect("assembles");
    let mut machine = Machine::with_config(&image, MachineConfig::default());
    for _ in 0..prefix {
        machine.step(&mut NullSink).expect("prefix runs");
    }
    machine.checkpoint().to_bytes()
}

/// 256 seeded random fault plans (bit flips and byte stomps) against a
/// real checkpoint file: every plan that actually changed bytes must be
/// rejected with an error — no panic, no silently accepted state.
#[test]
fn stomped_checkpoint_files_are_always_rejected() {
    let pristine = checkpoint_bytes(4, 100);
    assert!(Checkpoint::from_bytes(&pristine).is_ok());
    let mut injector = FaultInjector::new(0xC0FF_EE00);
    let mut rejected = 0u32;
    for trial in 0..256 {
        let plan = injector.plan_raw(pristine.len(), 1 + trial % 3);
        let mut bytes = pristine.clone();
        plan.apply(&mut bytes);
        if bytes == pristine {
            // The stomp happened to write the value already there.
            continue;
        }
        assert!(
            Checkpoint::from_bytes(&bytes).is_err(),
            "trial {trial}: corrupted checkpoint parsed successfully"
        );
        rejected += 1;
    }
    assert!(rejected > 200, "only {rejected} corruptions took effect");
}

/// Truncation at every byte length short of the full file is rejected.
#[test]
fn truncated_checkpoint_files_are_rejected() {
    let pristine = checkpoint_bytes(4, 50);
    for len in 0..pristine.len() {
        assert!(
            Checkpoint::from_bytes(&pristine[..len]).is_err(),
            "truncation to {len} bytes parsed successfully"
        );
    }
}

/// A structurally valid checkpoint taken on one program must not
/// restore into a machine running a different program, and the refusal
/// must leave the target machine untouched.
#[test]
fn checkpoint_from_another_program_is_refused() {
    let foreign = Checkpoint::from_bytes(&checkpoint_bytes(4, 100)).expect("parses");
    let image = ccrp_asm::assemble(&ProgGen::generate(5).source()).expect("assembles");
    let mut machine = Machine::with_config(&image, MachineConfig::default());
    for _ in 0..10 {
        machine.step(&mut NullSink).expect("prefix runs");
    }
    let before = machine.arch_state().clone();
    let err = machine.restore(&foreign).expect_err("must refuse");
    assert!(matches!(err, CheckpointError::ProgramMismatch { .. }));
    assert_eq!(machine.arch_state(), &before, "refusal mutated the machine");
}
