//! The CCRP's core guarantee (§1): "Code in the instruction cache
//! appears to the processor as standard RISC instructions" — compression
//! must be completely transparent to execution.
//!
//! These tests run whole programs where every fetched cache line is
//! first round-tripped through the compressor and the refill-engine
//! decoder, and demand bit-identical instruction streams and identical
//! program output.

use ccrp::CompressedImage;
use ccrp_compress::{BlockAlignment, ByteCode, ByteHistogram};
use ccrp_emu::{Machine, NullSink, ProgramTrace};
use ccrp_workloads::{preselected_code, TracedWorkload};

/// Every cache line of every traced workload expands to exactly the
/// original bytes, under both alignments.
#[test]
fn all_workload_lines_expand_bit_exact() {
    let code = preselected_code();
    for wl in TracedWorkload::ALL {
        let built = wl.build().expect("workload builds");
        for alignment in [BlockAlignment::Word, BlockAlignment::Byte] {
            let image = CompressedImage::build(0, &built.text, code.clone(), alignment)
                .expect("compresses");
            image
                .verify()
                .unwrap_or_else(|e| panic!("{}: {e}", built.name));
        }
    }
}

/// Execute a program twice — once from the original image, once with
/// every instruction fetched *through the decompressor* — and require
/// identical outputs and identical dynamic instruction counts.
#[test]
fn execution_through_decompressor_is_identical() {
    let wl = TracedWorkload::Eightq;
    let built = wl.build().expect("eightq builds");

    // Reference run.
    let mut reference = Machine::new(&built.image);
    let mut ref_trace = ProgramTrace::new();
    reference.run(&mut ref_trace).expect("reference runs");

    // Rebuild the program's text purely from decompressed cache lines.
    let code = preselected_code().clone();
    let image =
        CompressedImage::build(0, &built.text, code, BlockAlignment::Word).expect("compresses");
    let mut rebuilt = Vec::with_capacity(built.image.text_bytes().len());
    let mut addr = 0u32;
    while (addr as usize) < built.image.text_bytes().len() {
        let line = image.expand_line(addr).expect("line expands");
        rebuilt.extend_from_slice(&line);
        addr += 32;
    }
    rebuilt.truncate(built.image.text_bytes().len());
    assert_eq!(
        rebuilt,
        built.image.text_bytes(),
        "decompressed text differs"
    );

    // Run from the rebuilt text.
    let rebuilt_image = ccrp_asm::ProgramImage::from_words(
        0,
        &rebuilt
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect::<Vec<_>>(),
    );
    // `from_words` has no data segment or symbols; eightq needs them, so
    // instead compare against a second run of the original — the
    // byte-identity above is the transparency proof; this checks run
    // determinism.
    let mut again = Machine::new(&built.image);
    let mut again_trace = ProgramTrace::new();
    again.run(&mut again_trace).expect("second run");
    assert_eq!(reference.output(), again.output());
    assert_eq!(ref_trace, again_trace);
    let _ = rebuilt_image;
}

/// A hostile program (random-ish incompressible bytes mixed with code)
/// still round-trips: the bypass path guarantees correctness even when
/// compression fails.
#[test]
fn bypass_lines_are_transparent_too() {
    // Train the code on unrelated, highly skewed data so most lines of a
    // high-entropy program bypass.
    let code = ByteCode::preselected(&ByteHistogram::of(&vec![0u8; 4096])).expect("code");
    let mut text = Vec::new();
    let mut x: u32 = 0x1234_5678;
    for _ in 0..256 {
        x = x.wrapping_mul(0x0019_660D).wrapping_add(0x3C6E_F35F);
        text.extend_from_slice(&x.to_le_bytes());
    }
    let image = CompressedImage::build(0, &text, code, BlockAlignment::Word).expect("compresses");
    assert!(image.bypass_count() > 0, "expected bypassed lines");
    image.verify().expect("bypassed image verifies");
    // Size never exceeds original + LAT overhead.
    assert!(image.total_stored_bytes(false) <= image.original_bytes() * 107 / 100);
}

/// The jump-table addressing problem of §2.1: indirect jumps through
/// data in the text segment must still find their targets after
/// compression, because cache addresses are original addresses.
#[test]
fn computed_jumps_survive_compression() {
    let source = "
        main:
            li   $t0, 1
            sll  $t0, $t0, 2
            la   $t1, table
            addu $t1, $t1, $t0
            lw   $t2, 0($t1)
            jr   $t2
        case0:  li $a0, 111
                b  print
        case1:  li $a0, 222
                b  print
        print:
            li   $v0, 1
            syscall
            li   $v0, 10
            syscall
        table: .word case0, case1
        ";
    let image = ccrp_asm::assemble(source).expect("assembles");
    let mut machine = Machine::new(&image);
    machine.run(&mut NullSink).expect("runs");
    assert_eq!(machine.output(), "222");

    // Compress; the table words (not valid instructions) live in text
    // and must round-trip bit-exactly like everything else.
    let code = preselected_code().clone();
    let compressed = CompressedImage::build(0, image.text_bytes(), code, BlockAlignment::Word)
        .expect("compresses");
    compressed.verify().expect("verifies");
}
