//! Property test for the checkpoint layer: for randomly generated
//! programs and a random retired-instruction boundary, a checkpoint
//! serialized to bytes, parsed back, and restored into a *fresh*
//! machine must run in lockstep with the uninterrupted original to
//! completion, with the full architectural state equal after every
//! single instruction.

use ccrp_difftest::ProgGen;
use ccrp_emu::{Checkpoint, Machine, MachineConfig, NullSink};
use proptest::prelude::*;

/// Generated programs retire well under this; hitting it is a bug.
const BUDGET: u64 = 2_000_000;

fn config() -> MachineConfig {
    MachineConfig {
        max_steps: BUDGET,
        ..MachineConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn restored_machine_runs_lockstep_to_completion(seed in 0u64..512, cut in any::<u64>()) {
        let image = ccrp_asm::assemble(&ProgGen::generate(seed).source())
            .expect("generated programs assemble");

        // Total run length, to place the boundary inside the run.
        let mut probe = Machine::with_config(&image, config());
        while probe.exit_code().is_none() {
            probe.step(&mut NullSink).expect("generated programs run clean");
        }
        let total = probe.steps();
        prop_assert!(total > 0);
        let boundary = cut % total;

        // Run the original to the boundary and checkpoint it through
        // the full byte round-trip.
        let mut original = Machine::with_config(&image, config());
        for _ in 0..boundary {
            original.step(&mut NullSink).expect("prefix runs");
        }
        let bytes = original.checkpoint().to_bytes();
        let checkpoint = Checkpoint::from_bytes(&bytes).expect("checkpoint bytes parse");
        prop_assert_eq!(checkpoint.steps(), boundary);

        let mut restored = Machine::with_config(&image, config());
        restored.restore(&checkpoint).expect("restore succeeds");
        prop_assert_eq!(restored.arch_state(), original.arch_state());

        // Lockstep to completion: full architectural state equal after
        // every instruction.
        while original.exit_code().is_none() {
            let a = original.step(&mut NullSink);
            let b = restored.step(&mut NullSink);
            prop_assert_eq!(a.is_ok(), b.is_ok());
            prop_assert_eq!(original.arch_state(), restored.arch_state());
        }
        prop_assert_eq!(original.exit_code(), restored.exit_code());
        prop_assert_eq!(original.steps(), total);
    }
}
