//! Cross-codec acceptance properties for the RV32 backend, mirroring
//! `codec_matrix.rs` on the MIPS side: every RV32 workload, in **both**
//! encodings (RV32I and RVC), must round-trip through the v1 and v2
//! containers under every [`LineCodec`] backend. RVC text is the
//! interesting half — instruction boundaries land on arbitrary
//! halfwords, so the 32-byte compression lines slice instructions in
//! half, which the byte-oriented codecs must not care about.

use ccrp::CompressedImage;
use ccrp_bench::codecs::codec_instance;
use ccrp_compress::{BlockAlignment, ByteCode, ByteHistogram, CodecId};
use ccrp_rv32::workloads::Rv32Workload;
use ccrp_rv32::Encoding;

#[test]
fn every_rv32_workload_round_trips_under_every_codec() {
    for workload in Rv32Workload::ALL {
        for (encoding, tag) in [(Encoding::Rv32I, "rv32i"), (Encoding::Rv32C, "rv32c")] {
            let image = workload.padded_image(encoding).expect("workload assembles");
            let text = image.text();
            for id in CodecId::ALL {
                let built = CompressedImage::build_with_codec(
                    image.text_base(),
                    text,
                    codec_instance(id),
                    BlockAlignment::Word,
                )
                .unwrap_or_else(|e| panic!("{} {tag} must build under {id}: {e}", workload.name()));
                for (container, label) in [(built.to_bytes(), "v1"), (built.to_bytes_v2(), "v2")] {
                    let loaded = CompressedImage::from_bytes(&container).unwrap_or_else(|e| {
                        panic!("{} {tag} {label} under {id}: {e}", workload.name())
                    });
                    assert_eq!(loaded.codec().id(), id, "{label} preserves the codec id");
                    loaded.verify().expect("loaded image verifies");
                    let mut line = [0u8; 32];
                    for (index, chunk) in text.chunks(32).enumerate() {
                        loaded
                            .expand_line_into(image.text_base() + index as u32 * 32, &mut line)
                            .unwrap_or_else(|e| {
                                panic!(
                                    "{} {tag} {label} line {index} under {id}: {e}",
                                    workload.name()
                                )
                            });
                        assert_eq!(
                            &line[..chunk.len()],
                            chunk,
                            "{} {tag} {label} line {index} miscompares under {id}",
                            workload.name()
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn rvc_text_is_denser_and_still_compresses() {
    // The composition claim behind the isa-compare matrix, checked at
    // the image layer: RVC shrinks the text, and CCRP still compresses
    // the RVC bytes further on every workload.
    for workload in Rv32Workload::ALL {
        let text_i = workload
            .padded_image(Encoding::Rv32I)
            .expect("rv32i assembles");
        let text_c = workload
            .padded_image(Encoding::Rv32C)
            .expect("rv32c assembles");
        assert!(
            text_c.text_size() < text_i.text_size(),
            "{}: RVC must shrink the text",
            workload.name()
        );
        // Self-trained, as the isa-compare matrix builds its ROMs — the
        // corpus-trained instances above are tuned to MIPS bytes.
        let code =
            ByteCode::preselected(&ByteHistogram::of(text_c.text())).expect("RVC histogram trains");
        let built = CompressedImage::build(
            text_c.text_base(),
            text_c.text(),
            code,
            BlockAlignment::Word,
        )
        .expect("RVC text compresses");
        assert!(
            built.compression_ratio() < 1.0,
            "{}: CCRP must compress RVC text",
            workload.name()
        );
    }
}
