//! Trace capture/replay integration: the `.trace` container and the
//! trace-replay sweep engine reproduce direct (live) simulation for the
//! paper's workloads, and reject corrupted trace files with typed
//! errors — the properties `ccrp-tools sweep --engine trace` and the
//! bench gate rest on.

use ccrp::FaultInjector;
use ccrp_bench::experiments::perf::CACHE_SIZES;
use ccrp_bench::experiments::{clb, dcache};
use ccrp_bench::{suite, Prepared};
use ccrp_sim::{AccessTrace, DataCacheModel, MemoryModel, Simulation, SystemConfig, TraceError};

/// Captures `prepared`'s trace, round-trips it through the on-disk
/// container form, and returns the loaded trace.
fn round_tripped(prepared: &Prepared) -> AccessTrace {
    let captured = AccessTrace::capture(prepared.workload.trace.iter());
    let bytes = captured.to_bytes(ccrp::crc32(prepared.workload.name.as_bytes()));
    let (loaded, _) = AccessTrace::from_bytes(&bytes).expect("freshly written traces load");
    assert_eq!(loaded.fetches(), captured.fetches());
    loaded
}

/// Capture → serialize → load → replay equals direct simulation for
/// every paper workload under the standard configurations.
#[test]
fn every_workload_replays_serialized_traces_to_direct_results() {
    for prepared in suite().iter() {
        let loaded = round_tripped(prepared);
        for memory in MemoryModel::ALL {
            for cache_bytes in [256u32, 1024] {
                let config = SystemConfig::new()
                    .with_cache_bytes(cache_bytes)
                    .with_memory(memory);
                let direct = Simulation::new(config)
                    .compare(&prepared.image, prepared.workload.trace.iter())
                    .expect("paper configurations are valid");
                let replayed = Simulation::new(config)
                    .compare(&prepared.image, &loaded)
                    .expect("paper configurations are valid");
                assert_eq!(
                    replayed, direct,
                    "{} {memory:?} {cache_bytes}B replay diverged",
                    prepared.workload.name
                );
            }
        }
    }
}

/// One cell pinned from each simulating experiment's grid, computed
/// both ways: per-cell re-execution (live trace) against capture-once
/// replay. Fig5 has no simulation cells (it is a static compression
/// study), so four experiments appear here.
#[test]
fn pinned_experiment_cells_agree_across_engines() {
    let s = suite();
    let first = s.iter().next().expect("suite has workloads");
    // (experiment, its grid's first configuration)
    let cells = [
        (
            "tables1_8",
            SystemConfig::new()
                .with_cache_bytes(CACHE_SIZES[0])
                .with_memory(MemoryModel::Eprom),
        ),
        (
            "tables9_10",
            SystemConfig::new()
                .with_cache_bytes(CACHE_SIZES[0])
                .with_memory(MemoryModel::Eprom)
                .with_clb_entries(clb::CLB_SIZES[0]),
        ),
        (
            "fig9",
            SystemConfig::new()
                .with_cache_bytes(CACHE_SIZES[0])
                .with_memory(MemoryModel::ScDram),
        ),
        (
            "tables11_13",
            SystemConfig::new()
                .with_cache_bytes(1024)
                .with_memory(MemoryModel::Eprom)
                .with_dcache(DataCacheModel::with_miss_rate(
                    f64::from(dcache::DCACHE_MISS_PCTS[0]) / 100.0,
                )),
        ),
    ];
    let loaded = round_tripped(first);
    for (experiment, config) in cells {
        let reexec = Simulation::new(config)
            .compare(&first.image, first.workload.trace.iter())
            .expect("paper configurations are valid");
        let replay = Simulation::replay_sweep(&first.image, &loaded, &[config])
            .expect("paper configurations are valid");
        assert_eq!(replay.as_slice(), &[reexec], "{experiment} cell diverged");
    }
}

/// Every corrupted `.trace` file is rejected with a typed error — the
/// CRC-framed container never panics and never silently replays wrong
/// data.
#[test]
fn stomped_trace_files_are_rejected_with_typed_errors() {
    let first = suite().iter().next().expect("suite has workloads");
    let trace = AccessTrace::capture(first.workload.trace.iter());
    let pristine = trace.to_bytes(0xC0DE_F00D);
    let mut injector = FaultInjector::new(2026);
    let mut rejected = 0;
    for round in 0..256 {
        let plan = injector.plan_raw(pristine.len(), 1 + round % 3);
        let mut stomped = pristine.clone();
        if plan.apply(&mut stomped) == 0 {
            continue; // stomp happened to write the original byte back
        }
        match AccessTrace::from_bytes(&stomped) {
            Err(TraceError::Frame(_))
            | Err(TraceError::UnsupportedVersion { .. })
            | Err(TraceError::Malformed { .. }) => rejected += 1,
            Err(other) => panic!("unexpected error variant: {other}"),
            Ok(_) => panic!("corrupted trace file was accepted"),
        }
    }
    assert!(rejected > 200, "fault plans barely exercised the loader");

    // Truncations are rejected too, at every length.
    for len in 0..pristine.len().min(64) {
        assert!(
            AccessTrace::from_bytes(&pristine[..len]).is_err(),
            "truncation to {len} bytes was accepted"
        );
    }
}
