//! Reproducibility: everything in this repository is deterministic —
//! same inputs, same bytes, same traces, same tables. The calibrated
//! numbers in EXPERIMENTS.md depend on it.

use ccrp_compress::BlockAlignment;
use ccrp_workloads::{
    corpus_histogram, figure5_corpus, generate_text, preselected_code, CodeProfile, TracedWorkload,
};

#[test]
fn codegen_is_stable_across_calls() {
    let a = generate_text(&CodeProfile::floating(), 16 * 1024, 99);
    let b = generate_text(&CodeProfile::floating(), 16 * 1024, 99);
    assert_eq!(a, b);
}

#[test]
fn corpus_and_code_are_stable() {
    let first = figure5_corpus();
    let second = figure5_corpus();
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.text, b.text, "{}", a.name);
    }
    let h1 = corpus_histogram();
    let h2 = corpus_histogram();
    assert_eq!(h1.counts(), h2.counts());
    // The preselected code's length table is therefore fixed.
    let lengths = *preselected_code().lengths();
    assert_eq!(lengths, *preselected_code().lengths());
}

#[test]
fn workload_builds_are_bit_identical() {
    for wl in [TracedWorkload::Eightq, TracedWorkload::Fpppp] {
        let a = wl.build().expect("builds");
        let b = wl.build().expect("builds");
        assert_eq!(a.image.text_bytes(), b.image.text_bytes(), "{}", a.name);
        assert_eq!(a.text, b.text, "{}", a.name);
        assert_eq!(a.trace, b.trace, "{}: traces must be identical", a.name);
    }
}

#[test]
fn compressed_images_are_bit_identical() {
    let w = TracedWorkload::Lloop01.build().expect("builds");
    let code = preselected_code().clone();
    let a = ccrp::CompressedImage::build(0, &w.text, code.clone(), BlockAlignment::Word)
        .expect("builds");
    let b = ccrp::CompressedImage::build(0, &w.text, code, BlockAlignment::Word).expect("builds");
    assert_eq!(a.to_bytes(), b.to_bytes());
}
