//! Golden-file snapshots of the checkpoint binary format and the
//! segmented-difftest report. The checkpoint frame layout (magic,
//! header fields, CRCs) and the campaign JSON schema are compatibility
//! surfaces: a resume must read files written by older builds, and
//! downstream tooling parses the report keys. Any drift here is a
//! format change and must be deliberate. Refresh intentionally changed
//! snapshots with `UPDATE_GOLDEN=1 cargo test --test golden_checkpoint`.

use std::fmt::Write as _;
use std::path::PathBuf;

use ccrp::{read_frame, SNAPSHOT_HEADER_BYTES};
use ccrp_bench::difftest::{self, DifftestOptions};
use ccrp_bench::json::Json;
use ccrp_emu::{Machine, MachineConfig, NullSink, CHECKPOINT_VERSION};
use ccrp_testutil::GoldenDir;

fn golden() -> GoldenDir {
    GoldenDir::new(
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden"),
        "cargo test --test golden_checkpoint",
    )
}

/// A fixed program whose checkpoint bytes must never drift: prints two
/// numbers with a loop in between, checkpointed mid-loop.
const PROGRAM: &str = "\
main: li $t0, 0
      li $t1, 8
loop: addi $t0, $t0, 1
      blt $t0, $t1, loop
      move $a0, $t0
      li $v0, 1
      syscall
      li $v0, 10
      syscall
";

#[test]
fn checkpoint_header_layout_matches_golden() {
    let image = ccrp_asm::assemble(PROGRAM).expect("assembles");
    let mut machine = Machine::with_config(&image, MachineConfig::default());
    for _ in 0..5 {
        machine.step(&mut NullSink).expect("runs");
    }
    let bytes = machine.checkpoint().to_bytes();
    let (header, payload) = read_frame(&bytes).expect("frame parses");
    assert_eq!(header.version, CHECKPOINT_VERSION);

    let mut header_hex = String::new();
    for byte in &bytes[..SNAPSHOT_HEADER_BYTES] {
        write!(header_hex, "{byte:02x}").expect("write to String cannot fail");
    }
    let rendered = Json::obj([
        ("schema", Json::str("ccrp-checkpoint-header/1")),
        ("magic", Json::str("CCKP")),
        ("header_bytes", Json::U64(SNAPSHOT_HEADER_BYTES as u64)),
        ("version", Json::U64(u64::from(header.version))),
        ("fingerprint", Json::U64(u64::from(header.fingerprint))),
        ("payload_len", Json::U64(header.payload_len)),
        ("payload_crc", Json::U64(u64::from(header.payload_crc))),
        ("header_crc", Json::U64(u64::from(header.header_crc))),
        ("header_hex", Json::str(&header_hex)),
        ("total_bytes", Json::U64(bytes.len() as u64)),
        ("steps", Json::U64(machine.steps())),
    ]);
    assert_eq!(payload.len() as u64, header.payload_len);
    golden().check("checkpoint_header.json", &rendered.to_pretty());
}

#[test]
fn segmented_difftest_report_matches_golden() {
    let report = difftest::run(DifftestOptions {
        programs: 4,
        seed: 7,
        jobs: 2,
        checkpoint_every: Some(50),
        ..DifftestOptions::default()
    });
    // results_json is the jobs- and timing-independent half, so the
    // snapshot is stable across machines and worker counts.
    golden().check(
        "segmented_difftest.json",
        &report.results_json().to_pretty(),
    );
}
