//! Edge-path regression tests: degenerate CLB capacity, the bypass
//! refill's timing contract, and fault-injected LAT corruption.

use ccrp::{CcrpError, Clb, CompressedImage, LatEntry, RefillConfig, RefillEngine};
use ccrp_compress::{BlockAlignment, ByteCode, ByteHistogram};
use ccrp_sim::{standard_refill_cycles, MemoryModel};

fn entry(n: u32) -> LatEntry {
    LatEntry::new(n * 64, [4; 8]).expect("valid entry")
}

#[test]
fn capacity_one_clb_evicts_on_every_new_tag() {
    // The degenerate LRU: with one slot, the resident entry is always
    // the most recently inserted tag and any new tag evicts it at once.
    let mut clb = Clb::new(1).expect("capacity 1 is legal");
    assert_eq!(clb.capacity(), 1);
    clb.insert(1, entry(1));
    assert_eq!(clb.resident().collect::<Vec<_>>(), [1]);
    clb.insert(2, entry(2));
    assert_eq!(clb.resident().collect::<Vec<_>>(), [2]);
    assert!(clb.probe(1).is_none(), "1 was evicted by 2");
    assert!(clb.probe(2).is_some(), "a failed probe must not evict");
    // Re-inserting the resident tag refreshes in place.
    clb.insert(2, entry(2));
    assert_eq!(clb.resident().collect::<Vec<_>>(), [2]);
    clb.insert(3, entry(3));
    assert_eq!(clb.resident().collect::<Vec<_>>(), [3]);
    assert_eq!(clb.stats().hits, 1);
    assert_eq!(clb.stats().misses, 1);
}

#[test]
fn capacity_one_clb_thrashes_on_alternating_tags() {
    let mut clb = Clb::new(1).expect("capacity 1 is legal");
    for round in 0..10u32 {
        let tag = round % 2;
        assert!(clb.probe(tag).is_none(), "two tags cannot share one slot");
        clb.insert(tag, entry(tag));
    }
    assert_eq!(clb.stats().miss_rate(), 1.0);
}

/// Uniform-random text against a code trained on zeros: nothing
/// compresses, so every line is stored through the bypass record.
fn bypass_image() -> CompressedImage {
    let mut text = vec![0u8; 256];
    let mut x = 123u32;
    for b in &mut text {
        x = x.wrapping_mul(1_103_515_245).wrapping_add(12_345);
        *b = (x >> 17) as u8;
    }
    let code = ByteCode::preselected(&ByteHistogram::of(&vec![0u8; 4096])).expect("code builds");
    CompressedImage::build(0, &text, code, BlockAlignment::Word).expect("builds")
}

#[test]
fn bypass_refill_costs_exactly_a_standard_refill() {
    // §3.4: bypassed (uncompressed) blocks refill exactly like a
    // standard processor's 8-word line fill — same cycles, same bytes —
    // under every memory model.
    let image = bypass_image();
    let address = (0..256u32)
        .step_by(32)
        .find(|&a| image.locate(a).expect("in range").bypass)
        .expect("hostile code leaves bypassed lines");
    for &model in &MemoryModel::ALL {
        let mut engine = RefillEngine::new(RefillConfig::default()).expect("valid config");
        // Warm the CLB so the measured refill reads only the block.
        engine
            .refill(&image, address, 0, &mut model.timing())
            .expect("in range");
        let outcome = engine
            .refill(&image, address, 0, &mut model.timing())
            .expect("in range");
        assert!(outcome.bypass && outcome.clb_hit);
        assert_eq!(
            outcome.ready_at,
            standard_refill_cycles(model),
            "{} bypass refill must match the standard line fill",
            model.name()
        );
        assert_eq!(outcome.bytes_fetched, 32);
    }
}

/// Compressible text (skewed bytes), so stored lengths are short.
fn compressible_image() -> CompressedImage {
    let mut text = vec![0u8; 512];
    for (i, b) in text.iter_mut().enumerate() {
        *b = match i % 4 {
            0 => (i / 7) as u8,
            1 => 0,
            2 => 0x3C,
            _ => 0x24,
        };
    }
    let code = ByteCode::preselected(&ByteHistogram::of(&text)).expect("code builds");
    CompressedImage::build(0, &text, code, BlockAlignment::Word).expect("builds")
}

#[test]
fn verify_catches_a_corrupted_lat_length_record() {
    let mut image = compressible_image();
    image.verify().expect("freshly built images are consistent");
    let honest = image.locate(0).expect("line 0 exists").stored_len;
    let lie = if honest == 32 { 31 } else { honest + 1 };
    image
        .corrupt_lat_length(0, lie)
        .expect("a 1..=32 length encodes");
    assert!(
        matches!(image.verify(), Err(CcrpError::Integrity { .. })),
        "verify must flag the layout mismatch"
    );
}

#[test]
fn corrupting_a_later_record_shifts_following_addresses() {
    // A wrong length record desynchronizes the prefix-sum addresses of
    // every following block in the group, not just its own.
    let mut image = compressible_image();
    let honest = image.locate(2 * 32).expect("line 2 exists").stored_len;
    let lie = if honest == 32 { 31 } else { 32 };
    image
        .corrupt_lat_length(2, lie)
        .expect("a 1..=32 length encodes");
    assert!(image.verify().is_err());
}

#[test]
fn fault_injection_rejects_bad_inputs() {
    let mut image = compressible_image();
    assert!(matches!(
        image.corrupt_lat_length(10_000, 4),
        Err(CcrpError::AddressOutOfRange { .. })
    ));
    assert!(matches!(
        image.corrupt_lat_length(0, 0),
        Err(CcrpError::BadBlockLength { .. })
    ));
    assert!(matches!(
        image.corrupt_lat_length(0, 33),
        Err(CcrpError::BadBlockLength { .. })
    ));
    // The failed injections left the image untouched.
    image.verify().expect("still consistent");
}
