//! Golden-file snapshot of the cross-ISA comparison matrix JSON. The
//! snapshot is the deterministic half of the report ([`results_json`]:
//! no job counts, no timing), so it is stable across runs, worker
//! counts, and machines — and it is byte-for-byte the same document the
//! committed repo-root `BENCH_isa_compare.json` carries minus those two
//! run-specific keys, which `ci/bench_gate.sh` cross-checks on every
//! build. Refresh an intentionally changed snapshot with
//! `UPDATE_GOLDEN=1 cargo test --test golden_isa_compare` (and
//! regenerate the committed benchmark file with
//! `ccrp-tools sweep --isa-compare --out .`).
//!
//! [`results_json`]: ccrp_bench::isa_compare::IsaCompareReport::results_json

use std::path::PathBuf;

use ccrp_bench::isa_compare::{self, IsaCompareOptions};
use ccrp_testutil::GoldenDir;

fn golden() -> GoldenDir {
    GoldenDir::new(
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden"),
        "cargo test --test golden_isa_compare",
    )
}

#[test]
fn isa_compare_matrix_json_matches_golden() {
    let report = isa_compare::run(IsaCompareOptions { jobs: 2 });
    golden().check("isa_compare.json", &report.results_json().to_pretty());
}
