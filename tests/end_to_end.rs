//! Full-pipeline integration: source text → assembler → emulator →
//! compressor → refill engine → system simulator, with the paper's
//! headline claims checked on a fresh program none of the crates have
//! seen before.

use ccrp::{CompressedImage, MemoryTiming, RefillConfig, RefillEngine};
use ccrp_asm::assemble;
use ccrp_compress::BlockAlignment;
use ccrp_emu::{Machine, ProgramTrace};
use ccrp_sim::{DataCacheModel, MemoryModel, Simulation, SystemConfig};
use ccrp_workloads::preselected_code;

/// A string-reverse + histogram program: branchy integer code with byte
/// loads/stores, assembled and executed from scratch.
const PROGRAM: &str = r#"
        .data
text:   .asciiz "the quick brown fox jumps over the lazy dog"
buf:    .space 64
hist:   .space 32

        .text
main:
        addiu $sp, $sp, -8
        sw    $ra, 4($sp)

        # strlen
        la    $t0, text
        li    $t1, 0
len:
        addu  $t2, $t0, $t1
        lbu   $t3, 0($t2)
        beqz  $t3, len_done
        addiu $t1, $t1, 1
        b     len
len_done:

        # reverse into buf, 200 times to build a trace
        li    $s3, 0
rounds:
        li    $t4, 0
rev:
        subu  $t5, $t1, $t4
        addiu $t5, $t5, -1
        la    $t0, text
        addu  $t6, $t0, $t5
        lbu   $t7, 0($t6)
        la    $t0, buf
        addu  $t6, $t0, $t4
        sb    $t7, 0($t6)
        addiu $t4, $t4, 1
        blt   $t4, $t1, rev
        addiu $s3, $s3, 1
        li    $t5, 200
        blt   $s3, $t5, rounds

        # histogram buf mod 8
        li    $t4, 0
histo:
        la    $t0, buf
        addu  $t6, $t0, $t4
        lbu   $t7, 0($t6)
        andi  $t7, $t7, 7
        sll   $t7, $t7, 2
        la    $t0, hist
        addu  $t6, $t0, $t7
        lw    $t8, 0($t6)
        addiu $t8, $t8, 1
        sw    $t8, 0($t6)
        addiu $t4, $t4, 1
        blt   $t4, $t1, histo

        # print first reversed char and hist[4]
        la    $t0, buf
        lbu   $a0, 0($t0)
        li    $v0, 11               # print_char
        syscall
        la    $t0, hist
        lw    $a0, 16($t0)
        li    $v0, 1
        syscall
        lw    $ra, 4($sp)
        addiu $sp, $sp, 8
        li    $v0, 10
        syscall
"#;

fn build() -> (ccrp_asm::ProgramImage, ProgramTrace, String) {
    let image = assemble(PROGRAM).expect("program assembles");
    let mut machine = Machine::new(&image);
    let mut trace = ProgramTrace::new();
    machine.run(&mut trace).expect("program runs");
    (image, trace, machine.output().to_string())
}

#[test]
fn program_behaves() {
    let (_, trace, output) = build();
    // Reversed string starts with 'g'; hist[4] counts bytes ≡ 4 (mod 8)
    // in "god yzal ...": computed by the reference implementation below.
    let text = b"the quick brown fox jumps over the lazy dog";
    let expected_hist4 = text.iter().filter(|&&b| b % 8 == 4).count();
    assert_eq!(output, format!("g{expected_hist4}"));
    assert!(trace.len() > 50_000, "trace too short: {}", trace.len());
}

#[test]
fn compressed_system_matches_paper_claims() {
    let (image, trace, _) = build();
    let code = preselected_code().clone();
    let compressed = CompressedImage::build(0, image.text_bytes(), code, BlockAlignment::Word)
        .expect("compresses");
    compressed.verify().expect("verifies");
    assert!(
        compressed.compression_ratio() < 0.9,
        "should shrink: {}",
        compressed.compression_ratio()
    );

    for memory in MemoryModel::ALL {
        let config = SystemConfig::new()
            .with_cache_bytes(256)
            .with_memory(memory);
        let result = Simulation::new(config)
            .compare(&compressed, trace.iter())
            .expect("simulates");
        // Traffic always shrinks; EPROM never loses by much; fast memory
        // never wins (it can only lose time to the decoder).
        assert!(result.memory_traffic_ratio() < 1.0);
        match memory {
            MemoryModel::Eprom => assert!(result.relative_execution_time() <= 1.01),
            _ => assert!(result.relative_execution_time() >= 0.999),
        }
    }
}

#[test]
fn refill_engine_agrees_with_system_simulator() {
    // The cycles the system simulator attributes to refills must equal
    // what the refill engine reports when driven directly.
    let (image, trace, _) = build();
    let code = preselected_code().clone();
    let compressed = CompressedImage::build(0, image.text_bytes(), code, BlockAlignment::Word)
        .expect("compresses");

    let config = SystemConfig::new()
        .with_cache_bytes(256)
        .with_memory(MemoryModel::Eprom);
    let ccrp_run = Simulation::new(config)
        .ccrp(&compressed, trace.iter())
        .expect("simulates");

    // Drive the engine manually over the same miss stream.
    struct Eprom;
    impl MemoryTiming for Eprom {
        fn read_burst(&mut self, words: u32, now: u64, arrivals: &mut Vec<u64>) {
            arrivals.clear();
            arrivals.extend((0..u64::from(words)).map(|i| now + 3 * (i + 1)));
        }
    }
    let mut cache = ccrp_sim::ICache::new(256).expect("valid");
    let mut engine = RefillEngine::new(RefillConfig::default()).expect("valid");
    let mut memory = Eprom;
    let mut refill_cycles = 0u64;
    let mut cycle = 0u64;
    for (pc, _) in trace.iter() {
        cycle += 1;
        if !cache.access(pc) {
            let outcome = engine
                .refill(&compressed, pc, cycle, &mut memory)
                .expect("refills");
            refill_cycles += outcome.ready_at - cycle;
            cycle = outcome.ready_at;
        }
    }
    assert_eq!(refill_cycles, ccrp_run.refill_cycles);
    assert_eq!(cache.stats().misses, ccrp_run.cache.misses);
}

#[test]
fn standard_simulator_baseline_sanity() {
    // With a huge cache, total cycles = instructions + compulsory
    // refills + data stalls, exactly.
    let (_, trace, _) = build();
    let config = SystemConfig::new()
        .with_cache_bytes(4096)
        .with_memory(MemoryModel::BurstEprom)
        .with_dcache(DataCacheModel::NONE);
    let run = Simulation::new(config)
        .standard(trace.iter())
        .expect("simulates");
    let expected = run.instructions as f64 + (run.cache.misses * 10) as f64 + run.data_stall_cycles;
    assert_eq!(run.total_cycles(), expected);
}
