//! The paper's quantitative claims, checked against the reproduction's
//! own measurements (the per-table details live in `ccrp-bench`'s module
//! tests; these are the cross-cutting statements of §1, §4.3, and §5).

use ccrp::CompressedImage;
use ccrp_compress::{block, BlockAlignment, ByteCode, ByteHistogram};
use ccrp_sim::{MemoryModel, Simulation, SystemConfig};
use ccrp_workloads::{figure5_corpus, preselected_code, TracedWorkload};

/// §1: "Experimental simulations show that a significant degree of
/// compression can be achieved from a fixed encoding scheme."
#[test]
fn fixed_code_compresses_the_whole_corpus() {
    let code = preselected_code();
    let mut total_original = 0usize;
    let mut total_compressed = 0usize;
    for program in figure5_corpus() {
        let lines = block::compress_image(code, &program.text, BlockAlignment::Byte);
        total_original += program.text.len();
        total_compressed += block::compressed_size(&lines);
    }
    let ratio = total_compressed as f64 / total_original as f64;
    assert!(
        ratio < 0.80,
        "corpus ratio {ratio:.3} not a significant compression"
    );
    assert!(
        ratio > 0.55,
        "corpus ratio {ratio:.3} implausibly strong for byte Huffman"
    );
}

/// §2.2: the worst-case traditional Huffman symbol can be very long,
/// while the bounded code never exceeds 16 bits — the property that
/// makes the decoder hardware practical.
#[test]
fn bounded_code_caps_symbol_length() {
    // A Fibonacci-weighted histogram drives traditional Huffman deep
    // (30 symbols -> 29-bit worst case, still representable in the
    // canonical table; the paper quotes up to 255 bits for a full
    // alphabet).
    let mut h = ByteHistogram::new();
    let (mut a, mut b) = (1u64, 1u64);
    for sym in 0..30u8 {
        for _ in 0..a {
            h.update(&[sym]);
        }
        let next = a + b;
        a = b;
        b = next;
    }
    let traditional = ByteCode::traditional(&h).expect("builds");
    let bounded = ByteCode::bounded(&h).expect("builds");
    assert!(traditional.max_length() > 16);
    assert!(bounded.max_length() <= 16);
}

/// §4.3: "Given a slow memory model like the EPROM model, performance
/// almost always is improved by using compressed code. Using a faster
/// memory model, performance typically suffers only slightly. In most
/// cases the execution time increases by less than ten percent."
#[test]
fn section_4_3_conclusions() {
    let code = preselected_code().clone();
    let mut eprom_wins = 0;
    let mut eprom_total = 0;
    let mut burst_under_10pct = 0;
    let mut burst_total = 0;
    for wl in [
        TracedWorkload::Matrix25A,
        TracedWorkload::Nasa1,
        TracedWorkload::Lloop01,
    ] {
        let w = wl.build().expect("builds");
        let image = CompressedImage::build(0, &w.text, code.clone(), BlockAlignment::Word)
            .expect("compresses");
        for cache_bytes in [256u32, 1024, 4096] {
            for memory in [MemoryModel::Eprom, MemoryModel::BurstEprom] {
                let config = SystemConfig::new()
                    .with_cache_bytes(cache_bytes)
                    .with_memory(memory);
                let rel = Simulation::new(config)
                    .compare(&image, w.trace.iter())
                    .expect("simulates")
                    .relative_execution_time();
                match memory {
                    MemoryModel::Eprom => {
                        eprom_total += 1;
                        if rel <= 1.0 {
                            eprom_wins += 1;
                        }
                    }
                    _ => {
                        burst_total += 1;
                        if rel < 1.10 {
                            burst_under_10pct += 1;
                        }
                    }
                }
            }
        }
    }
    assert_eq!(
        eprom_wins, eprom_total,
        "EPROM must (almost) always improve"
    );
    assert_eq!(
        burst_under_10pct, burst_total,
        "fast-memory slowdown must stay under ten percent for these programs"
    );
}

/// §4.3: "the memory to instruction cache traffic is significantly
/// reduced in all cases."
#[test]
fn traffic_reduced_in_all_cases() {
    let code = preselected_code().clone();
    for wl in TracedWorkload::ALL {
        let w = wl.build().expect("builds");
        let image = CompressedImage::build(0, &w.text, code.clone(), BlockAlignment::Word)
            .expect("compresses");
        for cache_bytes in [256u32, 4096] {
            let config = SystemConfig::new()
                .with_cache_bytes(cache_bytes)
                .with_memory(MemoryModel::BurstEprom);
            let traffic = Simulation::new(config)
                .compare(&image, w.trace.iter())
                .expect("simulates")
                .memory_traffic_ratio();
            assert!(
                traffic < 1.0,
                "{} at {cache_bytes}B: traffic {traffic:.3}",
                w.name
            );
        }
    }
}

/// §3.2: the LAT overhead the paper quotes — "approximately 3% of
/// original program size" — holds for every workload image.
#[test]
fn lat_overhead_is_three_percent() {
    let code = preselected_code().clone();
    for wl in TracedWorkload::ALL {
        let w = wl.build().expect("builds");
        let image = CompressedImage::build(0, &w.text, code.clone(), BlockAlignment::Word)
            .expect("compresses");
        let overhead = f64::from(image.lat().storage_bytes()) / f64::from(image.original_bytes());
        assert!(
            (overhead - 0.03125).abs() < 0.002,
            "{}: LAT overhead {overhead:.4}",
            w.name
        );
    }
}
