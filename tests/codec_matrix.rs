//! Cross-codec acceptance properties for the pluggable [`LineCodec`]
//! backends: every paper workload must round-trip through the container
//! under every codec, corrupted v2 streams must be rejected (never
//! silently decoded, never a panic), and the positional code must honor
//! §5's promise against the plain byte-Huffman baseline.

use std::sync::Arc;

use ccrp::{CompressedImage, ContainerLayout, FaultPlan, FaultRegion};
use ccrp_bench::codecs::codec_instance;
use ccrp_bitstream::BitWriter;
use ccrp_compress::{BlockAlignment, CodecId, LineCodec, LINE_SIZE};
use ccrp_workloads::{preselected_code, preselected_positional_code, TracedWorkload};
use proptest::prelude::*;

/// Builds `workload`'s image under the corpus-trained instance of `id`.
fn build(text: &[u8], id: CodecId) -> CompressedImage {
    CompressedImage::build_with_codec(0, text, codec_instance(id), BlockAlignment::Word)
        .unwrap_or_else(|e| panic!("image must build under {id}: {e}"))
}

#[test]
fn every_workload_round_trips_under_every_codec() {
    for workload in TracedWorkload::ALL {
        let text = workload.padded_text().expect("workload assembles");
        for id in CodecId::ALL {
            let image = build(&text, id);
            for (container, label) in [(image.to_bytes(), "v1"), (image.to_bytes_v2(), "v2")] {
                let loaded = CompressedImage::from_bytes(&container)
                    .unwrap_or_else(|e| panic!("{} {label} under {id}: {e}", workload.name()));
                assert_eq!(loaded.codec().id(), id, "{label} preserves the codec id");
                loaded.verify().expect("loaded image verifies");
                let mut line = [0u8; 32];
                for (index, chunk) in text.chunks(32).enumerate() {
                    loaded
                        .expand_line_into(index as u32 * 32, &mut line)
                        .unwrap_or_else(|e| {
                            panic!("{} {label} line {index} under {id}: {e}", workload.name())
                        });
                    assert_eq!(
                        &line[..chunk.len()],
                        chunk,
                        "{} {label} line {index} miscompares under {id}",
                        workload.name()
                    );
                }
            }
        }
    }
}

/// Corrupts every section of a v2 container (the CodeTable region spans
/// the codec-params bytes too) under each codec: the loader either
/// refuses the bytes outright or the CRC records catch the damage at
/// verify time. Nothing may panic, and nothing may verify clean.
#[test]
fn corrupted_v2_streams_are_rejected_under_every_codec() {
    let text = TracedWorkload::ALL[0].padded_text().expect("assembles");
    for id in CodecId::ALL {
        let pristine = build(&text, id).to_bytes_v2();
        let layout = ContainerLayout::of(&pristine).expect("layout parses");
        for region in FaultRegion::ALL {
            for seed in 0..32u64 {
                let plan = FaultPlan::seeded(seed, &layout, region, 2);
                let mut corrupt = pristine.clone();
                if plan.apply(&mut corrupt) == 0 {
                    continue; // value-stomp no-op: nothing to detect
                }
                let verdict = CompressedImage::from_bytes(&corrupt).and_then(|image| {
                    image.verify()?;
                    let mut line = [0u8; 32];
                    for index in 0..image.line_count() {
                        image.expand_line_into(index as u32 * 32, &mut line)?;
                    }
                    Ok(())
                });
                assert!(
                    verdict.is_err(),
                    "{id}: seed {seed} corruption in {} went undetected",
                    region.name()
                );
            }
        }
    }
}

/// §5's differential: on every paper workload the per-byte-offset
/// positional code spends no more bits than the plain byte code trained
/// on the same pooled corpus, and both agree exactly on symbol
/// boundaries (the per-byte cumulative-bit profile is strictly
/// increasing and lands on the total).
#[test]
fn positional_code_never_loses_to_plain_huffman_on_the_corpus() {
    let plain = preselected_code();
    let positional = preselected_positional_code();
    for workload in TracedWorkload::ALL {
        let text = workload.padded_text().expect("assembles");
        let mut plain_bits = 0u64;
        let mut positional_bits = 0u64;
        for chunk in text.chunks(32) {
            plain_bits += LineCodec::encoded_bits(plain, chunk);
            positional_bits += LineCodec::encoded_bits(positional, chunk);
        }
        assert!(
            positional_bits <= plain_bits,
            "{}: positional {positional_bits} bits > plain {plain_bits}",
            workload.name()
        );
    }
}

/// One codec's line-level contract, for arbitrary line bytes: encode →
/// decode is the identity, `encoded_bits` matches the bits actually
/// written, and the bit profile is monotone, byte-aligned with the
/// decode order, and ends exactly at `encoded_bits`.
fn check_line_contract(codec: &dyn LineCodec, line: &[u8; LINE_SIZE]) {
    let mut writer = BitWriter::new();
    codec.encode_into(line, &mut writer);
    let bits = codec.encoded_bits(line);
    assert_eq!(
        writer.bit_len(),
        bits,
        "encoded_bits must match encode_into"
    );

    let stored = writer.into_bytes();
    let mut decoded = [0u8; LINE_SIZE];
    codec
        .decode_into(&stored, &mut decoded)
        .unwrap_or_else(|e| panic!("{} must decode its own output: {e}", codec.id()));
    assert_eq!(&decoded, line, "{} round-trip", codec.id());

    let mut profile = [0u64; LINE_SIZE];
    codec.bit_profile(line, &mut profile);
    let mut previous = 0u64;
    for (i, &cumulative) in profile.iter().enumerate() {
        assert!(cumulative >= previous, "profile regresses at byte {i}");
        previous = cumulative;
    }
    assert_eq!(
        profile[LINE_SIZE - 1],
        bits,
        "profile must end at the total"
    );
}

proptest! {
    /// The line contract holds for every codec on arbitrary 32-byte
    /// lines — the preselected Huffman tables are complete (every byte
    /// has a codeword), so no input is out of alphabet.
    #[test]
    fn all_codecs_honor_the_line_contract(line in proptest::array::uniform32(any::<u8>())) {
        for id in CodecId::ALL {
            check_line_contract(codec_instance(id).as_ref(), &line);
        }
    }

    /// Positional and plain Huffman decode the same line from their own
    /// streams to the same bytes — a differential over the two table
    /// layouts (pooled vs per-byte-offset) that would catch any
    /// offset-indexing slip in either decoder.
    #[test]
    fn positional_and_plain_agree_on_arbitrary_lines(
        line in proptest::array::uniform32(any::<u8>()),
    ) {
        let codecs: [Arc<dyn LineCodec>; 2] = [
            Arc::new(preselected_code().clone()),
            Arc::new(preselected_positional_code().clone()),
        ];
        let mut outputs = Vec::new();
        for codec in &codecs {
            let mut writer = BitWriter::new();
            codec.encode_into(&line, &mut writer);
            let mut decoded = [0u8; LINE_SIZE];
            codec.decode_into(&writer.into_bytes(), &mut decoded).unwrap();
            outputs.push(decoded);
        }
        prop_assert_eq!(outputs[0], line);
        prop_assert_eq!(outputs[1], line);
    }
}
