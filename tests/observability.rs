//! Observability contract tests: the probe layer must never perturb
//! results (probe-off sweeps reproduce the committed `BENCH_*.json`
//! documents), and the two exporters built on it — the Chrome
//! trace-event document and the metric registry — must be deterministic,
//! worker-count-independent, and golden-snapshotted so drift is loud.
//! Refresh intentionally changed snapshots with
//! `UPDATE_GOLDEN=1 cargo test --test observability`.

use std::path::PathBuf;

use ccrp_bench::json::Json;
use ccrp_bench::{runner, Experiment, SweepOptions, ToJson};
use ccrp_testutil::GoldenDir;

fn repo_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(name)
}

fn golden() -> GoldenDir {
    GoldenDir::new(repo_path("tests/golden"), "cargo test --test observability")
}

/// Parses a full sweep report and strips the run metadata (`jobs`,
/// `timing`) that legitimately varies between machines and runs.
fn results_only(text: &str) -> String {
    let mut json = Json::parse(text).expect("report parses as JSON");
    json.remove("jobs");
    json.remove("timing");
    json.to_compact()
}

/// The committed benchmark results are the probe-off reference: a fresh
/// sweep with probes compiled out must reproduce their deterministic
/// sections exactly, proving observability costs nothing when off.
#[test]
fn probe_off_sweep_reproduces_committed_bench_files() {
    for (file, experiment) in [
        ("BENCH_fig5.json", Experiment::Fig5),
        ("BENCH_tables1_8.json", Experiment::Tables1To8),
    ] {
        let committed =
            std::fs::read_to_string(repo_path(file)).unwrap_or_else(|e| panic!("{file}: {e}"));
        let report = runner::run(experiment, &SweepOptions::default());
        assert_eq!(
            results_only(&committed),
            report.results_json().to_compact(),
            "{file} no longer matches a probe-off sweep"
        );
    }
}

/// The trace exporter is a pure function of (program, options): its
/// entire JSON document — event order, timestamps, metrics — is
/// golden-stable.
#[test]
fn trace_export_matches_golden() {
    let source = repo_path("tests/fixtures/trace_smoke.s");
    let argv: Vec<String> = [
        "trace",
        source.to_str().expect("fixture path is UTF-8"),
        "--cache",
        "256",
        "--metrics",
    ]
    .map(String::from)
    .to_vec();
    let mut buffer = Vec::new();
    ccrp_cli::dispatch(&argv, &mut buffer).expect("trace command succeeds");
    let text = String::from_utf8(buffer).expect("trace output is UTF-8");

    let json = Json::parse(&text).expect("trace output parses as JSON");
    let Some(Json::Arr(events)) = json.get("traceEvents") else {
        panic!("traceEvents missing");
    };
    assert!(!events.is_empty());
    golden().check("trace_smoke.json", &text);
}

/// The metric registry folded into a probed sweep is golden-stable and
/// — because per-cell sets are merged in cell generation order — does
/// not depend on the worker count.
#[test]
fn sweep_metrics_match_golden_and_are_jobs_independent() {
    let options = |jobs| SweepOptions {
        jobs,
        metrics: true,
        ..Default::default()
    };
    let serial = runner::run(Experiment::Tables11To13, &options(1));
    let parallel = runner::run(Experiment::Tables11To13, &options(4));

    assert_eq!(
        results_only(&serial.to_json().to_pretty()),
        results_only(&parallel.to_json().to_pretty()),
        "probed sweep diverged between 1 and 4 workers"
    );

    let metrics = serial.metrics.as_ref().expect("metrics requested");
    assert_eq!(
        metrics.to_json().to_compact(),
        parallel
            .metrics
            .as_ref()
            .expect("metrics requested")
            .to_json()
            .to_compact()
    );
    golden().check("metrics_tables11_13.json", &metrics.to_json().to_pretty());
}
