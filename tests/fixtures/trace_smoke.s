# Fixture for the trace-export golden test: a hot loop plus a callee,
# small enough that the full trace stays a small golden file while its
# compulsory misses still fire cache, refill, CLB, and memory events.
main:   li   $t0, 6
loop:   addiu $t0, $t0, -1
        jal  work
        bnez $t0, loop
        li   $v0, 10
        syscall
work:   addiu $t1, $t1, 3
        addiu $t1, $t1, 5
        jr   $ra
