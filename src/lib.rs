//! Umbrella crate.
