//! Quickstart: the whole CCRP pipeline on a small program.
//!
//! Assembles a MIPS program, runs it capturing a trace, compresses it
//! with the preselected code, verifies the image, and compares the
//! standard processor against the CCRP on two memory systems.
//!
//! Run with: `cargo run --release --example quickstart`

use ccrp::CompressedImage;
use ccrp_asm::assemble;
use ccrp_compress::BlockAlignment;
use ccrp_emu::{Machine, ProgramTrace};
use ccrp_sim::{MemoryModel, Simulation, SystemConfig};
use ccrp_workloads::preselected_code;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A small embedded-style program: sum of the first 1000 squares,
    //    computed in a loop (prints 333833500).
    let image = assemble(
        "
        main:
            li   $t0, 1000          # n
            li   $t1, 0             # i
            li   $t2, 0             # acc
        loop:
            addiu $t1, $t1, 1
            mult $t1, $t1
            mflo $t3
            addu $t2, $t2, $t3
            bne  $t1, $t0, loop
            move $a0, $t2
            li   $v0, 1             # print_int
            syscall
            li   $v0, 10            # exit
            syscall
        ",
    )?;

    // 2. Execute it on the functional R2000 emulator, capturing the
    //    instruction-address trace the system simulator replays.
    let mut trace = ProgramTrace::new();
    let mut machine = Machine::new(&image);
    let summary = machine.run(&mut trace)?;
    println!("program output: {}", machine.output());
    println!("dynamic instructions: {}", summary.instructions);

    // 3. Compress the program with the corpus-trained preselected code.
    let code = preselected_code().clone();
    let compressed = CompressedImage::build(0, image.text_bytes(), code, BlockAlignment::Word)?;
    compressed.verify()?;
    println!(
        "stored size: {} -> {} bytes ({:.1}%, LAT included)",
        compressed.original_bytes(),
        compressed.total_stored_bytes(false),
        compressed.compression_ratio() * 100.0
    );

    // 4. Standard R2000 vs CCRP on the paper's memory models.
    for memory in [MemoryModel::Eprom, MemoryModel::BurstEprom] {
        let config = SystemConfig::new()
            .with_cache_bytes(256)
            .with_memory(memory);
        let result = Simulation::new(config).compare(&compressed, trace.iter())?;
        println!(
            "{:>12}: relative execution time {:.3} (miss rate {:.2}%, traffic {:.1}%)",
            memory.name(),
            result.relative_execution_time(),
            result.miss_rate() * 100.0,
            result.memory_traffic_ratio() * 100.0
        );
    }
    println!("\n< 1.0 means the CCRP is *faster* than the uncompressed processor.");
    Ok(())
}
