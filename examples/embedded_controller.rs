//! The paper's motivating scenario: an embedded controller (think disk
//! array or engine controller) whose EPROM cost the CCRP cuts.
//!
//! A command-dispatch firmware loop services a queue of requests through
//! a jump table — checksum, range check, scaling, logging — the shape of
//! real controller firmware. We measure the two things an embedded
//! designer buys with a CCRP: smaller instruction ROM and, on slow
//! EPROM, *better* performance.
//!
//! Run with: `cargo run --release --example embedded_controller`

use ccrp::CompressedImage;
use ccrp_asm::assemble;
use ccrp_compress::BlockAlignment;
use ccrp_emu::{Machine, ProgramTrace};
use ccrp_sim::{MemoryModel, Simulation, SystemConfig};
use ccrp_workloads::preselected_code;

const FIRMWARE: &str = r#"
        .equ QUEUE_LEN, 64

        .data
        .align 2
queue:  .space QUEUE_LEN*4          # request words: [cmd|payload]
log:    .space 256
        .align 2
logptr: .word 0

        .text
main:
        addiu $sp, $sp, -8
        sw    $ra, 4($sp)

        # fill the request queue from an LCG (models the host bus)
        la    $t0, queue
        li    $t1, 0
        li    $s0, 0xBEEF
fill:
        li    $t3, 69069
        mult  $s0, $t3
        mflo  $s0
        addiu $s0, $s0, 1
        sw    $s0, 0($t0)
        addiu $t0, $t0, 4
        addiu $t1, $t1, 1
        li    $t2, QUEUE_LEN
        blt   $t1, $t2, fill

        # service loop: 40 passes over the queue
        li    $s3, 0                # checksum of all service results
        li    $s4, 0                # pass counter
service:
        la    $s1, queue
        li    $s2, 0
next_req:
        lw    $a0, 0($s1)
        srl   $t0, $a0, 30          # top 2 bits select the handler
        sll   $t0, $t0, 2
        la    $t1, handlers
        addu  $t1, $t1, $t0
        lw    $t2, 0($t1)
        jalr  $t2
        addu  $s3, $s3, $v0
        addiu $s1, $s1, 4
        addiu $s2, $s2, 1
        li    $t3, QUEUE_LEN
        blt   $s2, $t3, next_req
        addiu $s4, $s4, 1
        li    $t3, 40
        blt   $s4, $t3, service

        move  $a0, $s3
        li    $v0, 1
        syscall
        lw    $ra, 4($sp)
        addiu $sp, $sp, 8
        li    $v0, 10
        syscall

# ---- handler 0: additive checksum over the payload bytes --------------
h_checksum:
        andi  $t0, $a0, 0xFF
        srl   $t1, $a0, 8
        andi  $t1, $t1, 0xFF
        addu  $t0, $t0, $t1
        srl   $t1, $a0, 16
        andi  $t1, $t1, 0xFF
        addu  $v0, $t0, $t1
        jr    $ra

# ---- handler 1: range check and clamp ---------------------------------
h_clamp:
        andi  $t0, $a0, 0x3FF
        li    $t1, 600
        slt   $t2, $t1, $t0
        beqz  $t2, clamp_ok
        move  $t0, $t1
clamp_ok:
        move  $v0, $t0
        jr    $ra

# ---- handler 2: fixed-point scale (x * 3/4) ----------------------------
h_scale:
        andi  $t0, $a0, 0xFFFF
        sll   $t1, $t0, 1
        addu  $t1, $t1, $t0         # 3x
        srl   $v0, $t1, 2           # /4
        jr    $ra

# ---- handler 3: log the low byte into a ring buffer --------------------
h_log:
        la    $t0, logptr
        lw    $t1, 0($t0)
        andi  $t2, $t1, 0xFF
        la    $t3, log
        addu  $t3, $t3, $t2
        sb    $a0, 0($t3)
        addiu $t1, $t1, 1
        sw    $t1, 0($t0)
        andi  $v0, $a0, 0xFF
        jr    $ra

        .align 2
handlers:
        .word h_checksum, h_clamp, h_scale, h_log
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let image = assemble(FIRMWARE)?;
    let mut trace = ProgramTrace::new();
    let mut machine = Machine::new(&image);
    machine.run(&mut trace)?;
    println!("firmware self-check: {}", machine.output());
    println!("dynamic instructions: {}", trace.len());

    let code = preselected_code().clone();
    let compressed = CompressedImage::build(0, image.text_bytes(), code, BlockAlignment::Word)?;
    compressed.verify()?;

    let rom_before = compressed.original_bytes();
    let rom_after = compressed.total_stored_bytes(false);
    println!("\ninstruction ROM: {rom_before} -> {rom_after} bytes");
    println!(
        "EPROM saved per unit: {} bytes ({:.1}% of the ROM)",
        rom_before - rom_after,
        (1.0 - compressed.compression_ratio()) * 100.0
    );

    println!("\nperformance with a 256-byte on-chip I-cache:");
    for memory in MemoryModel::ALL {
        let config = SystemConfig::new()
            .with_cache_bytes(256)
            .with_memory(memory);
        let result = Simulation::new(config).compare(&compressed, trace.iter())?;
        let verdict = if result.relative_execution_time() < 1.0 {
            "CCRP faster"
        } else {
            "CCRP slower"
        };
        println!(
            "{:>12}: relative time {:.3}  ({verdict}; traffic {:.1}%)",
            memory.name(),
            result.relative_execution_time(),
            result.memory_traffic_ratio() * 100.0
        );
    }
    println!(
        "\nThe paper's pitch in one line: on the cheap EPROM an embedded design\n\
         actually uses, compressed code is both smaller *and* faster."
    );
    Ok(())
}
