//! Inspector: how a compressed program is laid out — per-line stored
//! sizes, bypasses, LAT entries, and a disassembly of the first lines,
//! each expanded through the actual decoder path.
//!
//! Run with: `cargo run --release --example inspect_image [workload]`
//! where `workload` is one of the paper's names (default `eightq`).

use ccrp::CompressedImage;
use ccrp_compress::BlockAlignment;
use ccrp_isa::disassemble_word;
use ccrp_workloads::{preselected_code, TracedWorkload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let wanted = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "eightq".to_string());
    let workload = TracedWorkload::ALL
        .iter()
        .copied()
        .find(|w| w.name().eq_ignore_ascii_case(&wanted))
        .ok_or_else(|| format!("unknown workload `{wanted}`"))?;

    let built = workload.build()?;
    let code = preselected_code().clone();
    let image = CompressedImage::build(0, &built.text, code, BlockAlignment::Word)?;
    image.verify()?;

    println!(
        "{}: {} bytes of text, {} cache lines",
        built.name,
        image.original_bytes(),
        image.line_count()
    );
    println!(
        "stored: {} bytes of blocks + {} bytes of LAT at {:#x} = {:.1}% of original",
        image.compressed_code_bytes(),
        image.lat().storage_bytes(),
        image.lat_base(),
        image.compression_ratio() * 100.0
    );
    println!(
        "bypassed (incompressible) lines: {}/{}",
        image.bypass_count(),
        image.line_count()
    );

    println!("\nfirst LAT entries (base + eight 5-bit length records):");
    for (i, entry) in image.lat().iter().take(4).enumerate() {
        let lengths: Vec<String> = (0..8)
            .map(|b| format!("{:>2}", entry.block_length(b)))
            .collect();
        println!(
            "  entry {i}: base {:#08x}  lengths {}",
            entry.base(),
            lengths.join(" ")
        );
    }

    println!("\nline map (stored bytes per 32-byte line, * = bypass):");
    for (i, chunk_start) in (0..image.line_count().min(128)).step_by(16).enumerate() {
        let mut row = format!("  {:#06x}: ", chunk_start * 32);
        for line in chunk_start..(chunk_start + 16).min(image.line_count()) {
            let loc = image.locate(line as u32 * 32)?;
            row += &format!(
                "{}{:>2} ",
                if loc.bypass { '*' } else { ' ' },
                loc.stored_len
            );
        }
        println!("{row}");
        let _ = i;
    }

    println!("\nfirst two cache lines, expanded through the decoder and disassembled:");
    for line in 0..2 {
        let addr = line * 32;
        let expanded = image.expand_line(addr)?;
        let loc = image.locate(addr)?;
        println!(
            "  line at {:#06x}: stored {} bytes at physical {:#06x}{}",
            addr,
            loc.stored_len,
            loc.physical,
            if loc.bypass { " (bypass)" } else { "" }
        );
        for (k, word_bytes) in expanded.chunks_exact(4).enumerate() {
            let word =
                u32::from_le_bytes([word_bytes[0], word_bytes[1], word_bytes[2], word_bytes[3]]);
            println!(
                "    {:#06x}: {:08x}  {}",
                addr + k as u32 * 4,
                word,
                disassemble_word(word)
            );
        }
    }
    Ok(())
}
