//! The purchasing-department view: what the CCRP saves in EPROM chips.
//!
//! §1's economics — "the instruction memory can be a major component of
//! total system cost" — made concrete: for every paper workload, the
//! ROM bytes before/after compression and the number of 27C256 (32 KB)
//! EPROM parts a production unit needs, with the standard vs compact
//! LAT encodings side by side.
//!
//! Run with: `cargo run --release --example rom_cost_explorer`

use ccrp::{CompactLatEntry, CompressedImage, COMPACT_ENTRY_BYTES};
use ccrp_compress::BlockAlignment;
use ccrp_workloads::{preselected_code, TracedWorkload};

const EPROM_CHIP_BYTES: u32 = 32 * 1024; // a 27C256

fn chips(bytes: u32) -> u32 {
    bytes.div_ceil(EPROM_CHIP_BYTES)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let code = preselected_code().clone();
    println!(
        "{:>12} {:>9} {:>16} {:>14} {:>12}",
        "workload", "original", "stored (std LAT)", "(compact LAT)", "27C256 parts"
    );
    let mut total_before = 0u32;
    let mut total_after = 0u32;
    for wl in TracedWorkload::ALL {
        let w = wl.build()?;
        let image = CompressedImage::build(0, &w.text, code.clone(), BlockAlignment::Word)?;
        let compact_lat: u32 = image
            .lat()
            .iter()
            .map(|e| {
                CompactLatEntry::from_standard(e).expect("word-aligned image");
                COMPACT_ENTRY_BYTES as u32
            })
            .sum();
        let stored = image.total_stored_bytes(false);
        let stored_compact = image.compressed_code_bytes() + compact_lat;
        total_before += image.original_bytes();
        total_after += stored;
        println!(
            "{:>12} {:>9} {:>9} ({:4.1}%) {:>8} ({:4.1}%) {:>5} -> {}",
            w.name,
            image.original_bytes(),
            stored,
            f64::from(stored) / f64::from(image.original_bytes()) * 100.0,
            stored_compact,
            f64::from(stored_compact) / f64::from(image.original_bytes()) * 100.0,
            chips(image.original_bytes()),
            chips(stored)
        );
    }
    println!(
        "\nsuite total: {total_before} -> {total_after} bytes; \
         {} EPROM parts -> {} per unit",
        chips(total_before),
        chips(total_after)
    );
    println!(
        "every part saved is saved on *each* production unit — the paper's\n\
         cost argument for compressed code in embedded systems."
    );
    Ok(())
}
