//! Diagnostic sweep: miss rate and relative execution time for every
//! traced workload across the paper's cache sizes and memory models.
//! Used to calibrate the kernels against Tables 1–8.

use ccrp::CompressedImage;
use ccrp_compress::BlockAlignment;
use ccrp_sim::{MemoryModel, Simulation, SystemConfig};
use ccrp_workloads::{preselected_code, TracedWorkload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let code = preselected_code().clone();
    for wl in TracedWorkload::ALL {
        let w = wl.build()?;
        let image = CompressedImage::build(0, &w.text, code.clone(), BlockAlignment::Word)?;
        println!(
            "\n{} — {} dynamic instrs, {} data accesses, text {} B, compressed {:.1}%",
            w.name,
            w.trace.len(),
            w.trace.data_accesses(),
            w.text.len(),
            image.compression_ratio() * 100.0
        );
        println!(
            "{:>6} {:>8} {:>8} {:>8} {:>8}",
            "cache", "miss%", "EPROM", "Burst", "traffic"
        );
        for cache_bytes in [256u32, 512, 1024, 2048, 4096] {
            let mut row = format!("{cache_bytes:>6}");
            #[allow(unused_assignments)]
            let mut miss = 0.0;
            let mut traffic = 0.0;
            for memory in [MemoryModel::Eprom, MemoryModel::BurstEprom] {
                let config = SystemConfig::new()
                    .with_cache_bytes(cache_bytes)
                    .with_memory(memory);
                let cmp = Simulation::new(config).compare(&image, w.trace.iter())?;
                miss = cmp.miss_rate();
                traffic = cmp.memory_traffic_ratio();
                if memory == MemoryModel::Eprom {
                    row += &format!(
                        " {:>8.2} {:>8.3}",
                        miss * 100.0,
                        cmp.relative_execution_time()
                    );
                } else {
                    row += &format!(" {:>8.3}", cmp.relative_execution_time());
                }
            }
            println!("{row} {:>7.1}%", traffic * 100.0);
        }
    }
    Ok(())
}
