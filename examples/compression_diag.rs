//! Diagnostic: per-program compression under the four Figure-5 methods,
//! plus byte entropies of kernels vs synthesized filler.

use ccrp_compress::{lzw, ByteCode, ByteHistogram};
use ccrp_workloads::{figure5_corpus, preselected_code, TracedWorkload};

fn main() {
    println!(
        "{:>12} {:>8} {:>9} {:>8} {:>8} {:>8} {:>8}",
        "program", "bytes", "entropy", "lzw%", "trad%", "bound%", "presel%"
    );
    for p in figure5_corpus() {
        let h = ByteHistogram::of(&p.text);
        let lzw_pct = lzw::compress(&p.text).len() as f64 / p.text.len() as f64 * 100.0;
        let trad = ByteCode::traditional(&h).unwrap();
        let bound = ByteCode::bounded(&h).unwrap();
        let pre = preselected_code();
        let pct = |c: &ByteCode| c.encoded_bits(&p.text) as f64 / (p.text.len() * 8) as f64 * 100.0;
        println!(
            "{:>12} {:>8} {:>9.3} {:>8.1} {:>8.1} {:>8.1} {:>8.1}",
            p.name,
            p.text.len(),
            h.entropy_bits(),
            lzw_pct,
            pct(&trad),
            pct(&bound),
            pct(pre)
        );
    }
    // Byte-level mismatch: top kernel bytes vs their preselected code length.
    {
        let image = TracedWorkload::Matrix25A.assemble_kernel().unwrap();
        let h = ByteHistogram::of(image.text_bytes());
        let mut by_count: Vec<(u8, u64)> =
            (0u16..256).map(|b| (b as u8, h.count(b as u8))).collect();
        by_count.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        let pre = preselected_code();
        println!("\nmatrix25A kernel top bytes (count, presel code len):");
        for &(b, c) in by_count.iter().take(16) {
            println!("  {b:#04x}: {c:>5}  len {}", pre.length_of(b));
        }
    }
    println!("\nkernel-only entropies and preselected bits/byte:");
    for wl in TracedWorkload::ALL {
        let image = wl.assemble_kernel().unwrap();
        let h = ByteHistogram::of(image.text_bytes());
        let pre = preselected_code();
        let bits = pre.encoded_bits(image.text_bytes()) as f64 / image.text_bytes().len() as f64;
        println!(
            "{:>12} {:>8} entropy {:>6.3} presel {:>6.3} bits/byte",
            wl.name(),
            image.text_bytes().len(),
            h.entropy_bits(),
            bits
        );
    }
}

#[allow(dead_code)]
fn dummy() {}
