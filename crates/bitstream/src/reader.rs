use std::error::Error;
use std::fmt;

/// Error returned when a [`BitReader`] runs past the end of its input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadBitsError {
    /// Bit position at which the read was attempted.
    pub at_bit: u64,
    /// Number of bits requested.
    pub requested: u32,
    /// Number of bits available in the stream.
    pub available: u64,
}

impl fmt::Display for ReadBitsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bit stream exhausted: requested {} bits at bit {}, only {} bits total",
            self.requested, self.at_bit, self.available
        )
    }
}

impl Error for ReadBitsError {}

/// An MSB-first bit cursor over a byte slice.
///
/// The mirror image of [`BitWriter`](crate::BitWriter): the first bit read
/// is bit 7 of byte 0.
///
/// # Examples
///
/// ```
/// use ccrp_bitstream::BitReader;
///
/// let mut r = BitReader::new(&[0b1011_0001]);
/// assert_eq!(r.read_bits(4).unwrap(), 0b1011);
/// assert_eq!(r.bit_pos(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    bit_pos: u64,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`, positioned at bit 0.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, bit_pos: 0 }
    }

    /// Current position in bits from the start of the stream.
    pub fn bit_pos(&self) -> u64 {
        self.bit_pos
    }

    /// Total number of bits in the underlying slice.
    pub fn bit_len(&self) -> u64 {
        self.bytes.len() as u64 * 8
    }

    /// Number of bits left to read.
    pub fn remaining(&self) -> u64 {
        self.bit_len() - self.bit_pos
    }

    /// Reads one bit.
    ///
    /// # Errors
    ///
    /// Returns [`ReadBitsError`] if the stream is exhausted.
    pub fn read_bit(&mut self) -> Result<bool, ReadBitsError> {
        if self.bit_pos >= self.bit_len() {
            return Err(ReadBitsError {
                at_bit: self.bit_pos,
                requested: 1,
                available: self.bit_len(),
            });
        }
        let byte = self.bytes[(self.bit_pos / 8) as usize];
        let shift = 7 - (self.bit_pos % 8) as u32;
        self.bit_pos += 1;
        Ok((byte >> shift) & 1 == 1)
    }

    /// Reads `count` bits (1..=32), returning them right-aligned.
    ///
    /// # Errors
    ///
    /// Returns [`ReadBitsError`] if fewer than `count` bits remain; the
    /// reader position is unchanged on error.
    ///
    /// # Panics
    ///
    /// Panics if `count` is 0 or greater than 32.
    pub fn read_bits(&mut self, count: u32) -> Result<u32, ReadBitsError> {
        assert!((1..=32).contains(&count), "bit count {count} out of range");
        if self.remaining() < u64::from(count) {
            return Err(ReadBitsError {
                at_bit: self.bit_pos,
                requested: count,
                available: self.bit_len(),
            });
        }
        let mut value = 0u32;
        for _ in 0..count {
            value = (value << 1) | u32::from(self.read_bit().expect("length checked"));
        }
        Ok(value)
    }

    /// Skips forward `count` bits.
    ///
    /// # Errors
    ///
    /// Returns [`ReadBitsError`] if fewer than `count` bits remain.
    pub fn skip(&mut self, count: u64) -> Result<(), ReadBitsError> {
        if self.remaining() < count {
            return Err(ReadBitsError {
                at_bit: self.bit_pos,
                requested: count.min(u64::from(u32::MAX)) as u32,
                available: self.bit_len(),
            });
        }
        self.bit_pos += count;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_msb_first() {
        let mut r = BitReader::new(&[0b1000_0001, 0xFF]);
        assert!(r.read_bit().unwrap());
        for _ in 0..6 {
            assert!(!r.read_bit().unwrap());
        }
        assert!(r.read_bit().unwrap());
        assert_eq!(r.read_bits(8).unwrap(), 0xFF);
    }

    #[test]
    fn error_reports_positions() {
        let mut r = BitReader::new(&[0xAA]);
        r.read_bits(6).unwrap();
        let err = r.read_bits(4).unwrap_err();
        assert_eq!(err.at_bit, 6);
        assert_eq!(err.requested, 4);
        assert_eq!(err.available, 8);
        // Position unchanged after a failed read.
        assert_eq!(r.bit_pos(), 6);
        assert_eq!(r.read_bits(2).unwrap(), 0b10);
    }

    #[test]
    fn error_displays() {
        let err = ReadBitsError {
            at_bit: 6,
            requested: 4,
            available: 8,
        };
        let text = err.to_string();
        assert!(text.contains("requested 4 bits"));
    }

    #[test]
    fn skip_moves_cursor() {
        let mut r = BitReader::new(&[0x0F, 0xF0]);
        r.skip(4).unwrap();
        assert_eq!(r.read_bits(8).unwrap(), 0xFF);
        assert!(r.skip(5).is_err());
        r.skip(4).unwrap();
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn read_full_word() {
        let mut r = BitReader::new(&[0xDE, 0xAD, 0xBE, 0xEF]);
        assert_eq!(r.read_bits(32).unwrap(), 0xDEAD_BEEF);
    }
}
