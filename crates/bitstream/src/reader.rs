use std::error::Error;
use std::fmt;

/// Error returned when a [`BitReader`] runs past the end of its input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadBitsError {
    /// Bit position at which the read was attempted.
    pub at_bit: u64,
    /// Number of bits requested.
    pub requested: u32,
    /// Number of bits available in the stream.
    pub available: u64,
}

impl fmt::Display for ReadBitsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bit stream exhausted: requested {} bits at bit {}, only {} bits total",
            self.requested, self.at_bit, self.available
        )
    }
}

impl Error for ReadBitsError {}

/// An MSB-first bit cursor over a byte slice.
///
/// The mirror image of [`BitWriter`](crate::BitWriter): the first bit read
/// is bit 7 of byte 0.
///
/// # Examples
///
/// ```
/// use ccrp_bitstream::BitReader;
///
/// let mut r = BitReader::new(&[0b1011_0001]);
/// assert_eq!(r.read_bits(4).unwrap(), 0b1011);
/// assert_eq!(r.bit_pos(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    bit_pos: u64,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`, positioned at bit 0.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, bit_pos: 0 }
    }

    /// Current position in bits from the start of the stream.
    pub fn bit_pos(&self) -> u64 {
        self.bit_pos
    }

    /// Total number of bits in the underlying slice.
    pub fn bit_len(&self) -> u64 {
        self.bytes.len() as u64 * 8
    }

    /// Number of bits left to read.
    pub fn remaining(&self) -> u64 {
        self.bit_len() - self.bit_pos
    }

    /// Reads one bit.
    ///
    /// # Errors
    ///
    /// Returns [`ReadBitsError`] if the stream is exhausted.
    pub fn read_bit(&mut self) -> Result<bool, ReadBitsError> {
        if self.bit_pos >= self.bit_len() {
            return Err(ReadBitsError {
                at_bit: self.bit_pos,
                requested: 1,
                available: self.bit_len(),
            });
        }
        let byte = self.bytes[(self.bit_pos / 8) as usize];
        let shift = 7 - (self.bit_pos % 8) as u32;
        self.bit_pos += 1;
        Ok((byte >> shift) & 1 == 1)
    }

    /// Reads `count` bits (1..=32), returning them right-aligned.
    ///
    /// # Errors
    ///
    /// Returns [`ReadBitsError`] if fewer than `count` bits remain; the
    /// reader position is unchanged on error.
    ///
    /// # Panics
    ///
    /// Panics if `count` is 0 or greater than 32.
    pub fn read_bits(&mut self, count: u32) -> Result<u32, ReadBitsError> {
        // panic-ok: documented contract — counts come from code tables, not input.
        assert!((1..=32).contains(&count), "bit count {count} out of range");
        if self.remaining() < u64::from(count) {
            return Err(ReadBitsError {
                at_bit: self.bit_pos,
                requested: count,
                available: self.bit_len(),
            });
        }
        let value = self.peek_bits(count);
        self.bit_pos += u64::from(count);
        Ok(value)
    }

    /// Returns the next `count` bits (1..=32) right-aligned without
    /// advancing the cursor, as if the stream were extended with zero
    /// bits past its end.
    ///
    /// This is the multi-bit probe a table-driven decoder needs: it can
    /// inspect a full lookup window near the end of the stream and only
    /// [`consume_bits`](Self::consume_bits) the bits a matched symbol
    /// actually uses. Callers that must distinguish real bits from
    /// padding check [`remaining`](Self::remaining) themselves.
    ///
    /// # Panics
    ///
    /// Panics if `count` is 0 or greater than 32.
    pub fn peek_bits(&self, count: u32) -> u32 {
        // panic-ok: documented contract — counts come from code tables, not input.
        assert!((1..=32).contains(&count), "bit count {count} out of range");
        let byte_index = (self.bit_pos / 8) as usize;
        let bit_in_byte = (self.bit_pos % 8) as u32;
        if let Some(window) = self.bytes.get(byte_index..byte_index + 5) {
            // Away from the tail, load the 5 bytes any mid-byte 32-bit
            // window can touch in one go — this is the decoder's hot
            // path, hit for every symbol of every non-final line byte.
            let mut word = [0u8; 8];
            word[..5].copy_from_slice(window);
            let acc = u64::from_be_bytes(word);
            return ((acc << bit_in_byte) >> (64 - count)) as u32;
        }
        // Tail path: gather the touched bytes one at a time,
        // zero-padding past the end of the slice.
        let touched = (bit_in_byte + count).div_ceil(8) as usize;
        let mut acc = 0u64;
        for offset in 0..touched {
            let byte = self.bytes.get(byte_index + offset).copied().unwrap_or(0);
            acc = (acc << 8) | u64::from(byte);
        }
        let shift = touched as u32 * 8 - bit_in_byte - count;
        ((acc >> shift) & (u64::MAX >> (64 - count))) as u32
    }

    /// Advances the cursor past `count` bits previously examined with
    /// [`peek_bits`](Self::peek_bits).
    ///
    /// # Errors
    ///
    /// Returns [`ReadBitsError`] if fewer than `count` bits remain; the
    /// reader position is unchanged on error.
    pub fn consume_bits(&mut self, count: u32) -> Result<(), ReadBitsError> {
        self.skip(u64::from(count))
    }

    /// Skips forward `count` bits.
    ///
    /// # Errors
    ///
    /// Returns [`ReadBitsError`] if fewer than `count` bits remain.
    pub fn skip(&mut self, count: u64) -> Result<(), ReadBitsError> {
        if self.remaining() < count {
            return Err(ReadBitsError {
                at_bit: self.bit_pos,
                requested: count.min(u64::from(u32::MAX)) as u32,
                available: self.bit_len(),
            });
        }
        self.bit_pos += count;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_msb_first() {
        let mut r = BitReader::new(&[0b1000_0001, 0xFF]);
        assert!(r.read_bit().unwrap());
        for _ in 0..6 {
            assert!(!r.read_bit().unwrap());
        }
        assert!(r.read_bit().unwrap());
        assert_eq!(r.read_bits(8).unwrap(), 0xFF);
    }

    #[test]
    fn error_reports_positions() {
        let mut r = BitReader::new(&[0xAA]);
        r.read_bits(6).unwrap();
        let err = r.read_bits(4).unwrap_err();
        assert_eq!(err.at_bit, 6);
        assert_eq!(err.requested, 4);
        assert_eq!(err.available, 8);
        // Position unchanged after a failed read.
        assert_eq!(r.bit_pos(), 6);
        assert_eq!(r.read_bits(2).unwrap(), 0b10);
    }

    #[test]
    fn error_displays() {
        let err = ReadBitsError {
            at_bit: 6,
            requested: 4,
            available: 8,
        };
        let text = err.to_string();
        assert!(text.contains("requested 4 bits"));
    }

    #[test]
    fn skip_moves_cursor() {
        let mut r = BitReader::new(&[0x0F, 0xF0]);
        r.skip(4).unwrap();
        assert_eq!(r.read_bits(8).unwrap(), 0xFF);
        assert!(r.skip(5).is_err());
        r.skip(4).unwrap();
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn read_full_word() {
        let mut r = BitReader::new(&[0xDE, 0xAD, 0xBE, 0xEF]);
        assert_eq!(r.read_bits(32).unwrap(), 0xDEAD_BEEF);
    }

    #[test]
    fn peek_matches_read_without_advancing() {
        let bytes = [0xA5, 0x3C, 0x0F, 0xF0, 0x81];
        for start in 0..8u64 {
            for count in 1..=32u32 {
                let mut r = BitReader::new(&bytes);
                r.skip(start).unwrap();
                let peeked = r.peek_bits(count);
                assert_eq!(r.bit_pos(), start, "peek must not move the cursor");
                if u64::from(count) <= r.remaining() {
                    assert_eq!(peeked, r.read_bits(count).unwrap(), "{start}+{count}");
                }
            }
        }
    }

    #[test]
    fn peek_zero_pads_past_the_end() {
        let mut r = BitReader::new(&[0xFF]);
        r.skip(4).unwrap();
        // 4 real one-bits, then padding zeros.
        assert_eq!(r.peek_bits(8), 0b1111_0000);
        assert_eq!(r.peek_bits(32), 0b1111 << 28);
        // A fully exhausted reader peeks all zeros.
        r.skip(4).unwrap();
        assert_eq!(r.peek_bits(16), 0);
    }

    #[test]
    fn consume_advances_or_rejects() {
        let mut r = BitReader::new(&[0xAB, 0xCD]);
        r.consume_bits(12).unwrap();
        assert_eq!(r.bit_pos(), 12);
        let err = r.consume_bits(5).unwrap_err();
        assert_eq!(err.at_bit, 12);
        assert_eq!(r.bit_pos(), 12, "failed consume must not move");
        r.consume_bits(4).unwrap();
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn full_window_peek_at_every_offset() {
        // 32-bit windows spanning five bytes, checked against a naive
        // bit-by-bit reference.
        let bytes = [0x12, 0x34, 0x56, 0x78, 0x9A, 0xBC];
        for start in 0..16u64 {
            let mut reference = 0u32;
            for bit in 0..32u64 {
                let pos = start + bit;
                let real = if pos < 48 {
                    (bytes[(pos / 8) as usize] >> (7 - pos % 8)) & 1
                } else {
                    0
                };
                reference = (reference << 1) | u32::from(real);
            }
            let mut r = BitReader::new(&bytes);
            r.skip(start).unwrap();
            assert_eq!(r.peek_bits(32), reference, "offset {start}");
        }
    }
}
