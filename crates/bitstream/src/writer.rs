/// An MSB-first bit accumulator that grows a byte vector.
///
/// Bits are packed into bytes starting at the most significant bit, so the
/// first bit written becomes bit 7 of byte 0. The final byte is zero-padded
/// when the stream is not a whole number of bytes.
///
/// # Examples
///
/// ```
/// use ccrp_bitstream::BitWriter;
///
/// let mut w = BitWriter::new();
/// w.write_bit(true);
/// w.write_bits(0b01, 2);
/// assert_eq!(w.bit_len(), 3);
/// assert_eq!(w.into_bytes(), vec![0b1010_0000]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Number of valid bits in `partial`, 0..8.
    partial_bits: u32,
    /// Pending bits, left-aligned in the low `partial_bits` positions as a
    /// value (i.e. the next bit to emit is the MSB of the eventual byte).
    partial: u8,
    total_bits: u64,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty writer with room for `bytes` bytes.
    pub fn with_capacity(bytes: usize) -> Self {
        Self {
            bytes: Vec::with_capacity(bytes),
            ..Self::default()
        }
    }

    /// Appends a single bit.
    pub fn write_bit(&mut self, bit: bool) {
        self.partial = (self.partial << 1) | u8::from(bit);
        self.partial_bits += 1;
        self.total_bits += 1;
        if self.partial_bits == 8 {
            self.bytes.push(self.partial);
            self.partial = 0;
            self.partial_bits = 0;
        }
    }

    /// Appends the low `count` bits of `value`, most significant first.
    ///
    /// # Panics
    ///
    /// Panics if `count` is 0 or greater than 32, or if `value` has bits set
    /// above `count` (the caller is expected to mask).
    pub fn write_bits(&mut self, value: u32, count: u32) {
        // panic-ok: documented contract — counts come from code tables, not input.
        assert!((1..=32).contains(&count), "bit count {count} out of range");
        if count < 32 {
            // panic-ok: documented contract — callers mask before writing.
            assert!(
                value < (1u32 << count),
                "value {value:#x} wider than {count} bits"
            );
        }
        for i in (0..count).rev() {
            self.write_bit((value >> i) & 1 == 1);
        }
    }

    /// Appends a whole byte (8 bits).
    pub fn write_byte(&mut self, byte: u8) {
        self.write_bits(u32::from(byte), 8);
    }

    /// Total number of bits written so far.
    pub fn bit_len(&self) -> u64 {
        self.total_bits
    }

    /// Number of bytes the stream will occupy once finished (rounded up).
    pub fn byte_len(&self) -> usize {
        self.total_bits.div_ceil(8) as usize
    }

    /// Pads the final partial byte with zeros and returns the byte vector.
    pub fn into_bytes(mut self) -> Vec<u8> {
        if self.partial_bits > 0 {
            let byte = self.partial << (8 - self.partial_bits);
            self.bytes.push(byte);
        }
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_writer_is_empty() {
        let w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        assert_eq!(w.byte_len(), 0);
        assert!(w.into_bytes().is_empty());
    }

    #[test]
    fn partial_byte_is_left_aligned() {
        let mut w = BitWriter::new();
        w.write_bits(0b11, 2);
        assert_eq!(w.into_bytes(), vec![0b1100_0000]);
    }

    #[test]
    fn write_byte_matches_write_bits() {
        let mut a = BitWriter::new();
        a.write_byte(0xA7);
        let mut b = BitWriter::new();
        b.write_bits(0xA7, 8);
        assert_eq!(a.into_bytes(), b.into_bytes());
    }

    #[test]
    fn byte_len_rounds_up() {
        let mut w = BitWriter::new();
        w.write_bits(0x1FF, 9);
        assert_eq!(w.byte_len(), 2);
    }

    #[test]
    #[should_panic(expected = "wider than")]
    fn unmasked_value_panics() {
        let mut w = BitWriter::new();
        w.write_bits(0b100, 2);
    }

    #[test]
    fn full_width_write() {
        let mut w = BitWriter::new();
        w.write_bits(u32::MAX, 32);
        assert_eq!(w.into_bytes(), vec![0xFF; 4]);
    }
}
