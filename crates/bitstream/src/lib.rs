//! MSB-first bit-level I/O.
//!
//! The CCRP hardware decoder described by Wolfe & Chanin consumes a
//! compressed cache line as a stream of bits, most significant bit of each
//! byte first. This crate provides the [`BitWriter`] and [`BitReader`] that
//! the compression stack ([`ccrp-compress`]) and the refill-engine timing
//! model are built on.
//!
//! Bit order matters: a Huffman symbol written with [`BitWriter::write_bits`]
//! occupies the *high* bits of the next byte first, exactly as a shift
//! register fed from a byte-wide memory port would see them.
//!
//! # Examples
//!
//! ```
//! use ccrp_bitstream::{BitReader, BitWriter};
//!
//! let mut w = BitWriter::new();
//! w.write_bits(0b101, 3);
//! w.write_bits(0b0110, 4);
//! let bytes = w.into_bytes();
//! assert_eq!(bytes, vec![0b1010_1100]); // padded with zeros
//!
//! let mut r = BitReader::new(&bytes);
//! assert_eq!(r.read_bits(3).unwrap(), 0b101);
//! assert_eq!(r.read_bits(4).unwrap(), 0b0110);
//! ```
//!
//! [`ccrp-compress`]: https://example.invalid/ccrp

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod reader;
mod writer;

pub use reader::{BitReader, ReadBitsError};
pub use writer::BitWriter;

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_simple() {
        let mut w = BitWriter::new();
        w.write_bits(0x5, 3);
        w.write_bits(0xABCD, 16);
        w.write_bit(true);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0x5);
        assert_eq!(r.read_bits(16).unwrap(), 0xABCD);
        assert!(r.read_bit().unwrap());
    }

    proptest! {
        #[test]
        fn roundtrip_random(values in proptest::collection::vec((0u32..=u32::MAX, 1u32..=32), 0..200)) {
            let mut w = BitWriter::new();
            for &(v, n) in &values {
                let masked = if n == 32 { v } else { v & ((1u32 << n) - 1) };
                w.write_bits(masked, n);
            }
            let total_bits: u64 = values.iter().map(|&(_, n)| u64::from(n)).sum();
            prop_assert_eq!(w.bit_len(), total_bits);
            let bytes = w.into_bytes();
            prop_assert_eq!(bytes.len() as u64, total_bits.div_ceil(8));
            let mut r = BitReader::new(&bytes);
            for &(v, n) in &values {
                let masked = if n == 32 { v } else { v & ((1u32 << n) - 1) };
                prop_assert_eq!(r.read_bits(n).unwrap(), masked);
            }
        }

        #[test]
        fn reader_position_tracks_bits(bits in proptest::collection::vec(any::<bool>(), 0..100)) {
            let mut w = BitWriter::new();
            for &b in &bits {
                w.write_bit(b);
            }
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            for (i, &b) in bits.iter().enumerate() {
                prop_assert_eq!(r.bit_pos(), i as u64);
                prop_assert_eq!(r.read_bit().unwrap(), b);
            }
        }
    }
}
