//! Shared test utilities for the CCRP workspace.
//!
//! The workspace's golden-file tests all follow the same protocol:
//! render a deterministic report, compare it byte-for-byte against a
//! committed snapshot, and refresh the snapshot when the change is
//! intentional by re-running with `UPDATE_GOLDEN=1`. That
//! compare/refresh logic used to be copy-pasted into every golden test
//! file; this crate is its single home.
//!
//! The helpers here are test infrastructure: they assert by panicking,
//! exactly like `assert_eq!`, because their callers are `#[test]`
//! functions. They must never be used from library code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::{Path, PathBuf};

/// The environment variable that switches golden tests from *compare*
/// to *refresh* mode.
pub const UPDATE_GOLDEN_ENV: &str = "UPDATE_GOLDEN";

/// A directory of golden snapshot files plus the test invocation that
/// refreshes them (used in failure messages, e.g.
/// `"cargo test --test golden_reports"`).
#[derive(Debug, Clone)]
pub struct GoldenDir {
    dir: PathBuf,
    refresh_command: String,
}

impl GoldenDir {
    /// A golden directory at `dir`; `refresh_command` is the test
    /// invocation to suggest when a snapshot drifts.
    pub fn new(dir: impl Into<PathBuf>, refresh_command: impl Into<String>) -> GoldenDir {
        GoldenDir {
            dir: dir.into(),
            refresh_command: refresh_command.into(),
        }
    }

    /// The full path of snapshot `name`.
    pub fn path(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }

    /// Compares `rendered` against the committed snapshot `name`, or
    /// rewrites the snapshot when [`UPDATE_GOLDEN_ENV`] is set.
    ///
    /// # Panics
    ///
    /// Panics (the test-failure mechanism) when the snapshot is missing
    /// or does not match `rendered`, with a hint naming the refresh
    /// command. Also panics if the snapshot cannot be (re)written in
    /// refresh mode.
    pub fn check(&self, name: &str, rendered: &str) {
        let path = self.path(name);
        if std::env::var_os(UPDATE_GOLDEN_ENV).is_some() {
            if let Some(parent) = path.parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            // panic-ok: test helper; failing to write a snapshot must fail the test.
            std::fs::write(&path, rendered).expect("golden file writes");
            return;
        }
        let expected = read_or_hint(&path, &self.refresh_command);
        // panic-ok: test helper; mismatch is the test failure.
        assert!(
            rendered == expected,
            "{name} drifted from its snapshot; if the change is intended, \
             refresh with UPDATE_GOLDEN=1 {}",
            self.refresh_command
        );
    }
}

/// Reads a snapshot, panicking with a create/refresh hint when absent.
fn read_or_hint(path: &Path, refresh_command: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        // panic-ok: test helper; a missing snapshot must fail the test.
        panic!(
            "{}: {e}; run with UPDATE_GOLDEN=1 {refresh_command} to (re)create it",
            path.display()
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static COUNTER: AtomicU64 = AtomicU64::new(0);

    fn temp_dir() -> PathBuf {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("ccrp_testutil_{}_{n}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    #[test]
    fn matching_snapshot_passes() {
        let dir = temp_dir();
        std::fs::write(dir.join("ok.txt"), "hello\n").unwrap();
        let golden = GoldenDir::new(&dir, "cargo test");
        golden.check("ok.txt", "hello\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_snapshot_names_the_refresh_command() {
        let dir = temp_dir();
        let golden = GoldenDir::new(&dir, "cargo test --test example");
        let err = std::panic::catch_unwind(|| golden.check("absent.txt", "x"))
            .expect_err("missing snapshot must fail");
        let message = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(message.contains("UPDATE_GOLDEN=1 cargo test --test example"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn drifted_snapshot_fails() {
        let dir = temp_dir();
        std::fs::write(dir.join("drift.txt"), "old").unwrap();
        let golden = GoldenDir::new(&dir, "cargo test");
        assert!(std::panic::catch_unwind(|| golden.check("drift.txt", "new")).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
