//! The cross-ISA abstraction the rest of the suite is generic over.
//!
//! CCRP itself is ISA-blind: it compresses 32-byte cache lines of
//! little-endian code bytes and refills them on demand, so the
//! compression container, refill engine, and trace-driven timing models
//! never look inside an instruction. What *does* vary between
//! architectures is the front end — how wide an instruction is, how it
//! decodes, what the register file looks like — and that is exactly the
//! surface [`Isa`] captures. The MIPS R2000 path the paper measures is
//! one implementation ([`Mips`]); the RV32I/RV32C backend in
//! `ccrp-rv32` is another, and a new architecture is a new impl, not a
//! fork of the emulator and difftest stack.
//!
//! The trait deliberately works on **code bytes**, not pre-parsed
//! words: variable-length ISAs (RVC's 16-bit forms) cannot promise a
//! fixed word per instruction, so decoding starts from the low
//! halfword at the PC and [`Isa::instr_bytes`] says how far to look.
//!
//! # Examples
//!
//! ```
//! use ccrp_isa::{Isa, Mips};
//!
//! // MIPS is fixed-width: every instruction is 4 bytes, whatever the
//! // leading halfword says.
//! assert_eq!(Mips::instr_bytes(0xffff), 4);
//! assert_eq!(Mips::NAME, "mips-r2000");
//! assert_eq!(Mips::gpr_name(29), "$sp");
//!
//! // `addu $v0, $a0, $a1`, as little-endian code bytes.
//! let bytes = 0x00851021u32.to_le_bytes();
//! let (inst, len) = Mips::decode_bytes(&bytes).unwrap();
//! assert_eq!(len, 4);
//! assert_eq!(Mips::disassemble_bytes(&bytes), "addu $v0, $a0, $a1");
//! ```

use std::fmt;

use crate::{decode, disassemble_word, Instruction, IsaError};

/// An instruction-set architecture, as seen by the ISA-generic layers
/// (emulator front ends, the lockstep difftest driver, program
/// generators, and the cross-ISA benchmark campaigns).
///
/// Implementations describe *static* architecture facts; dynamic state
/// (register values, memory) lives in each backend's machine type.
pub trait Isa {
    /// Stable lower-case identifier, used in report JSON and filenames
    /// (e.g. `"mips-r2000"`, `"rv32i"`).
    const NAME: &'static str;

    /// Number of general-purpose registers the difftest compares.
    const GPR_COUNT: usize;

    /// The smallest instruction encoding, in bytes — the PC granularity
    /// of the architecture (4 for MIPS, 2 once RVC is in play).
    const MIN_INSTR_BYTES: u32;

    /// A decoded, field-validated instruction.
    type Instr: Clone + PartialEq + fmt::Debug;

    /// Why a byte sequence failed to decode.
    type DecodeError: fmt::Debug + fmt::Display;

    /// Length in bytes of the instruction whose **little-endian low
    /// halfword** is `low_halfword`. Fixed-width ISAs ignore the
    /// argument; RISC-V's length is encoded in its low two bits.
    fn instr_bytes(low_halfword: u16) -> u32;

    /// The conventional ABI name of GPR `index` (including any sigil,
    /// so difftest divergence reports read naturally).
    ///
    /// Implementations may panic for `index >= GPR_COUNT`; callers
    /// iterate `0..GPR_COUNT`.
    fn gpr_name(index: usize) -> &'static str;

    /// Decodes the instruction starting at `bytes[0]` (little-endian
    /// code bytes, at least [`instr_bytes`](Self::instr_bytes) long),
    /// returning it with its encoded length.
    fn decode_bytes(bytes: &[u8]) -> Result<(Self::Instr, u32), Self::DecodeError>;

    /// Human-readable form of the instruction at `bytes[0]`, falling
    /// back to a raw hex spelling for undecodable encodings (the
    /// difftest shows windows around arbitrary PCs, so this must not
    /// fail).
    fn disassemble_bytes(bytes: &[u8]) -> String;
}

/// The MIPS R2000 — the architecture the paper's experiments ran on.
///
/// A unit marker: the actual decode/disassembly lives in this crate's
/// long-standing free functions, which remain the primary API.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Mips;

/// Reads the little-endian u32 at the front of `bytes`, if present.
fn word_at(bytes: &[u8]) -> Option<u32> {
    let chunk: [u8; 4] = bytes.get(..4)?.try_into().ok()?;
    Some(u32::from_le_bytes(chunk))
}

impl Isa for Mips {
    const NAME: &'static str = "mips-r2000";
    const GPR_COUNT: usize = 32;
    const MIN_INSTR_BYTES: u32 = 4;

    type Instr = Instruction;
    type DecodeError = IsaError;

    fn instr_bytes(_low_halfword: u16) -> u32 {
        4
    }

    fn gpr_name(index: usize) -> &'static str {
        // panic-ok: caller contract — index < GPR_COUNT.
        MIPS_SIGILED_NAMES[index]
    }

    fn decode_bytes(bytes: &[u8]) -> Result<(Self::Instr, u32), Self::DecodeError> {
        let word = word_at(bytes).ok_or(IsaError::InvalidEncoding { word: 0 })?;
        Ok((decode(word)?, 4))
    }

    fn disassemble_bytes(bytes: &[u8]) -> String {
        match word_at(bytes) {
            Some(word) => disassemble_word(word),
            None => "<truncated>".to_string(),
        }
    }
}

/// [`ABI_NAMES`] with the `$` sigil MIPS disassembly uses, matching
/// `Reg`'s `Display` output byte for byte.
const MIPS_SIGILED_NAMES: [&str; 32] = [
    "$zero", "$at", "$v0", "$v1", "$a0", "$a1", "$a2", "$a3", "$t0", "$t1", "$t2", "$t3", "$t4",
    "$t5", "$t6", "$t7", "$s0", "$s1", "$s2", "$s3", "$s4", "$s5", "$s6", "$s7", "$t8", "$t9",
    "$k0", "$k1", "$gp", "$sp", "$fp", "$ra",
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Reg, ABI_NAMES};

    #[test]
    fn sigiled_names_match_reg_display() {
        for (i, reg) in Reg::all().enumerate() {
            assert_eq!(Mips::gpr_name(i), reg.to_string());
            assert_eq!(Mips::gpr_name(i), format!("${}", ABI_NAMES[i]));
        }
    }

    #[test]
    fn decode_bytes_matches_word_decode() {
        let word = 0x00851021u32; // addu $v0, $a0, $a1
        let (inst, len) = Mips::decode_bytes(&word.to_le_bytes()).unwrap();
        assert_eq!(len, 4);
        assert_eq!(inst, decode(word).unwrap());
        assert_eq!(
            Mips::disassemble_bytes(&word.to_le_bytes()),
            disassemble_word(word)
        );
    }

    #[test]
    fn truncated_bytes_are_rejected_not_panicked() {
        assert!(Mips::decode_bytes(&[0x21, 0x10]).is_err());
        assert_eq!(Mips::disassemble_bytes(&[0x21]), "<truncated>");
    }

    #[test]
    fn fixed_width() {
        for low in [0u16, 1, 2, 3, 0xffff] {
            assert_eq!(Mips::instr_bytes(low), 4);
        }
    }
}
