use std::fmt;
use std::str::FromStr;

use crate::error::IsaError;

/// A general-purpose register of the MIPS R2000 (`$0`–`$31`).
///
/// Register 0 is hardwired to zero. Values are validated at construction:
/// a `Reg` always names a real register.
///
/// # Examples
///
/// ```
/// use ccrp_isa::Reg;
///
/// let sp = Reg::SP;
/// assert_eq!(sp.number(), 29);
/// assert_eq!(sp.to_string(), "$sp");
/// assert_eq!("$t0".parse::<Reg>().unwrap(), Reg::T0);
/// assert_eq!("$8".parse::<Reg>().unwrap(), Reg::T0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

/// Conventional ABI names for the 32 GPRs, indexed by register number.
pub const ABI_NAMES: [&str; 32] = [
    "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3", "t0", "t1", "t2", "t3", "t4", "t5", "t6",
    "t7", "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "t8", "t9", "k0", "k1", "gp", "sp", "fp",
    "ra",
];

impl Reg {
    /// `$zero`, hardwired to 0.
    pub const ZERO: Reg = Reg(0);
    /// `$at`, assembler temporary.
    pub const AT: Reg = Reg(1);
    /// `$v0`, result register 0 / syscall number.
    pub const V0: Reg = Reg(2);
    /// `$v1`, result register 1.
    pub const V1: Reg = Reg(3);
    /// `$a0`, argument register 0.
    pub const A0: Reg = Reg(4);
    /// `$a1`, argument register 1.
    pub const A1: Reg = Reg(5);
    /// `$a2`, argument register 2.
    pub const A2: Reg = Reg(6);
    /// `$a3`, argument register 3.
    pub const A3: Reg = Reg(7);
    /// `$t0`, caller-saved temporary.
    pub const T0: Reg = Reg(8);
    /// `$t1`, caller-saved temporary.
    pub const T1: Reg = Reg(9);
    /// `$t2`, caller-saved temporary.
    pub const T2: Reg = Reg(10);
    /// `$t3`, caller-saved temporary.
    pub const T3: Reg = Reg(11);
    /// `$t4`, caller-saved temporary.
    pub const T4: Reg = Reg(12);
    /// `$t5`, caller-saved temporary.
    pub const T5: Reg = Reg(13);
    /// `$t6`, caller-saved temporary.
    pub const T6: Reg = Reg(14);
    /// `$t7`, caller-saved temporary.
    pub const T7: Reg = Reg(15);
    /// `$s0`, callee-saved register.
    pub const S0: Reg = Reg(16);
    /// `$s1`, callee-saved register.
    pub const S1: Reg = Reg(17);
    /// `$s2`, callee-saved register.
    pub const S2: Reg = Reg(18);
    /// `$s3`, callee-saved register.
    pub const S3: Reg = Reg(19);
    /// `$s4`, callee-saved register.
    pub const S4: Reg = Reg(20);
    /// `$s5`, callee-saved register.
    pub const S5: Reg = Reg(21);
    /// `$s6`, callee-saved register.
    pub const S6: Reg = Reg(22);
    /// `$s7`, callee-saved register.
    pub const S7: Reg = Reg(23);
    /// `$t8`, caller-saved temporary.
    pub const T8: Reg = Reg(24);
    /// `$t9`, caller-saved temporary.
    pub const T9: Reg = Reg(25);
    /// `$k0`, reserved for the kernel.
    pub const K0: Reg = Reg(26);
    /// `$k1`, reserved for the kernel.
    pub const K1: Reg = Reg(27);
    /// `$gp`, global pointer.
    pub const GP: Reg = Reg(28);
    /// `$sp`, stack pointer.
    pub const SP: Reg = Reg(29);
    /// `$fp`, frame pointer (also `$s8`).
    pub const FP: Reg = Reg(30);
    /// `$ra`, return address.
    pub const RA: Reg = Reg(31);

    /// The registers a code generator may clobber freely without
    /// breaking the ABI or the assembler: the caller-saved temporaries,
    /// argument, and result registers. Excludes `$at` (reserved for
    /// pseudo-instruction expansion), `$k0`/`$k1` (kernel), and the
    /// callee-saved / pointer registers.
    pub const CALLER_SAVED: [Reg; 16] = [
        Reg::V0,
        Reg::V1,
        Reg::A0,
        Reg::A1,
        Reg::A2,
        Reg::A3,
        Reg::T0,
        Reg::T1,
        Reg::T2,
        Reg::T3,
        Reg::T4,
        Reg::T5,
        Reg::T6,
        Reg::T7,
        Reg::T8,
        Reg::T9,
    ];

    /// Builds a register from its number.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::RegisterOutOfRange`] if `number > 31`.
    pub fn new(number: u8) -> Result<Reg, IsaError> {
        if number < 32 {
            Ok(Reg(number))
        } else {
            Err(IsaError::RegisterOutOfRange { number })
        }
    }

    /// Builds a register from the low 5 bits of an instruction field.
    pub fn from_field(field: u32) -> Reg {
        Reg((field & 0x1F) as u8)
    }

    /// The register number, 0..=31.
    pub fn number(self) -> u8 {
        self.0
    }

    /// The conventional ABI name, without the `$` sigil.
    pub fn abi_name(self) -> &'static str {
        ABI_NAMES[self.0 as usize]
    }

    /// Iterates over all 32 registers in numeric order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0u8..32).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${}", self.abi_name())
    }
}

impl FromStr for Reg {
    type Err = IsaError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let body = s.strip_prefix('$').unwrap_or(s);
        if let Ok(n) = body.parse::<u8>() {
            return Reg::new(n);
        }
        // `$s8` is an alias for `$fp` on MIPS.
        if body == "s8" {
            return Ok(Reg::FP);
        }
        ABI_NAMES
            .iter()
            .position(|&name| name == body)
            .map(|n| Reg(n as u8))
            .ok_or_else(|| IsaError::UnknownRegister {
                name: s.to_string(),
            })
    }
}

/// A floating-point register of coprocessor 1 (`$f0`–`$f31`).
///
/// Double-precision values occupy an even/odd register pair, addressed by
/// the even register, exactly as on the R2000's R2010 FPA.
///
/// # Examples
///
/// ```
/// use ccrp_isa::FpReg;
///
/// let f12 = FpReg::new(12).unwrap();
/// assert_eq!(f12.to_string(), "$f12");
/// assert_eq!("$f12".parse::<FpReg>().unwrap(), f12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FpReg(u8);

impl FpReg {
    /// Builds an FP register from its number.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::RegisterOutOfRange`] if `number > 31`.
    pub fn new(number: u8) -> Result<FpReg, IsaError> {
        if number < 32 {
            Ok(FpReg(number))
        } else {
            Err(IsaError::RegisterOutOfRange { number })
        }
    }

    /// Builds an FP register from the low 5 bits of an instruction field.
    pub fn from_field(field: u32) -> FpReg {
        FpReg((field & 0x1F) as u8)
    }

    /// The register number, 0..=31.
    pub fn number(self) -> u8 {
        self.0
    }

    /// Iterates over all 32 FP registers in numeric order.
    pub fn all() -> impl Iterator<Item = FpReg> {
        (0u8..32).map(FpReg)
    }
}

impl fmt::Display for FpReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "$f{}", self.0)
    }
}

impl FromStr for FpReg {
    type Err = IsaError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let body = s.strip_prefix('$').unwrap_or(s);
        body.strip_prefix('f')
            .and_then(|n| n.parse::<u8>().ok())
            .ok_or_else(|| IsaError::UnknownRegister {
                name: s.to_string(),
            })
            .and_then(FpReg::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_and_abi_names_agree() {
        for reg in Reg::all() {
            let by_num: Reg = format!("${}", reg.number()).parse().unwrap();
            let by_name: Reg = reg.to_string().parse().unwrap();
            assert_eq!(by_num, reg);
            assert_eq!(by_name, reg);
        }
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(Reg::new(32).is_err());
        assert!(FpReg::new(32).is_err());
        assert!("$32".parse::<Reg>().is_err());
        assert!("$f32".parse::<FpReg>().is_err());
        assert!("$bogus".parse::<Reg>().is_err());
    }

    #[test]
    fn s8_alias() {
        assert_eq!("$s8".parse::<Reg>().unwrap(), Reg::FP);
    }

    #[test]
    fn caller_saved_excludes_reserved_registers() {
        for reg in Reg::CALLER_SAVED {
            assert!(![Reg::ZERO, Reg::AT, Reg::K0, Reg::K1].contains(&reg));
            assert!(![Reg::GP, Reg::SP, Reg::FP, Reg::RA].contains(&reg));
            assert!(!(Reg::S0..=Reg::S7).contains(&reg));
        }
        let mut sorted = Reg::CALLER_SAVED.to_vec();
        sorted.dedup();
        assert_eq!(sorted.len(), Reg::CALLER_SAVED.len(), "no duplicates");
    }

    #[test]
    fn from_field_masks() {
        assert_eq!(Reg::from_field(0x3F).number(), 31);
        assert_eq!(FpReg::from_field(0x20).number(), 0);
    }

    #[test]
    fn fp_roundtrip() {
        for reg in FpReg::all() {
            assert_eq!(reg.to_string().parse::<FpReg>().unwrap(), reg);
        }
    }
}
