use crate::instr::Instruction;

const OP_SPECIAL: u32 = 0x00;
const OP_REGIMM: u32 = 0x01;
const OP_COP1: u32 = 0x11;
const OP_LWC1: u32 = 0x31;
const OP_SWC1: u32 = 0x39;

fn r_type(rs: u32, rt: u32, rd: u32, shamt: u32, funct: u32) -> u32 {
    (OP_SPECIAL << 26) | (rs << 21) | (rt << 16) | (rd << 11) | (shamt << 6) | funct
}

fn i_type(op: u32, rs: u32, rt: u32, imm: u16) -> u32 {
    (op << 26) | (rs << 21) | (rt << 16) | u32::from(imm)
}

impl Instruction {
    /// Encodes this instruction as its 32-bit R2000 machine word.
    ///
    /// Every constructible [`Instruction`] has a valid encoding, so this
    /// cannot fail. The inverse is [`decode`](crate::decode).
    ///
    /// # Examples
    ///
    /// ```
    /// use ccrp_isa::{Instruction, Reg};
    ///
    /// let jr_ra = Instruction::Jr { rs: Reg::RA };
    /// assert_eq!(jr_ra.encode(), 0x03E0_0008);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if a field value violates its documented range (`shamt > 31`,
    /// `code >= 2^20`, or a 26-bit jump `target` overflow); these are
    /// programmer errors, not data errors.
    pub fn encode(&self) -> u32 {
        match *self {
            Instruction::RAlu { op, rd, rs, rt } => r_type(
                rs.number().into(),
                rt.number().into(),
                rd.number().into(),
                0,
                op.funct(),
            ),
            Instruction::Shift { op, rd, rt, shamt } => {
                assert!(shamt < 32, "shift amount {shamt} out of range");
                r_type(
                    0,
                    rt.number().into(),
                    rd.number().into(),
                    shamt.into(),
                    op.funct_imm(),
                )
            }
            Instruction::ShiftV { op, rd, rt, rs } => r_type(
                rs.number().into(),
                rt.number().into(),
                rd.number().into(),
                0,
                op.funct_var(),
            ),
            Instruction::MultDiv { op, rs, rt } => {
                r_type(rs.number().into(), rt.number().into(), 0, 0, op.funct())
            }
            Instruction::HiLo { op, reg } => {
                if op.is_from() {
                    r_type(0, 0, reg.number().into(), 0, op.funct())
                } else {
                    r_type(reg.number().into(), 0, 0, 0, op.funct())
                }
            }
            Instruction::Jr { rs } => r_type(rs.number().into(), 0, 0, 0, 0x08),
            Instruction::Jalr { rd, rs } => {
                r_type(rs.number().into(), 0, rd.number().into(), 0, 0x09)
            }
            Instruction::Syscall { code } => {
                assert!(code < (1 << 20), "syscall code {code} out of range");
                (OP_SPECIAL << 26) | (code << 6) | 0x0C
            }
            Instruction::Break { code } => {
                assert!(code < (1 << 20), "break code {code} out of range");
                (OP_SPECIAL << 26) | (code << 6) | 0x0D
            }
            Instruction::IAlu { op, rt, rs, imm } => {
                i_type(op.opcode(), rs.number().into(), rt.number().into(), imm)
            }
            Instruction::Lui { rt, imm } => i_type(0x0F, 0, rt.number().into(), imm),
            Instruction::Branch { op, rs, rt, offset } => i_type(
                op.opcode(),
                rs.number().into(),
                rt.number().into(),
                offset as u16,
            ),
            Instruction::BranchZ { op, rs, offset } => {
                use crate::instr::BranchZOp::*;
                let (opcode, rt_field) = match op {
                    Blez => (0x06, 0x00),
                    Bgtz => (0x07, 0x00),
                    Bltz => (OP_REGIMM, 0x00),
                    Bgez => (OP_REGIMM, 0x01),
                    Bltzal => (OP_REGIMM, 0x10),
                    Bgezal => (OP_REGIMM, 0x11),
                };
                i_type(opcode, rs.number().into(), rt_field, offset as u16)
            }
            Instruction::Jump { link, target } => {
                assert!(target < (1 << 26), "jump target {target:#x} out of range");
                let op = if link { 0x03 } else { 0x02 };
                (op << 26) | target
            }
            Instruction::Mem {
                op,
                rt,
                base,
                offset,
            } => i_type(
                op.opcode(),
                base.number().into(),
                rt.number().into(),
                offset as u16,
            ),
            Instruction::FpMem {
                store,
                ft,
                base,
                offset,
            } => {
                let op = if store { OP_SWC1 } else { OP_LWC1 };
                i_type(op, base.number().into(), ft.number().into(), offset as u16)
            }
            Instruction::Cp1Move { op, rt, fs } => {
                (OP_COP1 << 26)
                    | (op.rs_field() << 21)
                    | (u32::from(rt.number()) << 16)
                    | (u32::from(fs.number()) << 11)
            }
            Instruction::FpArith {
                op,
                fmt,
                fd,
                fs,
                ft,
            } => {
                (OP_COP1 << 26)
                    | (fmt.field() << 21)
                    | (u32::from(ft.number()) << 16)
                    | (u32::from(fs.number()) << 11)
                    | (u32::from(fd.number()) << 6)
                    | op.funct()
            }
            Instruction::FpUnary { op, fmt, fd, fs } => {
                (OP_COP1 << 26)
                    | (fmt.field() << 21)
                    | (u32::from(fs.number()) << 11)
                    | (u32::from(fd.number()) << 6)
                    | op.funct()
            }
            Instruction::FpCvt { to, from, fd, fs } => {
                use crate::instr::FpFmt::*;
                assert!(to != from, "cvt with identical formats");
                let funct = match to {
                    Single => 0x20,
                    Double => 0x21,
                    Word => 0x24,
                };
                (OP_COP1 << 26)
                    | (from.field() << 21)
                    | (u32::from(fs.number()) << 11)
                    | (u32::from(fd.number()) << 6)
                    | funct
            }
            Instruction::FpCmp { cond, fmt, fs, ft } => {
                (OP_COP1 << 26)
                    | (fmt.field() << 21)
                    | (u32::from(ft.number()) << 16)
                    | (u32::from(fs.number()) << 11)
                    | cond.funct()
            }
            Instruction::Bc1 { on_true, offset } => {
                let rt = u32::from(on_true);
                (OP_COP1 << 26) | (0x08 << 21) | (rt << 16) | u32::from(offset as u16)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::instr::*;
    use crate::reg::{FpReg, Reg};

    #[test]
    fn known_encodings() {
        // Cross-checked against the MIPS R2000 manual encodings.
        let cases: Vec<(Instruction, u32)> = vec![
            (
                Instruction::RAlu {
                    op: AluOp::Addu,
                    rd: Reg::V0,
                    rs: Reg::A0,
                    rt: Reg::A1,
                },
                0x0085_1021,
            ),
            (
                Instruction::IAlu {
                    op: IAluOp::Addiu,
                    rt: Reg::SP,
                    rs: Reg::SP,
                    imm: 0xFFE0,
                },
                0x27BD_FFE0,
            ),
            (
                Instruction::Lui {
                    rt: Reg::GP,
                    imm: 0x1000,
                },
                0x3C1C_1000,
            ),
            (
                Instruction::Mem {
                    op: MemOp::Lw,
                    rt: Reg::RA,
                    base: Reg::SP,
                    offset: 28,
                },
                0x8FBF_001C,
            ),
            (
                Instruction::Mem {
                    op: MemOp::Sw,
                    rt: Reg::A0,
                    base: Reg::SP,
                    offset: 0,
                },
                0xAFA4_0000,
            ),
            (
                Instruction::Jump {
                    link: true,
                    target: 0x10_0040 >> 2,
                },
                0x0C04_0010,
            ),
            (Instruction::Jr { rs: Reg::RA }, 0x03E0_0008),
            (
                Instruction::Branch {
                    op: BranchOp::Bne,
                    rs: Reg::T0,
                    rt: Reg::ZERO,
                    offset: -3,
                },
                0x1500_FFFD,
            ),
            (Instruction::Syscall { code: 0 }, 0x0000_000C),
            (
                Instruction::FpArith {
                    op: FpOp::Mul,
                    fmt: FpFmt::Double,
                    fd: FpReg::new(4).unwrap(),
                    fs: FpReg::new(2).unwrap(),
                    ft: FpReg::new(0).unwrap(),
                },
                0x4620_1102,
            ),
        ];
        for (inst, word) in cases {
            assert_eq!(inst.encode(), word, "{inst:?}");
        }
    }

    #[test]
    #[should_panic(expected = "shift amount")]
    fn oversized_shamt_panics() {
        Instruction::Shift {
            op: ShiftOp::Sll,
            rd: Reg::T0,
            rt: Reg::T0,
            shamt: 32,
        }
        .encode();
    }

    #[test]
    #[should_panic(expected = "jump target")]
    fn oversized_target_panics() {
        Instruction::Jump {
            link: false,
            target: 1 << 26,
        }
        .encode();
    }
}
