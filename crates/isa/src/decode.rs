use crate::error::IsaError;
use crate::instr::*;
use crate::reg::{FpReg, Reg};

/// Raw bit-field view of a 32-bit instruction word.
///
/// Useful when only field extraction is needed (e.g. histogramming opcode
/// bytes) without full decoding.
///
/// # Examples
///
/// ```
/// use ccrp_isa::RawWord;
///
/// let raw = RawWord(0x27BD_FFE0); // addiu $sp, $sp, -32
/// assert_eq!(raw.opcode(), 0x09);
/// assert_eq!(raw.rs(), 29);
/// assert_eq!(raw.simm() , -32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RawWord(pub u32);

impl RawWord {
    /// Major opcode, bits 31..26.
    pub fn opcode(self) -> u32 {
        self.0 >> 26
    }
    /// `rs` field, bits 25..21.
    pub fn rs(self) -> u32 {
        (self.0 >> 21) & 0x1F
    }
    /// `rt` field, bits 20..16.
    pub fn rt(self) -> u32 {
        (self.0 >> 16) & 0x1F
    }
    /// `rd` field, bits 15..11.
    pub fn rd(self) -> u32 {
        (self.0 >> 11) & 0x1F
    }
    /// `shamt` field, bits 10..6.
    pub fn shamt(self) -> u32 {
        (self.0 >> 6) & 0x1F
    }
    /// `funct` field, bits 5..0.
    pub fn funct(self) -> u32 {
        self.0 & 0x3F
    }
    /// Unsigned 16-bit immediate.
    pub fn imm(self) -> u16 {
        (self.0 & 0xFFFF) as u16
    }
    /// Sign-extended 16-bit immediate.
    pub fn simm(self) -> i16 {
        self.imm() as i16
    }
    /// 26-bit jump target field.
    pub fn target(self) -> u32 {
        self.0 & 0x03FF_FFFF
    }
}

fn decode_special(raw: RawWord) -> Result<Instruction, IsaError> {
    let rs = Reg::from_field(raw.rs());
    let rt = Reg::from_field(raw.rt());
    let rd = Reg::from_field(raw.rd());
    let inst = match raw.funct() {
        0x00 => Instruction::Shift {
            op: ShiftOp::Sll,
            rd,
            rt,
            shamt: raw.shamt() as u8,
        },
        0x02 => Instruction::Shift {
            op: ShiftOp::Srl,
            rd,
            rt,
            shamt: raw.shamt() as u8,
        },
        0x03 => Instruction::Shift {
            op: ShiftOp::Sra,
            rd,
            rt,
            shamt: raw.shamt() as u8,
        },
        0x04 => Instruction::ShiftV {
            op: ShiftOp::Sll,
            rd,
            rt,
            rs,
        },
        0x06 => Instruction::ShiftV {
            op: ShiftOp::Srl,
            rd,
            rt,
            rs,
        },
        0x07 => Instruction::ShiftV {
            op: ShiftOp::Sra,
            rd,
            rt,
            rs,
        },
        0x08 => Instruction::Jr { rs },
        0x09 => Instruction::Jalr { rd, rs },
        0x0C => Instruction::Syscall {
            code: (raw.0 >> 6) & 0xF_FFFF,
        },
        0x0D => Instruction::Break {
            code: (raw.0 >> 6) & 0xF_FFFF,
        },
        0x10 => Instruction::HiLo {
            op: HiLoOp::Mfhi,
            reg: rd,
        },
        0x11 => Instruction::HiLo {
            op: HiLoOp::Mthi,
            reg: rs,
        },
        0x12 => Instruction::HiLo {
            op: HiLoOp::Mflo,
            reg: rd,
        },
        0x13 => Instruction::HiLo {
            op: HiLoOp::Mtlo,
            reg: rs,
        },
        0x18 => Instruction::MultDiv {
            op: MultDivOp::Mult,
            rs,
            rt,
        },
        0x19 => Instruction::MultDiv {
            op: MultDivOp::Multu,
            rs,
            rt,
        },
        0x1A => Instruction::MultDiv {
            op: MultDivOp::Div,
            rs,
            rt,
        },
        0x1B => Instruction::MultDiv {
            op: MultDivOp::Divu,
            rs,
            rt,
        },
        f => {
            if let Some(op) = AluOp::ALL.iter().copied().find(|op| op.funct() == f) {
                Instruction::RAlu { op, rd, rs, rt }
            } else {
                return Err(IsaError::InvalidEncoding { word: raw.0 });
            }
        }
    };
    Ok(inst)
}

fn decode_regimm(raw: RawWord) -> Result<Instruction, IsaError> {
    let rs = Reg::from_field(raw.rs());
    let op = match raw.rt() {
        0x00 => BranchZOp::Bltz,
        0x01 => BranchZOp::Bgez,
        0x10 => BranchZOp::Bltzal,
        0x11 => BranchZOp::Bgezal,
        _ => return Err(IsaError::InvalidEncoding { word: raw.0 }),
    };
    Ok(Instruction::BranchZ {
        op,
        rs,
        offset: raw.simm(),
    })
}

fn decode_cop1(raw: RawWord) -> Result<Instruction, IsaError> {
    let rs_field = raw.rs();
    // GPR <-> CP1 moves and condition branches are selected by the rs slot.
    if let Some(op) = Cp1MoveOp::ALL
        .iter()
        .copied()
        .find(|op| op.rs_field() == rs_field)
    {
        if raw.shamt() != 0 || raw.funct() != 0 {
            return Err(IsaError::InvalidEncoding { word: raw.0 });
        }
        return Ok(Instruction::Cp1Move {
            op,
            rt: Reg::from_field(raw.rt()),
            fs: FpReg::from_field(raw.rd()),
        });
    }
    if rs_field == 0x08 {
        let on_true = match raw.rt() {
            0 => false,
            1 => true,
            _ => return Err(IsaError::InvalidEncoding { word: raw.0 }),
        };
        return Ok(Instruction::Bc1 {
            on_true,
            offset: raw.simm(),
        });
    }
    let fmt = match rs_field {
        16 => FpFmt::Single,
        17 => FpFmt::Double,
        20 => FpFmt::Word,
        _ => return Err(IsaError::InvalidEncoding { word: raw.0 }),
    };
    let fd = FpReg::from_field(raw.shamt());
    let fs = FpReg::from_field(raw.rd());
    let ft = FpReg::from_field(raw.rt());
    let funct = raw.funct();
    if let Some(op) = FpOp::ALL.iter().copied().find(|op| op.funct() == funct) {
        if fmt == FpFmt::Word {
            return Err(IsaError::InvalidEncoding { word: raw.0 });
        }
        return Ok(Instruction::FpArith {
            op,
            fmt,
            fd,
            fs,
            ft,
        });
    }
    if let Some(op) = FpUnaryOp::ALL
        .iter()
        .copied()
        .find(|op| op.funct() == funct)
    {
        if fmt == FpFmt::Word || raw.rt() != 0 {
            return Err(IsaError::InvalidEncoding { word: raw.0 });
        }
        return Ok(Instruction::FpUnary { op, fmt, fd, fs });
    }
    if let Some(to) = match funct {
        0x20 => Some(FpFmt::Single),
        0x21 => Some(FpFmt::Double),
        0x24 => Some(FpFmt::Word),
        _ => None,
    } {
        if to == fmt || raw.rt() != 0 {
            return Err(IsaError::InvalidEncoding { word: raw.0 });
        }
        return Ok(Instruction::FpCvt {
            to,
            from: fmt,
            fd,
            fs,
        });
    }
    if let Some(cond) = FpCond::ALL.iter().copied().find(|c| c.funct() == funct) {
        if fmt == FpFmt::Word || raw.shamt() != 0 {
            return Err(IsaError::InvalidEncoding { word: raw.0 });
        }
        return Ok(Instruction::FpCmp { cond, fmt, fs, ft });
    }
    Err(IsaError::InvalidEncoding { word: raw.0 })
}

/// Decodes a 32-bit machine word into an [`Instruction`].
///
/// The inverse of [`Instruction::encode`]: for every supported word `w`,
/// `decode(w)?.encode() == w`.
///
/// # Errors
///
/// Returns [`IsaError::InvalidEncoding`] if the word does not encode a
/// supported user-mode R2000/R2010 instruction.
///
/// # Examples
///
/// ```
/// use ccrp_isa::{decode, Instruction, Reg};
///
/// assert_eq!(decode(0x03E0_0008)?, Instruction::Jr { rs: Reg::RA });
/// assert!(decode(0xFFFF_FFFF).is_err());
/// # Ok::<(), ccrp_isa::IsaError>(())
/// ```
pub fn decode(word: u32) -> Result<Instruction, IsaError> {
    let raw = RawWord(word);
    let rs = Reg::from_field(raw.rs());
    let rt = Reg::from_field(raw.rt());
    match raw.opcode() {
        0x00 => decode_special(raw),
        0x01 => decode_regimm(raw),
        0x02 => Ok(Instruction::Jump {
            link: false,
            target: raw.target(),
        }),
        0x03 => Ok(Instruction::Jump {
            link: true,
            target: raw.target(),
        }),
        0x04 => Ok(Instruction::Branch {
            op: BranchOp::Beq,
            rs,
            rt,
            offset: raw.simm(),
        }),
        0x05 => Ok(Instruction::Branch {
            op: BranchOp::Bne,
            rs,
            rt,
            offset: raw.simm(),
        }),
        0x06 if raw.rt() == 0 => Ok(Instruction::BranchZ {
            op: BranchZOp::Blez,
            rs,
            offset: raw.simm(),
        }),
        0x07 if raw.rt() == 0 => Ok(Instruction::BranchZ {
            op: BranchZOp::Bgtz,
            rs,
            offset: raw.simm(),
        }),
        0x0F if raw.rs() == 0 => Ok(Instruction::Lui { rt, imm: raw.imm() }),
        0x11 => decode_cop1(raw),
        0x31 => Ok(Instruction::FpMem {
            store: false,
            ft: FpReg::from_field(raw.rt()),
            base: rs,
            offset: raw.simm(),
        }),
        0x39 => Ok(Instruction::FpMem {
            store: true,
            ft: FpReg::from_field(raw.rt()),
            base: rs,
            offset: raw.simm(),
        }),
        op => {
            if let Some(mem) = MemOp::ALL.iter().copied().find(|m| m.opcode() == op) {
                Ok(Instruction::Mem {
                    op: mem,
                    rt,
                    base: rs,
                    offset: raw.simm(),
                })
            } else if let Some(ialu) = IAluOp::ALL.iter().copied().find(|i| i.opcode() == op) {
                Ok(Instruction::IAlu {
                    op: ialu,
                    rt,
                    rs,
                    imm: raw.imm(),
                })
            } else {
                Err(IsaError::InvalidEncoding { word })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_nop() {
        assert_eq!(decode(0).unwrap(), Instruction::NOP);
    }

    #[test]
    fn rejects_reserved_opcodes() {
        // opcode 0x3F is unused on the R2000
        assert!(decode(0xFC00_0000).is_err());
        // SPECIAL funct 0x3F is unused
        assert!(decode(0x0000_003F).is_err());
        // REGIMM rt=0x1F is unused
        assert!(decode(0x041F_0000).is_err());
    }

    #[test]
    fn decodes_fp_compare() {
        // c.lt.d $f2, $f4
        let word = 0x4624_103C;
        match decode(word).unwrap() {
            Instruction::FpCmp {
                cond: FpCond::Lt,
                fmt: FpFmt::Double,
                fs,
                ft,
            } => {
                assert_eq!(fs.number(), 2);
                assert_eq!(ft.number(), 4);
            }
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn rejects_cvt_same_format() {
        // cvt.s.s would be funct 0x20 with fmt=16
        let word = (0x11 << 26) | (16 << 21) | 0x20;
        assert!(decode(word).is_err());
    }

    #[test]
    fn rejects_word_format_arith() {
        // add.w is not a valid instruction
        let word = (0x11 << 26) | (20 << 21);
        assert!(decode(word).is_err());
    }

    #[test]
    fn raw_field_extraction() {
        let raw = RawWord(0x8FBF_001C); // lw $ra, 28($sp)
        assert_eq!(raw.opcode(), 0x23);
        assert_eq!(raw.rs(), 29);
        assert_eq!(raw.rt(), 31);
        assert_eq!(raw.simm(), 28);
    }
}
