use std::error::Error;
use std::fmt;

/// Errors produced while constructing, decoding, or encoding R2000
/// instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IsaError {
    /// A register number outside 0..=31 was supplied.
    RegisterOutOfRange {
        /// The offending register number.
        number: u8,
    },
    /// A register name that is neither numeric nor a known ABI name.
    UnknownRegister {
        /// The offending name, as written.
        name: String,
    },
    /// A 32-bit word that does not encode a supported R2000 instruction.
    InvalidEncoding {
        /// The undecodable instruction word.
        word: u32,
    },
    /// A field value too large for its encoding slot (e.g. a shift amount
    /// over 31 or a jump target outside the 26-bit region).
    FieldOutOfRange {
        /// Name of the instruction field.
        field: &'static str,
        /// The value that did not fit.
        value: i64,
    },
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::RegisterOutOfRange { number } => {
                write!(f, "register number {number} out of range 0..=31")
            }
            IsaError::UnknownRegister { name } => write!(f, "unknown register name `{name}`"),
            IsaError::InvalidEncoding { word } => {
                write!(f, "word {word:#010x} is not a supported R2000 instruction")
            }
            IsaError::FieldOutOfRange { field, value } => {
                write!(
                    f,
                    "value {value} does not fit in instruction field `{field}`"
                )
            }
        }
    }
}

impl Error for IsaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let msgs = [
            IsaError::RegisterOutOfRange { number: 40 }.to_string(),
            IsaError::UnknownRegister { name: "$xx".into() }.to_string(),
            IsaError::InvalidEncoding { word: 0xFFFF_FFFF }.to_string(),
            IsaError::FieldOutOfRange {
                field: "shamt",
                value: 99,
            }
            .to_string(),
        ];
        assert!(msgs[0].contains("40"));
        assert!(msgs[1].contains("$xx"));
        assert!(msgs[2].contains("0xffffffff"));
        assert!(msgs[3].contains("shamt"));
    }
}
