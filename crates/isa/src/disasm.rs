use std::fmt;

use crate::instr::*;

impl fmt::Display for Instruction {
    /// Formats the instruction in conventional MIPS assembler syntax.
    ///
    /// The output parses back through the `ccrp-asm` assembler, which the
    /// round-trip integration tests rely on. `nop` is rendered canonically
    /// rather than as `sll $zero, $zero, 0`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Instruction::NOP {
            return write!(f, "nop");
        }
        match *self {
            Instruction::RAlu { op, rd, rs, rt } => {
                write!(f, "{} {rd}, {rs}, {rt}", op.mnemonic())
            }
            Instruction::Shift { op, rd, rt, shamt } => {
                write!(f, "{} {rd}, {rt}, {shamt}", op.mnemonic_imm())
            }
            Instruction::ShiftV { op, rd, rt, rs } => {
                write!(f, "{} {rd}, {rt}, {rs}", op.mnemonic_var())
            }
            Instruction::MultDiv { op, rs, rt } => write!(f, "{} {rs}, {rt}", op.mnemonic()),
            Instruction::HiLo { op, reg } => write!(f, "{} {reg}", op.mnemonic()),
            Instruction::Jr { rs } => write!(f, "jr {rs}"),
            Instruction::Jalr { rd, rs } => write!(f, "jalr {rd}, {rs}"),
            Instruction::Syscall { code: 0 } => write!(f, "syscall"),
            Instruction::Syscall { code } => write!(f, "syscall {code}"),
            Instruction::Break { code: 0 } => write!(f, "break"),
            Instruction::Break { code } => write!(f, "break {code}"),
            Instruction::IAlu { op, rt, rs, imm } => {
                if op.sign_extends() {
                    write!(f, "{} {rt}, {rs}, {}", op.mnemonic(), imm as i16)
                } else {
                    write!(f, "{} {rt}, {rs}, {:#x}", op.mnemonic(), imm)
                }
            }
            Instruction::Lui { rt, imm } => write!(f, "lui {rt}, {imm:#x}"),
            Instruction::Branch { op, rs, rt, offset } => {
                write!(f, "{} {rs}, {rt}, {offset}", op.mnemonic())
            }
            Instruction::BranchZ { op, rs, offset } => {
                write!(f, "{} {rs}, {offset}", op.mnemonic())
            }
            Instruction::Jump { link, target } => {
                let mn = if link { "jal" } else { "j" };
                write!(f, "{mn} {:#x}", target << 2)
            }
            Instruction::Mem {
                op,
                rt,
                base,
                offset,
            } => {
                write!(f, "{} {rt}, {offset}({base})", op.mnemonic())
            }
            Instruction::FpMem {
                store,
                ft,
                base,
                offset,
            } => {
                let mn = if store { "swc1" } else { "lwc1" };
                write!(f, "{mn} {ft}, {offset}({base})")
            }
            Instruction::Cp1Move { op, rt, fs } => write!(f, "{} {rt}, {fs}", op.mnemonic()),
            Instruction::FpArith {
                op,
                fmt,
                fd,
                fs,
                ft,
            } => {
                write!(f, "{}.{} {fd}, {fs}, {ft}", op.mnemonic(), fmt.suffix())
            }
            Instruction::FpUnary { op, fmt, fd, fs } => {
                write!(f, "{}.{} {fd}, {fs}", op.mnemonic(), fmt.suffix())
            }
            Instruction::FpCvt { to, from, fd, fs } => {
                write!(f, "cvt.{}.{} {fd}, {fs}", to.suffix(), from.suffix())
            }
            Instruction::FpCmp { cond, fmt, fs, ft } => {
                write!(f, "c.{}.{} {fs}, {ft}", cond.mnemonic(), fmt.suffix())
            }
            Instruction::Bc1 { on_true, offset } => {
                let mn = if on_true { "bc1t" } else { "bc1f" };
                write!(f, "{mn} {offset}")
            }
        }
    }
}

/// Disassembles a word, falling back to a `.word` directive for
/// unrecognized encodings.
///
/// # Examples
///
/// ```
/// use ccrp_isa::disassemble_word;
///
/// assert_eq!(disassemble_word(0x03E0_0008), "jr $ra");
/// assert_eq!(disassemble_word(0xFFFF_FFFF), ".word 0xffffffff");
/// ```
pub fn disassemble_word(word: u32) -> String {
    match crate::decode(word) {
        Ok(inst) => inst.to_string(),
        Err(_) => format!(".word {word:#010x}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode;
    use crate::reg::Reg;

    #[test]
    fn formats_common_instructions() {
        let cases: Vec<(u32, &str)> = vec![
            (0x0000_0000, "nop"),
            (0x0085_1021, "addu $v0, $a0, $a1"),
            (0x27BD_FFE0, "addiu $sp, $sp, -32"),
            (0x8FBF_001C, "lw $ra, 28($sp)"),
            (0x03E0_0008, "jr $ra"),
            (0x3C1C_1000, "lui $gp, 0x1000"),
            (0x0000_000C, "syscall"),
        ];
        for (word, text) in cases {
            assert_eq!(decode(word).unwrap().to_string(), text);
        }
    }

    #[test]
    fn nop_not_rendered_as_sll() {
        assert_eq!(Instruction::NOP.to_string(), "nop");
        // but a real sll still shows
        let sll = Instruction::Shift {
            op: ShiftOp::Sll,
            rd: Reg::T0,
            rt: Reg::T1,
            shamt: 2,
        };
        assert_eq!(sll.to_string(), "sll $t0, $t1, 2");
    }

    #[test]
    fn fallback_for_invalid() {
        assert!(disassemble_word(0xFC00_0000).starts_with(".word"));
    }
}
