//! MIPS R2000 instruction set architecture.
//!
//! The CCRP paper (Wolfe & Chanin, MICRO-25 1992) builds on the MIPS R2000:
//! its experiments compress R2000 object code and replay R2000 instruction
//! traces. This crate is the ISA substrate for the whole reproduction:
//!
//! * [`Reg`] / [`FpReg`] — validated register names,
//! * [`Instruction`] — a decoded, field-validated instruction,
//! * [`Instruction::encode`] / [`decode`] — the 32-bit binary encoding,
//! * [`RawWord`] — raw bit-field access without decoding,
//! * `Display` impls — a disassembler whose output re-assembles.
//!
//! The supported subset is the user-mode integer ISA plus the R2010
//! floating-point coprocessor operations that 1992 MIPS compilers emitted
//! (loads/stores, arithmetic, conversions, compares, and condition
//! branches). Kernel/coprocessor-0 instructions are outside the paper's
//! workloads and are rejected by [`decode`].
//!
//! # Examples
//!
//! Round-tripping a hand-built instruction:
//!
//! ```
//! use ccrp_isa::{decode, AluOp, Instruction, Reg};
//!
//! let inst = Instruction::RAlu {
//!     op: AluOp::Addu,
//!     rd: Reg::V0,
//!     rs: Reg::A0,
//!     rt: Reg::A1,
//! };
//! assert_eq!(decode(inst.encode())?, inst);
//! assert_eq!(inst.to_string(), "addu $v0, $a0, $a1");
//! # Ok::<(), ccrp_isa::IsaError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arch;
mod decode;
mod disasm;
mod encode;
mod error;
mod instr;
mod reg;

pub use arch::{Isa, Mips};
pub use decode::{decode, RawWord};
pub use disasm::disassemble_word;
pub use error::IsaError;
pub use instr::{
    AluOp, BranchOp, BranchZOp, Cp1MoveOp, FpCond, FpFmt, FpOp, FpUnaryOp, HiLoOp, IAluOp,
    Instruction, MemOp, MultDivOp, ShiftOp,
};
pub use reg::{FpReg, Reg, ABI_NAMES};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_reg() -> impl Strategy<Value = Reg> {
        (0u8..32).prop_map(|n| Reg::new(n).expect("in range"))
    }

    fn arb_fpreg() -> impl Strategy<Value = FpReg> {
        (0u8..32).prop_map(|n| FpReg::new(n).expect("in range"))
    }

    fn arb_fmt_sd() -> impl Strategy<Value = FpFmt> {
        prop_oneof![Just(FpFmt::Single), Just(FpFmt::Double)]
    }

    prop_compose! {
        fn arb_shamt()(s in 0u8..32) -> u8 { s }
    }

    fn arb_instruction() -> impl Strategy<Value = Instruction> {
        prop_oneof![
            (
                proptest::sample::select(&AluOp::ALL[..]),
                arb_reg(),
                arb_reg(),
                arb_reg()
            )
                .prop_map(|(op, rd, rs, rt)| Instruction::RAlu { op, rd, rs, rt }),
            (
                proptest::sample::select(&ShiftOp::ALL[..]),
                arb_reg(),
                arb_reg(),
                arb_shamt()
            )
                .prop_map(|(op, rd, rt, shamt)| Instruction::Shift {
                    op,
                    rd,
                    rt,
                    shamt
                }),
            (
                proptest::sample::select(&ShiftOp::ALL[..]),
                arb_reg(),
                arb_reg(),
                arb_reg()
            )
                .prop_map(|(op, rd, rt, rs)| Instruction::ShiftV { op, rd, rt, rs }),
            (
                proptest::sample::select(&MultDivOp::ALL[..]),
                arb_reg(),
                arb_reg()
            )
                .prop_map(|(op, rs, rt)| Instruction::MultDiv { op, rs, rt }),
            (proptest::sample::select(&HiLoOp::ALL[..]), arb_reg())
                .prop_map(|(op, reg)| Instruction::HiLo { op, reg }),
            arb_reg().prop_map(|rs| Instruction::Jr { rs }),
            (arb_reg(), arb_reg()).prop_map(|(rd, rs)| Instruction::Jalr { rd, rs }),
            (0u32..(1 << 20)).prop_map(|code| Instruction::Syscall { code }),
            (0u32..(1 << 20)).prop_map(|code| Instruction::Break { code }),
            (
                proptest::sample::select(&IAluOp::ALL[..]),
                arb_reg(),
                arb_reg(),
                any::<u16>()
            )
                .prop_map(|(op, rt, rs, imm)| Instruction::IAlu { op, rt, rs, imm }),
            (arb_reg(), any::<u16>()).prop_map(|(rt, imm)| Instruction::Lui { rt, imm }),
            (
                proptest::sample::select(&BranchOp::ALL[..]),
                arb_reg(),
                arb_reg(),
                any::<i16>()
            )
                .prop_map(|(op, rs, rt, offset)| Instruction::Branch {
                    op,
                    rs,
                    rt,
                    offset
                }),
            (
                proptest::sample::select(&BranchZOp::ALL[..]),
                arb_reg(),
                any::<i16>()
            )
                .prop_map(|(op, rs, offset)| Instruction::BranchZ { op, rs, offset }),
            (any::<bool>(), 0u32..(1 << 26))
                .prop_map(|(link, target)| Instruction::Jump { link, target }),
            (
                proptest::sample::select(&MemOp::ALL[..]),
                arb_reg(),
                arb_reg(),
                any::<i16>()
            )
                .prop_map(|(op, rt, base, offset)| Instruction::Mem {
                    op,
                    rt,
                    base,
                    offset
                }),
            (any::<bool>(), arb_fpreg(), arb_reg(), any::<i16>()).prop_map(
                |(store, ft, base, offset)| Instruction::FpMem {
                    store,
                    ft,
                    base,
                    offset
                }
            ),
            (
                proptest::sample::select(&Cp1MoveOp::ALL[..]),
                arb_reg(),
                arb_fpreg()
            )
                .prop_map(|(op, rt, fs)| Instruction::Cp1Move { op, rt, fs }),
            (
                proptest::sample::select(&FpOp::ALL[..]),
                arb_fmt_sd(),
                arb_fpreg(),
                arb_fpreg(),
                arb_fpreg()
            )
                .prop_map(|(op, fmt, fd, fs, ft)| Instruction::FpArith {
                    op,
                    fmt,
                    fd,
                    fs,
                    ft
                }),
            (
                proptest::sample::select(&FpUnaryOp::ALL[..]),
                arb_fmt_sd(),
                arb_fpreg(),
                arb_fpreg()
            )
                .prop_map(|(op, fmt, fd, fs)| Instruction::FpUnary { op, fmt, fd, fs }),
            (arb_fpreg(), arb_fpreg(), 0usize..6).prop_map(|(fd, fs, pair)| {
                let (to, from) = [
                    (FpFmt::Single, FpFmt::Double),
                    (FpFmt::Single, FpFmt::Word),
                    (FpFmt::Double, FpFmt::Single),
                    (FpFmt::Double, FpFmt::Word),
                    (FpFmt::Word, FpFmt::Single),
                    (FpFmt::Word, FpFmt::Double),
                ][pair];
                Instruction::FpCvt { to, from, fd, fs }
            }),
            (
                proptest::sample::select(&FpCond::ALL[..]),
                arb_fmt_sd(),
                arb_fpreg(),
                arb_fpreg()
            )
                .prop_map(|(cond, fmt, fs, ft)| Instruction::FpCmp {
                    cond,
                    fmt,
                    fs,
                    ft
                }),
            (any::<bool>(), any::<i16>())
                .prop_map(|(on_true, offset)| Instruction::Bc1 { on_true, offset }),
        ]
    }

    proptest! {
        /// encode → decode is the identity on every constructible instruction.
        #[test]
        fn encode_decode_roundtrip(inst in arb_instruction()) {
            let word = inst.encode();
            let back = decode(word).expect("encoded instruction must decode");
            prop_assert_eq!(back, inst);
        }

        /// decode → encode is the identity on every word that decodes and
        /// whose don't-care fields are zero (canonical words).
        #[test]
        fn decode_encode_roundtrip(inst in arb_instruction()) {
            let word = inst.encode();
            let reencoded = decode(word).expect("decodes").encode();
            prop_assert_eq!(reencoded, word);
        }
    }
}
