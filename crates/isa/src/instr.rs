use crate::reg::{FpReg, Reg};

/// Three-operand register ALU operations (`SPECIAL` funct group).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Signed add, traps on overflow (`add`).
    Add,
    /// Unsigned add (`addu`).
    Addu,
    /// Signed subtract, traps on overflow (`sub`).
    Sub,
    /// Unsigned subtract (`subu`).
    Subu,
    /// Bitwise AND (`and`).
    And,
    /// Bitwise OR (`or`).
    Or,
    /// Bitwise XOR (`xor`).
    Xor,
    /// Bitwise NOR (`nor`).
    Nor,
    /// Set on less than, signed (`slt`).
    Slt,
    /// Set on less than, unsigned (`sltu`).
    Sltu,
}

impl AluOp {
    /// All operations in this group.
    pub const ALL: [AluOp; 10] = [
        AluOp::Add,
        AluOp::Addu,
        AluOp::Sub,
        AluOp::Subu,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Nor,
        AluOp::Slt,
        AluOp::Sltu,
    ];

    /// The `funct` field value for this operation.
    pub fn funct(self) -> u32 {
        match self {
            AluOp::Add => 0x20,
            AluOp::Addu => 0x21,
            AluOp::Sub => 0x22,
            AluOp::Subu => 0x23,
            AluOp::And => 0x24,
            AluOp::Or => 0x25,
            AluOp::Xor => 0x26,
            AluOp::Nor => 0x27,
            AluOp::Slt => 0x2A,
            AluOp::Sltu => 0x2B,
        }
    }

    /// The assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Addu => "addu",
            AluOp::Sub => "sub",
            AluOp::Subu => "subu",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Nor => "nor",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
        }
    }
}

/// Shift operations; used for both immediate and variable forms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShiftOp {
    /// Shift left logical (`sll` / `sllv`).
    Sll,
    /// Shift right logical (`srl` / `srlv`).
    Srl,
    /// Shift right arithmetic (`sra` / `srav`).
    Sra,
}

impl ShiftOp {
    /// All shift kinds.
    pub const ALL: [ShiftOp; 3] = [ShiftOp::Sll, ShiftOp::Srl, ShiftOp::Sra];

    /// The `funct` value for the shift-by-immediate form.
    pub fn funct_imm(self) -> u32 {
        match self {
            ShiftOp::Sll => 0x00,
            ShiftOp::Srl => 0x02,
            ShiftOp::Sra => 0x03,
        }
    }

    /// The `funct` value for the shift-by-register form.
    pub fn funct_var(self) -> u32 {
        self.funct_imm() + 4
    }

    /// Mnemonic for the shift-by-immediate form.
    pub fn mnemonic_imm(self) -> &'static str {
        match self {
            ShiftOp::Sll => "sll",
            ShiftOp::Srl => "srl",
            ShiftOp::Sra => "sra",
        }
    }

    /// Mnemonic for the shift-by-register form.
    pub fn mnemonic_var(self) -> &'static str {
        match self {
            ShiftOp::Sll => "sllv",
            ShiftOp::Srl => "srlv",
            ShiftOp::Sra => "srav",
        }
    }
}

/// Multiply/divide operations writing `HI`/`LO`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MultDivOp {
    /// Signed multiply (`mult`).
    Mult,
    /// Unsigned multiply (`multu`).
    Multu,
    /// Signed divide (`div`).
    Div,
    /// Unsigned divide (`divu`).
    Divu,
}

impl MultDivOp {
    /// All multiply/divide kinds.
    pub const ALL: [MultDivOp; 4] = [
        MultDivOp::Mult,
        MultDivOp::Multu,
        MultDivOp::Div,
        MultDivOp::Divu,
    ];

    /// The `funct` field value.
    pub fn funct(self) -> u32 {
        match self {
            MultDivOp::Mult => 0x18,
            MultDivOp::Multu => 0x19,
            MultDivOp::Div => 0x1A,
            MultDivOp::Divu => 0x1B,
        }
    }

    /// The assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            MultDivOp::Mult => "mult",
            MultDivOp::Multu => "multu",
            MultDivOp::Div => "div",
            MultDivOp::Divu => "divu",
        }
    }
}

/// Moves between GPRs and the `HI`/`LO` multiply result registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HiLoOp {
    /// `mfhi rd` — read `HI`.
    Mfhi,
    /// `mthi rs` — write `HI`.
    Mthi,
    /// `mflo rd` — read `LO`.
    Mflo,
    /// `mtlo rs` — write `LO`.
    Mtlo,
}

impl HiLoOp {
    /// All `HI`/`LO` move kinds.
    pub const ALL: [HiLoOp; 4] = [HiLoOp::Mfhi, HiLoOp::Mthi, HiLoOp::Mflo, HiLoOp::Mtlo];

    /// The `funct` field value.
    pub fn funct(self) -> u32 {
        match self {
            HiLoOp::Mfhi => 0x10,
            HiLoOp::Mthi => 0x11,
            HiLoOp::Mflo => 0x12,
            HiLoOp::Mtlo => 0x13,
        }
    }

    /// The assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            HiLoOp::Mfhi => "mfhi",
            HiLoOp::Mthi => "mthi",
            HiLoOp::Mflo => "mflo",
            HiLoOp::Mtlo => "mtlo",
        }
    }

    /// Whether this is a move *from* `HI`/`LO` into a GPR.
    pub fn is_from(self) -> bool {
        matches!(self, HiLoOp::Mfhi | HiLoOp::Mflo)
    }
}

/// Immediate-operand ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IAluOp {
    /// Add immediate, signed with overflow trap (`addi`).
    Addi,
    /// Add immediate unsigned (`addiu`).
    Addiu,
    /// Set on less than immediate, signed (`slti`).
    Slti,
    /// Set on less than immediate, unsigned (`sltiu`).
    Sltiu,
    /// AND immediate, zero-extended (`andi`).
    Andi,
    /// OR immediate, zero-extended (`ori`).
    Ori,
    /// XOR immediate, zero-extended (`xori`).
    Xori,
}

impl IAluOp {
    /// All immediate ALU kinds.
    pub const ALL: [IAluOp; 7] = [
        IAluOp::Addi,
        IAluOp::Addiu,
        IAluOp::Slti,
        IAluOp::Sltiu,
        IAluOp::Andi,
        IAluOp::Ori,
        IAluOp::Xori,
    ];

    /// The major opcode field value.
    pub fn opcode(self) -> u32 {
        match self {
            IAluOp::Addi => 0x08,
            IAluOp::Addiu => 0x09,
            IAluOp::Slti => 0x0A,
            IAluOp::Sltiu => 0x0B,
            IAluOp::Andi => 0x0C,
            IAluOp::Ori => 0x0D,
            IAluOp::Xori => 0x0E,
        }
    }

    /// The assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            IAluOp::Addi => "addi",
            IAluOp::Addiu => "addiu",
            IAluOp::Slti => "slti",
            IAluOp::Sltiu => "sltiu",
            IAluOp::Andi => "andi",
            IAluOp::Ori => "ori",
            IAluOp::Xori => "xori",
        }
    }

    /// Whether the immediate is sign-extended (vs zero-extended) at runtime.
    pub fn sign_extends(self) -> bool {
        !matches!(self, IAluOp::Andi | IAluOp::Ori | IAluOp::Xori)
    }
}

/// Two-register compare-and-branch operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchOp {
    /// Branch on equal (`beq`).
    Beq,
    /// Branch on not equal (`bne`).
    Bne,
}

impl BranchOp {
    /// All compare-and-branch kinds.
    pub const ALL: [BranchOp; 2] = [BranchOp::Beq, BranchOp::Bne];

    /// The major opcode field value.
    pub fn opcode(self) -> u32 {
        match self {
            BranchOp::Beq => 0x04,
            BranchOp::Bne => 0x05,
        }
    }

    /// The assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BranchOp::Beq => "beq",
            BranchOp::Bne => "bne",
        }
    }
}

/// Compare-against-zero branch operations (major opcodes and REGIMM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchZOp {
    /// Branch on less than or equal to zero (`blez`).
    Blez,
    /// Branch on greater than zero (`bgtz`).
    Bgtz,
    /// Branch on less than zero (`bltz`).
    Bltz,
    /// Branch on greater than or equal to zero (`bgez`).
    Bgez,
    /// Branch on less than zero and link (`bltzal`).
    Bltzal,
    /// Branch on greater than or equal to zero and link (`bgezal`).
    Bgezal,
}

impl BranchZOp {
    /// All compare-against-zero branch kinds.
    pub const ALL: [BranchZOp; 6] = [
        BranchZOp::Blez,
        BranchZOp::Bgtz,
        BranchZOp::Bltz,
        BranchZOp::Bgez,
        BranchZOp::Bltzal,
        BranchZOp::Bgezal,
    ];

    /// The assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BranchZOp::Blez => "blez",
            BranchZOp::Bgtz => "bgtz",
            BranchZOp::Bltz => "bltz",
            BranchZOp::Bgez => "bgez",
            BranchZOp::Bltzal => "bltzal",
            BranchZOp::Bgezal => "bgezal",
        }
    }

    /// Whether this branch writes the return address to `$ra`.
    pub fn links(self) -> bool {
        matches!(self, BranchZOp::Bltzal | BranchZOp::Bgezal)
    }
}

/// Load/store operations on the integer unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemOp {
    /// Load byte, sign-extended (`lb`).
    Lb,
    /// Load halfword, sign-extended (`lh`).
    Lh,
    /// Load word left, unaligned support (`lwl`).
    Lwl,
    /// Load word (`lw`).
    Lw,
    /// Load byte unsigned (`lbu`).
    Lbu,
    /// Load halfword unsigned (`lhu`).
    Lhu,
    /// Load word right, unaligned support (`lwr`).
    Lwr,
    /// Store byte (`sb`).
    Sb,
    /// Store halfword (`sh`).
    Sh,
    /// Store word left (`swl`).
    Swl,
    /// Store word (`sw`).
    Sw,
    /// Store word right (`swr`).
    Swr,
}

impl MemOp {
    /// All load/store kinds.
    pub const ALL: [MemOp; 12] = [
        MemOp::Lb,
        MemOp::Lh,
        MemOp::Lwl,
        MemOp::Lw,
        MemOp::Lbu,
        MemOp::Lhu,
        MemOp::Lwr,
        MemOp::Sb,
        MemOp::Sh,
        MemOp::Swl,
        MemOp::Sw,
        MemOp::Swr,
    ];

    /// The major opcode field value.
    pub fn opcode(self) -> u32 {
        match self {
            MemOp::Lb => 0x20,
            MemOp::Lh => 0x21,
            MemOp::Lwl => 0x22,
            MemOp::Lw => 0x23,
            MemOp::Lbu => 0x24,
            MemOp::Lhu => 0x25,
            MemOp::Lwr => 0x26,
            MemOp::Sb => 0x28,
            MemOp::Sh => 0x29,
            MemOp::Swl => 0x2A,
            MemOp::Sw => 0x2B,
            MemOp::Swr => 0x2E,
        }
    }

    /// The assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            MemOp::Lb => "lb",
            MemOp::Lh => "lh",
            MemOp::Lwl => "lwl",
            MemOp::Lw => "lw",
            MemOp::Lbu => "lbu",
            MemOp::Lhu => "lhu",
            MemOp::Lwr => "lwr",
            MemOp::Sb => "sb",
            MemOp::Sh => "sh",
            MemOp::Swl => "swl",
            MemOp::Sw => "sw",
            MemOp::Swr => "swr",
        }
    }

    /// Whether the operation writes memory (vs reading it).
    pub fn is_store(self) -> bool {
        matches!(
            self,
            MemOp::Sb | MemOp::Sh | MemOp::Swl | MemOp::Sw | MemOp::Swr
        )
    }
}

/// Moves between the integer unit and coprocessor 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cp1MoveOp {
    /// Move word from FP register to GPR (`mfc1`).
    Mfc1,
    /// Move word from GPR to FP register (`mtc1`).
    Mtc1,
    /// Move control word from coprocessor 1 (`cfc1`).
    Cfc1,
    /// Move control word to coprocessor 1 (`ctc1`).
    Ctc1,
}

impl Cp1MoveOp {
    /// All coprocessor-1 move kinds.
    pub const ALL: [Cp1MoveOp; 4] = [
        Cp1MoveOp::Mfc1,
        Cp1MoveOp::Mtc1,
        Cp1MoveOp::Cfc1,
        Cp1MoveOp::Ctc1,
    ];

    /// The `rs`-slot sub-opcode used in the COP1 encoding.
    pub fn rs_field(self) -> u32 {
        match self {
            Cp1MoveOp::Mfc1 => 0x00,
            Cp1MoveOp::Cfc1 => 0x02,
            Cp1MoveOp::Mtc1 => 0x04,
            Cp1MoveOp::Ctc1 => 0x06,
        }
    }

    /// The assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cp1MoveOp::Mfc1 => "mfc1",
            Cp1MoveOp::Mtc1 => "mtc1",
            Cp1MoveOp::Cfc1 => "cfc1",
            Cp1MoveOp::Ctc1 => "ctc1",
        }
    }
}

/// Floating-point operand format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpFmt {
    /// Single precision (`.s`, fmt field 16).
    Single,
    /// Double precision (`.d`, fmt field 17).
    Double,
    /// 32-bit fixed point (`.w`, fmt field 20); valid only for conversions.
    Word,
}

impl FpFmt {
    /// The `fmt` field value in the COP1 encoding.
    pub fn field(self) -> u32 {
        match self {
            FpFmt::Single => 16,
            FpFmt::Double => 17,
            FpFmt::Word => 20,
        }
    }

    /// The mnemonic suffix (`s`, `d`, or `w`).
    pub fn suffix(self) -> &'static str {
        match self {
            FpFmt::Single => "s",
            FpFmt::Double => "d",
            FpFmt::Word => "w",
        }
    }
}

/// Three-operand floating-point arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpOp {
    /// Floating add (`add.fmt`).
    Add,
    /// Floating subtract (`sub.fmt`).
    Sub,
    /// Floating multiply (`mul.fmt`).
    Mul,
    /// Floating divide (`div.fmt`).
    Div,
}

impl FpOp {
    /// All FP arithmetic kinds.
    pub const ALL: [FpOp; 4] = [FpOp::Add, FpOp::Sub, FpOp::Mul, FpOp::Div];

    /// The `funct` field value.
    pub fn funct(self) -> u32 {
        match self {
            FpOp::Add => 0x00,
            FpOp::Sub => 0x01,
            FpOp::Mul => 0x02,
            FpOp::Div => 0x03,
        }
    }

    /// The mnemonic stem (without format suffix).
    pub fn mnemonic(self) -> &'static str {
        match self {
            FpOp::Add => "add",
            FpOp::Sub => "sub",
            FpOp::Mul => "mul",
            FpOp::Div => "div",
        }
    }
}

/// Single-operand floating-point operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpUnaryOp {
    /// Absolute value (`abs.fmt`).
    Abs,
    /// Move (`mov.fmt`).
    Mov,
    /// Negate (`neg.fmt`).
    Neg,
}

impl FpUnaryOp {
    /// All FP unary kinds.
    pub const ALL: [FpUnaryOp; 3] = [FpUnaryOp::Abs, FpUnaryOp::Mov, FpUnaryOp::Neg];

    /// The `funct` field value.
    pub fn funct(self) -> u32 {
        match self {
            FpUnaryOp::Abs => 0x05,
            FpUnaryOp::Mov => 0x06,
            FpUnaryOp::Neg => 0x07,
        }
    }

    /// The mnemonic stem (without format suffix).
    pub fn mnemonic(self) -> &'static str {
        match self {
            FpUnaryOp::Abs => "abs",
            FpUnaryOp::Mov => "mov",
            FpUnaryOp::Neg => "neg",
        }
    }
}

/// Floating-point compare conditions (subset used by R2000 compilers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpCond {
    /// Equal (`c.eq.fmt`).
    Eq,
    /// Less than (`c.lt.fmt`).
    Lt,
    /// Less than or equal (`c.le.fmt`).
    Le,
}

impl FpCond {
    /// All supported compare conditions.
    pub const ALL: [FpCond; 3] = [FpCond::Eq, FpCond::Lt, FpCond::Le];

    /// The `funct` field value.
    pub fn funct(self) -> u32 {
        match self {
            FpCond::Eq => 0x32,
            FpCond::Lt => 0x3C,
            FpCond::Le => 0x3E,
        }
    }

    /// The condition mnemonic stem (e.g. `eq` in `c.eq.d`).
    pub fn mnemonic(self) -> &'static str {
        match self {
            FpCond::Eq => "eq",
            FpCond::Lt => "lt",
            FpCond::Le => "le",
        }
    }
}

/// A decoded MIPS R2000 instruction.
///
/// This is the abstract, field-validated form; the 32-bit binary encoding
/// is produced by [`Instruction::encode`] and recovered by
/// [`decode`](crate::decode). Every variant corresponds to a user-mode
/// R2000/R2010 instruction that 1992-era MIPS compilers emitted.
///
/// # Examples
///
/// ```
/// use ccrp_isa::{decode, AluOp, Instruction, Reg};
///
/// let inst = Instruction::RAlu {
///     op: AluOp::Addu,
///     rd: Reg::V0,
///     rs: Reg::A0,
///     rt: Reg::A1,
/// };
/// let word = inst.encode();
/// assert_eq!(decode(word)?, inst);
/// # Ok::<(), ccrp_isa::IsaError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// Register-register ALU operation: `op rd, rs, rt`.
    RAlu {
        /// The operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs: Reg,
        /// Second source register.
        rt: Reg,
    },
    /// Shift by immediate: `op rd, rt, shamt`.
    Shift {
        /// The shift kind.
        op: ShiftOp,
        /// Destination register.
        rd: Reg,
        /// Source register.
        rt: Reg,
        /// Shift amount, 0..=31.
        shamt: u8,
    },
    /// Shift by register: `opv rd, rt, rs`.
    ShiftV {
        /// The shift kind.
        op: ShiftOp,
        /// Destination register.
        rd: Reg,
        /// Source register.
        rt: Reg,
        /// Register holding the shift amount.
        rs: Reg,
    },
    /// Multiply or divide into `HI`/`LO`: `op rs, rt`.
    MultDiv {
        /// The operation.
        op: MultDivOp,
        /// First operand.
        rs: Reg,
        /// Second operand.
        rt: Reg,
    },
    /// Move between a GPR and `HI`/`LO`.
    HiLo {
        /// The move kind.
        op: HiLoOp,
        /// The GPR read or written.
        reg: Reg,
    },
    /// Jump register: `jr rs`.
    Jr {
        /// Register holding the target address.
        rs: Reg,
    },
    /// Jump and link register: `jalr rd, rs`.
    Jalr {
        /// Register receiving the return address (usually `$ra`).
        rd: Reg,
        /// Register holding the target address.
        rs: Reg,
    },
    /// System call trap: `syscall`.
    Syscall {
        /// The 20-bit code field (ignored by hardware, kept for fidelity).
        code: u32,
    },
    /// Breakpoint trap: `break`.
    Break {
        /// The 20-bit code field.
        code: u32,
    },
    /// Immediate ALU operation: `op rt, rs, imm`.
    IAlu {
        /// The operation.
        op: IAluOp,
        /// Destination register.
        rt: Reg,
        /// Source register.
        rs: Reg,
        /// 16-bit immediate (raw encoding; interpretation depends on `op`).
        imm: u16,
    },
    /// Load upper immediate: `lui rt, imm`.
    Lui {
        /// Destination register.
        rt: Reg,
        /// Immediate placed in the upper halfword.
        imm: u16,
    },
    /// Two-register branch: `op rs, rt, offset`.
    Branch {
        /// The comparison.
        op: BranchOp,
        /// First compared register.
        rs: Reg,
        /// Second compared register.
        rt: Reg,
        /// Signed word offset from the delay-slot instruction.
        offset: i16,
    },
    /// Compare-against-zero branch: `op rs, offset`.
    BranchZ {
        /// The comparison.
        op: BranchZOp,
        /// Compared register.
        rs: Reg,
        /// Signed word offset from the delay-slot instruction.
        offset: i16,
    },
    /// Absolute jump: `j target` or `jal target`.
    Jump {
        /// Whether the return address is written to `$ra` (`jal`).
        link: bool,
        /// The 26-bit word-address target field.
        target: u32,
    },
    /// Integer load or store: `op rt, offset(base)`.
    Mem {
        /// The access kind.
        op: MemOp,
        /// Data register.
        rt: Reg,
        /// Base address register.
        base: Reg,
        /// Signed byte offset.
        offset: i16,
    },
    /// Floating-point load or store word: `lwc1`/`swc1 ft, offset(base)`.
    FpMem {
        /// `true` for `swc1`, `false` for `lwc1`.
        store: bool,
        /// FP data register.
        ft: FpReg,
        /// Base address register.
        base: Reg,
        /// Signed byte offset.
        offset: i16,
    },
    /// Move between a GPR and coprocessor 1.
    Cp1Move {
        /// The move kind.
        op: Cp1MoveOp,
        /// The GPR side of the transfer.
        rt: Reg,
        /// The FP register (or control register number) side.
        fs: FpReg,
    },
    /// Three-operand FP arithmetic: `op.fmt fd, fs, ft`.
    FpArith {
        /// The operation.
        op: FpOp,
        /// Operand format (`.s` or `.d`).
        fmt: FpFmt,
        /// Destination FP register.
        fd: FpReg,
        /// First source FP register.
        fs: FpReg,
        /// Second source FP register.
        ft: FpReg,
    },
    /// Single-operand FP operation: `op.fmt fd, fs`.
    FpUnary {
        /// The operation.
        op: FpUnaryOp,
        /// Operand format (`.s` or `.d`).
        fmt: FpFmt,
        /// Destination FP register.
        fd: FpReg,
        /// Source FP register.
        fs: FpReg,
    },
    /// Format conversion: `cvt.to.from fd, fs`.
    FpCvt {
        /// Destination format.
        to: FpFmt,
        /// Source format.
        from: FpFmt,
        /// Destination FP register.
        fd: FpReg,
        /// Source FP register.
        fs: FpReg,
    },
    /// FP compare setting the coprocessor condition bit: `c.cond.fmt fs, ft`.
    FpCmp {
        /// The condition.
        cond: FpCond,
        /// Operand format (`.s` or `.d`).
        fmt: FpFmt,
        /// First compared FP register.
        fs: FpReg,
        /// Second compared FP register.
        ft: FpReg,
    },
    /// Branch on coprocessor-1 condition: `bc1t`/`bc1f offset`.
    Bc1 {
        /// Branch when the condition bit is set (`bc1t`) vs clear (`bc1f`).
        on_true: bool,
        /// Signed word offset from the delay-slot instruction.
        offset: i16,
    },
}

impl Instruction {
    /// The canonical no-operation instruction (`sll $zero, $zero, 0`).
    pub const NOP: Instruction = Instruction::Shift {
        op: ShiftOp::Sll,
        rd: Reg::ZERO,
        rt: Reg::ZERO,
        shamt: 0,
    };

    /// Whether this instruction is a control transfer with a delay slot
    /// (branch or jump).
    pub fn has_delay_slot(&self) -> bool {
        matches!(
            self,
            Instruction::Jr { .. }
                | Instruction::Jalr { .. }
                | Instruction::Branch { .. }
                | Instruction::BranchZ { .. }
                | Instruction::Jump { .. }
                | Instruction::Bc1 { .. }
        )
    }

    /// Whether this instruction reads or writes data memory.
    pub fn is_memory_access(&self) -> bool {
        matches!(self, Instruction::Mem { .. } | Instruction::FpMem { .. })
    }

    /// Whether this instruction writes data memory.
    pub fn is_store(&self) -> bool {
        match self {
            Instruction::Mem { op, .. } => op.is_store(),
            Instruction::FpMem { store, .. } => *store,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nop_is_all_zero_when_encoded() {
        assert_eq!(Instruction::NOP.encode(), 0);
    }

    #[test]
    fn delay_slot_classification() {
        assert!(Instruction::Jump {
            link: false,
            target: 0
        }
        .has_delay_slot());
        assert!(Instruction::Jr { rs: Reg::RA }.has_delay_slot());
        assert!(!Instruction::NOP.has_delay_slot());
        assert!(!Instruction::Syscall { code: 0 }.has_delay_slot());
    }

    #[test]
    fn store_classification() {
        let sw = Instruction::Mem {
            op: MemOp::Sw,
            rt: Reg::T0,
            base: Reg::SP,
            offset: 0,
        };
        let lw = Instruction::Mem {
            op: MemOp::Lw,
            rt: Reg::T0,
            base: Reg::SP,
            offset: 0,
        };
        assert!(sw.is_store() && sw.is_memory_access());
        assert!(!lw.is_store());
        assert!(lw.is_memory_access());
        let swc1 = Instruction::FpMem {
            store: true,
            ft: FpReg::new(0).unwrap(),
            base: Reg::SP,
            offset: 4,
        };
        assert!(swc1.is_store());
    }

    #[test]
    fn op_tables_are_consistent() {
        for op in AluOp::ALL {
            assert!(!op.mnemonic().is_empty());
        }
        for op in MemOp::ALL {
            assert_eq!(op.is_store(), op.mnemonic().starts_with('s'));
        }
        for op in HiLoOp::ALL {
            assert_eq!(op.is_from(), op.mnemonic().starts_with("mf"));
        }
    }
}
