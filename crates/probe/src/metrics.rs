//! Metric registry: named counters and fixed-bucket histograms.
//!
//! [`MetricSet`] is a deterministic aggregate — `BTreeMap`-keyed, merged
//! in cell order by the sweep runner — so metrics output is bit-identical
//! for any worker count, like every other report in the workspace.

use std::collections::BTreeMap;

use crate::{Event, Probe};

/// A fixed-bucket histogram over `u64` samples.
///
/// Bucket `i` counts samples `value <= bounds[i]` (and greater than the
/// previous bound); one overflow bucket counts everything above the last
/// bound. The bounds are fixed at construction so two histograms built
/// from the same metric can always be merged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Creates an empty histogram with the given ascending bucket bounds.
    ///
    /// panic-ok: bounds are compile-time constants chosen by the caller;
    /// non-ascending bounds are a programming error, not a data error.
    pub fn new(bounds: &[u64]) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[bucket] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds `other` into `self`. Both must share the same bounds.
    ///
    /// panic-ok: merging histograms with different bounds is a
    /// programming error (the registry keys histograms by name, and a
    /// name always maps to one bucket layout).
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bounds"
        );
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The upper bucket bounds (the overflow bucket is implicit).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket sample counts; one longer than [`bounds`](Self::bounds)
    /// (the final element is the overflow bucket).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of all recorded samples, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }
}

/// A registry of named counters and histograms.
///
/// Keys are sorted (`BTreeMap`), so iteration — and therefore any JSON
/// rendered from it — is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricSet {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricSet {
    /// Creates an empty registry.
    pub fn new() -> MetricSet {
        MetricSet::default()
    }

    /// Adds `delta` to the named counter, creating it at zero first.
    pub fn add(&mut self, name: &str, delta: u64) {
        if let Some(slot) = self.counters.get_mut(name) {
            *slot += delta;
        } else {
            self.counters.insert(name.to_string(), delta);
        }
    }

    /// Records `value` into the named histogram, creating it with
    /// `bounds` on first use.
    pub fn observe(&mut self, name: &str, bounds: &[u64], value: u64) {
        if let Some(hist) = self.histograms.get_mut(name) {
            hist.record(value);
        } else {
            let mut hist = Histogram::new(bounds);
            hist.record(value);
            self.histograms.insert(name.to_string(), hist);
        }
    }

    /// The named counter's value, or 0 if never touched.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named histogram, if any sample was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms in key order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// True if nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Folds `other` into `self`: counters add, same-named histograms
    /// merge. Used by the sweep runner to fold per-cell metrics in cell
    /// order, keeping the aggregate `--jobs`-independent.
    pub fn merge(&mut self, other: &MetricSet) {
        for (name, &value) in &other.counters {
            self.add(name, value);
        }
        for (name, hist) in &other.histograms {
            if let Some(mine) = self.histograms.get_mut(name) {
                mine.merge(hist);
            } else {
                self.histograms.insert(name.clone(), hist.clone());
            }
        }
    }
}

/// Bucket bounds for refill latency in cycles (overflow above 128).
pub const REFILL_LATENCY_BOUNDS: &[u64] = &[2, 4, 8, 12, 16, 20, 24, 32, 48, 64, 96, 128];

/// Bucket bounds for bytes fetched per refill (overflow above 40).
pub const REFILL_BYTES_BOUNDS: &[u64] = &[4, 8, 12, 16, 20, 24, 28, 32, 36, 40];

/// Bucket bounds for CLB entry residency in cycles (overflow above 262144).
pub const CLB_RESIDENCY_BOUNDS: &[u64] = &[16, 64, 256, 1024, 4096, 16384, 65536, 262_144];

/// A [`Probe`] that folds every event into a [`MetricSet`].
///
/// Maintains `events.<kind>` counters for all events, plus:
///
/// * `refill.bytes_total`, `refill.clb_hits`, `refill.bypasses`,
///   `refill.retries` counters and the `refill_latency_cycles` /
///   `refill_bytes` histograms from [`Event::RefillDone`];
/// * `memory.words_total` from [`Event::MemoryBurst`];
/// * the `clb_residency_cycles` histogram, measured from a LAT entry's
///   CLB fill ([`Event::ClbMiss`]) to its eviction ([`Event::ClbEvict`]).
#[derive(Debug, Clone, Default)]
pub struct MetricsCollector {
    metrics: MetricSet,
    clb_filled_at: BTreeMap<u32, u64>,
}

impl MetricsCollector {
    /// Creates a collector with an empty registry.
    pub fn new() -> MetricsCollector {
        MetricsCollector::default()
    }

    /// Borrows the accumulated metrics.
    pub fn metrics(&self) -> &MetricSet {
        &self.metrics
    }

    /// Consumes the collector, returning the accumulated metrics.
    pub fn into_metrics(self) -> MetricSet {
        self.metrics
    }
}

impl Probe for MetricsCollector {
    fn emit(&mut self, cycle: u64, event: Event) {
        self.metrics.add(&format!("events.{}", event.kind()), 1);
        match event {
            Event::RefillDone {
                cycles,
                bytes,
                clb_hit,
                bypass,
                retries,
                ..
            } => {
                self.metrics
                    .observe("refill_latency_cycles", REFILL_LATENCY_BOUNDS, cycles);
                self.metrics
                    .observe("refill_bytes", REFILL_BYTES_BOUNDS, u64::from(bytes));
                self.metrics.add("refill.bytes_total", u64::from(bytes));
                if clb_hit {
                    self.metrics.add("refill.clb_hits", 1);
                }
                if bypass {
                    self.metrics.add("refill.bypasses", 1);
                }
                self.metrics.add("refill.retries", u64::from(retries));
            }
            Event::MemoryBurst { words, .. } => {
                self.metrics.add("memory.words_total", u64::from(words));
            }
            Event::ClbMiss { lat_index } => {
                // A miss is followed by a LAT read and a CLB fill, so the
                // miss cycle marks the start of the entry's residency.
                self.clb_filled_at.insert(lat_index, cycle);
            }
            Event::ClbEvict { lat_index } => {
                if let Some(filled) = self.clb_filled_at.remove(&lat_index) {
                    self.metrics.observe(
                        "clb_residency_cycles",
                        CLB_RESIDENCY_BOUNDS,
                        cycle.saturating_sub(filled),
                    );
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut hist = Histogram::new(&[4, 8]);
        for value in [1, 4, 5, 9, 100] {
            hist.record(value);
        }
        assert_eq!(hist.counts(), &[2, 1, 2]);
        assert_eq!(hist.count(), 5);
        assert_eq!(hist.sum(), 119);
        assert_eq!(hist.min(), Some(1));
        assert_eq!(hist.max(), Some(100));
    }

    #[test]
    fn histogram_merge_adds_everything() {
        let mut a = Histogram::new(&[10]);
        a.record(3);
        let mut b = Histogram::new(&[10]);
        b.record(30);
        a.merge(&b);
        assert_eq!(a.counts(), &[1, 1]);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Some(3));
        assert_eq!(a.max(), Some(30));
    }

    #[test]
    fn empty_histogram_has_no_extrema() {
        let hist = Histogram::new(&[1]);
        assert_eq!(hist.min(), None);
        assert_eq!(hist.max(), None);
        assert_eq!(hist.mean(), None);
    }

    #[test]
    fn metric_set_counters_and_merge() {
        let mut a = MetricSet::new();
        a.add("x", 2);
        a.observe("h", &[10], 5);
        let mut b = MetricSet::new();
        b.add("x", 3);
        b.add("y", 1);
        b.observe("h", &[10], 50);
        a.merge(&b);
        assert_eq!(a.counter("x"), 5);
        assert_eq!(a.counter("y"), 1);
        let hist = a.histogram("h").unwrap();
        assert_eq!(hist.count(), 2);
        assert_eq!(hist.counts(), &[1, 1]);
    }

    #[test]
    fn merge_is_order_independent_for_totals() {
        let mut left = MetricSet::new();
        left.add("n", 1);
        left.observe("h", &[8], 4);
        let mut right = MetricSet::new();
        right.add("n", 2);
        right.observe("h", &[8], 12);

        let mut ab = left.clone();
        ab.merge(&right);
        let mut ba = right.clone();
        ba.merge(&left);
        assert_eq!(ab, ba);
    }

    #[test]
    fn collector_tracks_refills_and_residency() {
        let mut collector = MetricsCollector::new();
        collector.emit(0, Event::ClbMiss { lat_index: 3 });
        collector.emit(
            20,
            Event::RefillDone {
                address: 0x40,
                cycles: 18,
                bytes: 24,
                clb_hit: false,
                bypass: false,
                retries: 0,
            },
        );
        collector.emit(500, Event::ClbEvict { lat_index: 3 });

        let metrics = collector.metrics();
        assert_eq!(metrics.counter("events.refill"), 1);
        assert_eq!(metrics.counter("refill.bytes_total"), 24);
        let residency = metrics.histogram("clb_residency_cycles").unwrap();
        assert_eq!(residency.count(), 1);
        assert_eq!(residency.max(), Some(500));
        assert_eq!(
            metrics.histogram("refill_latency_cycles").unwrap().sum(),
            18
        );
    }

    #[test]
    fn evict_without_fill_is_ignored() {
        let mut collector = MetricsCollector::new();
        collector.emit(10, Event::ClbEvict { lat_index: 9 });
        assert!(collector
            .metrics()
            .histogram("clb_residency_cycles")
            .is_none());
        assert_eq!(collector.metrics().counter("events.clb_evict"), 1);
    }
}
