//! Typed, cycle-stamped instrumentation for the CCRP memory hierarchy.
//!
//! The paper's whole argument rests on *where cycles and bus bytes go*
//! (Figure 4's refill path, Tables 1–8's miss/traffic breakdowns), but
//! end-of-run aggregates cannot show a single refill, CLB eviction, or
//! retry-backoff episode. This crate defines the observation layer the
//! rest of the workspace emits into:
//!
//! * [`Event`] — the typed hierarchy events: cache misses, refill
//!   start/completion, CLB hit/miss/evict, memory bursts, integrity
//!   failures, retry backoffs, and (one level up, from `ccrp-served`)
//!   request-lifecycle events: request start/done/rejected and
//!   decoded-image cache hits;
//! * [`Probe`] — the sink trait. Emitters are generic over it, so the
//!   no-op [`NullProbe`] monomorphizes to nothing: probe-off runs are
//!   bit-identical to uninstrumented ones;
//! * [`EventLog`] — a recording probe, the input to the Chrome
//!   trace-event exporter in `ccrp-bench`;
//! * [`MetricSet`] — a registry of named counters and fixed-bucket
//!   histograms, fed by the [`MetricsCollector`] probe.
//!
//! Timestamps are **simulated cycles**, never wall clock, so every
//! export downstream is deterministic and worker-count-independent.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;

pub use metrics::{Histogram, MetricSet, MetricsCollector};

/// One typed event in the cache/refill/memory hierarchy.
///
/// Every event is emitted together with the simulated cycle at which it
/// happened (see [`Probe::emit`]); durations are carried in the event
/// itself where one exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Event {
    /// An instruction-cache access missed.
    CacheMiss {
        /// The fetched instruction address.
        address: u32,
    },
    /// A line refill began (stamped at the miss cycle).
    RefillStart {
        /// First address of the line being refilled.
        address: u32,
    },
    /// A line refill completed (stamped at the completion cycle).
    RefillDone {
        /// First address of the refilled line.
        address: u32,
        /// Total refill latency in cycles, including every retry.
        cycles: u64,
        /// Bytes moved over the instruction-memory bus.
        bytes: u32,
        /// Whether the LAT entry was already in the CLB.
        clb_hit: bool,
        /// Whether the line was stored uncompressed.
        bypass: bool,
        /// Re-reads the degradation policy needed (0 normally).
        retries: u32,
    },
    /// A CLB probe found its LAT entry resident.
    ClbHit {
        /// The probed LAT-entry index.
        lat_index: u32,
    },
    /// A CLB probe missed (a LAT read follows).
    ClbMiss {
        /// The probed LAT-entry index.
        lat_index: u32,
    },
    /// Inserting a LAT entry evicted the least recently used one.
    ClbEvict {
        /// The evicted LAT-entry index.
        lat_index: u32,
    },
    /// A burst read on the instruction-memory bus (stamped at the cycle
    /// the burst was issued).
    MemoryBurst {
        /// 32-bit words transferred.
        words: u32,
        /// Cycle the last word arrived.
        done: u64,
    },
    /// A runtime integrity cross-check failed (corrupt LAT entry, CRC
    /// mismatch, or undecodable block).
    IntegrityFailure {
        /// The instruction address being refilled.
        address: u32,
    },
    /// The degradation policy scheduled a retry with exponential backoff.
    RetryBackoff {
        /// The instruction address being refilled.
        address: u32,
        /// Which retry this is (1-based).
        attempt: u32,
        /// Idle cycles charged before the re-read.
        backoff_cycles: u64,
    },
    /// Checkpointed segment-parallel replay crossed a segment boundary:
    /// the machine state at this point was captured (recording pass) or
    /// restored (replay pass).
    SegmentBoundary {
        /// Zero-based index of the segment beginning at this boundary.
        index: u32,
        /// Retired instructions (emulator) or trace entries (simulator)
        /// at the boundary.
        retired: u64,
    },
    /// A service request was admitted and began executing (stamped at
    /// the service's logical tick, not wall clock).
    RequestStart {
        /// Server-assigned request sequence number.
        id: u64,
    },
    /// An admitted service request finished with a response.
    RequestDone {
        /// Server-assigned request sequence number.
        id: u64,
        /// Fuel (emulated steps / simulated cycles) the request spent;
        /// the request-level timeline renders this as its duration.
        ticks: u64,
        /// Whether the response was a success (not a typed error).
        ok: bool,
    },
    /// A service request was refused before execution — malformed,
    /// oversized, or shed by admission control.
    RequestRejected {
        /// Server-assigned request sequence number.
        id: u64,
        /// The stable name of the typed error kind returned.
        reason: &'static str,
    },
    /// A decoded-image cache lookup hit: the hot path skipped re-parsing
    /// and re-expanding an uploaded container.
    CacheHit {
        /// Content hash of the cached container.
        key: u64,
    },
}

impl Event {
    /// The event's stable kind name, used as the Chrome trace-event name
    /// and the metric key prefix.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::CacheMiss { .. } => "cache_miss",
            Event::RefillStart { .. } => "refill_start",
            Event::RefillDone { .. } => "refill",
            Event::ClbHit { .. } => "clb_hit",
            Event::ClbMiss { .. } => "clb_miss",
            Event::ClbEvict { .. } => "clb_evict",
            Event::MemoryBurst { .. } => "memory_burst",
            Event::IntegrityFailure { .. } => "integrity_failure",
            Event::RetryBackoff { .. } => "retry_backoff",
            Event::SegmentBoundary { .. } => "segment_boundary",
            Event::RequestStart { .. } => "request_start",
            Event::RequestDone { .. } => "request_done",
            Event::RequestRejected { .. } => "request_rejected",
            Event::CacheHit { .. } => "cache_hit",
        }
    }
}

/// An [`Event`] plus the simulated cycle it was emitted at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedEvent {
    /// Simulated cycle of the event.
    pub cycle: u64,
    /// The event itself.
    pub event: Event,
}

/// A sink for hierarchy events.
///
/// Emitters take `&mut impl Probe`, so a [`NullProbe`] caller pays
/// nothing: the empty `emit` inlines away and `enabled()` lets emitters
/// skip any work done only to build an event.
pub trait Probe {
    /// Receives `event`, stamped at simulated `cycle`.
    fn emit(&mut self, cycle: u64, event: Event);

    /// Whether this probe observes anything. Emitters may (but need not)
    /// skip event construction when `false`.
    fn enabled(&self) -> bool {
        true
    }
}

/// The default sink: discards everything, compiles to nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullProbe;

impl Probe for NullProbe {
    #[inline(always)]
    fn emit(&mut self, _cycle: u64, _event: Event) {}

    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }
}

impl<P: Probe + ?Sized> Probe for &mut P {
    #[inline]
    fn emit(&mut self, cycle: u64, event: Event) {
        (**self).emit(cycle, event);
    }

    #[inline]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }
}

/// Fan-out: both probes see every event, in tuple order.
impl<A: Probe, B: Probe> Probe for (A, B) {
    #[inline]
    fn emit(&mut self, cycle: u64, event: Event) {
        self.0.emit(cycle, event);
        self.1.emit(cycle, event);
    }

    #[inline]
    fn enabled(&self) -> bool {
        self.0.enabled() || self.1.enabled()
    }
}

/// A probe that records every event in emission order — the input to the
/// Chrome trace-event exporter.
///
/// # Examples
///
/// ```
/// use ccrp_probe::{Event, EventLog, Probe};
///
/// let mut log = EventLog::new();
/// log.emit(7, Event::CacheMiss { address: 0x40 });
/// assert_eq!(log.events().len(), 1);
/// assert_eq!(log.events()[0].cycle, 7);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventLog {
    events: Vec<TimedEvent>,
    limit: Option<usize>,
    dropped: u64,
}

impl EventLog {
    /// Creates an empty, unbounded log.
    pub fn new() -> EventLog {
        EventLog::default()
    }

    /// Creates a log that keeps at most `limit` events; later events are
    /// counted in [`dropped`](Self::dropped) instead of stored, so a
    /// bounded trace of a long run still reports its true event count.
    pub fn with_limit(limit: usize) -> EventLog {
        EventLog {
            limit: Some(limit),
            ..EventLog::default()
        }
    }

    /// The recorded events, in emission order.
    pub fn events(&self) -> &[TimedEvent] {
        &self.events
    }

    /// The recorded events of one [`kind`](Event::kind), in emission
    /// order — the shape invariant checkers consume ("every refill",
    /// "every burst") without re-matching variants.
    pub fn events_of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a TimedEvent> {
        self.events
            .iter()
            .filter(move |timed| timed.event.kind() == kind)
    }

    /// Events discarded by the [`with_limit`](Self::with_limit) cap.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Consumes the log, returning the recorded events.
    pub fn into_events(self) -> Vec<TimedEvent> {
        self.events
    }
}

impl Probe for EventLog {
    fn emit(&mut self, cycle: u64, event: Event) {
        if self.limit.is_some_and(|cap| self.events.len() >= cap) {
            self.dropped += 1;
        } else {
            self.events.push(TimedEvent { cycle, event });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_probe_is_disabled_and_silent() {
        let mut probe = NullProbe;
        assert!(!probe.enabled());
        probe.emit(0, Event::CacheMiss { address: 0 });
    }

    #[test]
    fn events_of_kind_filters_in_order() {
        let mut log = EventLog::new();
        log.emit(1, Event::ClbMiss { lat_index: 1 });
        log.emit(2, Event::ClbHit { lat_index: 1 });
        log.emit(3, Event::ClbHit { lat_index: 2 });
        let hits: Vec<u64> = log.events_of_kind("clb_hit").map(|t| t.cycle).collect();
        assert_eq!(hits, vec![2, 3]);
        assert_eq!(log.events_of_kind("refill").count(), 0);
    }

    #[test]
    fn event_log_records_in_order() {
        let mut log = EventLog::new();
        log.emit(3, Event::ClbMiss { lat_index: 1 });
        log.emit(9, Event::ClbHit { lat_index: 1 });
        let events = log.into_events();
        assert_eq!(events.len(), 2);
        assert!(events[0].cycle < events[1].cycle);
        assert_eq!(events[1].event, Event::ClbHit { lat_index: 1 });
    }

    #[test]
    fn bounded_log_counts_drops() {
        let mut log = EventLog::with_limit(1);
        log.emit(0, Event::CacheMiss { address: 0 });
        log.emit(1, Event::CacheMiss { address: 32 });
        assert_eq!(log.events().len(), 1);
        assert_eq!(log.dropped(), 1);
    }

    #[test]
    fn tuple_probe_fans_out() {
        let mut pair = (EventLog::new(), EventLog::new());
        assert!(pair.enabled());
        pair.emit(5, Event::IntegrityFailure { address: 64 });
        assert_eq!(pair.0.events(), pair.1.events());
        assert_eq!(pair.0.events().len(), 1);
    }

    #[test]
    fn mut_ref_probe_forwards() {
        let mut log = EventLog::new();
        {
            let fwd: &mut EventLog = &mut log;
            fwd.emit(1, Event::ClbEvict { lat_index: 4 });
            assert!(fwd.enabled());
        }
        assert_eq!(log.events().len(), 1);
    }

    #[test]
    fn kinds_are_stable() {
        assert_eq!(Event::CacheMiss { address: 0 }.kind(), "cache_miss");
        assert_eq!(
            Event::MemoryBurst { words: 2, done: 5 }.kind(),
            "memory_burst"
        );
        assert_eq!(Event::RequestStart { id: 1 }.kind(), "request_start");
        assert_eq!(
            Event::RequestDone {
                id: 1,
                ticks: 5,
                ok: true
            }
            .kind(),
            "request_done"
        );
        assert_eq!(
            Event::RequestRejected {
                id: 2,
                reason: "overload"
            }
            .kind(),
            "request_rejected"
        );
        assert_eq!(Event::CacheHit { key: 7 }.kind(), "cache_hit");
    }
}
