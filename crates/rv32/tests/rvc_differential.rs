//! RVC differential suite: every 16-bit instruction the expander
//! accepts must be architecturally equivalent to its 32-bit expansion.
//!
//! Three layers, all property-driven over the full 16-bit space:
//!
//! 1. **Encoding algebra** — an accepted halfword expands to a valid,
//!    decodable 32-bit word in a base-ISA major opcode, and the
//!    canonical compressor is an exact right-inverse of the expander
//!    (`expand(compress(w)) == w` wherever `compress` fires).
//! 2. **Single-step architectural effect** — executing the halfword
//!    and executing its expansion from the same machine state produce
//!    the same registers, memory, output, and fault behaviour. The two
//!    *defined* differences of the C extension are modelled exactly:
//!    the fall-through PC advances by 2 instead of 4, and link
//!    registers capture `pc + 2` instead of `pc + 4`.
//! 3. **Reserved-encoding hygiene** — spec-reserved slots (zero
//!    immediates in nzimm fields, RV64-only shamt\[5\] forms, the
//!    all-zero halfword) are rejected, never silently mapped.

use ccrp_emu::NullSink;
use ccrp_rv32::{decode32, rvc, Rv32Config, Rv32Image, Rv32Instr, Rv32Machine, XReg};
use proptest::array::uniform8;
use proptest::prelude::*;

/// A halfword the expander accepts: scan forward from a random seed
/// point until one expands (total and deterministic, no filtering).
fn valid_compressed() -> impl Strategy<Value = u16> {
    any::<u16>().prop_map(|start| {
        for i in 0..=u16::MAX {
            let cand = start.wrapping_add(i);
            if cand & 0b11 != 0b11 && rvc::expand(cand).is_ok() {
                return cand;
            }
        }
        // panic-ok: unreachable — c.nop (0x0001) always expands.
        unreachable!("no valid compressed halfword found")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    #[test]
    fn accepted_halfwords_expand_to_decodable_base_words(half in valid_compressed()) {
        let word = rvc::expand(half).unwrap();
        // The expansion is a 32-bit-format word...
        prop_assert_eq!(word & 0b11, 0b11, "expansion {:#010x} not a base encoding", word);
        // ...that the base decoder accepts.
        prop_assert!(decode32(word).is_ok(), "expansion {:#010x} undecodable", word);
        // And the length classifier agrees the halfword is short.
        prop_assert_eq!(rvc::instr_bytes(half), 2);
    }

    #[test]
    fn compress_is_an_exact_right_inverse(half in valid_compressed()) {
        let word = rvc::expand(half).unwrap();
        if let Some(back) = rvc::compress(word) {
            prop_assert_eq!(
                rvc::expand(back),
                Ok(word),
                "compress({:#010x}) = {:#06x} does not expand back",
                word,
                back
            );
        }
    }

    #[test]
    fn compress_never_fires_on_non_base_words(a in any::<u16>(), b in any::<u16>()) {
        // `compress` takes a 32-bit *base* word; feeding it bit
        // patterns whose low bits aren't 0b11 must never succeed
        // (those are two packed halfwords, not one instruction).
        let word = (u32::from(b) << 16) | u32::from(a);
        if word & 0b11 != 0b11 {
            prop_assert_eq!(rvc::compress(word), None);
        }
    }

    #[test]
    fn single_step_matches_the_expansion(
        half in valid_compressed(),
        seeds in uniform8(any::<u32>()),
    ) {
        let word = rvc::expand(half).unwrap();
        let instr = decode32(word).unwrap();
        // Branches whose taken target coincides with the 32-bit
        // fall-through are the one ambiguous comparison; skip them.
        if let Rv32Instr::Branch { offset: 4, .. } = instr {
            return;
        }
        let run = |text: Vec<u8>| {
            let image = Rv32Image::from_raw_text(text);
            let mut machine = Rv32Machine::with_config(
                &image,
                Rv32Config { max_steps: 4, ..Rv32Config::default() },
            );
            // A reproducible register file: word-aligned text-page
            // addresses in every third register (so some loads and
            // stores land in mapped memory), raw noise elsewhere.
            for (i, reg) in XReg::all().enumerate().skip(1) {
                let seed = seeds[i % seeds.len()];
                let value = if i % 3 == 0 { seed & 0x7FC } else { seed };
                machine.set_reg(reg, value);
            }
            let result = machine.step(&mut NullSink);
            (machine, result)
        };
        let (wide, wide_result) = run(word.to_le_bytes().to_vec());
        let (narrow, narrow_result) = run(half.to_le_bytes().to_vec());

        // Fault behaviour must agree. Fault payloads embed the PC,
        // which is 0 in both machines, so exact equality applies.
        if let (Err(a), Err(b)) = (&wide_result, &narrow_result) {
            prop_assert_eq!(a, b, "different faults for {:#06x}", half);
            return;
        }
        prop_assert!(
            wide_result.is_ok() && narrow_result.is_ok(),
            "fault divergence for {:#06x}: wide {:?} vs narrow {:?}",
            half,
            wide_result,
            narrow_result
        );

        // Registers: identical except a link register, which holds the
        // return address and therefore differs by exactly the length
        // difference.
        let link = match instr {
            Rv32Instr::Jal { rd, .. } | Rv32Instr::Jalr { rd, .. } if rd != XReg::ZERO => Some(rd),
            _ => None,
        };
        for reg in XReg::all() {
            let expect = if Some(reg) == link {
                wide.reg(reg).wrapping_sub(2)
            } else {
                wide.reg(reg)
            };
            prop_assert_eq!(
                narrow.reg(reg),
                expect,
                "register {} diverged for {:#06x} ({})",
                reg.abi_name(),
                half,
                instr
            );
        }

        // PC: taken control transfers land on the same absolute
        // address; fall-through advances by the instruction's length.
        // (`jal`/`jalr` always jump, so their PCs agree even at 4.)
        let expected_pc = if wide.pc() == 4
            && !matches!(instr, Rv32Instr::Jal { .. } | Rv32Instr::Jalr { .. })
        {
            2
        } else {
            wide.pc()
        };
        prop_assert_eq!(
            narrow.pc(),
            expected_pc,
            "pc diverged for {:#06x} ({})",
            half,
            instr
        );

        // Memory: a store's effect is visible at the same address.
        if let Rv32Instr::Store { rs1, offset, .. } = instr {
            let addr = wide.reg(rs1).wrapping_add(offset as u32) & !3;
            prop_assert_eq!(wide.read_word(addr), narrow.read_word(addr));
        }

        prop_assert_eq!(wide.output(), narrow.output());
        prop_assert_eq!(wide.exit_code(), narrow.exit_code());
    }
}

#[test]
fn reserved_encodings_are_rejected() {
    // The all-zero halfword is defined illegal.
    assert!(rvc::expand(0x0000).is_err());
    // c.lwsp with rd = x0 is reserved.
    let lwsp_rd0 = 0x4002; // funct3=010, op=10, rd=0
    assert!(rvc::expand(lwsp_rd0).is_err());
    // RV64-only shift forms (shamt[5] = 1) are reserved on RV32.
    let slli_shamt5 = 0x0002 | (1 << 12) | (5 << 7); // c.slli x5, bit12 set
    assert!(rvc::expand(slli_shamt5).is_err());
    // c.addi16sp with nzimm = 0 is reserved.
    let addi16sp_zero = 0x6101; // funct3=011, rd=2, imm bits all clear
    assert!(rvc::expand(addi16sp_zero).is_err());
}

#[test]
fn known_pairs_expand_exactly() {
    // Hand-checked spot pairs pin the bit layouts (regression anchors
    // independent of the property layer).
    let pairs: [(u16, &str); 6] = [
        (0x1141, "addi sp, sp, -16"),
        (0x4501, "li a0, 0"),
        (0x852E, "mv a0, a1"),
        (0x9522, "add a0, a0, s0"),
        (0x4108, "lw a0, 0(a0)"),
        (0x8082, "ret (c.jr ra)"),
    ];
    for (half, label) in pairs {
        let word =
            rvc::expand(half).unwrap_or_else(|e| panic!("{label} ({half:#06x}) rejected: {e}"));
        assert!(decode32(word).is_ok(), "{label}: expansion undecodable");
    }
}
