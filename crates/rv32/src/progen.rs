//! Seeded random RV32 program generator for the lockstep difftest.
//!
//! The RV32 counterpart of the MIPS `ProgGen` in `ccrp-difftest`:
//! emits valid, terminating programs as [`Rv32Asm`] item streams, so
//! one generated program assembles into *both* encodings
//! ([`Encoding::Rv32I`] and [`Encoding::Rv32C`]) of the same
//! instruction sequence. Invariants, enforced by construction:
//!
//! * **Termination** — control flow is forward-only except for counted
//!   loops whose counters (`s1`–`s3`, one per nesting depth, never
//!   touched by random instructions) strictly decrease to a
//!   `blt zero, counter` back-edge. A forward branch may jump *into* a
//!   loop body past its counter init, but the counters only ever hold
//!   values in `0..=8`, so every back-edge still runs out.
//! * **No faults** — loads and stores are confined to a scratch buffer
//!   the prologue fully initialises, with offsets aligned to the
//!   access width. RISC-V integer division never traps (`x/0` and the
//!   overflow corner have defined results), so `div`/`rem` need no
//!   guards at all — a pleasant contrast with the MIPS generator.
//! * **Encoding-independent state** — no `auipc` and no link-writing
//!   jumps, so no register ever holds a PC-derived value. The final
//!   architectural state of the RV32I and RV32C assemblies of one
//!   program is therefore identical even though their PCs differ
//!   mid-run, which is what the cross-encoding equivalence check in
//!   the difftest leans on.
//!
//! [`Encoding::Rv32I`]: crate::Encoding::Rv32I
//! [`Encoding::Rv32C`]: crate::Encoding::Rv32C

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::instr::{AluImmOp, AluOp, BranchOp, LoadOp, MulOp, Rv32Instr, ShiftImmOp, StoreOp};
use crate::{Encoding, Label, Rv32Asm, Rv32Error, Rv32Image, XReg};

/// Base of the 256-byte scratch buffer all loads/stores target. Same
/// address as the MIPS difftest scratch: below the default stack in
/// the paper's 24-bit physical space.
pub const SCRATCH_BASE: u32 = 0x00EF_FF00;

/// Scratch buffer size in bytes; the prologue stores to every word.
pub const SCRATCH_SIZE: u32 = 256;

/// Maximum loop-nesting depth (one counter register per level).
const MAX_LOOP_DEPTH: usize = 2;

/// Loop counter registers by nesting depth; reserved for loop control.
const LOOP_COUNTERS: [XReg; 3] = [XReg::S1, XReg::S2, XReg::S3];

/// Destination pool for random instructions: caller-saved registers
/// only, excluding `a7` (the ecall selector is always written by the
/// atomic print/exit groups immediately before their `ecall`) and the
/// reserved `ra`/`sp`/`s0`–`s3`. Weighted toward the RVC-reachable
/// `a0`–`a5` so compressed assemblies stay dense.
const POOL: [XReg; 13] = [
    XReg::T0,
    XReg::T1,
    XReg::T2,
    XReg::T3,
    XReg::T4,
    XReg::T5,
    XReg::T6,
    XReg::A0,
    XReg::A1,
    XReg::A2,
    XReg::A3,
    XReg::A4,
    XReg::A5,
];

/// A generated RV32 program: the item stream plus both assemblies.
#[derive(Debug, Clone)]
pub struct GeneratedRv32Program {
    /// The encoding-independent item stream.
    pub asm: Rv32Asm,
}

impl GeneratedRv32Program {
    /// Assembles the program under `encoding`.
    ///
    /// # Errors
    ///
    /// Propagates [`Rv32Error`] from assembly; generated programs are
    /// constructed to be encodable, so an error here is a generator
    /// bug.
    pub fn assemble(&self, encoding: Encoding) -> Result<Rv32Image, Rv32Error> {
        self.asm.assemble(encoding)
    }
}

/// The seeded generator. One instance emits one program.
#[derive(Debug)]
pub struct Rv32ProgGen {
    rng: StdRng,
    asm: Rv32Asm,
}

impl Rv32ProgGen {
    /// Generates the program for `seed`: a pure function of the seed.
    pub fn generate(seed: u64) -> GeneratedRv32Program {
        let mut gen = Rv32ProgGen {
            rng: StdRng::seed_from_u64(seed ^ 0x5059_4F47), // "PYOG"
            asm: Rv32Asm::new(),
        };
        gen.emit_all();
        GeneratedRv32Program { asm: gen.asm }
    }

    fn emit_all(&mut self) {
        let exit = self.asm.label();
        self.prologue();
        self.body(exit);
        self.asm.bind(exit);
        self.asm.li(XReg::A7, 10);
        self.asm.push(Rv32Instr::Ecall);
    }

    /// Scratch base into `s0`, random seeds into the pool, then one
    /// store per scratch word so every later load sees defined memory.
    fn prologue(&mut self) {
        self.asm.li(XReg::S0, SCRATCH_BASE as i32);
        for reg in POOL {
            let value = self.rng.gen::<u32>() as i32;
            self.asm.li(reg, value);
        }
        for off in (0..SCRATCH_SIZE).step_by(4) {
            let reg = self.pool_reg();
            self.asm.push(Rv32Instr::Store {
                op: StoreOp::Sw,
                rs2: reg,
                rs1: XReg::S0,
                offset: off as i32,
            });
        }
    }

    /// The random block/loop body between the prologue and exit.
    fn body(&mut self, exit: Label) {
        let blocks = if self.rng.gen_bool(0.125) {
            // Occasionally much larger, to cover deep CLB eviction.
            12 + self.rng.gen_range(0..12usize)
        } else {
            5 + self.rng.gen_range(0..8usize)
        };
        // Plan counted loops over block ranges first so forward
        // branches can target any strictly later block label. Each
        // entry is `(loop label, nesting depth)`.
        let block_labels: Vec<Label> = (0..blocks).map(|_| self.asm.label()).collect();
        let mut opens: Vec<Vec<(Label, usize)>> = vec![Vec::new(); blocks];
        let mut closes: Vec<Vec<(Label, usize)>> = vec![Vec::new(); blocks];
        let mut stack: Vec<(Label, usize)> = Vec::new();
        for i in 0..blocks {
            if stack.len() < MAX_LOOP_DEPTH && self.rng.gen_bool(0.25) {
                let span = 1 + self.rng.gen_range(0..2usize);
                let mut end = (i + span - 1).min(blocks - 1);
                if let Some(&(_, outer_end)) = stack.last() {
                    end = end.min(outer_end);
                }
                let head = self.asm.label();
                opens[i].push((head, stack.len()));
                stack.push((head, end));
            }
            while let Some(&(head, end)) = stack.last() {
                if end == i {
                    closes[i].push((head, stack.len() - 1));
                    stack.pop();
                } else {
                    break;
                }
            }
        }
        for i in 0..blocks {
            for &(head, depth) in &opens[i].clone() {
                let counter = LOOP_COUNTERS[depth.min(2)];
                let iters = self.rng.gen_range(2..=6);
                self.asm.li(counter, iters);
                self.asm.bind(head);
            }
            self.asm.bind(block_labels[i]);
            let count = 10 + self.rng.gen_range(0..23usize);
            for _ in 0..count {
                self.instruction();
            }
            if self.rng.gen_bool(1.0 / 6.0) {
                self.print_int();
            }
            if self.rng.gen_bool(0.5) {
                self.forward_branch(i, &block_labels, exit);
            }
            for &(head, depth) in &closes[i].clone() {
                let counter = LOOP_COUNTERS[depth.min(2)];
                self.asm.push(Rv32Instr::AluImm {
                    op: AluImmOp::Addi,
                    rd: counter,
                    rs1: counter,
                    imm: -1,
                });
                // `bgtz counter` spelled as `blt zero, counter`.
                self.asm.branch_to(BranchOp::Blt, XReg::ZERO, counter, head);
            }
        }
    }

    /// One random instruction (occasionally a two-instruction group).
    fn instruction(&mut self) {
        match self.rng.gen_range(0..100u32) {
            0..=29 => {
                const OPS: [AluOp; 10] = [
                    AluOp::Add,
                    AluOp::Sub,
                    AluOp::And,
                    AluOp::Or,
                    AluOp::Xor,
                    AluOp::Sll,
                    AluOp::Srl,
                    AluOp::Sra,
                    AluOp::Slt,
                    AluOp::Sltu,
                ];
                let op = OPS[self.rng.gen_range(0..OPS.len())];
                let (rd, rs1, rs2) = (self.pool_reg(), self.src_reg(), self.src_reg());
                self.asm.push(Rv32Instr::Alu { op, rd, rs1, rs2 });
            }
            30..=47 => {
                const OPS: [AluImmOp; 6] = [
                    AluImmOp::Addi,
                    AluImmOp::Andi,
                    AluImmOp::Ori,
                    AluImmOp::Xori,
                    AluImmOp::Slti,
                    AluImmOp::Sltiu,
                ];
                let op = OPS[self.rng.gen_range(0..OPS.len())];
                let (rd, rs1) = (self.pool_reg(), self.src_reg());
                let imm = self.rng.gen_range(-2048..2048);
                self.asm.push(Rv32Instr::AluImm { op, rd, rs1, imm });
            }
            48..=57 => {
                const OPS: [ShiftImmOp; 3] = [ShiftImmOp::Slli, ShiftImmOp::Srli, ShiftImmOp::Srai];
                let op = OPS[self.rng.gen_range(0..OPS.len())];
                let (rd, rs1) = (self.pool_reg(), self.src_reg());
                let shamt = self.rng.gen_range(0..32u8);
                self.asm.push(Rv32Instr::ShiftImm { op, rd, rs1, shamt });
            }
            58..=63 => {
                let rd = self.pool_reg();
                let imm20 = self.rng.gen_range(0..0x10_0000u32);
                self.asm.push(Rv32Instr::Lui { rd, imm20 });
            }
            64..=79 => self.mem_op(),
            // RISC-V division and remainder are total functions —
            // divide-by-zero and `i32::MIN / -1` have architected
            // results — so the whole M extension is fault-free.
            80..=89 => {
                const OPS: [MulOp; 8] = [
                    MulOp::Mul,
                    MulOp::Mulh,
                    MulOp::Mulhsu,
                    MulOp::Mulhu,
                    MulOp::Div,
                    MulOp::Divu,
                    MulOp::Rem,
                    MulOp::Remu,
                ];
                let op = OPS[self.rng.gen_range(0..OPS.len())];
                let (rd, rs1, rs2) = (self.pool_reg(), self.src_reg(), self.src_reg());
                self.asm.push(Rv32Instr::Mul { op, rd, rs1, rs2 });
            }
            _ => {
                // `mv rd, rs` — compressible, keeps register traffic up.
                let (rd, rs1) = (self.pool_reg(), self.src_reg());
                self.asm.push(Rv32Instr::AluImm {
                    op: AluImmOp::Addi,
                    rd,
                    rs1,
                    imm: 0,
                });
            }
        }
    }

    /// A load or store on the scratch buffer, offset aligned to the
    /// access width (the emulator faults on misalignment).
    fn mem_op(&mut self) {
        let (rd, rs2) = (self.pool_reg(), self.src_reg());
        match self.rng.gen_range(0..8u32) {
            0 | 1 => {
                let offset = 4 * self.rng.gen_range(0..SCRATCH_SIZE as i32 / 4);
                self.asm.push(Rv32Instr::Load {
                    op: LoadOp::Lw,
                    rd,
                    rs1: XReg::S0,
                    offset,
                });
            }
            2 | 3 => {
                let offset = 4 * self.rng.gen_range(0..SCRATCH_SIZE as i32 / 4);
                self.asm.push(Rv32Instr::Store {
                    op: StoreOp::Sw,
                    rs2,
                    rs1: XReg::S0,
                    offset,
                });
            }
            4 => {
                let op = if self.rng.gen_bool(0.5) {
                    LoadOp::Lh
                } else {
                    LoadOp::Lhu
                };
                let offset = 2 * self.rng.gen_range(0..SCRATCH_SIZE as i32 / 2);
                self.asm.push(Rv32Instr::Load {
                    op,
                    rd,
                    rs1: XReg::S0,
                    offset,
                });
            }
            5 => {
                let offset = 2 * self.rng.gen_range(0..SCRATCH_SIZE as i32 / 2);
                self.asm.push(Rv32Instr::Store {
                    op: StoreOp::Sh,
                    rs2,
                    rs1: XReg::S0,
                    offset,
                });
            }
            6 => {
                let op = if self.rng.gen_bool(0.5) {
                    LoadOp::Lb
                } else {
                    LoadOp::Lbu
                };
                let offset = self.rng.gen_range(0..SCRATCH_SIZE as i32);
                self.asm.push(Rv32Instr::Load {
                    op,
                    rd,
                    rs1: XReg::S0,
                    offset,
                });
            }
            _ => {
                let offset = self.rng.gen_range(0..SCRATCH_SIZE as i32);
                self.asm.push(Rv32Instr::Store {
                    op: StoreOp::Sb,
                    rs2,
                    rs1: XReg::S0,
                    offset,
                });
            }
        }
    }

    /// A `print_int` of a random pool register: output diverges
    /// whenever register state has, giving the co-simulator a second,
    /// externally-visible comparison channel.
    fn print_int(&mut self) {
        let src = self.pool_reg();
        self.asm.push(Rv32Instr::AluImm {
            op: AluImmOp::Addi,
            rd: XReg::A0,
            rs1: src,
            imm: 0,
        });
        self.asm.li(XReg::A7, 1);
        self.asm.push(Rv32Instr::Ecall);
    }

    /// A conditional forward branch from block `i` to a strictly later
    /// block label (or the exit).
    fn forward_branch(&mut self, i: usize, block_labels: &[Label], exit: Label) {
        let blocks = block_labels.len();
        let target = if i + 1 >= blocks || self.rng.gen_bool(1.0 / 6.0) {
            exit
        } else {
            block_labels[self.rng.gen_range(i + 1..blocks)]
        };
        const OPS: [BranchOp; 6] = [
            BranchOp::Beq,
            BranchOp::Bne,
            BranchOp::Blt,
            BranchOp::Bge,
            BranchOp::Bltu,
            BranchOp::Bgeu,
        ];
        let op = OPS[self.rng.gen_range(0..OPS.len())];
        let (rs1, rs2) = (self.src_reg(), self.src_reg());
        self.asm.branch_to(op, rs1, rs2, target);
    }

    /// A destination register: always from the caller-saved pool.
    fn pool_reg(&mut self) -> XReg {
        POOL[self.rng.gen_range(0..POOL.len())]
    }

    /// A source register: usually the pool, sometimes `zero` or the
    /// scratch base (reads of `s0` are fine; writes are not).
    fn src_reg(&mut self) -> XReg {
        if self.rng.gen_bool(0.125) {
            XReg::ZERO
        } else if self.rng.gen_bool(1.0 / 15.0) {
            XReg::S0
        } else {
            self.pool_reg()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Rv32Config, Rv32Machine};
    use ccrp_emu::NullSink;

    #[test]
    fn generation_is_deterministic() {
        let a = Rv32ProgGen::generate(99);
        let b = Rv32ProgGen::generate(99);
        assert_eq!(
            a.assemble(Encoding::Rv32I).unwrap(),
            b.assemble(Encoding::Rv32I).unwrap()
        );
        let c = Rv32ProgGen::generate(100);
        assert_ne!(
            a.assemble(Encoding::Rv32I).unwrap(),
            c.assemble(Encoding::Rv32I).unwrap()
        );
    }

    #[test]
    fn programs_terminate_cleanly_in_both_encodings() {
        for seed in 0..50 {
            let gen = Rv32ProgGen::generate(seed);
            let image_i = gen.assemble(Encoding::Rv32I).unwrap();
            let image_c = gen.assemble(Encoding::Rv32C).unwrap();
            assert!(
                image_c.text_size() < image_i.text_size(),
                "seed {seed}: C assembly not smaller"
            );
            let config = Rv32Config {
                max_steps: 2_000_000,
                ..Rv32Config::default()
            };
            let mut outputs = Vec::new();
            for image in [&image_i, &image_c] {
                let mut machine = Rv32Machine::with_config(image, config.clone());
                machine
                    .run(&mut NullSink)
                    .unwrap_or_else(|e| panic!("seed {seed}: run faulted: {e}"));
                assert_eq!(machine.exit_code(), Some(0), "seed {seed}");
                let regs: Vec<u32> = XReg::all().map(|r| machine.reg(r)).collect();
                outputs.push((machine.output().to_string(), regs));
            }
            // No PC-derived state: both encodings agree on everything
            // architecturally visible at exit.
            assert_eq!(outputs[0], outputs[1], "seed {seed}: encodings diverge");
        }
    }

    #[test]
    fn scratch_stays_inside_the_initialised_window() {
        // Structural guarantee, spot-checked: every memory operand in
        // a large sample uses `s0` plus an in-range aligned offset.
        for seed in 0..20 {
            let gen = Rv32ProgGen::generate(seed);
            let image = gen.assemble(Encoding::Rv32I).unwrap();
            let text = image.text();
            let mut at = 0;
            while at + 4 <= text.len() {
                let word = u32::from_le_bytes([text[at], text[at + 1], text[at + 2], text[at + 3]]);
                if let Ok(
                    Rv32Instr::Load { rs1, offset, .. } | Rv32Instr::Store { rs1, offset, .. },
                ) = crate::decode32(word)
                {
                    assert_eq!(rs1, XReg::S0, "seed {seed}: off-scratch base");
                    assert!(
                        (0..SCRATCH_SIZE as i32).contains(&offset),
                        "seed {seed}: offset {offset} out of scratch"
                    );
                }
                at += 4;
            }
        }
    }
}
