use std::fmt;

use crate::Rv32Error;

/// Conventional RV32 ABI names, indexed by register number.
pub const ABI_NAMES: [&str; 32] = [
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3", "a4",
    "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11", "t3", "t4",
    "t5", "t6",
];

/// A validated RV32 integer register (`x0`..`x31`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct XReg(u8);

/// Named constants for every architectural register.
#[allow(missing_docs)]
impl XReg {
    pub const ZERO: XReg = XReg(0);
    pub const RA: XReg = XReg(1);
    pub const SP: XReg = XReg(2);
    pub const GP: XReg = XReg(3);
    pub const TP: XReg = XReg(4);
    pub const T0: XReg = XReg(5);
    pub const T1: XReg = XReg(6);
    pub const T2: XReg = XReg(7);
    pub const S0: XReg = XReg(8);
    pub const S1: XReg = XReg(9);
    pub const A0: XReg = XReg(10);
    pub const A1: XReg = XReg(11);
    pub const A2: XReg = XReg(12);
    pub const A3: XReg = XReg(13);
    pub const A4: XReg = XReg(14);
    pub const A5: XReg = XReg(15);
    pub const A6: XReg = XReg(16);
    pub const A7: XReg = XReg(17);
    pub const S2: XReg = XReg(18);
    pub const S3: XReg = XReg(19);
    pub const S4: XReg = XReg(20);
    pub const S5: XReg = XReg(21);
    pub const S6: XReg = XReg(22);
    pub const S7: XReg = XReg(23);
    pub const S8: XReg = XReg(24);
    pub const S9: XReg = XReg(25);
    pub const S10: XReg = XReg(26);
    pub const S11: XReg = XReg(27);
    pub const T3: XReg = XReg(28);
    pub const T4: XReg = XReg(29);
    pub const T5: XReg = XReg(30);
    pub const T6: XReg = XReg(31);
}

impl XReg {
    /// Validates a register number.
    ///
    /// # Errors
    ///
    /// [`Rv32Error::FieldOutOfRange`] for numbers above 31.
    pub fn new(number: u8) -> Result<XReg, Rv32Error> {
        if number < 32 {
            Ok(XReg(number))
        } else {
            Err(Rv32Error::FieldOutOfRange {
                field: "register",
                value: i64::from(number),
            })
        }
    }

    /// The register number, 0..=31.
    pub fn number(self) -> u8 {
        self.0
    }

    /// The conventional ABI name.
    pub fn abi_name(self) -> &'static str {
        ABI_NAMES[self.0 as usize]
    }

    /// Whether this register is addressable by the RVC three-bit
    /// register fields (`x8`..`x15`).
    pub fn in_compressed_set(self) -> bool {
        (8..16).contains(&self.0)
    }

    /// Iterates over all 32 registers in numeric order.
    pub fn all() -> impl Iterator<Item = XReg> {
        (0u8..32).map(XReg)
    }
}

impl fmt::Display for XReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abi_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_names_and_compressed_set() {
        assert_eq!(XReg::SP.number(), 2);
        assert_eq!(XReg::A0.to_string(), "a0");
        assert_eq!(XReg::all().count(), 32);
        assert!(XReg::new(32).is_err());
        let compressed: Vec<u8> = XReg::all()
            .filter(|r| r.in_compressed_set())
            .map(XReg::number)
            .collect();
        assert_eq!(compressed, (8..16).collect::<Vec<u8>>());
    }
}
