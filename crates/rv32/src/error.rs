use std::error::Error;
use std::fmt;

/// Errors from constructing, encoding, or decoding RV32 instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Rv32Error {
    /// A 32-bit word that does not encode a supported RV32IM
    /// instruction.
    InvalidEncoding {
        /// The undecodable instruction word.
        word: u32,
    },
    /// A 16-bit halfword that is not a supported RVC form (including
    /// the all-zero illegal encoding and reserved slots).
    InvalidCompressed {
        /// The undecodable halfword.
        half: u16,
    },
    /// A field value too large (or misaligned) for its encoding slot.
    FieldOutOfRange {
        /// Name of the instruction field.
        field: &'static str,
        /// The value that did not fit.
        value: i64,
    },
    /// A branch or jump bound to a label whose displacement does not
    /// fit the instruction's offset field.
    BranchOutOfRange {
        /// The displacement in bytes.
        displacement: i64,
    },
    /// An assembly item referenced a label that was never bound.
    UnboundLabel,
}

impl fmt::Display for Rv32Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rv32Error::InvalidEncoding { word } => {
                write!(f, "word {word:#010x} is not a supported RV32 instruction")
            }
            Rv32Error::InvalidCompressed { half } => {
                write!(f, "halfword {half:#06x} is not a supported RVC instruction")
            }
            Rv32Error::FieldOutOfRange { field, value } => {
                write!(f, "value {value} does not fit instruction field `{field}`")
            }
            Rv32Error::BranchOutOfRange { displacement } => {
                write!(f, "displacement {displacement} exceeds the offset field")
            }
            Rv32Error::UnboundLabel => write!(f, "assembly references an unbound label"),
        }
    }
}

impl Error for Rv32Error {}

/// Faults raised while executing on [`Rv32Machine`](crate::Rv32Machine).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Rv32Fault {
    /// PC left the text segment or lost 2-byte alignment.
    BadFetch {
        /// The faulting PC.
        pc: u32,
    },
    /// The fetched bytes do not decode.
    IllegalInstruction {
        /// PC of the undecodable instruction.
        pc: u32,
        /// The fetched (low) 32 bits.
        word: u32,
    },
    /// A load or store with an address misaligned for its width.
    MisalignedAccess {
        /// PC of the faulting instruction.
        pc: u32,
        /// The misaligned effective address.
        addr: u32,
    },
    /// A load from memory no store or loader ever touched.
    UnmappedLoad {
        /// PC of the faulting instruction.
        pc: u32,
        /// The unmapped effective address.
        addr: u32,
    },
    /// An `ecall` with an unsupported code in `a7`.
    BadSyscall {
        /// PC of the `ecall`.
        pc: u32,
        /// The unsupported code.
        code: u32,
    },
    /// An `ebreak` was executed.
    Breakpoint {
        /// PC of the `ebreak`.
        pc: u32,
    },
    /// A compressed-ROM line failed to expand.
    RomFault {
        /// Line index within the text segment.
        line: u32,
    },
    /// The configured step budget ran out before the program exited.
    StepLimit,
    /// `step` was called after the program exited.
    Exited,
}

impl fmt::Display for Rv32Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rv32Fault::BadFetch { pc } => write!(f, "bad fetch at pc {pc:#010x}"),
            Rv32Fault::IllegalInstruction { pc, word } => {
                write!(f, "illegal instruction {word:#010x} at pc {pc:#010x}")
            }
            Rv32Fault::MisalignedAccess { pc, addr } => {
                write!(f, "misaligned access to {addr:#010x} at pc {pc:#010x}")
            }
            Rv32Fault::UnmappedLoad { pc, addr } => {
                write!(f, "load from unmapped {addr:#010x} at pc {pc:#010x}")
            }
            Rv32Fault::BadSyscall { pc, code } => {
                write!(f, "unsupported ecall code {code} at pc {pc:#010x}")
            }
            Rv32Fault::Breakpoint { pc } => write!(f, "ebreak at pc {pc:#010x}"),
            Rv32Fault::RomFault { line } => write!(f, "compressed line {line} failed to expand"),
            Rv32Fault::StepLimit => write!(f, "step limit exhausted"),
            Rv32Fault::Exited => write!(f, "stepped after exit"),
        }
    }
}

impl Error for Rv32Fault {}
