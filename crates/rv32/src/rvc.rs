//! The RVC (compressed) extension: 16-bit instruction forms.
//!
//! Every RVC instruction is architecturally *defined as* a 32-bit base
//! instruction — the specification gives each form an expansion, and a
//! conforming core may implement RVC entirely in the fetch path. This
//! module implements both directions for the RV32C subset:
//!
//! * [`expand`] — halfword → the defining 32-bit encoding (what the
//!   [`Rv32Machine`](crate::Rv32Machine) fetch path does);
//! * [`compress`] — 32-bit word → its canonical 16-bit form, when one
//!   exists (what the [`Rv32Asm`](crate::Rv32Asm) builder and the
//!   RV32C text encoder use).
//!
//! `compress` is deliberately conservative: it emits only forms whose
//! expansion is bit-for-bit the original word, so
//! `expand(compress(w)) == w` always holds — the differential proptest
//! suite in `tests/rvc_differential.rs` checks this and the stronger
//! architectural-equivalence property (executing the halfword ≡
//! executing its expansion).
//!
//! Floating-point forms (`c.flw`/`c.fsw` and the SP variants) are
//! outside this integer-only backend and stay reserved.

use crate::Rv32Error;

/// The three-bit register fields address `x8`..`x15`.
fn creg(field: u16) -> u32 {
    8 + u32::from(field & 0x7)
}

fn bit(half: u16, at: u32) -> u32 {
    u32::from(half >> at) & 1
}

fn bits(half: u16, at: u32, len: u32) -> u32 {
    (u32::from(half) >> at) & ((1 << len) - 1)
}

/// Assembles an I-type word from pre-masked fields.
fn itype(imm12: u32, rs1: u32, funct3: u32, rd: u32, opcode: u32) -> u32 {
    (imm12 & 0xfff) << 20 | rs1 << 15 | funct3 << 12 | rd << 7 | opcode
}

/// Length in bytes of the RISC-V instruction whose low halfword is
/// `low`: 2 unless the two low bits are `11`.
pub fn instr_bytes(low: u16) -> u32 {
    if low & 0b11 == 0b11 {
        4
    } else {
        2
    }
}

/// Expands one 16-bit RVC instruction to its defining 32-bit encoding.
///
/// # Errors
///
/// [`Rv32Error::InvalidCompressed`] for the all-zero illegal encoding,
/// reserved slots, RV64-only forms, floating-point forms, and 32-bit
/// encodings (low bits `11`).
pub fn expand(half: u16) -> Result<u32, Rv32Error> {
    let reserved = Err(Rv32Error::InvalidCompressed { half });
    let quadrant = half & 0b11;
    let funct3 = bits(half, 13, 3);
    match (quadrant, funct3) {
        // ---- Quadrant 0 ----
        (0b00, 0b000) => {
            // c.addi4spn rd', nzuimm → addi rd', sp, nzuimm
            let imm = bits(half, 11, 2) << 4
                | bits(half, 7, 4) << 6
                | bit(half, 6) << 2
                | bit(half, 5) << 3;
            if imm == 0 {
                return reserved; // includes the all-zero illegal encoding
            }
            Ok(itype(imm, 2, 0b000, creg(half >> 2), 0b0010011))
        }
        (0b00, 0b010) => {
            // c.lw rd', uimm(rs1') → lw rd', uimm(rs1')
            let imm = bits(half, 10, 3) << 3 | bit(half, 6) << 2 | bit(half, 5) << 6;
            Ok(itype(
                imm,
                creg(half >> 7),
                0b010,
                creg(half >> 2),
                0b0000011,
            ))
        }
        (0b00, 0b110) => {
            // c.sw rs2', uimm(rs1') → sw rs2', uimm(rs1')
            let imm = bits(half, 10, 3) << 3 | bit(half, 6) << 2 | bit(half, 5) << 6;
            let rs1 = creg(half >> 7);
            let rs2 = creg(half >> 2);
            Ok((imm >> 5) << 25
                | rs2 << 20
                | rs1 << 15
                | 0b010 << 12
                | (imm & 0x1f) << 7
                | 0b0100011)
        }
        // ---- Quadrant 1 ----
        (0b01, 0b000) => {
            // c.addi rd, nzimm (c.nop when rd=0, imm=0)
            let rd = bits(half, 7, 5);
            let imm = sext6(half);
            Ok(itype(imm, rd, 0b000, rd, 0b0010011))
        }
        (0b01, 0b001) => Ok(cj_jump(half, 1)), // c.jal → jal ra, offset
        (0b01, 0b010) => {
            // c.li rd, imm → addi rd, zero, imm
            Ok(itype(sext6(half), 0, 0b000, bits(half, 7, 5), 0b0010011))
        }
        (0b01, 0b011) => {
            let rd = bits(half, 7, 5);
            if rd == 2 {
                // c.addi16sp nzimm → addi sp, sp, nzimm
                let imm = bit(half, 12) << 9
                    | bit(half, 6) << 4
                    | bit(half, 5) << 6
                    | bits(half, 3, 2) << 7
                    | bit(half, 2) << 5;
                let imm = sext_field(imm, 10);
                if imm == 0 {
                    return reserved;
                }
                Ok(itype(imm, 2, 0b000, 2, 0b0010011))
            } else {
                // c.lui rd, nzimm → lui rd, sext(nzimm)
                let imm = sext6(half);
                if imm == 0 {
                    return reserved;
                }
                Ok((imm & 0xfffff) << 12 | rd << 7 | 0b0110111)
            }
        }
        (0b01, 0b100) => {
            let rd = creg(half >> 7);
            match bits(half, 10, 2) {
                0b00 | 0b01 => {
                    // c.srli / c.srai rd', shamt
                    if bit(half, 12) != 0 {
                        return reserved; // shamt[5] is RV64-only
                    }
                    let shamt = bits(half, 2, 5);
                    let funct7 = if bits(half, 10, 2) == 0b01 {
                        0b010_0000
                    } else {
                        0
                    };
                    Ok(funct7 << 25 | shamt << 20 | rd << 15 | 0b101 << 12 | rd << 7 | 0b0010011)
                }
                0b10 => {
                    // c.andi rd', imm
                    Ok(itype(sext6(half), rd, 0b111, rd, 0b0010011))
                }
                _ => {
                    if bit(half, 12) != 0 {
                        return reserved; // c.subw/c.addw are RV64-only
                    }
                    // c.sub / c.xor / c.or / c.and rd', rs2'
                    let rs2 = creg(half >> 2);
                    let (funct7, funct3) = match bits(half, 5, 2) {
                        0b00 => (0b010_0000, 0b000),
                        0b01 => (0, 0b100),
                        0b10 => (0, 0b110),
                        _ => (0, 0b111),
                    };
                    Ok(funct7 << 25 | rs2 << 20 | rd << 15 | funct3 << 12 | rd << 7 | 0b0110011)
                }
            }
        }
        (0b01, 0b101) => Ok(cj_jump(half, 0)), // c.j → jal zero, offset
        (0b01, 0b110) | (0b01, 0b111) => {
            // c.beqz / c.bnez rs1', offset → beq/bne rs1', zero, offset
            let imm = bit(half, 12) << 8
                | bits(half, 10, 2) << 3
                | bits(half, 5, 2) << 6
                | bits(half, 3, 2) << 1
                | bit(half, 2) << 5;
            let imm = sext_field(imm, 9);
            let funct3 = if funct3 == 0b110 { 0b000 } else { 0b001 };
            let rs1 = creg(half >> 7);
            Ok((imm >> 12) << 31
                | ((imm >> 5) & 0x3f) << 25
                | rs1 << 15
                | funct3 << 12
                | ((imm >> 1) & 0xf) << 8
                | ((imm >> 11) & 1) << 7
                | 0b1100011)
        }
        // ---- Quadrant 2 ----
        (0b10, 0b000) => {
            // c.slli rd, shamt
            if bit(half, 12) != 0 {
                return reserved; // shamt[5] is RV64-only
            }
            let rd = bits(half, 7, 5);
            let shamt = bits(half, 2, 5);
            Ok(shamt << 20 | rd << 15 | 0b001 << 12 | rd << 7 | 0b0010011)
        }
        (0b10, 0b010) => {
            // c.lwsp rd, uimm(sp)
            let rd = bits(half, 7, 5);
            if rd == 0 {
                return reserved;
            }
            let imm = bit(half, 12) << 5 | bits(half, 4, 3) << 2 | bits(half, 2, 2) << 6;
            Ok(itype(imm, 2, 0b010, rd, 0b0000011))
        }
        (0b10, 0b100) => {
            let rd = bits(half, 7, 5);
            let rs2 = bits(half, 2, 5);
            match (bit(half, 12), rs2 == 0) {
                (0, false) => {
                    // c.mv rd, rs2 → add rd, zero, rs2
                    Ok(rs2 << 20 | rd << 7 | 0b0110011)
                }
                (0, true) => {
                    // c.jr rs1 → jalr zero, 0(rs1)
                    if rd == 0 {
                        return reserved;
                    }
                    Ok(itype(0, rd, 0b000, 0, 0b1100111))
                }
                (_, false) => {
                    // c.add rd, rs2 → add rd, rd, rs2
                    Ok(rs2 << 20 | rd << 15 | rd << 7 | 0b0110011)
                }
                (_, true) => {
                    if rd == 0 {
                        // c.ebreak
                        Ok(1 << 20 | 0b1110011)
                    } else {
                        // c.jalr rs1 → jalr ra, 0(rs1)
                        Ok(itype(0, rd, 0b000, 1, 0b1100111))
                    }
                }
            }
        }
        (0b10, 0b110) => {
            // c.swsp rs2, uimm(sp)
            let imm = bits(half, 9, 4) << 2 | bits(half, 7, 2) << 6;
            let rs2 = bits(half, 2, 5);
            Ok(
                (imm >> 5) << 25
                    | rs2 << 20
                    | 2 << 15
                    | 0b010 << 12
                    | (imm & 0x1f) << 7
                    | 0b0100011,
            )
        }
        _ => reserved,
    }
}

/// The CI-format 6-bit immediate `[12|6:2]`, sign-extended, as a masked
/// 12-bit field value.
fn sext6(half: u16) -> u32 {
    sext_field(bit(half, 12) << 5 | bits(half, 2, 5), 6)
}

/// Sign-extends the low `bits` bits into a masked 32-bit field value
/// (callers re-mask to their field width).
fn sext_field(value: u32, bits: u32) -> u32 {
    let shift = 32 - bits;
    (((value << shift) as i32) >> shift) as u32
}

/// Builds the `jal rd, offset` expansion of a CJ-format jump.
fn cj_jump(half: u16, rd: u32) -> u32 {
    let imm = bit(half, 12) << 11
        | bit(half, 11) << 4
        | bits(half, 9, 2) << 8
        | bit(half, 8) << 10
        | bit(half, 7) << 6
        | bit(half, 6) << 7
        | bits(half, 3, 3) << 1
        | bit(half, 2) << 5;
    let imm = sext_field(imm, 12);
    ((imm >> 20) & 1) << 31
        | ((imm >> 1) & 0x3ff) << 21
        | ((imm >> 11) & 1) << 20
        | ((imm >> 12) & 0xff) << 12
        | rd << 7
        | 0b1101111
}

/// Compresses a 32-bit instruction word to its canonical RVC form, when
/// one exists. Returns `None` for words with no 16-bit equivalent.
///
/// Only emits encodings whose [`expand`] is bit-for-bit `word`, so the
/// round-trip `expand(compress(w)?) == Ok(w)` always holds.
pub fn compress(word: u32) -> Option<u16> {
    let opcode = word & 0x7f;
    let rd = (word >> 7) & 0x1f;
    let funct3 = (word >> 12) & 0x7;
    let rs1 = (word >> 15) & 0x1f;
    let rs2 = (word >> 20) & 0x1f;
    let funct7 = word >> 25;
    let c = |r: u32| (8..16).contains(&r);
    let cfield = |r: u32| (r - 8) as u16;
    match opcode {
        0b0010011 => {
            let imm = sext_field(word >> 20, 12) as i32;
            match funct3 {
                0b000 => {
                    let fits6 = (-32..32).contains(&imm);
                    if rd == rs1 && rd != 0 && fits6 && imm != 0 {
                        // c.addi
                        return Some(ci(0b000, 0b01, rd, imm as u32));
                    }
                    if rd == 0 && rs1 == 0 && imm == 0 {
                        // c.nop
                        return Some(0x0001);
                    }
                    if rs1 == 0 && rd != 0 && fits6 {
                        // c.li
                        return Some(ci(0b010, 0b01, rd, imm as u32));
                    }
                    if rd == 2
                        && rs1 == 2
                        && imm != 0
                        && imm % 16 == 0
                        && (-512..512).contains(&imm)
                    {
                        // c.addi16sp
                        let u = imm as u32;
                        return Some(
                            0b011 << 13
                                | (((u >> 9) & 1) << 12
                                    | (2 << 7)
                                    | ((u >> 4) & 1) << 6
                                    | ((u >> 6) & 1) << 5
                                    | ((u >> 7) & 3) << 3
                                    | ((u >> 5) & 1) << 2) as u16
                                | 0b01,
                        );
                    }
                    if rs1 == 2 && c(rd) && imm > 0 && imm % 4 == 0 && imm < 1024 {
                        // c.addi4spn
                        let u = imm as u32;
                        return Some(
                            (((u >> 4) & 3) << 11
                                | ((u >> 6) & 0xf) << 7
                                | ((u >> 2) & 1) << 6
                                | ((u >> 3) & 1) << 5) as u16
                                | cfield(rd) << 2,
                        );
                    }
                    None
                }
                0b111 if rd == rs1 && c(rd) && (-32..32).contains(&imm) => {
                    // c.andi
                    Some(cb_alu(0b10, rd, imm as u32))
                }
                0b001 if funct7 == 0 && rd == rs1 && rd != 0 && rs2 != 0 => {
                    // c.slli (shamt in rs2 slot; nonzero canonical form)
                    Some(ci(0b000, 0b10, rd, rs2))
                }
                0b101 if rd == rs1 && c(rd) && rs2 != 0 => match funct7 {
                    // c.srli / c.srai
                    0 => Some(cb_alu(0b00, rd, rs2)),
                    0b010_0000 => Some(cb_alu(0b01, rd, rs2)),
                    _ => None,
                },
                _ => None,
            }
        }
        0b0110111 => {
            // c.lui: imm20 must sign-extend from its low 6 bits, be
            // nonzero, and rd must be neither x0-adjacent special.
            let imm20 = word >> 12;
            if rd != 0 && rd != 2 && imm20 != 0 && sext_field(imm20, 6) & 0xfffff == imm20 {
                Some(ci(0b011, 0b01, rd, imm20))
            } else {
                None
            }
        }
        0b0000011 if funct3 == 0b010 => {
            let imm = sext_field(word >> 20, 12) as i32;
            if c(rd) && c(rs1) && imm >= 0 && imm % 4 == 0 && imm < 128 {
                // c.lw
                let u = imm as u32;
                Some(
                    (0b010 << 13 | ((u >> 3) & 7) << 10 | ((u >> 2) & 1) << 6 | ((u >> 6) & 1) << 5)
                        as u16
                        | cfield(rs1) << 7
                        | cfield(rd) << 2,
                )
            } else if rs1 == 2 && rd != 0 && imm >= 0 && imm % 4 == 0 && imm < 256 {
                // c.lwsp
                let u = imm as u32;
                Some(
                    (0b010 << 13 | ((u >> 5) & 1) << 12 | ((u >> 2) & 7) << 4 | ((u >> 6) & 3) << 2)
                        as u16
                        | (rd as u16) << 7
                        | 0b10,
                )
            } else {
                None
            }
        }
        0b0100011 if funct3 == 0b010 => {
            let imm = sext_field((funct7 << 5) | rd, 12) as i32;
            if c(rs2) && c(rs1) && imm >= 0 && imm % 4 == 0 && imm < 128 {
                // c.sw
                let u = imm as u32;
                Some(
                    (0b110 << 13 | ((u >> 3) & 7) << 10 | ((u >> 2) & 1) << 6 | ((u >> 6) & 1) << 5)
                        as u16
                        | cfield(rs1) << 7
                        | cfield(rs2) << 2,
                )
            } else if rs1 == 2 && imm >= 0 && imm % 4 == 0 && imm < 256 {
                // c.swsp
                let u = imm as u32;
                Some(
                    (0b110 << 13 | ((u >> 2) & 0xf) << 9 | ((u >> 6) & 3) << 7) as u16
                        | (rs2 as u16) << 2
                        | 0b10,
                )
            } else {
                None
            }
        }
        0b0110011 => match (funct3, funct7) {
            (0b000, 0) if rd != 0 && rs2 != 0 && rs1 == 0 => {
                // c.mv
                Some(0b100 << 13 | (rd as u16) << 7 | (rs2 as u16) << 2 | 0b10)
            }
            (0b000, 0) if rd != 0 && rs2 != 0 && rs1 == rd => {
                // c.add
                Some(0b100 << 13 | 1 << 12 | (rd as u16) << 7 | (rs2 as u16) << 2 | 0b10)
            }
            (0b000, 0b010_0000) if rd == rs1 && c(rd) && c(rs2) => Some(ca(rd, 0b00, rs2)),
            (0b100, 0) if rd == rs1 && c(rd) && c(rs2) => Some(ca(rd, 0b01, rs2)),
            (0b110, 0) if rd == rs1 && c(rd) && c(rs2) => Some(ca(rd, 0b10, rs2)),
            (0b111, 0) if rd == rs1 && c(rd) && c(rs2) => Some(ca(rd, 0b11, rs2)),
            _ => None,
        },
        0b1101111 => {
            // c.jal (rd=ra) / c.j (rd=zero), for ±2 KiB even offsets.
            let imm = ((word >> 31) & 1) << 20
                | ((word >> 12) & 0xff) << 12
                | ((word >> 20) & 1) << 11
                | ((word >> 21) & 0x3ff) << 1;
            let offset = sext_field(imm, 21) as i32;
            if !(-2048..2048).contains(&offset) {
                return None;
            }
            let funct3 = match rd {
                0 => 0b101u16,
                1 => 0b001,
                _ => return None,
            };
            let u = offset as u32;
            Some(
                funct3 << 13
                    | (((u >> 11) & 1) << 12
                        | ((u >> 4) & 1) << 11
                        | ((u >> 8) & 3) << 9
                        | ((u >> 10) & 1) << 8
                        | ((u >> 6) & 1) << 7
                        | ((u >> 7) & 1) << 6
                        | ((u >> 1) & 7) << 3
                        | ((u >> 5) & 1) << 2) as u16
                    | 0b01,
            )
        }
        0b1100111 if funct3 == 0 && (word >> 20) & 0xfff == 0 && rs1 != 0 => match rd {
            // c.jr / c.jalr
            0 => Some(0b100 << 13 | (rs1 as u16) << 7 | 0b10),
            1 => Some(0b100 << 13 | 1 << 12 | (rs1 as u16) << 7 | 0b10),
            _ => None,
        },
        0b1100011 if (funct3 == 0b000 || funct3 == 0b001) && rs2 == 0 && c(rs1) => {
            // c.beqz / c.bnez, for ±256 B even offsets.
            let imm = ((word >> 31) & 1) << 12
                | ((word >> 7) & 1) << 11
                | ((word >> 25) & 0x3f) << 5
                | ((word >> 8) & 0xf) << 1;
            let offset = sext_field(imm, 13) as i32;
            if !(-256..256).contains(&offset) {
                return None;
            }
            let u = offset as u32;
            let f3 = if funct3 == 0 { 0b110u16 } else { 0b111 };
            Some(
                f3 << 13
                    | (((u >> 8) & 1) << 12
                        | ((u >> 3) & 3) << 10
                        | ((u >> 6) & 3) << 5
                        | ((u >> 1) & 3) << 3
                        | ((u >> 5) & 1) << 2) as u16
                    | cfield(rs1) << 7
                    | 0b01,
            )
        }
        0b1110011 if word == (1 << 20) | 0b1110011 => Some(0b100 << 13 | 1 << 12 | 0b10), // c.ebreak
        _ => None,
    }
}

/// CI-format encoder: `funct3 | imm[5] | rd | imm[4:0] | op`.
fn ci(funct3: u16, op: u16, rd: u32, imm: u32) -> u16 {
    funct3 << 13
        | (((imm >> 5) & 1) << 12) as u16
        | (rd as u16) << 7
        | ((imm & 0x1f) << 2) as u16
        | op
}

/// CB-format ALU encoder (srli/srai/andi): quadrant 1, funct3 100.
fn cb_alu(kind: u16, rd: u32, imm: u32) -> u16 {
    0b100 << 13
        | (((imm >> 5) & 1) << 12) as u16
        | kind << 10
        | ((rd - 8) as u16) << 7
        | ((imm & 0x1f) << 2) as u16
        | 0b01
}

/// CA-format encoder (sub/xor/or/and).
fn ca(rd: u32, funct2: u16, rs2: u32) -> u16 {
    0b100011 << 10 | ((rd - 8) as u16) << 7 | funct2 << 5 | ((rs2 - 8) as u16) << 2 | 0b01
}
