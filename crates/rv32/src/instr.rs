use std::fmt;

use crate::{Rv32Error, XReg};

/// Conditional-branch comparisons (`BRANCH` major opcode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BranchOp {
    Beq,
    Bne,
    Blt,
    Bge,
    Bltu,
    Bgeu,
}

impl BranchOp {
    /// All comparisons, for generators.
    pub const ALL: [BranchOp; 6] = [
        BranchOp::Beq,
        BranchOp::Bne,
        BranchOp::Blt,
        BranchOp::Bge,
        BranchOp::Bltu,
        BranchOp::Bgeu,
    ];

    pub(crate) fn funct3(self) -> u32 {
        match self {
            BranchOp::Beq => 0b000,
            BranchOp::Bne => 0b001,
            BranchOp::Blt => 0b100,
            BranchOp::Bge => 0b101,
            BranchOp::Bltu => 0b110,
            BranchOp::Bgeu => 0b111,
        }
    }

    fn mnemonic(self) -> &'static str {
        match self {
            BranchOp::Beq => "beq",
            BranchOp::Bne => "bne",
            BranchOp::Blt => "blt",
            BranchOp::Bge => "bge",
            BranchOp::Bltu => "bltu",
            BranchOp::Bgeu => "bgeu",
        }
    }
}

/// Load widths (`LOAD` major opcode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum LoadOp {
    Lb,
    Lh,
    Lw,
    Lbu,
    Lhu,
}

impl LoadOp {
    pub(crate) fn funct3(self) -> u32 {
        match self {
            LoadOp::Lb => 0b000,
            LoadOp::Lh => 0b001,
            LoadOp::Lw => 0b010,
            LoadOp::Lbu => 0b100,
            LoadOp::Lhu => 0b101,
        }
    }

    fn mnemonic(self) -> &'static str {
        match self {
            LoadOp::Lb => "lb",
            LoadOp::Lh => "lh",
            LoadOp::Lw => "lw",
            LoadOp::Lbu => "lbu",
            LoadOp::Lhu => "lhu",
        }
    }
}

/// Store widths (`STORE` major opcode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum StoreOp {
    Sb,
    Sh,
    Sw,
}

impl StoreOp {
    pub(crate) fn funct3(self) -> u32 {
        match self {
            StoreOp::Sb => 0b000,
            StoreOp::Sh => 0b001,
            StoreOp::Sw => 0b010,
        }
    }

    fn mnemonic(self) -> &'static str {
        match self {
            StoreOp::Sb => "sb",
            StoreOp::Sh => "sh",
            StoreOp::Sw => "sw",
        }
    }
}

/// Register-immediate ALU operations (`OP-IMM`, excluding shifts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum AluImmOp {
    Addi,
    Slti,
    Sltiu,
    Xori,
    Ori,
    Andi,
}

impl AluImmOp {
    pub(crate) fn funct3(self) -> u32 {
        match self {
            AluImmOp::Addi => 0b000,
            AluImmOp::Slti => 0b010,
            AluImmOp::Sltiu => 0b011,
            AluImmOp::Xori => 0b100,
            AluImmOp::Ori => 0b110,
            AluImmOp::Andi => 0b111,
        }
    }

    fn mnemonic(self) -> &'static str {
        match self {
            AluImmOp::Addi => "addi",
            AluImmOp::Slti => "slti",
            AluImmOp::Sltiu => "sltiu",
            AluImmOp::Xori => "xori",
            AluImmOp::Ori => "ori",
            AluImmOp::Andi => "andi",
        }
    }
}

/// Shift-by-immediate operations (`OP-IMM`, shamt encodings).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum ShiftImmOp {
    Slli,
    Srli,
    Srai,
}

impl ShiftImmOp {
    fn mnemonic(self) -> &'static str {
        match self {
            ShiftImmOp::Slli => "slli",
            ShiftImmOp::Srli => "srli",
            ShiftImmOp::Srai => "srai",
        }
    }
}

/// Register-register ALU operations (`OP`, funct7 ∈ {0, 0x20}).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum AluOp {
    Add,
    Sub,
    Sll,
    Slt,
    Sltu,
    Xor,
    Srl,
    Sra,
    Or,
    And,
}

impl AluOp {
    pub(crate) fn funct3(self) -> u32 {
        match self {
            AluOp::Add | AluOp::Sub => 0b000,
            AluOp::Sll => 0b001,
            AluOp::Slt => 0b010,
            AluOp::Sltu => 0b011,
            AluOp::Xor => 0b100,
            AluOp::Srl | AluOp::Sra => 0b101,
            AluOp::Or => 0b110,
            AluOp::And => 0b111,
        }
    }

    pub(crate) fn funct7(self) -> u32 {
        match self {
            AluOp::Sub | AluOp::Sra => 0b010_0000,
            _ => 0,
        }
    }

    fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Sll => "sll",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
            AluOp::Xor => "xor",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Or => "or",
            AluOp::And => "and",
        }
    }
}

/// M-extension multiply/divide operations (`OP`, funct7 = 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum MulOp {
    Mul,
    Mulh,
    Mulhsu,
    Mulhu,
    Div,
    Divu,
    Rem,
    Remu,
}

impl MulOp {
    pub(crate) fn funct3(self) -> u32 {
        match self {
            MulOp::Mul => 0b000,
            MulOp::Mulh => 0b001,
            MulOp::Mulhsu => 0b010,
            MulOp::Mulhu => 0b011,
            MulOp::Div => 0b100,
            MulOp::Divu => 0b101,
            MulOp::Rem => 0b110,
            MulOp::Remu => 0b111,
        }
    }

    fn mnemonic(self) -> &'static str {
        match self {
            MulOp::Mul => "mul",
            MulOp::Mulh => "mulh",
            MulOp::Mulhsu => "mulhsu",
            MulOp::Mulhu => "mulhu",
            MulOp::Div => "div",
            MulOp::Divu => "divu",
            MulOp::Rem => "rem",
            MulOp::Remu => "remu",
        }
    }
}

/// A decoded, field-validated RV32IM instruction.
///
/// Offsets and immediates are stored as byte/value quantities, not raw
/// encoding fields; [`encode`](Self::encode) validates ranges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rv32Instr {
    /// `lui rd, imm` — `rd = imm20 << 12` (the 20-bit field value).
    Lui {
        /// Destination register.
        rd: XReg,
        /// The 20-bit upper-immediate field, `0..2^20`.
        imm20: u32,
    },
    /// `auipc rd, imm` — `rd = pc + (imm20 << 12)`.
    Auipc {
        /// Destination register.
        rd: XReg,
        /// The 20-bit upper-immediate field, `0..2^20`.
        imm20: u32,
    },
    /// `jal rd, offset` — link `pc + len`, jump `pc + offset`.
    Jal {
        /// Link register (`x0` for a plain jump).
        rd: XReg,
        /// Signed byte displacement, even, ±1 MiB.
        offset: i32,
    },
    /// `jalr rd, offset(rs1)`.
    Jalr {
        /// Link register.
        rd: XReg,
        /// Base register.
        rs1: XReg,
        /// Signed byte displacement, 12-bit.
        offset: i32,
    },
    /// Conditional branch to `pc + offset`.
    Branch {
        /// The comparison.
        op: BranchOp,
        /// Left operand.
        rs1: XReg,
        /// Right operand.
        rs2: XReg,
        /// Signed byte displacement, even, ±4 KiB.
        offset: i32,
    },
    /// Load from `rs1 + offset`.
    Load {
        /// The width/extension.
        op: LoadOp,
        /// Destination register.
        rd: XReg,
        /// Base register.
        rs1: XReg,
        /// Signed byte displacement, 12-bit.
        offset: i32,
    },
    /// Store to `rs1 + offset`.
    Store {
        /// The width.
        op: StoreOp,
        /// Source register.
        rs2: XReg,
        /// Base register.
        rs1: XReg,
        /// Signed byte displacement, 12-bit.
        offset: i32,
    },
    /// Register-immediate ALU operation.
    AluImm {
        /// The operation.
        op: AluImmOp,
        /// Destination register.
        rd: XReg,
        /// Source register.
        rs1: XReg,
        /// Signed immediate, 12-bit.
        imm: i32,
    },
    /// Shift by immediate amount.
    ShiftImm {
        /// The shift.
        op: ShiftImmOp,
        /// Destination register.
        rd: XReg,
        /// Source register.
        rs1: XReg,
        /// Shift amount, 0..32.
        shamt: u8,
    },
    /// Register-register ALU operation.
    Alu {
        /// The operation.
        op: AluOp,
        /// Destination register.
        rd: XReg,
        /// Left source.
        rs1: XReg,
        /// Right source.
        rs2: XReg,
    },
    /// M-extension multiply/divide.
    Mul {
        /// The operation.
        op: MulOp,
        /// Destination register.
        rd: XReg,
        /// Left source.
        rs1: XReg,
        /// Right source.
        rs2: XReg,
    },
    /// Environment call (SPIM-style services keyed on `a7`).
    Ecall,
    /// Breakpoint.
    Ebreak,
    /// Memory fence (a no-op for this single-hart model).
    Fence,
}

/// Validates that `value` fits a signed `bits`-bit field.
fn check_signed(field: &'static str, value: i32, bits: u32) -> Result<(), Rv32Error> {
    let bound = 1i32 << (bits - 1);
    if (-bound..bound).contains(&value) {
        Ok(())
    } else {
        Err(Rv32Error::FieldOutOfRange {
            field,
            value: i64::from(value),
        })
    }
}

/// Validates an even signed displacement for a `bits`-bit (including
/// the implicit zero bit) branch/jump field.
fn check_offset(field: &'static str, value: i32, bits: u32) -> Result<(), Rv32Error> {
    if value % 2 != 0 {
        return Err(Rv32Error::FieldOutOfRange {
            field,
            value: i64::from(value),
        });
    }
    check_signed(field, value, bits)
}

impl Rv32Instr {
    /// Encodes to the 32-bit instruction word.
    ///
    /// # Errors
    ///
    /// [`Rv32Error::FieldOutOfRange`] when an immediate, shift amount,
    /// or displacement does not fit its field.
    pub fn encode(&self) -> Result<u32, Rv32Error> {
        let r = |v: XReg| u32::from(v.number());
        Ok(match *self {
            Rv32Instr::Lui { rd, imm20 } => {
                check_upper(imm20)?;
                (imm20 << 12) | (r(rd) << 7) | 0b0110111
            }
            Rv32Instr::Auipc { rd, imm20 } => {
                check_upper(imm20)?;
                (imm20 << 12) | (r(rd) << 7) | 0b0010111
            }
            Rv32Instr::Jal { rd, offset } => {
                check_offset("jal offset", offset, 21)?;
                let imm = offset as u32;
                let encoded = ((imm >> 20) & 1) << 31
                    | ((imm >> 1) & 0x3ff) << 21
                    | ((imm >> 11) & 1) << 20
                    | ((imm >> 12) & 0xff) << 12;
                encoded | (r(rd) << 7) | 0b1101111
            }
            Rv32Instr::Jalr { rd, rs1, offset } => {
                check_signed("jalr offset", offset, 12)?;
                ((offset as u32) & 0xfff) << 20 | (r(rs1) << 15) | (r(rd) << 7) | 0b1100111
            }
            Rv32Instr::Branch {
                op,
                rs1,
                rs2,
                offset,
            } => {
                check_offset("branch offset", offset, 13)?;
                let imm = offset as u32;
                ((imm >> 12) & 1) << 31
                    | ((imm >> 5) & 0x3f) << 25
                    | (r(rs2) << 20)
                    | (r(rs1) << 15)
                    | (op.funct3() << 12)
                    | ((imm >> 1) & 0xf) << 8
                    | ((imm >> 11) & 1) << 7
                    | 0b1100011
            }
            Rv32Instr::Load {
                op,
                rd,
                rs1,
                offset,
            } => {
                check_signed("load offset", offset, 12)?;
                ((offset as u32) & 0xfff) << 20
                    | (r(rs1) << 15)
                    | (op.funct3() << 12)
                    | (r(rd) << 7)
                    | 0b0000011
            }
            Rv32Instr::Store {
                op,
                rs2,
                rs1,
                offset,
            } => {
                check_signed("store offset", offset, 12)?;
                let imm = offset as u32;
                ((imm >> 5) & 0x7f) << 25
                    | (r(rs2) << 20)
                    | (r(rs1) << 15)
                    | (op.funct3() << 12)
                    | (imm & 0x1f) << 7
                    | 0b0100011
            }
            Rv32Instr::AluImm { op, rd, rs1, imm } => {
                check_signed("immediate", imm, 12)?;
                ((imm as u32) & 0xfff) << 20
                    | (r(rs1) << 15)
                    | (op.funct3() << 12)
                    | (r(rd) << 7)
                    | 0b0010011
            }
            Rv32Instr::ShiftImm { op, rd, rs1, shamt } => {
                if shamt >= 32 {
                    return Err(Rv32Error::FieldOutOfRange {
                        field: "shamt",
                        value: i64::from(shamt),
                    });
                }
                let (funct3, funct7) = match op {
                    ShiftImmOp::Slli => (0b001, 0),
                    ShiftImmOp::Srli => (0b101, 0),
                    ShiftImmOp::Srai => (0b101, 0b010_0000),
                };
                (funct7 << 25)
                    | (u32::from(shamt) << 20)
                    | (r(rs1) << 15)
                    | (funct3 << 12)
                    | (r(rd) << 7)
                    | 0b0010011
            }
            Rv32Instr::Alu { op, rd, rs1, rs2 } => {
                (op.funct7() << 25)
                    | (r(rs2) << 20)
                    | (r(rs1) << 15)
                    | (op.funct3() << 12)
                    | (r(rd) << 7)
                    | 0b0110011
            }
            Rv32Instr::Mul { op, rd, rs1, rs2 } => {
                (1 << 25)
                    | (r(rs2) << 20)
                    | (r(rs1) << 15)
                    | (op.funct3() << 12)
                    | (r(rd) << 7)
                    | 0b0110011
            }
            Rv32Instr::Ecall => 0b1110011,
            Rv32Instr::Ebreak => (1 << 20) | 0b1110011,
            Rv32Instr::Fence => 0b0001111,
        })
    }
}

fn check_upper(imm20: u32) -> Result<(), Rv32Error> {
    if imm20 < (1 << 20) {
        Ok(())
    } else {
        Err(Rv32Error::FieldOutOfRange {
            field: "imm20",
            value: i64::from(imm20),
        })
    }
}

impl fmt::Display for Rv32Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Rv32Instr::Lui { rd, imm20 } => write!(f, "lui {rd}, {imm20:#x}"),
            Rv32Instr::Auipc { rd, imm20 } => write!(f, "auipc {rd}, {imm20:#x}"),
            Rv32Instr::Jal { rd, offset } => write!(f, "jal {rd}, {offset}"),
            Rv32Instr::Jalr { rd, rs1, offset } => write!(f, "jalr {rd}, {offset}({rs1})"),
            Rv32Instr::Branch {
                op,
                rs1,
                rs2,
                offset,
            } => write!(f, "{} {rs1}, {rs2}, {offset}", op.mnemonic()),
            Rv32Instr::Load {
                op,
                rd,
                rs1,
                offset,
            } => write!(f, "{} {rd}, {offset}({rs1})", op.mnemonic()),
            Rv32Instr::Store {
                op,
                rs2,
                rs1,
                offset,
            } => write!(f, "{} {rs2}, {offset}({rs1})", op.mnemonic()),
            Rv32Instr::AluImm { op, rd, rs1, imm } => {
                write!(f, "{} {rd}, {rs1}, {imm}", op.mnemonic())
            }
            Rv32Instr::ShiftImm { op, rd, rs1, shamt } => {
                write!(f, "{} {rd}, {rs1}, {shamt}", op.mnemonic())
            }
            Rv32Instr::Alu { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", op.mnemonic())
            }
            Rv32Instr::Mul { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", op.mnemonic())
            }
            Rv32Instr::Ecall => f.write_str("ecall"),
            Rv32Instr::Ebreak => f.write_str("ebreak"),
            Rv32Instr::Fence => f.write_str("fence"),
        }
    }
}
