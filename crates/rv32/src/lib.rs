//! RISC-V RV32 backend for the CCRP reproduction.
//!
//! The paper (§5) proposes evaluating CCRP "on instruction sets other
//! than MIPS"; RV32 is the embedded ISA that actually won, and — via
//! the C extension — the one that answers the obvious competing
//! question: how does byte-Huffman line compression compare with an
//! ISA-level 16-bit re-encoding, and do the two compose? This crate
//! supplies everything the cross-ISA experiments need:
//!
//! * [`Rv32Instr`] + [`decode32`] — the user-mode RV32IM subset;
//! * [`rvc`] — RVC (compressed) expansion and canonical compression,
//!   with a differential proptest suite proving every 16-bit form
//!   architecturally equivalent to its 32-bit expansion;
//! * [`Rv32Asm`] — a typed builder assembling one program into both
//!   [`Encoding::Rv32I`] and [`Encoding::Rv32C`] text;
//! * [`Rv32Machine`] — a small emulator core (plain or CCRP
//!   compressed-ROM fetch path) recording the same `(pc, data)` traces
//!   `ccrp-sim` replays;
//! * [`workloads`] — RV32 ports of the paper's eight benchmarks,
//!   padded to the paper's static text sizes;
//! * [`progen`] — a seeded terminating-program generator for the RV32
//!   lockstep difftest campaign.
//!
//! The [`Rv32`] and [`Rv32c`] markers implement
//! [`ccrp_isa::Isa`], making this crate the second backend behind the
//! suite's ISA abstraction (MIPS being the first).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asm;
mod codegen;
mod decode;
mod error;
mod instr;
mod machine;
pub mod progen;
mod reg;
pub mod rvc;
pub mod workloads;

pub use asm::{Encoding, Label, Rv32Asm, Rv32Image};
pub use codegen::generate_filler;
pub use decode::decode32;
pub use error::{Rv32Error, Rv32Fault};
pub use instr::{AluImmOp, AluOp, BranchOp, LoadOp, MulOp, Rv32Instr, ShiftImmOp, StoreOp};
pub use machine::{Rv32Config, Rv32Machine};
pub use reg::{XReg, ABI_NAMES};

use ccrp_isa::Isa;

/// Decodes the instruction starting at `bytes[0]`, expanding an RVC
/// halfword first when `compressed` front ends are allowed.
fn decode_bytes_impl(bytes: &[u8], allow_rvc: bool) -> Result<(Rv32Instr, u32), Rv32Error> {
    let low = match bytes {
        [a, b, ..] => u16::from_le_bytes([*a, *b]),
        _ => return Err(Rv32Error::InvalidEncoding { word: 0 }),
    };
    if rvc::instr_bytes(low) == 2 {
        if !allow_rvc {
            return Err(Rv32Error::InvalidCompressed { half: low });
        }
        return Ok((decode32(rvc::expand(low)?)?, 2));
    }
    let chunk: [u8; 4] =
        bytes
            .get(..4)
            .and_then(|s| s.try_into().ok())
            .ok_or(Rv32Error::InvalidEncoding {
                word: u32::from(low),
            })?;
    Ok((decode32(u32::from_le_bytes(chunk))?, 4))
}

fn disassemble_bytes_impl(bytes: &[u8], allow_rvc: bool) -> String {
    match decode_bytes_impl(bytes, allow_rvc) {
        Ok((instr, 2)) => format!("c.[{instr}]"),
        Ok((instr, _)) => instr.to_string(),
        Err(_) => match bytes {
            [a, b, ..] => format!(".half {:#06x}", u16::from_le_bytes([*a, *b])),
            _ => "<truncated>".to_string(),
        },
    }
}

/// The base RV32I(M) encoding: every instruction 32 bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Rv32;

impl Isa for Rv32 {
    const NAME: &'static str = "rv32i";
    const GPR_COUNT: usize = 32;
    const MIN_INSTR_BYTES: u32 = 4;

    type Instr = Rv32Instr;
    type DecodeError = Rv32Error;

    fn instr_bytes(_low_halfword: u16) -> u32 {
        4
    }

    fn gpr_name(index: usize) -> &'static str {
        // panic-ok: caller contract — index < GPR_COUNT.
        ABI_NAMES[index]
    }

    fn decode_bytes(bytes: &[u8]) -> Result<(Self::Instr, u32), Self::DecodeError> {
        decode_bytes_impl(bytes, false)
    }

    fn disassemble_bytes(bytes: &[u8]) -> String {
        disassemble_bytes_impl(bytes, false)
    }
}

/// RV32 with the C extension: 16- and 32-bit instructions interleave.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Rv32c;

impl Isa for Rv32c {
    const NAME: &'static str = "rv32c";
    const GPR_COUNT: usize = 32;
    const MIN_INSTR_BYTES: u32 = 2;

    type Instr = Rv32Instr;
    type DecodeError = Rv32Error;

    fn instr_bytes(low_halfword: u16) -> u32 {
        rvc::instr_bytes(low_halfword)
    }

    fn gpr_name(index: usize) -> &'static str {
        // panic-ok: caller contract — index < GPR_COUNT.
        ABI_NAMES[index]
    }

    fn decode_bytes(bytes: &[u8]) -> Result<(Self::Instr, u32), Self::DecodeError> {
        decode_bytes_impl(bytes, true)
    }

    fn disassemble_bytes(bytes: &[u8]) -> String {
        disassemble_bytes_impl(bytes, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_two_isa_markers_disagree_only_on_width() {
        // addi sp, sp, -16 as a 32-bit word decodes under both.
        let word = 0xff010113u32.to_le_bytes();
        assert_eq!(
            Rv32::decode_bytes(&word).unwrap(),
            Rv32c::decode_bytes(&word).unwrap()
        );
        // c.addi sp, -16 (0x1141) decodes only under Rv32c.
        let half = 0x1141u16.to_le_bytes();
        assert!(Rv32::decode_bytes(&half).is_err());
        let (instr, len) = Rv32c::decode_bytes(&half).unwrap();
        assert_eq!(len, 2);
        assert_eq!(
            instr,
            Rv32Instr::AluImm {
                op: AluImmOp::Addi,
                rd: XReg::SP,
                rs1: XReg::SP,
                imm: -16
            }
        );
        assert_eq!(Rv32c::instr_bytes(0x1141), 2);
        assert_eq!(Rv32c::instr_bytes(0x0113), 4);
    }
}
