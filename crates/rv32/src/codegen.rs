//! Deterministic synthesis of realistic RV32 object code.
//!
//! The MIPS side pads each workload's hand-written kernel with
//! synthesized "library" text so static image sizes match the paper's
//! Table 1; the RV32 ports do the same. The filler mimics the operand
//! mix of embedded RV32 compiler output: stack- and struct-relative
//! word loads/stores with small aligned offsets, `addi`-heavy
//! immediate traffic on a small register pool, `lui`/`addi` address
//! pairs, and short branch/jump displacements. What matters is the
//! resulting *byte distribution* (for the byte-Huffman codecs) and the
//! *compressibility mix* (for the RVC encoder): most filler
//! instructions have canonical 16-bit forms, some do not — as in real
//! RV32C text.
//!
//! Everything is seeded: a given `(seed, min_bytes)` always produces
//! the same instruction list, and the padding is never executed (it
//! sits after the kernel's exit `ecall`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::instr::{AluImmOp, AluOp, BranchOp, LoadOp, Rv32Instr, ShiftImmOp, StoreOp};
use crate::XReg;

/// The compiler-favoured register pool, weighted toward the RVC-reachable
/// registers (`x8`..`x15`) the way real RV32C output is.
fn pick_reg(rng: &mut StdRng) -> XReg {
    const POOL: [XReg; 16] = [
        XReg::S0,
        XReg::S1,
        XReg::A0,
        XReg::A1,
        XReg::A2,
        XReg::A3,
        XReg::A4,
        XReg::A5,
        XReg::A0,
        XReg::A1,
        XReg::S0,
        XReg::SP,
        XReg::T0,
        XReg::T1,
        XReg::S2,
        XReg::RA,
    ];
    POOL[rng.gen_range(0..POOL.len())]
}

/// Generates at least `min_bytes` of RV32I-encoded filler (4 bytes per
/// instruction), seeded and deterministic.
pub fn generate_filler(seed: u64, min_bytes: usize) -> Vec<Rv32Instr> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5256_3332); // "RV32"
    let mut out = Vec::with_capacity(min_bytes / 4 + 8);
    while out.len() * 4 < min_bytes {
        emit_function(&mut rng, &mut out);
    }
    out
}

/// One synthesized "function": prologue, body, epilogue, return.
fn emit_function(rng: &mut StdRng, out: &mut Vec<Rv32Instr>) {
    let frame = 16 * rng.gen_range(1..4);
    out.push(Rv32Instr::AluImm {
        op: AluImmOp::Addi,
        rd: XReg::SP,
        rs1: XReg::SP,
        imm: -frame,
    });
    out.push(Rv32Instr::Store {
        op: StoreOp::Sw,
        rs2: XReg::RA,
        rs1: XReg::SP,
        offset: frame - 4,
    });
    let body = rng.gen_range(6..40);
    for _ in 0..body {
        emit_body_instr(rng, out);
    }
    out.push(Rv32Instr::Load {
        op: LoadOp::Lw,
        rd: XReg::RA,
        rs1: XReg::SP,
        offset: frame - 4,
    });
    out.push(Rv32Instr::AluImm {
        op: AluImmOp::Addi,
        rd: XReg::SP,
        rs1: XReg::SP,
        imm: frame,
    });
    // `ret`.
    out.push(Rv32Instr::Jalr {
        rd: XReg::ZERO,
        rs1: XReg::RA,
        offset: 0,
    });
}

fn emit_body_instr(rng: &mut StdRng, out: &mut Vec<Rv32Instr>) {
    let (rd, rs1, rs2) = (pick_reg(rng), pick_reg(rng), pick_reg(rng));
    match rng.gen_range(0..100u32) {
        // Word loads/stores at small aligned offsets dominate.
        0..=27 => out.push(Rv32Instr::Load {
            op: LoadOp::Lw,
            rd,
            rs1,
            offset: 4 * rng.gen_range(0..16),
        }),
        28..=43 => out.push(Rv32Instr::Store {
            op: StoreOp::Sw,
            rs2: rd,
            rs1,
            offset: 4 * rng.gen_range(0..16),
        }),
        // `addi` is the workhorse of address and loop arithmetic.
        44..=63 => out.push(Rv32Instr::AluImm {
            op: AluImmOp::Addi,
            rd,
            rs1,
            imm: rng.gen_range(-32..32),
        }),
        64..=71 => {
            // A `lui`/`addi` global-address pair.
            let page = rng.gen_range(0..64) << 4;
            out.push(Rv32Instr::Lui { rd, imm20: page });
            out.push(Rv32Instr::AluImm {
                op: AluImmOp::Addi,
                rd,
                rs1: rd,
                imm: rng.gen_range(0..512),
            });
        }
        72..=83 => out.push(Rv32Instr::Alu {
            op: [
                AluOp::Add,
                AluOp::Sub,
                AluOp::And,
                AluOp::Or,
                AluOp::Xor,
                AluOp::Sltu,
            ][rng.gen_range(0..6)],
            rd,
            rs1,
            rs2,
        }),
        84..=89 => out.push(Rv32Instr::ShiftImm {
            op: [ShiftImmOp::Slli, ShiftImmOp::Srli, ShiftImmOp::Srai][rng.gen_range(0..3)],
            rd,
            rs1,
            shamt: rng.gen_range(1..5) * 2,
        }),
        90..=95 => out.push(Rv32Instr::Branch {
            op: [BranchOp::Beq, BranchOp::Bne, BranchOp::Blt, BranchOp::Bgeu][rng.gen_range(0..4)],
            rs1,
            rs2,
            offset: 2 * rng.gen_range(-60..60),
        }),
        96..=97 => out.push(Rv32Instr::Jal {
            rd: XReg::RA,
            offset: 2 * rng.gen_range(-500..500),
        }),
        98 => out.push(Rv32Instr::Load {
            op: LoadOp::Lbu,
            rd,
            rs1,
            offset: rng.gen_range(0..64),
        }),
        _ => out.push(Rv32Instr::Store {
            op: StoreOp::Sb,
            rs2: rd,
            rs1,
            offset: rng.gen_range(0..64),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rvc;

    #[test]
    fn filler_is_deterministic_encodable_and_mixed() {
        let a = generate_filler(7, 4096);
        let b = generate_filler(7, 4096);
        assert_eq!(a, b);
        assert!(a.len() * 4 >= 4096);
        let mut compressible = 0usize;
        for instr in &a {
            let word = instr.encode().expect("filler encodes");
            if rvc::compress(word).is_some() {
                compressible += 1;
            }
        }
        // Realistic RV32C text compresses a majority — but not all —
        // of its instructions.
        assert!(
            compressible * 10 > a.len() * 3,
            "{compressible}/{}",
            a.len()
        );
        assert!(compressible < a.len());
    }
}
