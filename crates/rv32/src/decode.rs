use crate::instr::{AluImmOp, AluOp, BranchOp, LoadOp, MulOp, Rv32Instr, ShiftImmOp, StoreOp};
use crate::{Rv32Error, XReg};

/// Sign-extends the low `bits` bits of `value`.
fn sext(value: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((value << shift) as i32) >> shift
}

fn xreg(field: u32) -> XReg {
    // The field is a 5-bit slice, so the range check cannot fail.
    XReg::new((field & 0x1f) as u8).unwrap_or(XReg::ZERO)
}

/// Decodes a full 32-bit RV32IM instruction word.
///
/// # Errors
///
/// [`Rv32Error::InvalidEncoding`] for anything that is not a supported
/// user-mode RV32IM instruction — including 16-bit (compressed)
/// encodings, which belong to [`expand`](crate::rvc::expand).
pub fn decode32(word: u32) -> Result<Rv32Instr, Rv32Error> {
    let illegal = Err(Rv32Error::InvalidEncoding { word });
    if word & 0b11 != 0b11 {
        return illegal;
    }
    let opcode = word & 0x7f;
    let rd = xreg(word >> 7);
    let funct3 = (word >> 12) & 0x7;
    let rs1 = xreg(word >> 15);
    let rs2 = xreg(word >> 20);
    let funct7 = word >> 25;
    Ok(match opcode {
        0b0110111 => Rv32Instr::Lui {
            rd,
            imm20: word >> 12,
        },
        0b0010111 => Rv32Instr::Auipc {
            rd,
            imm20: word >> 12,
        },
        0b1101111 => {
            let imm = ((word >> 31) & 1) << 20
                | ((word >> 12) & 0xff) << 12
                | ((word >> 20) & 1) << 11
                | ((word >> 21) & 0x3ff) << 1;
            Rv32Instr::Jal {
                rd,
                offset: sext(imm, 21),
            }
        }
        0b1100111 => {
            if funct3 != 0 {
                return illegal;
            }
            Rv32Instr::Jalr {
                rd,
                rs1,
                offset: sext(word >> 20, 12),
            }
        }
        0b1100011 => {
            let op = match funct3 {
                0b000 => BranchOp::Beq,
                0b001 => BranchOp::Bne,
                0b100 => BranchOp::Blt,
                0b101 => BranchOp::Bge,
                0b110 => BranchOp::Bltu,
                0b111 => BranchOp::Bgeu,
                _ => return illegal,
            };
            let imm = ((word >> 31) & 1) << 12
                | ((word >> 7) & 1) << 11
                | ((word >> 25) & 0x3f) << 5
                | ((word >> 8) & 0xf) << 1;
            Rv32Instr::Branch {
                op,
                rs1,
                rs2,
                offset: sext(imm, 13),
            }
        }
        0b0000011 => {
            let op = match funct3 {
                0b000 => LoadOp::Lb,
                0b001 => LoadOp::Lh,
                0b010 => LoadOp::Lw,
                0b100 => LoadOp::Lbu,
                0b101 => LoadOp::Lhu,
                _ => return illegal,
            };
            Rv32Instr::Load {
                op,
                rd,
                rs1,
                offset: sext(word >> 20, 12),
            }
        }
        0b0100011 => {
            let op = match funct3 {
                0b000 => StoreOp::Sb,
                0b001 => StoreOp::Sh,
                0b010 => StoreOp::Sw,
                _ => return illegal,
            };
            let imm = ((word >> 25) & 0x7f) << 5 | ((word >> 7) & 0x1f);
            Rv32Instr::Store {
                op,
                rs2,
                rs1,
                offset: sext(imm, 12),
            }
        }
        0b0010011 => match funct3 {
            0b001 | 0b101 => {
                let shamt = ((word >> 20) & 0x1f) as u8;
                let op = match (funct3, funct7) {
                    (0b001, 0) => ShiftImmOp::Slli,
                    (0b101, 0) => ShiftImmOp::Srli,
                    (0b101, 0b010_0000) => ShiftImmOp::Srai,
                    _ => return illegal,
                };
                Rv32Instr::ShiftImm { op, rd, rs1, shamt }
            }
            _ => {
                let op = match funct3 {
                    0b000 => AluImmOp::Addi,
                    0b010 => AluImmOp::Slti,
                    0b011 => AluImmOp::Sltiu,
                    0b100 => AluImmOp::Xori,
                    0b110 => AluImmOp::Ori,
                    0b111 => AluImmOp::Andi,
                    _ => return illegal,
                };
                Rv32Instr::AluImm {
                    op,
                    rd,
                    rs1,
                    imm: sext(word >> 20, 12),
                }
            }
        },
        0b0110011 => match funct7 {
            0 | 0b010_0000 => {
                let op = match (funct3, funct7) {
                    (0b000, 0) => AluOp::Add,
                    (0b000, _) => AluOp::Sub,
                    (0b001, 0) => AluOp::Sll,
                    (0b010, 0) => AluOp::Slt,
                    (0b011, 0) => AluOp::Sltu,
                    (0b100, 0) => AluOp::Xor,
                    (0b101, 0) => AluOp::Srl,
                    (0b101, _) => AluOp::Sra,
                    (0b110, 0) => AluOp::Or,
                    (0b111, 0) => AluOp::And,
                    _ => return illegal,
                };
                Rv32Instr::Alu { op, rd, rs1, rs2 }
            }
            1 => {
                let op = match funct3 {
                    0b000 => MulOp::Mul,
                    0b001 => MulOp::Mulh,
                    0b010 => MulOp::Mulhsu,
                    0b011 => MulOp::Mulhu,
                    0b100 => MulOp::Div,
                    0b101 => MulOp::Divu,
                    0b110 => MulOp::Rem,
                    _ => MulOp::Remu,
                };
                Rv32Instr::Mul { op, rd, rs1, rs2 }
            }
            _ => return illegal,
        },
        0b1110011 => match word >> 7 {
            0 => Rv32Instr::Ecall,
            0x2000 => Rv32Instr::Ebreak,
            _ => return illegal,
        },
        0b0001111 => {
            if funct3 != 0 {
                return illegal;
            }
            Rv32Instr::Fence
        }
        _ => return illegal,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_words_decode() {
        // addi sp, sp, -16
        assert_eq!(
            decode32(0xff010113).unwrap(),
            Rv32Instr::AluImm {
                op: AluImmOp::Addi,
                rd: XReg::SP,
                rs1: XReg::SP,
                imm: -16
            }
        );
        // lw a0, 8(sp)
        assert_eq!(
            decode32(0x00812503).unwrap(),
            Rv32Instr::Load {
                op: LoadOp::Lw,
                rd: XReg::A0,
                rs1: XReg::SP,
                offset: 8
            }
        );
        // ecall / ebreak
        assert_eq!(decode32(0x00000073).unwrap(), Rv32Instr::Ecall);
        assert_eq!(decode32(0x00100073).unwrap(), Rv32Instr::Ebreak);
    }

    #[test]
    fn compressed_and_junk_are_rejected() {
        assert!(decode32(0x0001).is_err()); // 16-bit encoding space
        assert!(decode32(0xffff_ffff).is_err());
        assert!(decode32(0).is_err());
    }
}
