//! Functional RV32IM(+C) emulator core with trace capture.
//!
//! The RV32 counterpart of `ccrp-emu`'s MIPS [`Machine`]: executes an
//! [`Rv32Image`] (either base-encoding or RVC text — the fetch path
//! expands 16-bit forms on the fly), records `(pc, data-access)`
//! streams through the shared [`TraceSink`] interface, and optionally
//! fetches from a CCRP [`CompressedImage`] ROM with demand-driven line
//! expansion — including instructions that straddle a 32-byte line
//! boundary, which cannot happen on MIPS but is routine with RVC.
//!
//! Environment calls follow the SPIM-style convention the MIPS side
//! uses, keyed on `a7`: 1 = print integer (`a0`), 11 = print character,
//! 10 = exit(0), 17 = exit with code (`a0`).
//!
//! [`Machine`]: ccrp_emu::Machine

use ccrp::CompressedImage;
use ccrp_emu::{IsaCore, Memory, TraceSink};

use crate::instr::{AluImmOp, AluOp, BranchOp, LoadOp, MulOp, Rv32Instr, ShiftImmOp, StoreOp};
use crate::{decode32, rvc, Rv32Fault, Rv32Image, XReg};

/// Construction-time knobs, mirroring `ccrp-emu`'s `MachineConfig`.
#[derive(Debug, Clone)]
pub struct Rv32Config {
    /// Initial stack pointer.
    pub initial_sp: u32,
    /// Hard ceiling on retired instructions before [`Rv32Fault::StepLimit`].
    pub max_steps: u64,
}

impl Default for Rv32Config {
    fn default() -> Self {
        Self {
            initial_sp: 0x00F0_0000,
            max_steps: 200_000_000,
        }
    }
}

/// A compressed instruction ROM the fetch path expands on demand.
struct Rom {
    image: CompressedImage,
    /// Which 32-byte lines have been expanded into the text buffer.
    ready: Vec<bool>,
}

/// The RV32 emulator core. See the module docs.
pub struct Rv32Machine {
    regs: [u32; 32],
    pc: u32,
    mem: Memory,
    text: Vec<u8>,
    /// Decoded-instruction cache, one slot per halfword.
    decoded: Vec<Option<(Rv32Instr, u32)>>,
    rom: Option<Rom>,
    output: String,
    exit: Option<i32>,
    steps: u64,
    config: Rv32Config,
}

impl Rv32Machine {
    /// A machine executing `image` from plain (uncompressed) ROM.
    pub fn new(image: &Rv32Image) -> Self {
        Self::with_config(image, Rv32Config::default())
    }

    /// [`new`](Self::new) with explicit configuration.
    pub fn with_config(image: &Rv32Image, config: Rv32Config) -> Self {
        let text = image.text().to_vec();
        let mut machine = Self::empty(text.len(), config);
        machine.mem.load(0, &text);
        machine.text = text;
        machine
    }

    /// A machine fetching from the compressed ROM `rom`, which must
    /// compress exactly `image`'s text. Lines are expanded on first
    /// fetch; an expansion failure surfaces as [`Rv32Fault::RomFault`].
    ///
    /// # Errors
    ///
    /// A description of the mismatch when `rom` does not cover the
    /// image's text segment.
    pub fn with_compressed_text(
        image: &Rv32Image,
        rom: &CompressedImage,
        config: Rv32Config,
    ) -> Result<Self, String> {
        if rom.text_base() != image.text_base() {
            return Err(format!(
                "ROM text base {:#x} != image text base {:#x}",
                rom.text_base(),
                image.text_base()
            ));
        }
        // The CCRP builder pads text to whole 32-byte lines, so the ROM
        // may cover more than the image; it must never cover less.
        if rom.original_bytes() < image.text_size() {
            return Err(format!(
                "ROM covers {} bytes, image text is {} bytes",
                rom.original_bytes(),
                image.text_size()
            ));
        }
        let len = image.text().len();
        let mut machine = Self::empty(len, config);
        machine.text = vec![0; len];
        machine.rom = Some(Rom {
            image: rom.clone(),
            ready: vec![false; len.div_ceil(32)],
        });
        // Data reads of text go through `mem`, so preload the real
        // bytes there: CCRP compresses the fetch path, not the bus the
        // data side reads constants over.
        machine.mem.load(0, image.text());
        Ok(machine)
    }

    fn empty(text_len: usize, config: Rv32Config) -> Self {
        let mut regs = [0u32; 32];
        regs[XReg::SP.number() as usize] = config.initial_sp;
        Self {
            regs,
            pc: 0,
            mem: Memory::new(),
            text: Vec::new(),
            decoded: vec![None; text_len.div_ceil(2)],
            rom: None,
            output: String::new(),
            exit: None,
            steps: 0,
            config,
        }
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Value of `reg`.
    pub fn reg(&self, reg: XReg) -> u32 {
        self.regs[reg.number() as usize]
    }

    /// Sets `reg` (writes to `zero` are discarded, as in hardware).
    pub fn set_reg(&mut self, reg: XReg, value: u32) {
        if reg != XReg::ZERO {
            self.regs[reg.number() as usize] = value;
        }
    }

    /// `Some(code)` once the program has exited.
    pub fn exit_code(&self) -> Option<i32> {
        self.exit
    }

    /// Retired-instruction count.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Console output so far.
    pub fn output(&self) -> &str {
        &self.output
    }

    /// The aligned memory word at `addr`, when mapped.
    pub fn read_word(&self, addr: u32) -> Option<u32> {
        self.mem.read_u32(addr)
    }

    /// Runs to exit (or fault), reporting events to `sink`.
    ///
    /// # Errors
    ///
    /// The first [`Rv32Fault`] raised, including [`Rv32Fault::StepLimit`]
    /// when `max_steps` run out.
    pub fn run(&mut self, sink: &mut impl TraceSink) -> Result<(), Rv32Fault> {
        while self.exit.is_none() {
            self.step(sink)?;
        }
        Ok(())
    }

    /// Ensures the 32-byte line holding text offset `off` is expanded.
    fn ensure_line(&mut self, off: usize) -> Result<(), Rv32Fault> {
        let Some(rom) = self.rom.as_mut() else {
            return Ok(());
        };
        let line = off / 32;
        if rom.ready[line] {
            return Ok(());
        }
        let mut buf = [0u8; 32];
        rom.image
            .expand_line_into(line as u32 * 32, &mut buf)
            .map_err(|_| Rv32Fault::RomFault { line: line as u32 })?;
        let start = line * 32;
        let end = (start + 32).min(self.text.len());
        self.text[start..end].copy_from_slice(&buf[..end - start]);
        rom.ready[line] = true;
        Ok(())
    }

    /// Fetches and decodes the instruction at the current PC.
    fn fetch(&mut self) -> Result<(Rv32Instr, u32), Rv32Fault> {
        let pc = self.pc;
        let off = pc as usize;
        if !pc.is_multiple_of(2) || off + 2 > self.text.len() {
            return Err(Rv32Fault::BadFetch { pc });
        }
        if let Some(hit) = self.decoded[off / 2] {
            return Ok(hit);
        }
        self.ensure_line(off)?;
        let low = u16::from_le_bytes([self.text[off], self.text[off + 1]]);
        let decoded = if rvc::instr_bytes(low) == 4 {
            if off + 4 > self.text.len() {
                return Err(Rv32Fault::BadFetch { pc });
            }
            // A 32-bit instruction at offset 30 mod 32 straddles two
            // cache lines; both must be resident before decode.
            self.ensure_line(off + 2)?;
            let word = u32::from_le_bytes([
                self.text[off],
                self.text[off + 1],
                self.text[off + 2],
                self.text[off + 3],
            ]);
            let instr = decode32(word).map_err(|_| Rv32Fault::IllegalInstruction { pc, word })?;
            (instr, 4)
        } else {
            let word = rvc::expand(low).map_err(|_| Rv32Fault::IllegalInstruction {
                pc,
                word: u32::from(low),
            })?;
            let instr = decode32(word).map_err(|_| Rv32Fault::IllegalInstruction { pc, word })?;
            (instr, 2)
        };
        self.decoded[off / 2] = Some(decoded);
        Ok(decoded)
    }

    /// Executes one instruction, reporting events to `sink`.
    ///
    /// # Errors
    ///
    /// The fault that stopped the instruction; the machine state is the
    /// pre-instruction state except for the retired-step counter.
    pub fn step(&mut self, sink: &mut impl TraceSink) -> Result<(), Rv32Fault> {
        if self.exit.is_some() {
            return Err(Rv32Fault::Exited);
        }
        if self.steps >= self.config.max_steps {
            return Err(Rv32Fault::StepLimit);
        }
        let pc = self.pc;
        let (instr, len) = self.fetch()?;
        sink.instruction(pc);
        self.steps += 1;
        let mut next = pc.wrapping_add(len);
        match instr {
            Rv32Instr::Lui { rd, imm20 } => self.set_reg(rd, imm20 << 12),
            Rv32Instr::Auipc { rd, imm20 } => self.set_reg(rd, pc.wrapping_add(imm20 << 12)),
            Rv32Instr::Jal { rd, offset } => {
                self.set_reg(rd, pc.wrapping_add(len));
                next = pc.wrapping_add(offset as u32);
            }
            Rv32Instr::Jalr { rd, rs1, offset } => {
                let target = self.reg(rs1).wrapping_add(offset as u32) & !1;
                self.set_reg(rd, pc.wrapping_add(len));
                next = target;
            }
            Rv32Instr::Branch {
                op,
                rs1,
                rs2,
                offset,
            } => {
                let (a, b) = (self.reg(rs1), self.reg(rs2));
                let taken = match op {
                    BranchOp::Beq => a == b,
                    BranchOp::Bne => a != b,
                    BranchOp::Blt => (a as i32) < (b as i32),
                    BranchOp::Bge => (a as i32) >= (b as i32),
                    BranchOp::Bltu => a < b,
                    BranchOp::Bgeu => a >= b,
                };
                if taken {
                    next = pc.wrapping_add(offset as u32);
                }
            }
            Rv32Instr::Load {
                op,
                rd,
                rs1,
                offset,
            } => {
                let addr = self.reg(rs1).wrapping_add(offset as u32);
                let value = self.load(pc, op, addr)?;
                sink.data_access(addr, false);
                self.set_reg(rd, value);
            }
            Rv32Instr::Store {
                op,
                rs2,
                rs1,
                offset,
            } => {
                let addr = self.reg(rs1).wrapping_add(offset as u32);
                let value = self.reg(rs2);
                self.store(pc, op, addr, value)?;
                sink.data_access(addr, true);
            }
            Rv32Instr::AluImm { op, rd, rs1, imm } => {
                let a = self.reg(rs1);
                let b = imm as u32;
                let value = match op {
                    AluImmOp::Addi => a.wrapping_add(b),
                    AluImmOp::Slti => u32::from((a as i32) < imm),
                    AluImmOp::Sltiu => u32::from(a < b),
                    AluImmOp::Xori => a ^ b,
                    AluImmOp::Ori => a | b,
                    AluImmOp::Andi => a & b,
                };
                self.set_reg(rd, value);
            }
            Rv32Instr::ShiftImm { op, rd, rs1, shamt } => {
                let a = self.reg(rs1);
                let value = match op {
                    ShiftImmOp::Slli => a << shamt,
                    ShiftImmOp::Srli => a >> shamt,
                    ShiftImmOp::Srai => ((a as i32) >> shamt) as u32,
                };
                self.set_reg(rd, value);
            }
            Rv32Instr::Alu { op, rd, rs1, rs2 } => {
                let (a, b) = (self.reg(rs1), self.reg(rs2));
                let value = match op {
                    AluOp::Add => a.wrapping_add(b),
                    AluOp::Sub => a.wrapping_sub(b),
                    AluOp::Sll => a << (b & 31),
                    AluOp::Slt => u32::from((a as i32) < (b as i32)),
                    AluOp::Sltu => u32::from(a < b),
                    AluOp::Xor => a ^ b,
                    AluOp::Srl => a >> (b & 31),
                    AluOp::Sra => ((a as i32) >> (b & 31)) as u32,
                    AluOp::Or => a | b,
                    AluOp::And => a & b,
                };
                self.set_reg(rd, value);
            }
            Rv32Instr::Mul { op, rd, rs1, rs2 } => {
                let (a, b) = (self.reg(rs1), self.reg(rs2));
                let (sa, sb) = (a as i32, b as i32);
                let value = match op {
                    MulOp::Mul => a.wrapping_mul(b),
                    MulOp::Mulh => ((i64::from(sa) * i64::from(sb)) >> 32) as u32,
                    MulOp::Mulhsu => ((i64::from(sa) * i64::from(b)) >> 32) as u32,
                    MulOp::Mulhu => ((u64::from(a) * u64::from(b)) >> 32) as u32,
                    // RISC-V division never traps: the spec pins the
                    // divide-by-zero and overflow results.
                    MulOp::Div => match (sa, sb) {
                        (_, 0) => u32::MAX,
                        (i32::MIN, -1) => i32::MIN as u32,
                        _ => (sa / sb) as u32,
                    },
                    MulOp::Divu => match b {
                        0 => u32::MAX,
                        _ => a / b,
                    },
                    MulOp::Rem => match (sa, sb) {
                        (_, 0) => a,
                        (i32::MIN, -1) => 0,
                        _ => (sa % sb) as u32,
                    },
                    MulOp::Remu => match b {
                        0 => a,
                        _ => a % b,
                    },
                };
                self.set_reg(rd, value);
            }
            Rv32Instr::Ecall => self.ecall(pc)?,
            Rv32Instr::Ebreak => return Err(Rv32Fault::Breakpoint { pc }),
            Rv32Instr::Fence => {}
        }
        self.pc = next;
        Ok(())
    }

    fn load(&mut self, pc: u32, op: LoadOp, addr: u32) -> Result<u32, Rv32Fault> {
        let unmapped = Rv32Fault::UnmappedLoad { pc, addr };
        let misaligned = Rv32Fault::MisalignedAccess { pc, addr };
        match op {
            LoadOp::Lb => self
                .mem
                .read_u8(addr)
                .map(|b| b as i8 as i32 as u32)
                .ok_or(unmapped),
            LoadOp::Lbu => self.mem.read_u8(addr).map(u32::from).ok_or(unmapped),
            LoadOp::Lh | LoadOp::Lhu => {
                if !addr.is_multiple_of(2) {
                    return Err(misaligned);
                }
                let half = self.mem.read_u16(addr).ok_or(unmapped)?;
                Ok(match op {
                    LoadOp::Lh => half as i16 as i32 as u32,
                    _ => u32::from(half),
                })
            }
            LoadOp::Lw => {
                if !addr.is_multiple_of(4) {
                    return Err(misaligned);
                }
                self.mem.read_u32(addr).ok_or(unmapped)
            }
        }
    }

    fn store(&mut self, pc: u32, op: StoreOp, addr: u32, value: u32) -> Result<(), Rv32Fault> {
        match op {
            StoreOp::Sb => self.mem.write_u8(addr, value as u8),
            StoreOp::Sh => {
                if !addr.is_multiple_of(2) {
                    return Err(Rv32Fault::MisalignedAccess { pc, addr });
                }
                self.mem.write_u16(addr, value as u16);
            }
            StoreOp::Sw => {
                if !addr.is_multiple_of(4) {
                    return Err(Rv32Fault::MisalignedAccess { pc, addr });
                }
                self.mem.write_u32(addr, value);
            }
        }
        Ok(())
    }

    fn ecall(&mut self, pc: u32) -> Result<(), Rv32Fault> {
        let code = self.reg(XReg::A7);
        let a0 = self.reg(XReg::A0);
        match code {
            1 => self.output.push_str(&(a0 as i32).to_string()),
            11 => self.output.push((a0 as u8) as char),
            10 => self.exit = Some(0),
            17 => self.exit = Some(a0 as i32),
            _ => return Err(Rv32Fault::BadSyscall { pc, code }),
        }
        Ok(())
    }
}

impl IsaCore for Rv32Machine {
    type Isa = crate::Rv32c;
    type Fault = Rv32Fault;

    fn pc(&self) -> u32 {
        Rv32Machine::pc(self)
    }

    fn gpr(&self, index: usize) -> u32 {
        self.regs[index]
    }

    fn exit_code(&self) -> Option<i32> {
        Rv32Machine::exit_code(self)
    }

    fn steps(&self) -> u64 {
        Rv32Machine::steps(self)
    }

    fn output(&self) -> &str {
        Rv32Machine::output(self)
    }

    fn read_word(&self, addr: u32) -> Option<u32> {
        Rv32Machine::read_word(self, addr)
    }

    fn step_traced(&mut self, mut sink: &mut dyn TraceSink) -> Result<(), Self::Fault> {
        self.step(&mut sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Encoding, Rv32Asm};
    use ccrp_emu::NullSink;

    fn count_to_five(encoding: Encoding) -> Rv32Machine {
        let mut asm = Rv32Asm::new();
        let top = asm.label();
        asm.li(XReg::T0, 5);
        asm.li(XReg::T1, 0);
        asm.bind(top);
        asm.push(Rv32Instr::AluImm {
            op: AluImmOp::Addi,
            rd: XReg::T1,
            rs1: XReg::T1,
            imm: 1,
        });
        asm.push(Rv32Instr::AluImm {
            op: AluImmOp::Addi,
            rd: XReg::T0,
            rs1: XReg::T0,
            imm: -1,
        });
        asm.branch_to(BranchOp::Bne, XReg::T0, XReg::ZERO, top);
        asm.push(Rv32Instr::Alu {
            op: AluOp::Add,
            rd: XReg::A0,
            rs1: XReg::T1,
            rs2: XReg::ZERO,
        });
        asm.li(XReg::A7, 1);
        asm.push(Rv32Instr::Ecall);
        asm.li(XReg::A7, 10);
        asm.push(Rv32Instr::Ecall);
        let image = asm.assemble(encoding).unwrap();
        let mut machine = Rv32Machine::new(&image);
        machine.run(&mut NullSink).unwrap();
        machine
    }

    #[test]
    fn loops_print_and_exit_in_both_encodings() {
        for encoding in [Encoding::Rv32I, Encoding::Rv32C] {
            let machine = count_to_five(encoding);
            assert_eq!(machine.output(), "5");
            assert_eq!(machine.exit_code(), Some(0));
        }
    }

    #[test]
    fn division_edge_cases_follow_the_spec() {
        let cases = [
            (MulOp::Div, 7i32, 0i32, u32::MAX),
            (MulOp::Div, i32::MIN, -1, i32::MIN as u32),
            (MulOp::Rem, 7, 0, 7),
            (MulOp::Rem, i32::MIN, -1, 0),
            (MulOp::Divu, -1i32, 0, u32::MAX),
            (MulOp::Remu, 13, 0, 13),
        ];
        for (op, a, b, want) in cases {
            let mut asm = Rv32Asm::new();
            asm.li(XReg::T0, a);
            asm.li(XReg::T1, b);
            asm.push(Rv32Instr::Mul {
                op,
                rd: XReg::A0,
                rs1: XReg::T0,
                rs2: XReg::T1,
            });
            asm.li(XReg::A7, 17);
            asm.push(Rv32Instr::Ecall);
            let image = asm.assemble(Encoding::Rv32I).unwrap();
            let mut machine = Rv32Machine::new(&image);
            machine.run(&mut NullSink).unwrap();
            assert_eq!(machine.exit_code(), Some(want as i32), "{op:?} {a}/{b}");
        }
    }

    #[test]
    fn misaligned_and_unmapped_accesses_fault() {
        let mut asm = Rv32Asm::new();
        asm.li(XReg::T0, 0x0020_0001);
        asm.push(Rv32Instr::Load {
            op: LoadOp::Lw,
            rd: XReg::T1,
            rs1: XReg::T0,
            offset: 0,
        });
        let image = asm.assemble(Encoding::Rv32I).unwrap();
        let mut machine = Rv32Machine::new(&image);
        assert!(matches!(
            machine.run(&mut NullSink),
            Err(Rv32Fault::MisalignedAccess { .. })
        ));

        let mut asm = Rv32Asm::new();
        asm.li(XReg::T0, 0x0060_0000);
        asm.push(Rv32Instr::Load {
            op: LoadOp::Lw,
            rd: XReg::T1,
            rs1: XReg::T0,
            offset: 0,
        });
        let image = asm.assemble(Encoding::Rv32I).unwrap();
        let mut machine = Rv32Machine::new(&image);
        assert!(matches!(
            machine.run(&mut NullSink),
            Err(Rv32Fault::UnmappedLoad { .. })
        ));
    }
}
