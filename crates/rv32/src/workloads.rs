//! RV32 ports of the paper's eight traced benchmarks.
//!
//! Each port is an integer/fixed-point re-expression of the same
//! computation the MIPS kernel in `ccrp-workloads` performs: same
//! names, same paper-derived static text sizes, same
//! trace-then-replay role in the experiments. Built via [`Rv32Asm`],
//! every workload assembles into **both** encodings — plain RV32I and
//! RV32C — of one instruction stream, which is what lets the
//! `isa-compare` sweep put "CCRP on RV32I", "RVC alone", and
//! "CCRP *over* RVC" on one axis.
//!
//! Every kernel is self-checking: a pure-Rust mirror computes the
//! expected printed answer with the same wrapping arithmetic, and
//! [`Rv32Workload::build`] refuses to return a workload whose emulated
//! output (in either encoding) disagrees. As on the MIPS side, the
//! kernel occupies the front of the padded text, so every traced
//! address falls inside it; the [`generate_filler`] padding after the
//! exit `ecall` never executes.

use std::error::Error;
use std::fmt;

use ccrp_emu::ProgramTrace;

use crate::codegen::generate_filler;
use crate::instr::{AluImmOp, AluOp, BranchOp, LoadOp, MulOp, Rv32Instr, ShiftImmOp, StoreOp};
use crate::machine::Rv32Machine;
use crate::{Encoding, Rv32Asm, Rv32Error, Rv32Fault, Rv32Image, XReg};

/// Base address of the workload data region (arrays, grids, scratch).
/// Kernels store before they load, so pages map on demand.
pub const DATA_BASE: u32 = 0x0010_0000;

/// Errors while building an RV32 workload.
#[derive(Debug)]
#[non_exhaustive]
pub enum Rv32WorkloadError {
    /// The kernel failed to assemble (a bug in this crate).
    Asm(Rv32Error),
    /// The kernel faulted during trace capture.
    Emu(Rv32Fault),
    /// The kernel ran but printed the wrong answer.
    WrongOutput {
        /// Which workload and encoding failed.
        name: String,
        /// What it should have printed.
        expected: String,
        /// What it printed.
        actual: String,
    },
}

impl fmt::Display for Rv32WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rv32WorkloadError::Asm(e) => write!(f, "rv32 kernel failed to assemble: {e}"),
            Rv32WorkloadError::Emu(e) => write!(f, "rv32 kernel faulted: {e}"),
            Rv32WorkloadError::WrongOutput {
                name,
                expected,
                actual,
            } => write!(
                f,
                "rv32 workload `{name}` printed `{actual}`, expected `{expected}`"
            ),
        }
    }
}

impl Error for Rv32WorkloadError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Rv32WorkloadError::Asm(e) => Some(e),
            Rv32WorkloadError::Emu(e) => Some(e),
            Rv32WorkloadError::WrongOutput { .. } => None,
        }
    }
}

impl From<Rv32Error> for Rv32WorkloadError {
    fn from(e: Rv32Error) -> Self {
        Rv32WorkloadError::Asm(e)
    }
}

impl From<Rv32Fault> for Rv32WorkloadError {
    fn from(e: Rv32Fault) -> Self {
        Rv32WorkloadError::Emu(e)
    }
}

/// A built RV32 benchmark: both encodings of the padded program plus
/// the trace each one produced.
#[derive(Debug, Clone)]
pub struct BuiltRv32Workload {
    /// Display name, matching the MIPS side and the paper's tables.
    pub name: &'static str,
    /// The padded RV32I program (kernel first, filler after the exit).
    pub image_i: Rv32Image,
    /// The same program assembled with RVC compression.
    pub image_c: Rv32Image,
    /// Trace captured executing `image_i`.
    pub trace_i: ProgramTrace,
    /// Trace captured executing `image_c` (same instruction sequence,
    /// denser PCs).
    pub trace_c: ProgramTrace,
    /// The verified printed output.
    pub output: String,
}

/// The eight benchmarks, mirroring `TracedWorkload` on the MIPS side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rv32Workload {
    /// Eight-queens backtracking search.
    Eightq,
    /// Integer matrix multiply.
    Matrix25A,
    /// Livermore loop 1, fixed-point.
    Lloop01,
    /// Mesh relaxation sweeps.
    Tomcatv,
    /// Seven small vector kernels.
    Nasa7,
    /// A single vector kernel, multiple passes.
    Nasa1,
    /// Branchy logic-minimizer-style dispatcher.
    Espresso,
    /// Huge straight-line basic block.
    Fpppp,
}

impl Rv32Workload {
    /// All workloads in the paper's table order (same as the MIPS
    /// `TracedWorkload::ALL`, so cross-ISA tables line up row by row).
    pub const ALL: [Rv32Workload; 8] = [
        Rv32Workload::Nasa7,
        Rv32Workload::Matrix25A,
        Rv32Workload::Fpppp,
        Rv32Workload::Espresso,
        Rv32Workload::Nasa1,
        Rv32Workload::Eightq,
        Rv32Workload::Tomcatv,
        Rv32Workload::Lloop01,
    ];

    /// The name used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Rv32Workload::Eightq => "eightq",
            Rv32Workload::Matrix25A => "matrix25A",
            Rv32Workload::Lloop01 => "lloopO1",
            Rv32Workload::Tomcatv => "tomcatv",
            Rv32Workload::Nasa7 => "NASA7",
            Rv32Workload::Nasa1 => "NASA1",
            Rv32Workload::Espresso => "espresso",
            Rv32Workload::Fpppp => "fpppp",
        }
    }

    /// Target size of the padded RV32I text in bytes — the same
    /// figures the MIPS side uses, so static-compression comparisons
    /// start from equal-sized programs.
    pub fn paper_text_bytes(self) -> u32 {
        match self {
            Rv32Workload::Eightq => 4020,
            Rv32Workload::Matrix25A => 36766,
            Rv32Workload::Lloop01 => 4020,
            Rv32Workload::Tomcatv => 24576,
            Rv32Workload::Nasa7 => 90112,
            Rv32Workload::Nasa1 => 61440,
            Rv32Workload::Espresso => 176052,
            Rv32Workload::Fpppp => 122880,
        }
    }

    /// Stable per-workload padding seed (same values as the MIPS side;
    /// [`generate_filler`] mixes in its own ISA tag).
    fn seed(self) -> u64 {
        match self {
            Rv32Workload::Eightq => 0xE1,
            Rv32Workload::Matrix25A => 0xA2,
            Rv32Workload::Lloop01 => 0x13,
            Rv32Workload::Tomcatv => 0x7C,
            Rv32Workload::Nasa7 => 0x77,
            Rv32Workload::Nasa1 => 0x71,
            Rv32Workload::Espresso => 0xE5,
            Rv32Workload::Fpppp => 0xF4,
        }
    }

    /// The kernel as an encoding-independent item stream.
    fn kernel(self) -> Rv32Asm {
        match self {
            Rv32Workload::Eightq => eightq_kernel(),
            Rv32Workload::Matrix25A => matrix_kernel(),
            Rv32Workload::Lloop01 => lloop_kernel(),
            Rv32Workload::Tomcatv => tomcatv_kernel(),
            Rv32Workload::Nasa7 => nasa7_kernel(),
            Rv32Workload::Nasa1 => nasa1_kernel(),
            Rv32Workload::Espresso => espresso_kernel(),
            Rv32Workload::Fpppp => fpppp_kernel(),
        }
    }

    /// What the kernel must print, computed by the pure-Rust mirror.
    pub fn expected_output(self) -> String {
        match self {
            Rv32Workload::Eightq => eightq_mirror(),
            Rv32Workload::Matrix25A => matrix_mirror(),
            Rv32Workload::Lloop01 => lloop_mirror(),
            Rv32Workload::Tomcatv => tomcatv_mirror(),
            Rv32Workload::Nasa7 => nasa7_mirror(),
            Rv32Workload::Nasa1 => nasa1_mirror(),
            Rv32Workload::Espresso => espresso_mirror(),
            Rv32Workload::Fpppp => fpppp_mirror(),
        }
    }

    /// Assembles the padded program under `encoding` without running
    /// it (the static-corpus path, which only needs bytes).
    ///
    /// # Errors
    ///
    /// [`Rv32WorkloadError::Asm`] on kernel bugs.
    pub fn padded_image(self, encoding: Encoding) -> Result<Rv32Image, Rv32WorkloadError> {
        Ok(self.padded_asm()?.assemble(encoding)?)
    }

    fn padded_asm(self) -> Result<Rv32Asm, Rv32WorkloadError> {
        let mut asm = self.kernel();
        let kernel_bytes = asm.assemble(Encoding::Rv32I)?.text_size() as usize;
        let target = (self.paper_text_bytes() as usize).div_ceil(4) * 4;
        if kernel_bytes < target {
            let deficit = target - kernel_bytes;
            let mut filler = generate_filler(self.seed(), deficit);
            filler.truncate(deficit / 4);
            for instr in filler {
                asm.push(instr);
            }
        }
        Ok(asm)
    }

    /// Assembles both encodings, executes each under the emulator
    /// capturing traces, and checks both printed answers against the
    /// Rust mirror.
    ///
    /// # Errors
    ///
    /// Assembly or emulation failures, or a wrong self-check answer —
    /// all of which indicate bugs in this crate, surfaced loudly.
    pub fn build(self) -> Result<BuiltRv32Workload, Rv32WorkloadError> {
        let asm = self.padded_asm()?;
        let image_i = asm.assemble(Encoding::Rv32I)?;
        let image_c = asm.assemble(Encoding::Rv32C)?;
        let expected = self.expected_output();
        let capture = |image: &Rv32Image, tag: &str| {
            let mut trace = ProgramTrace::new();
            let mut machine = Rv32Machine::new(image);
            machine.run(&mut trace).map_err(Rv32WorkloadError::Emu)?;
            if machine.output() != expected {
                return Err(Rv32WorkloadError::WrongOutput {
                    name: format!("{} ({tag})", self.name()),
                    expected: expected.clone(),
                    actual: machine.output().to_string(),
                });
            }
            Ok(trace)
        };
        let trace_i = capture(&image_i, "rv32i")?;
        let trace_c = capture(&image_c, "rv32c")?;
        Ok(BuiltRv32Workload {
            name: self.name(),
            image_i,
            image_c,
            trace_i,
            trace_c,
            output: expected,
        })
    }
}

// ---------------------------------------------------------------------------
// Instruction-building shorthand.
// ---------------------------------------------------------------------------

fn addi(rd: XReg, rs1: XReg, imm: i32) -> Rv32Instr {
    Rv32Instr::AluImm {
        op: AluImmOp::Addi,
        rd,
        rs1,
        imm,
    }
}

fn imm_op(op: AluImmOp, rd: XReg, rs1: XReg, imm: i32) -> Rv32Instr {
    Rv32Instr::AluImm { op, rd, rs1, imm }
}

fn mv(rd: XReg, rs1: XReg) -> Rv32Instr {
    addi(rd, rs1, 0)
}

fn alu(op: AluOp, rd: XReg, rs1: XReg, rs2: XReg) -> Rv32Instr {
    Rv32Instr::Alu { op, rd, rs1, rs2 }
}

fn mul(op: MulOp, rd: XReg, rs1: XReg, rs2: XReg) -> Rv32Instr {
    Rv32Instr::Mul { op, rd, rs1, rs2 }
}

fn shift(op: ShiftImmOp, rd: XReg, rs1: XReg, shamt: u8) -> Rv32Instr {
    Rv32Instr::ShiftImm { op, rd, rs1, shamt }
}

fn lw(rd: XReg, offset: i32, rs1: XReg) -> Rv32Instr {
    Rv32Instr::Load {
        op: LoadOp::Lw,
        rd,
        rs1,
        offset,
    }
}

fn sw(rs2: XReg, offset: i32, rs1: XReg) -> Rv32Instr {
    Rv32Instr::Store {
        op: StoreOp::Sw,
        rs2,
        rs1,
        offset,
    }
}

/// `print_int(src)` then nothing else: `a0 = src; a7 = 1; ecall`.
fn print_int(asm: &mut Rv32Asm, src: XReg) {
    asm.push(mv(XReg::A0, src));
    asm.li(XReg::A7, 1);
    asm.push(Rv32Instr::Ecall);
}

/// Clean exit: `a7 = 10; ecall`.
fn exit(asm: &mut Rv32Asm) {
    asm.li(XReg::A7, 10);
    asm.push(Rv32Instr::Ecall);
}

/// A counted down-loop skeleton: `counter = n; loop { body; counter -= 1 }
/// while counter != 0`.
fn counted_loop(asm: &mut Rv32Asm, counter: XReg, n: i32, body: impl FnOnce(&mut Rv32Asm)) {
    asm.li(counter, n);
    let head = asm.label();
    asm.bind(head);
    body(asm);
    asm.push(addi(counter, counter, -1));
    asm.branch_to(BranchOp::Bne, counter, XReg::ZERO, head);
}

// ---------------------------------------------------------------------------
// lloopO1 — Livermore loop 1, fixed-point:
//   x[k] = q + y[k]*(r*z[k+10] + t*z[k+11]),  k = 0..400
// ---------------------------------------------------------------------------

const LLOOP_N: i32 = 400;
const LLOOP_Q: i32 = 1001;
const LLOOP_R: i32 = 3;
const LLOOP_T: i32 = 7;

fn lloop_kernel() -> Rv32Asm {
    let base = DATA_BASE as i32;
    let mut asm = Rv32Asm::new();
    asm.li(XReg::S0, base);
    // z[k] = 3k + 1 for k in 0..412.
    asm.push(mv(XReg::T1, XReg::S0));
    asm.li(XReg::T2, 1);
    counted_loop(&mut asm, XReg::T0, LLOOP_N + 12, |asm| {
        asm.push(sw(XReg::T2, 0, XReg::T1));
        asm.push(addi(XReg::T2, XReg::T2, 3));
        asm.push(addi(XReg::T1, XReg::T1, 4));
    });
    // y[k] = 2k + 7 for k in 0..400.
    asm.li(XReg::T1, base + 0x2000);
    asm.li(XReg::T2, 7);
    counted_loop(&mut asm, XReg::T0, LLOOP_N, |asm| {
        asm.push(sw(XReg::T2, 0, XReg::T1));
        asm.push(addi(XReg::T2, XReg::T2, 2));
        asm.push(addi(XReg::T1, XReg::T1, 4));
    });
    // Main loop.
    asm.push(mv(XReg::T1, XReg::S0)); // &z[k]
    asm.li(XReg::T2, base + 0x2000); // &y[k]
    asm.li(XReg::T3, base + 0x4000); // &x[k]
    asm.li(XReg::A1, LLOOP_R);
    asm.li(XReg::A2, LLOOP_T);
    asm.li(XReg::A3, LLOOP_Q);
    counted_loop(&mut asm, XReg::T0, LLOOP_N, |asm| {
        asm.push(lw(XReg::T4, 40, XReg::T1)); // z[k+10]
        asm.push(lw(XReg::T5, 44, XReg::T1)); // z[k+11]
        asm.push(mul(MulOp::Mul, XReg::T4, XReg::T4, XReg::A1));
        asm.push(mul(MulOp::Mul, XReg::T5, XReg::T5, XReg::A2));
        asm.push(alu(AluOp::Add, XReg::T4, XReg::T4, XReg::T5));
        asm.push(lw(XReg::T6, 0, XReg::T2)); // y[k]
        asm.push(mul(MulOp::Mul, XReg::T4, XReg::T4, XReg::T6));
        asm.push(alu(AluOp::Add, XReg::T4, XReg::T4, XReg::A3));
        asm.push(sw(XReg::T4, 0, XReg::T3));
        asm.push(addi(XReg::T1, XReg::T1, 4));
        asm.push(addi(XReg::T2, XReg::T2, 4));
        asm.push(addi(XReg::T3, XReg::T3, 4));
    });
    // Checksum.
    asm.li(XReg::T3, base + 0x4000);
    asm.li(XReg::A4, 0);
    counted_loop(&mut asm, XReg::T0, LLOOP_N, |asm| {
        asm.push(lw(XReg::T4, 0, XReg::T3));
        asm.push(alu(AluOp::Add, XReg::A4, XReg::A4, XReg::T4));
        asm.push(addi(XReg::T3, XReg::T3, 4));
    });
    print_int(&mut asm, XReg::A4);
    exit(&mut asm);
    asm
}

fn lloop_mirror() -> String {
    let n = LLOOP_N as usize;
    let z: Vec<i32> = (0..n + 12)
        .map(|k| (3 * k as i32).wrapping_add(1))
        .collect();
    let y: Vec<i32> = (0..n).map(|k| (2 * k as i32).wrapping_add(7)).collect();
    let mut sum = 0i32;
    for k in 0..n {
        let x = z[k + 10]
            .wrapping_mul(LLOOP_R)
            .wrapping_add(z[k + 11].wrapping_mul(LLOOP_T))
            .wrapping_mul(y[k])
            .wrapping_add(LLOOP_Q);
        sum = sum.wrapping_add(x);
    }
    sum.to_string()
}

// ---------------------------------------------------------------------------
// NASA1 — one vector kernel, several passes: x[i] = 3*x[i] + y[i].
// ---------------------------------------------------------------------------

const NASA1_N: i32 = 256;
const NASA1_PASSES: i32 = 8;

fn nasa1_kernel() -> Rv32Asm {
    let base = DATA_BASE as i32;
    let mut asm = Rv32Asm::new();
    asm.li(XReg::S0, base);
    // x[i] = 5i + 3.
    asm.push(mv(XReg::T1, XReg::S0));
    asm.li(XReg::T2, 3);
    counted_loop(&mut asm, XReg::T0, NASA1_N, |asm| {
        asm.push(sw(XReg::T2, 0, XReg::T1));
        asm.push(addi(XReg::T2, XReg::T2, 5));
        asm.push(addi(XReg::T1, XReg::T1, 4));
    });
    // y[i] = i*i + 1 (an up-counter in a1 feeds the square).
    asm.li(XReg::T1, base + 0x1000);
    asm.li(XReg::A1, 0);
    counted_loop(&mut asm, XReg::T0, NASA1_N, |asm| {
        asm.push(mul(MulOp::Mul, XReg::T4, XReg::A1, XReg::A1));
        asm.push(addi(XReg::T4, XReg::T4, 1));
        asm.push(sw(XReg::T4, 0, XReg::T1));
        asm.push(addi(XReg::A1, XReg::A1, 1));
        asm.push(addi(XReg::T1, XReg::T1, 4));
    });
    // Passes.
    asm.li(XReg::A2, 3);
    asm.li(XReg::A5, NASA1_PASSES);
    let pass = asm.label();
    asm.bind(pass);
    asm.push(mv(XReg::T1, XReg::S0));
    asm.li(XReg::T2, base + 0x1000);
    counted_loop(&mut asm, XReg::T0, NASA1_N, |asm| {
        asm.push(lw(XReg::T4, 0, XReg::T1));
        asm.push(lw(XReg::T5, 0, XReg::T2));
        asm.push(mul(MulOp::Mul, XReg::T4, XReg::T4, XReg::A2));
        asm.push(alu(AluOp::Add, XReg::T4, XReg::T4, XReg::T5));
        asm.push(sw(XReg::T4, 0, XReg::T1));
        asm.push(addi(XReg::T1, XReg::T1, 4));
        asm.push(addi(XReg::T2, XReg::T2, 4));
    });
    asm.push(addi(XReg::A5, XReg::A5, -1));
    asm.branch_to(BranchOp::Bne, XReg::A5, XReg::ZERO, pass);
    // Checksum over x.
    asm.push(mv(XReg::T1, XReg::S0));
    asm.li(XReg::A4, 0);
    counted_loop(&mut asm, XReg::T0, NASA1_N, |asm| {
        asm.push(lw(XReg::T4, 0, XReg::T1));
        asm.push(alu(AluOp::Add, XReg::A4, XReg::A4, XReg::T4));
        asm.push(addi(XReg::T1, XReg::T1, 4));
    });
    print_int(&mut asm, XReg::A4);
    exit(&mut asm);
    asm
}

fn nasa1_mirror() -> String {
    let n = NASA1_N as usize;
    let mut x: Vec<i32> = (0..n).map(|i| (5 * i as i32).wrapping_add(3)).collect();
    let y: Vec<i32> = (0..n)
        .map(|i| (i as i32).wrapping_mul(i as i32).wrapping_add(1))
        .collect();
    for _ in 0..NASA1_PASSES {
        for i in 0..n {
            x[i] = x[i].wrapping_mul(3).wrapping_add(y[i]);
        }
    }
    x.iter().fold(0i32, |s, &v| s.wrapping_add(v)).to_string()
}

// ---------------------------------------------------------------------------
// matrix25A — N×N integer matrix multiply, row-major, stride pointers.
// ---------------------------------------------------------------------------

const MAT_N: i32 = 20;
const MAT_STRIDE: i32 = MAT_N * 4;

fn matrix_kernel() -> Rv32Asm {
    let base = DATA_BASE as i32;
    let mut asm = Rv32Asm::new();
    // s1 = a, s2 = b, s3 = &c[next].
    asm.li(XReg::S1, base);
    asm.li(XReg::S2, base + 0x1000);
    asm.li(XReg::S3, base + 0x2000);
    // a[k] = 7k + 3, b[k] = 5k + 1, linear over all N*N entries.
    asm.push(mv(XReg::T1, XReg::S1));
    asm.li(XReg::T2, 3);
    counted_loop(&mut asm, XReg::T0, MAT_N * MAT_N, |asm| {
        asm.push(sw(XReg::T2, 0, XReg::T1));
        asm.push(addi(XReg::T2, XReg::T2, 7));
        asm.push(addi(XReg::T1, XReg::T1, 4));
    });
    asm.push(mv(XReg::T1, XReg::S2));
    asm.li(XReg::T2, 1);
    counted_loop(&mut asm, XReg::T0, MAT_N * MAT_N, |asm| {
        asm.push(sw(XReg::T2, 0, XReg::T1));
        asm.push(addi(XReg::T2, XReg::T2, 5));
        asm.push(addi(XReg::T1, XReg::T1, 4));
    });
    // Triple loop: s4 = current a row, a5 = current b column base.
    asm.push(mv(XReg::S4, XReg::S1));
    asm.push(mv(XReg::A5, XReg::S2));
    counted_loop(&mut asm, XReg::T0, MAT_N, |asm| {
        counted_loop(asm, XReg::T1, MAT_N, |asm| {
            asm.push(mv(XReg::T2, XReg::S4)); // ap = row start
            asm.push(mv(XReg::T3, XReg::A5)); // bp = column start
            asm.li(XReg::A4, 0); // acc
            counted_loop(asm, XReg::T6, MAT_N, |asm| {
                asm.push(lw(XReg::T4, 0, XReg::T2));
                asm.push(lw(XReg::T5, 0, XReg::T3));
                asm.push(mul(MulOp::Mul, XReg::T4, XReg::T4, XReg::T5));
                asm.push(alu(AluOp::Add, XReg::A4, XReg::A4, XReg::T4));
                asm.push(addi(XReg::T2, XReg::T2, 4));
                asm.push(addi(XReg::T3, XReg::T3, MAT_STRIDE));
            });
            asm.push(sw(XReg::A4, 0, XReg::S3));
            asm.push(addi(XReg::S3, XReg::S3, 4));
            asm.push(addi(XReg::A5, XReg::A5, 4)); // next column
        });
        asm.push(addi(XReg::S4, XReg::S4, MAT_STRIDE)); // next a row
        asm.push(mv(XReg::A5, XReg::S2)); // rewind b column
    });
    // Checksum over c.
    asm.li(XReg::T1, base + 0x2000);
    asm.li(XReg::A4, 0);
    counted_loop(&mut asm, XReg::T0, MAT_N * MAT_N, |asm| {
        asm.push(lw(XReg::T4, 0, XReg::T1));
        asm.push(alu(AluOp::Add, XReg::A4, XReg::A4, XReg::T4));
        asm.push(addi(XReg::T1, XReg::T1, 4));
    });
    print_int(&mut asm, XReg::A4);
    exit(&mut asm);
    asm
}

fn matrix_mirror() -> String {
    let n = MAT_N as usize;
    let a: Vec<i32> = (0..n * n).map(|k| (7 * k as i32).wrapping_add(3)).collect();
    let b: Vec<i32> = (0..n * n).map(|k| (5 * k as i32).wrapping_add(1)).collect();
    let mut sum = 0i32;
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0i32;
            for k in 0..n {
                acc = acc.wrapping_add(a[i * n + k].wrapping_mul(b[k * n + j]));
            }
            sum = sum.wrapping_add(acc);
        }
    }
    sum.to_string()
}

// ---------------------------------------------------------------------------
// tomcatv — Gauss-Seidel-flavoured mesh relaxation on a 16×16 grid.
// ---------------------------------------------------------------------------

const TOM_N: i32 = 16;
const TOM_SWEEPS: i32 = 8;
const TOM_STRIDE: i32 = TOM_N * 4;

fn tomcatv_kernel() -> Rv32Asm {
    let base = DATA_BASE as i32;
    let mut asm = Rv32Asm::new();
    asm.li(XReg::S0, base);
    // g[k] = 13k + 5.
    asm.push(mv(XReg::T1, XReg::S0));
    asm.li(XReg::T2, 5);
    counted_loop(&mut asm, XReg::T0, TOM_N * TOM_N, |asm| {
        asm.push(sw(XReg::T2, 0, XReg::T1));
        asm.push(addi(XReg::T2, XReg::T2, 13));
        asm.push(addi(XReg::T1, XReg::T1, 4));
    });
    // Sweeps over the interior, row-major and in place, so updated
    // west/north neighbours feed the same sweep (Gauss-Seidel order).
    counted_loop(&mut asm, XReg::S1, TOM_SWEEPS, |asm| {
        // p = &g[1][1].
        asm.push(addi(XReg::T1, XReg::S0, TOM_STRIDE + 4));
        counted_loop(asm, XReg::T0, TOM_N - 2, |asm| {
            counted_loop(asm, XReg::A1, TOM_N - 2, |asm| {
                asm.push(lw(XReg::T4, 0, XReg::T1)); // centre
                asm.push(lw(XReg::T5, -4, XReg::T1)); // west
                asm.push(lw(XReg::T6, 4, XReg::T1)); // east
                asm.push(alu(AluOp::Add, XReg::T5, XReg::T5, XReg::T6));
                asm.push(lw(XReg::T6, -TOM_STRIDE, XReg::T1)); // north
                asm.push(alu(AluOp::Add, XReg::T5, XReg::T5, XReg::T6));
                asm.push(lw(XReg::T6, TOM_STRIDE, XReg::T1)); // south
                asm.push(alu(AluOp::Add, XReg::T5, XReg::T5, XReg::T6));
                asm.push(shift(ShiftImmOp::Srai, XReg::T5, XReg::T5, 2));
                asm.push(alu(AluOp::Add, XReg::T4, XReg::T4, XReg::T5));
                asm.push(sw(XReg::T4, 0, XReg::T1));
                asm.push(addi(XReg::T1, XReg::T1, 4));
            });
            // Skip the last column of this row and the first of the next.
            asm.push(addi(XReg::T1, XReg::T1, 8));
        });
    });
    // Checksum over the whole grid.
    asm.push(mv(XReg::T1, XReg::S0));
    asm.li(XReg::A4, 0);
    counted_loop(&mut asm, XReg::T0, TOM_N * TOM_N, |asm| {
        asm.push(lw(XReg::T4, 0, XReg::T1));
        asm.push(alu(AluOp::Add, XReg::A4, XReg::A4, XReg::T4));
        asm.push(addi(XReg::T1, XReg::T1, 4));
    });
    print_int(&mut asm, XReg::A4);
    exit(&mut asm);
    asm
}

fn tomcatv_mirror() -> String {
    let n = TOM_N as usize;
    let mut g: Vec<i32> = (0..n * n)
        .map(|k| (13 * k as i32).wrapping_add(5))
        .collect();
    for _ in 0..TOM_SWEEPS {
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                let at = i * n + j;
                let sum = g[at - 1]
                    .wrapping_add(g[at + 1])
                    .wrapping_add(g[at - n])
                    .wrapping_add(g[at + n]);
                g[at] = g[at].wrapping_add(sum >> 2);
            }
        }
    }
    g.iter().fold(0i32, |s, &v| s.wrapping_add(v)).to_string()
}

// ---------------------------------------------------------------------------
// NASA7 — seven small vector kernels over u and v, repeated.
// ---------------------------------------------------------------------------

const N7_N: i32 = 96;
const N7_OUTER: i32 = 4;

fn nasa7_kernel() -> Rv32Asm {
    let base = DATA_BASE as i32;
    let mut asm = Rv32Asm::new();
    asm.li(XReg::S0, base); // u
    asm.li(XReg::S1, base + 0x1000); // v
                                     // u[i] = 2i + 1, v[i] = 5i + 2.
    asm.push(mv(XReg::T1, XReg::S0));
    asm.li(XReg::T2, 1);
    counted_loop(&mut asm, XReg::T0, N7_N, |asm| {
        asm.push(sw(XReg::T2, 0, XReg::T1));
        asm.push(addi(XReg::T2, XReg::T2, 2));
        asm.push(addi(XReg::T1, XReg::T1, 4));
    });
    asm.push(mv(XReg::T1, XReg::S1));
    asm.li(XReg::T2, 2);
    counted_loop(&mut asm, XReg::T0, N7_N, |asm| {
        asm.push(sw(XReg::T2, 0, XReg::T1));
        asm.push(addi(XReg::T2, XReg::T2, 5));
        asm.push(addi(XReg::T1, XReg::T1, 4));
    });
    asm.li(XReg::S2, 0); // running checksum
    asm.li(XReg::A2, 3); // shared small constant
    counted_loop(&mut asm, XReg::S3, N7_OUTER, |asm| {
        // 1. dot = Σ u[i]*v[i]  → a4.
        asm.push(mv(XReg::T1, XReg::S0));
        asm.push(mv(XReg::T2, XReg::S1));
        asm.li(XReg::A4, 0);
        counted_loop(asm, XReg::T0, N7_N, |asm| {
            asm.push(lw(XReg::T4, 0, XReg::T1));
            asm.push(lw(XReg::T5, 0, XReg::T2));
            asm.push(mul(MulOp::Mul, XReg::T4, XReg::T4, XReg::T5));
            asm.push(alu(AluOp::Add, XReg::A4, XReg::A4, XReg::T4));
            asm.push(addi(XReg::T1, XReg::T1, 4));
            asm.push(addi(XReg::T2, XReg::T2, 4));
        });
        asm.push(alu(AluOp::Xor, XReg::S2, XReg::S2, XReg::A4));
        // 2. scale: u[i] = u[i]*3 + 1.
        asm.push(mv(XReg::T1, XReg::S0));
        counted_loop(asm, XReg::T0, N7_N, |asm| {
            asm.push(lw(XReg::T4, 0, XReg::T1));
            asm.push(mul(MulOp::Mul, XReg::T4, XReg::T4, XReg::A2));
            asm.push(addi(XReg::T4, XReg::T4, 1));
            asm.push(sw(XReg::T4, 0, XReg::T1));
            asm.push(addi(XReg::T1, XReg::T1, 4));
        });
        // 3. prefix: v[i] += v[i-1].
        asm.push(addi(XReg::T1, XReg::S1, 4));
        counted_loop(asm, XReg::T0, N7_N - 1, |asm| {
            asm.push(lw(XReg::T4, 0, XReg::T1));
            asm.push(lw(XReg::T5, -4, XReg::T1));
            asm.push(alu(AluOp::Add, XReg::T4, XReg::T4, XReg::T5));
            asm.push(sw(XReg::T4, 0, XReg::T1));
            asm.push(addi(XReg::T1, XReg::T1, 4));
        });
        // 4. max over u, branchless: m += (m < x) * (x - m)  → a3.
        asm.push(mv(XReg::T1, XReg::S0));
        asm.li(XReg::A3, i32::MIN);
        counted_loop(asm, XReg::T0, N7_N, |asm| {
            asm.push(lw(XReg::T4, 0, XReg::T1));
            asm.push(alu(AluOp::Sub, XReg::T5, XReg::T4, XReg::A3));
            asm.push(alu(AluOp::Slt, XReg::T6, XReg::A3, XReg::T4));
            asm.push(mul(MulOp::Mul, XReg::T5, XReg::T5, XReg::T6));
            asm.push(alu(AluOp::Add, XReg::A3, XReg::A3, XReg::T5));
            asm.push(addi(XReg::T1, XReg::T1, 4));
        });
        asm.push(alu(AluOp::Xor, XReg::S2, XReg::S2, XReg::A3));
        // 5. fma: u[i] += v[i]*dot.
        asm.push(mv(XReg::T1, XReg::S0));
        asm.push(mv(XReg::T2, XReg::S1));
        counted_loop(asm, XReg::T0, N7_N, |asm| {
            asm.push(lw(XReg::T4, 0, XReg::T1));
            asm.push(lw(XReg::T5, 0, XReg::T2));
            asm.push(mul(MulOp::Mul, XReg::T5, XReg::T5, XReg::A4));
            asm.push(alu(AluOp::Add, XReg::T4, XReg::T4, XReg::T5));
            asm.push(sw(XReg::T4, 0, XReg::T1));
            asm.push(addi(XReg::T1, XReg::T1, 4));
            asm.push(addi(XReg::T2, XReg::T2, 4));
        });
        // 6. stride-2 sum of u → a5.
        asm.push(mv(XReg::T1, XReg::S0));
        asm.li(XReg::A5, 0);
        counted_loop(asm, XReg::T0, N7_N / 2, |asm| {
            asm.push(lw(XReg::T4, 0, XReg::T1));
            asm.push(alu(AluOp::Add, XReg::A5, XReg::A5, XReg::T4));
            asm.push(addi(XReg::T1, XReg::T1, 8));
        });
        asm.push(alu(AluOp::Xor, XReg::S2, XReg::S2, XReg::A5));
        // 7. Horner: h = h*3 + u[i] → a5.
        asm.push(mv(XReg::T1, XReg::S0));
        asm.li(XReg::A5, 0);
        counted_loop(asm, XReg::T0, N7_N, |asm| {
            asm.push(mul(MulOp::Mul, XReg::A5, XReg::A5, XReg::A2));
            asm.push(lw(XReg::T4, 0, XReg::T1));
            asm.push(alu(AluOp::Add, XReg::A5, XReg::A5, XReg::T4));
            asm.push(addi(XReg::T1, XReg::T1, 4));
        });
        asm.push(alu(AluOp::Xor, XReg::S2, XReg::S2, XReg::A5));
    });
    print_int(&mut asm, XReg::S2);
    exit(&mut asm);
    asm
}

fn nasa7_mirror() -> String {
    let n = N7_N as usize;
    let mut u: Vec<i32> = (0..n).map(|i| (2 * i as i32).wrapping_add(1)).collect();
    let mut v: Vec<i32> = (0..n).map(|i| (5 * i as i32).wrapping_add(2)).collect();
    let mut check = 0i32;
    for _ in 0..N7_OUTER {
        let mut dot = 0i32;
        for i in 0..n {
            dot = dot.wrapping_add(u[i].wrapping_mul(v[i]));
        }
        check ^= dot;
        for x in u.iter_mut() {
            *x = x.wrapping_mul(3).wrapping_add(1);
        }
        for i in 1..n {
            v[i] = v[i].wrapping_add(v[i - 1]);
        }
        let mut m = i32::MIN;
        for &x in &u {
            let d = x.wrapping_sub(m);
            let t = i32::from(m < x);
            m = m.wrapping_add(d.wrapping_mul(t));
        }
        check ^= m;
        for i in 0..n {
            u[i] = u[i].wrapping_add(v[i].wrapping_mul(dot));
        }
        let mut s = 0i32;
        for i in (0..n).step_by(2) {
            s = s.wrapping_add(u[i]);
        }
        check ^= s;
        let mut h = 0i32;
        for &x in &u {
            h = h.wrapping_mul(3).wrapping_add(x);
        }
        check ^= h;
    }
    check.to_string()
}

// ---------------------------------------------------------------------------
// eightq — eight-queens backtracking search, iterative.
// ---------------------------------------------------------------------------

const QUEENS_N: i32 = 8;

fn eightq_kernel() -> Rv32Asm {
    let mut asm = Rv32Asm::new();
    asm.li(XReg::S0, DATA_BASE as i32); // cur[] array
    asm.li(XReg::S1, 0); // solution count
    asm.li(XReg::T0, 0); // row
    asm.push(sw(XReg::ZERO, 0, XReg::S0)); // cur[0] = 0
    asm.li(XReg::A1, QUEENS_N);
    let main_loop = asm.label();
    let try_place = asm.label();
    let check = asm.label();
    let conflict = asm.label();
    let place = asm.label();
    let descend = asm.label();
    let done = asm.label();
    asm.bind(main_loop);
    // t1 = cur[row].
    asm.push(shift(ShiftImmOp::Slli, XReg::T3, XReg::T0, 2));
    asm.push(alu(AluOp::Add, XReg::T3, XReg::T3, XReg::S0));
    asm.push(lw(XReg::T1, 0, XReg::T3));
    asm.branch_to(BranchOp::Blt, XReg::T1, XReg::A1, try_place);
    // Column exhausted: backtrack (or finish at row 0).
    asm.branch_to(BranchOp::Beq, XReg::T0, XReg::ZERO, done);
    asm.push(addi(XReg::T0, XReg::T0, -1));
    asm.push(shift(ShiftImmOp::Slli, XReg::T3, XReg::T0, 2));
    asm.push(alu(AluOp::Add, XReg::T3, XReg::T3, XReg::S0));
    asm.push(lw(XReg::T1, 0, XReg::T3));
    asm.push(addi(XReg::T1, XReg::T1, 1));
    asm.push(sw(XReg::T1, 0, XReg::T3));
    asm.jal_to(XReg::ZERO, main_loop);
    // Scan rows 0..row for a conflict with column t1.
    asm.bind(try_place);
    asm.li(XReg::T2, 0); // i
    asm.bind(check);
    asm.branch_to(BranchOp::Beq, XReg::T2, XReg::T0, place);
    asm.push(shift(ShiftImmOp::Slli, XReg::T3, XReg::T2, 2));
    asm.push(alu(AluOp::Add, XReg::T3, XReg::T3, XReg::S0));
    asm.push(lw(XReg::T6, 0, XReg::T3)); // cur[i]
    asm.push(alu(AluOp::Sub, XReg::T4, XReg::T6, XReg::T1));
    asm.branch_to(BranchOp::Beq, XReg::T4, XReg::ZERO, conflict);
    asm.push(shift(ShiftImmOp::Srai, XReg::T5, XReg::T4, 31));
    asm.push(alu(AluOp::Xor, XReg::T4, XReg::T4, XReg::T5));
    asm.push(alu(AluOp::Sub, XReg::T4, XReg::T4, XReg::T5)); // |d|
    asm.push(alu(AluOp::Sub, XReg::T5, XReg::T0, XReg::T2)); // row - i
    asm.branch_to(BranchOp::Beq, XReg::T4, XReg::T5, conflict);
    asm.push(addi(XReg::T2, XReg::T2, 1));
    asm.jal_to(XReg::ZERO, check);
    // Conflict: advance this row's column.
    asm.bind(conflict);
    asm.push(shift(ShiftImmOp::Slli, XReg::T3, XReg::T0, 2));
    asm.push(alu(AluOp::Add, XReg::T3, XReg::T3, XReg::S0));
    asm.push(addi(XReg::T1, XReg::T1, 1));
    asm.push(sw(XReg::T1, 0, XReg::T3));
    asm.jal_to(XReg::ZERO, main_loop);
    // Safe square: recurse down, or count a full placement.
    asm.bind(place);
    asm.push(addi(XReg::T5, XReg::A1, -1));
    asm.branch_to(BranchOp::Bne, XReg::T0, XReg::T5, descend);
    asm.push(addi(XReg::S1, XReg::S1, 1));
    asm.push(shift(ShiftImmOp::Slli, XReg::T3, XReg::T0, 2));
    asm.push(alu(AluOp::Add, XReg::T3, XReg::T3, XReg::S0));
    asm.push(addi(XReg::T1, XReg::T1, 1));
    asm.push(sw(XReg::T1, 0, XReg::T3));
    asm.jal_to(XReg::ZERO, main_loop);
    asm.bind(descend);
    asm.push(addi(XReg::T0, XReg::T0, 1));
    asm.push(shift(ShiftImmOp::Slli, XReg::T3, XReg::T0, 2));
    asm.push(alu(AluOp::Add, XReg::T3, XReg::T3, XReg::S0));
    asm.push(sw(XReg::ZERO, 0, XReg::T3));
    asm.jal_to(XReg::ZERO, main_loop);
    asm.bind(done);
    print_int(&mut asm, XReg::S1);
    exit(&mut asm);
    asm
}

fn eightq_mirror() -> String {
    let n = QUEENS_N;
    let mut cur = [0i32; QUEENS_N as usize];
    let mut row = 0usize;
    let mut count = 0i32;
    loop {
        let c = cur[row];
        if c >= n {
            if row == 0 {
                break;
            }
            row -= 1;
            cur[row] += 1;
            continue;
        }
        let mut conflict = false;
        for (i, &placed) in cur.iter().enumerate().take(row) {
            let d = (placed - c).abs();
            if d == 0 || d == (row - i) as i32 {
                conflict = true;
                break;
            }
        }
        if conflict {
            cur[row] += 1;
        } else if row as i32 == n - 1 {
            count += 1;
            cur[row] += 1;
        } else {
            row += 1;
            cur[row] = 0;
        }
    }
    count.to_string()
}

// ---------------------------------------------------------------------------
// espresso — LCG-driven eight-way dispatcher (branchy integer code).
// ---------------------------------------------------------------------------

const ESP_ITERS: i32 = 4000;
const ESP_MUL: i32 = 1_103_515_245;
const ESP_INC: i32 = 12_345;

fn espresso_kernel() -> Rv32Asm {
    let mut asm = Rv32Asm::new();
    asm.li(XReg::S2, ESP_INC); // x
    asm.li(XReg::S3, 0); // acc
    asm.li(XReg::A1, ESP_MUL);
    asm.li(XReg::A2, ESP_INC);
    asm.li(XReg::A3, 5);
    let cases: Vec<_> = (0..8).map(|_| asm.label()).collect();
    let join = asm.label();
    counted_loop(&mut asm, XReg::T0, ESP_ITERS, |asm| {
        asm.push(mul(MulOp::Mul, XReg::S2, XReg::S2, XReg::A1));
        asm.push(alu(AluOp::Add, XReg::S2, XReg::S2, XReg::A2));
        asm.push(shift(ShiftImmOp::Srli, XReg::T2, XReg::S2, 16));
        asm.push(imm_op(AluImmOp::Andi, XReg::T2, XReg::T2, 7));
        asm.branch_to(BranchOp::Beq, XReg::T2, XReg::ZERO, cases[0]);
        for (k, &case) in cases.iter().enumerate().skip(1).take(6) {
            asm.li(XReg::T3, k as i32);
            asm.branch_to(BranchOp::Beq, XReg::T2, XReg::T3, case);
        }
        // Case 7 falls through: acc = acc*5 + x.
        asm.bind(cases[7]);
        asm.push(mul(MulOp::Mul, XReg::S3, XReg::S3, XReg::A3));
        asm.push(alu(AluOp::Add, XReg::S3, XReg::S3, XReg::S2));
        asm.jal_to(XReg::ZERO, join);
        asm.bind(cases[0]);
        asm.push(alu(AluOp::Add, XReg::S3, XReg::S3, XReg::S2));
        asm.jal_to(XReg::ZERO, join);
        asm.bind(cases[1]);
        asm.push(alu(AluOp::Xor, XReg::S3, XReg::S3, XReg::S2));
        asm.jal_to(XReg::ZERO, join);
        asm.bind(cases[2]);
        asm.push(shift(ShiftImmOp::Slli, XReg::S3, XReg::S3, 1));
        asm.jal_to(XReg::ZERO, join);
        asm.bind(cases[3]);
        asm.push(alu(AluOp::Sub, XReg::S3, XReg::S3, XReg::S2));
        asm.jal_to(XReg::ZERO, join);
        asm.bind(cases[4]);
        asm.push(imm_op(AluImmOp::Andi, XReg::T3, XReg::S2, 255));
        asm.push(alu(AluOp::Or, XReg::S3, XReg::S3, XReg::T3));
        asm.jal_to(XReg::ZERO, join);
        asm.bind(cases[5]);
        asm.push(imm_op(AluImmOp::Ori, XReg::T3, XReg::S2, 3));
        asm.push(alu(AluOp::And, XReg::S3, XReg::S3, XReg::T3));
        asm.jal_to(XReg::ZERO, join);
        asm.bind(cases[6]);
        asm.push(shift(ShiftImmOp::Srli, XReg::T3, XReg::S2, 3));
        asm.push(alu(AluOp::Add, XReg::S3, XReg::S3, XReg::T3));
        asm.bind(join);
    });
    print_int(&mut asm, XReg::S3);
    exit(&mut asm);
    asm
}

fn espresso_mirror() -> String {
    let mut x = ESP_INC as u32;
    let mut acc = 0u32;
    for _ in 0..ESP_ITERS {
        x = x.wrapping_mul(ESP_MUL as u32).wrapping_add(ESP_INC as u32);
        match (x >> 16) & 7 {
            0 => acc = acc.wrapping_add(x),
            1 => acc ^= x,
            2 => acc <<= 1,
            3 => acc = acc.wrapping_sub(x),
            4 => acc |= x & 255,
            5 => acc &= x | 3,
            6 => acc = acc.wrapping_add(x >> 3),
            _ => acc = acc.wrapping_mul(5).wrapping_add(x),
        }
    }
    (acc as i32).to_string()
}

// ---------------------------------------------------------------------------
// fpppp — one huge straight-line block, re-executed in a short loop.
// ---------------------------------------------------------------------------

const FPPPP_OPS: usize = 160;
const FPPPP_ITERS: i32 = 72;

/// The register pool the block computes over (13 registers).
const FPPPP_POOL: [XReg; 13] = [
    XReg::T0,
    XReg::T1,
    XReg::T2,
    XReg::T3,
    XReg::T4,
    XReg::T5,
    XReg::T6,
    XReg::A0,
    XReg::A1,
    XReg::A2,
    XReg::A3,
    XReg::A4,
    XReg::A5,
];

/// The block's op list: `(kind, rd, rs1, rs2)` indices into the pool,
/// from a fixed-seed PCG-style generator shared with the mirror.
fn fpppp_ops() -> Vec<(usize, usize, usize, usize)> {
    let mut state: u64 = 0xF999_ABCD_2468_1357;
    let mut next = move || {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        (state >> 33) as usize
    };
    (0..FPPPP_OPS)
        .map(|_| (next() % 6, next() % 13, next() % 13, next() % 13))
        .collect()
}

fn fpppp_kernel() -> Rv32Asm {
    let mut asm = Rv32Asm::new();
    for (i, reg) in FPPPP_POOL.iter().enumerate() {
        asm.li(*reg, (i as i32 + 1).wrapping_mul(0x1E37_79B1));
    }
    let ops = fpppp_ops();
    counted_loop(&mut asm, XReg::S1, FPPPP_ITERS, |asm| {
        for &(kind, rd, rs1, rs2) in &ops {
            let (rd, rs1, rs2) = (FPPPP_POOL[rd], FPPPP_POOL[rs1], FPPPP_POOL[rs2]);
            let instr = match kind {
                0 => alu(AluOp::Add, rd, rs1, rs2),
                1 => alu(AluOp::Sub, rd, rs1, rs2),
                2 => alu(AluOp::Xor, rd, rs1, rs2),
                3 => alu(AluOp::Or, rd, rs1, rs2),
                4 => alu(AluOp::And, rd, rs1, rs2),
                _ => mul(MulOp::Mul, rd, rs1, rs2),
            };
            asm.push(instr);
        }
    });
    // Fold the pool into one checksum.
    asm.li(XReg::S2, 0);
    for reg in FPPPP_POOL {
        asm.push(alu(AluOp::Xor, XReg::S2, XReg::S2, reg));
    }
    print_int(&mut asm, XReg::S2);
    exit(&mut asm);
    asm
}

fn fpppp_mirror() -> String {
    let mut regs = [0u32; 13];
    for (i, reg) in regs.iter_mut().enumerate() {
        *reg = (i as u32 + 1).wrapping_mul(0x1E37_79B1);
    }
    let ops = fpppp_ops();
    for _ in 0..FPPPP_ITERS {
        for &(kind, rd, rs1, rs2) in &ops {
            let (a, b) = (regs[rs1], regs[rs2]);
            regs[rd] = match kind {
                0 => a.wrapping_add(b),
                1 => a.wrapping_sub(b),
                2 => a ^ b,
                3 => a | b,
                4 => a & b,
                _ => a.wrapping_mul(b),
            };
        }
    }
    let check = regs.iter().fold(0u32, |s, &v| s ^ v);
    (check as i32).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_eight_build_check_and_pad_to_paper_sizes() {
        for workload in Rv32Workload::ALL {
            let built = workload
                .build()
                .unwrap_or_else(|e| panic!("{}: {e}", workload.name()));
            let target = (workload.paper_text_bytes() as usize).div_ceil(4) * 4;
            assert_eq!(
                built.image_i.text_size() as usize,
                target,
                "{}: I text not padded to paper size",
                built.name
            );
            assert!(
                built.image_c.text_size() < built.image_i.text_size(),
                "{}: RVC text not denser",
                built.name
            );
            assert!(
                built.trace_i.len() >= 10_000,
                "{}: only {} dynamic instructions",
                built.name,
                built.trace_i.len()
            );
            assert_eq!(
                built.trace_i.len(),
                built.trace_c.len(),
                "{}: encodings retired different instruction counts",
                built.name
            );
            assert!(!built.output.is_empty());
        }
    }

    #[test]
    fn names_and_order_match_the_mips_side() {
        let names: Vec<_> = Rv32Workload::ALL.iter().map(|w| w.name()).collect();
        assert_eq!(
            names,
            [
                "NASA7",
                "matrix25A",
                "fpppp",
                "espresso",
                "NASA1",
                "eightq",
                "tomcatv",
                "lloopO1"
            ]
        );
    }

    #[test]
    fn eightq_counts_ninety_two_solutions() {
        assert_eq!(eightq_mirror(), "92");
    }
}
