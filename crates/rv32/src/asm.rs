//! A small structured assembler for RV32 programs.
//!
//! The MIPS side of the suite assembles textual source; the RV32
//! backend builds programs directly from [`Rv32Instr`] values plus
//! labels, which keeps the workload ports and the difftest generator
//! typed end to end. One item list assembles to **two** encodings of
//! the same program:
//!
//! * [`Encoding::Rv32I`] — every instruction as its 32-bit form;
//! * [`Encoding::Rv32C`] — each non-control-transfer instruction
//!   shortened to its RVC form when [`rvc::compress`] has one.
//!
//! Label-referencing items (branches and jumps) always stay 32-bit, so
//! item sizes are fixed before displacements are known and assembly
//! needs no relaxation fixpoint. That costs a little density versus a
//! relaxing assembler — the C-extension ratio this backend reports is
//! therefore slightly conservative — but keeps both encodings of a
//! program trivially in step, which is what the cross-encoding
//! difftest leans on.

use crate::{rvc, Rv32Error, Rv32Instr, XReg};

/// Which instruction encoding to emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Encoding {
    /// Base 32-bit encodings only.
    Rv32I,
    /// RVC halfwords wherever a canonical compression exists.
    Rv32C,
}

/// A forward reference into an [`Rv32Asm`] item stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

#[derive(Debug, Clone)]
enum Item {
    Plain(Rv32Instr),
    BranchTo {
        op: crate::BranchOp,
        rs1: XReg,
        rs2: XReg,
        target: Label,
    },
    JalTo {
        rd: XReg,
        target: Label,
    },
    Bind(Label),
}

/// An assembled RV32 program: little-endian text at base 0, entry 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rv32Image {
    text: Vec<u8>,
}

impl Rv32Image {
    /// Wraps raw little-endian code bytes as an image, padding to a
    /// word boundary with `0x00` (the RVC illegal encoding). Used by
    /// tests and the difftest to execute exact byte sequences.
    pub fn from_raw_text(mut text: Vec<u8>) -> Self {
        while !text.len().is_multiple_of(4) {
            text.push(0);
        }
        Rv32Image { text }
    }

    /// The program text, little-endian code bytes.
    pub fn text(&self) -> &[u8] {
        &self.text
    }

    /// Base address of the text segment (always 0 for this backend).
    pub fn text_base(&self) -> u32 {
        0
    }

    /// Entry point (always the first text byte).
    pub fn entry(&self) -> u32 {
        0
    }

    /// Text size in bytes.
    pub fn text_size(&self) -> u32 {
        self.text.len() as u32
    }

    /// Number of 32-byte cache lines the text spans.
    pub fn text_lines(&self) -> u32 {
        (self.text.len() as u32).div_ceil(32)
    }
}

/// The program builder. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct Rv32Asm {
    items: Vec<Item>,
    labels: usize,
}

impl Rv32Asm {
    /// An empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh, unbound label.
    pub fn label(&mut self) -> Label {
        let label = Label(self.labels);
        self.labels += 1;
        label
    }

    /// Binds `label` to the current position.
    pub fn bind(&mut self, label: Label) {
        self.items.push(Item::Bind(label));
    }

    /// Appends one instruction.
    pub fn push(&mut self, instr: Rv32Instr) {
        self.items.push(Item::Plain(instr));
    }

    /// Appends a conditional branch to `target`.
    pub fn branch_to(&mut self, op: crate::BranchOp, rs1: XReg, rs2: XReg, target: Label) {
        self.items.push(Item::BranchTo {
            op,
            rs1,
            rs2,
            target,
        });
    }

    /// Appends a `jal` to `target` (use `rd = zero` for a plain jump).
    pub fn jal_to(&mut self, rd: XReg, target: Label) {
        self.items.push(Item::JalTo { rd, target });
    }

    /// Loads a full 32-bit constant: a single `addi` when it fits 12
    /// signed bits, else `lui` + `addi`.
    pub fn li(&mut self, rd: XReg, value: i32) {
        if (-2048..2048).contains(&value) {
            self.push(Rv32Instr::AluImm {
                op: crate::AluImmOp::Addi,
                rd,
                rs1: XReg::ZERO,
                imm: value,
            });
        } else {
            // Split so `lui` + sign-extending `addi` reconstruct value.
            let low = (value << 20) >> 20;
            let upper = value.wrapping_sub(low) as u32 >> 12;
            self.push(Rv32Instr::Lui { rd, imm20: upper });
            if low != 0 {
                self.push(Rv32Instr::AluImm {
                    op: crate::AluImmOp::Addi,
                    rd,
                    rs1: rd,
                    imm: low,
                });
            }
        }
    }

    /// Number of items pushed so far (labels included).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no items have been pushed.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Size in bytes one item occupies under `encoding`.
    fn item_bytes(item: &Item, encoding: Encoding) -> Result<u32, Rv32Error> {
        Ok(match item {
            Item::Bind(_) => 0,
            Item::BranchTo { .. } | Item::JalTo { .. } => 4,
            Item::Plain(instr) => match encoding {
                Encoding::Rv32I => 4,
                Encoding::Rv32C => {
                    if rvc::compress(instr.encode()?).is_some() {
                        2
                    } else {
                        4
                    }
                }
            },
        })
    }

    /// Assembles the item stream under `encoding`.
    ///
    /// # Errors
    ///
    /// [`Rv32Error::UnboundLabel`] for a reference to a never-bound
    /// label, [`Rv32Error::BranchOutOfRange`] when a displacement
    /// exceeds its field, and field-range errors from
    /// [`Rv32Instr::encode`].
    pub fn assemble(&self, encoding: Encoding) -> Result<Rv32Image, Rv32Error> {
        // Pass 1: fixed item sizes → label offsets.
        let mut offsets = vec![None; self.labels];
        let mut at = 0u32;
        for item in &self.items {
            if let Item::Bind(Label(index)) = item {
                offsets[*index] = Some(at);
            }
            at += Self::item_bytes(item, encoding)?;
        }
        // Pass 2: emit.
        let mut text = Vec::with_capacity(at as usize);
        for item in &self.items {
            let pc = text.len() as u32;
            let resolve = |target: &Label| -> Result<i32, Rv32Error> {
                let target = offsets[target.0].ok_or(Rv32Error::UnboundLabel)?;
                let displacement = i64::from(target) - i64::from(pc);
                i32::try_from(displacement)
                    .map_err(|_| Rv32Error::BranchOutOfRange { displacement })
            };
            match item {
                Item::Bind(_) => {}
                Item::BranchTo {
                    op,
                    rs1,
                    rs2,
                    target,
                } => {
                    let offset = resolve(target)?;
                    let word = Rv32Instr::Branch {
                        op: *op,
                        rs1: *rs1,
                        rs2: *rs2,
                        offset,
                    }
                    .encode()
                    .map_err(|_| Rv32Error::BranchOutOfRange {
                        displacement: i64::from(offset),
                    })?;
                    text.extend_from_slice(&word.to_le_bytes());
                }
                Item::JalTo { rd, target } => {
                    let offset = resolve(target)?;
                    let word = Rv32Instr::Jal { rd: *rd, offset }.encode().map_err(|_| {
                        Rv32Error::BranchOutOfRange {
                            displacement: i64::from(offset),
                        }
                    })?;
                    text.extend_from_slice(&word.to_le_bytes());
                }
                Item::Plain(instr) => {
                    let word = instr.encode()?;
                    match encoding {
                        Encoding::Rv32C => match rvc::compress(word) {
                            Some(half) => text.extend_from_slice(&half.to_le_bytes()),
                            None => text.extend_from_slice(&word.to_le_bytes()),
                        },
                        Encoding::Rv32I => text.extend_from_slice(&word.to_le_bytes()),
                    }
                }
            }
        }
        // Pad to a word boundary (the CCRP container and trace tooling
        // work in word-multiple texts; 0x0000 is the RVC illegal
        // encoding, so padding can never execute silently).
        while !text.len().is_multiple_of(4) {
            text.push(0);
        }
        Ok(Rv32Image { text })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AluImmOp, BranchOp, Rv32Instr};

    #[test]
    fn branches_resolve_in_both_encodings() {
        let mut asm = Rv32Asm::new();
        let top = asm.label();
        let done = asm.label();
        asm.li(XReg::T0, 3);
        asm.bind(top);
        asm.push(Rv32Instr::AluImm {
            op: AluImmOp::Addi,
            rd: XReg::T0,
            rs1: XReg::T0,
            imm: -1,
        });
        asm.branch_to(BranchOp::Beq, XReg::T0, XReg::ZERO, done);
        asm.jal_to(XReg::ZERO, top);
        asm.bind(done);
        asm.li(XReg::A7, 10);
        asm.push(Rv32Instr::Ecall);

        let i = asm.assemble(Encoding::Rv32I).unwrap();
        let c = asm.assemble(Encoding::Rv32C).unwrap();
        assert_eq!(i.text_size() % 4, 0);
        assert_eq!(c.text_size() % 4, 0);
        // `addi t0, t0, -1` and the two `li`s compress, so the C image
        // is strictly smaller.
        assert!(c.text_size() < i.text_size());
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut asm = Rv32Asm::new();
        let never = asm.label();
        asm.jal_to(XReg::ZERO, never);
        assert_eq!(asm.assemble(Encoding::Rv32I), Err(Rv32Error::UnboundLabel));
    }

    #[test]
    fn li_covers_the_full_range() {
        for value in [0, 1, -1, 2047, -2048, 2048, 0x12345678, i32::MIN, i32::MAX] {
            let mut asm = Rv32Asm::new();
            asm.li(XReg::T1, value);
            assert!(asm.assemble(Encoding::Rv32I).is_ok(), "li {value}");
        }
    }
}
