//! Regenerates Figure 9: relative performance vs instruction-cache miss
//! rate, one point per (workload, cache size, memory model), plus the
//! correlation the paper reads off the scatter.

use ccrp_bench::experiments::perf::figure9;
use ccrp_bench::{fmt_pct, fmt_rel, suite, Table};
use ccrp_sim::MemoryModel;

fn main() {
    let points = figure9(suite());

    println!("\nFigure 9 — Performance vs Instruction Cache Miss Rate\n");
    for memory in MemoryModel::ALL {
        println!("{} model:", memory.name());
        let mut table = Table::new(&["Workload", "Cache", "Miss Rate", "Relative Performance"]);
        let mut sorted: Vec<_> = points.iter().filter(|(_, p)| p.memory == memory).collect();
        sorted.sort_by(|a, b| a.1.miss_rate.total_cmp(&b.1.miss_rate));
        for (name, p) in sorted {
            table.row(&[
                name,
                &format!("{}B", p.cache_bytes),
                &fmt_pct(p.miss_rate),
                &fmt_rel(p.relative_performance),
            ]);
        }
        println!("{table}");
    }

    // A text rendering of the scatter's trend per memory model.
    println!("ASCII scatter (x = miss rate, y = relative performance):");
    for memory in MemoryModel::ALL {
        let marker = match memory {
            MemoryModel::Eprom => 'x',
            MemoryModel::BurstEprom => 'o',
            MemoryModel::ScDram => '+',
        };
        println!("  {marker} = {}", memory.name());
    }
    let max_miss = points
        .iter()
        .map(|(_, p)| p.miss_rate)
        .fold(0.0f64, f64::max);
    let rows = 18;
    let cols = 64;
    let mut grid = vec![vec![' '; cols]; rows];
    for (_, p) in &points {
        let x = ((p.miss_rate / max_miss.max(1e-9)) * (cols - 1) as f64) as usize;
        // y axis: 0.85 (bottom) .. 1.45 (top)
        let y_norm = ((p.relative_performance - 0.85) / 0.60).clamp(0.0, 1.0);
        let y = rows - 1 - (y_norm * (rows - 1) as f64) as usize;
        let marker = match p.memory {
            MemoryModel::Eprom => 'x',
            MemoryModel::BurstEprom => 'o',
            MemoryModel::ScDram => '+',
        };
        grid[y][x] = marker;
    }
    println!("1.45 +{}", "-".repeat(cols));
    for row in &grid {
        println!("     |{}", row.iter().collect::<String>());
    }
    println!("0.85 +{}", "-".repeat(cols));
    println!("      0%{:>width$.2}%", max_miss * 100.0, width = cols - 2);
    println!(
        "\nPaper's reading (§4.2.3): for slow memories the compressed code model\n\
         outperforms more at higher miss rates (x slopes down); the opposite\n\
         holds for faster memory (o and + slope up)."
    );
}
