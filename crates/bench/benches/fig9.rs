//! Regenerates Figure 9: relative performance vs instruction-cache miss
//! rate, one point per (workload, cache size, memory model), plus an
//! ASCII rendering of the scatter the paper reads its correlation off.

use ccrp_bench::{render, runner, Experiment, SweepOptions};

fn main() {
    let report = runner::run(Experiment::Fig9, &SweepOptions::default());
    print!("{}", render::report(&report));
    eprintln!(
        "[{} cells on {} workers in {:.2?}]",
        report.cells.len(),
        report.jobs,
        report.total_wall
    );
}
