//! Regenerates Figure 5: "Four Compression Methods" — compressed size
//! (percent of original) of the ten-program corpus.

use ccrp_bench::{render, runner, Experiment, SweepOptions};

fn main() {
    let report = runner::run(Experiment::Fig5, &SweepOptions::default());
    print!("{}", render::report(&report));
    eprintln!(
        "[{} cells on {} workers in {:.2?}]",
        report.cells.len(),
        report.jobs,
        report.total_wall
    );
}
