//! Regenerates Figure 5: "Four Compression Methods" — compressed size
//! (percent of original) of the ten-program corpus.

use ccrp_bench::experiments::fig5::{figure5, weighted_average};
use ccrp_bench::Table;

fn main() {
    let rows = figure5();
    let avg = weighted_average(&rows);

    println!("\nFigure 5 — Four Compression Methods (size, % of original)\n");
    let mut table = Table::new(&[
        "Program",
        "Bytes",
        "Unix compress",
        "Traditional Huffman",
        "Bounded Huffman",
        "Preselected Bounded",
    ]);
    for row in rows.iter().chain(std::iter::once(&avg)) {
        table.row(&[
            row.name,
            &row.original_bytes.to_string(),
            &format!("{:.1}%", row.compress_pct),
            &format!("{:.1}%", row.traditional_pct),
            &format!("{:.1}%", row.bounded_pct),
            &format!("{:.1}%", row.preselected_pct),
        ]);
    }
    println!("{table}");
    println!(
        "Paper's qualitative result: compress < traditional <= bounded <= preselected,\n\
         with every method leaving the program well under its original size."
    );
}
