//! Host-side decoder throughput: the table-driven fast path
//! ([`ByteCode::decode_symbol`]) against the canonical bit-walk
//! reference ([`ByteCode::decode_symbol_reference`]), expanding the
//! compressed cache lines of the Tables 1–8 workload corpus.
//!
//! Like `micro.rs`, this is a std-only harness (no crates.io access for
//! an external framework): median lines/sec over timed batches after a
//! warmup pass. Results are written as `BENCH_decoder.json` via the
//! suite's deterministic JSON writer (the *numbers* are host-dependent;
//! the schema is not), which `ci/bench_gate.sh` reads to enforce the
//! ≥2× fast-path speedup.
//!
//! Usage: `cargo bench -p ccrp-bench --bench decoder_bench --
//! [--out PATH]` (default `BENCH_decoder.json` in the current
//! directory).

use std::time::Instant;

use ccrp_bench::json::Json;
use ccrp_bitstream::BitReader;
use ccrp_compress::{block, BlockAlignment, ByteCode, CompressedLine, LINE_SIZE, LOOKUP_BITS};
use ccrp_workloads::{preselected_code, TracedWorkload};

/// One workload's compressed lines, split so the decoder measurements
/// cover exactly the lines that exercise the decoder (bypassed lines
/// are raw copies on both paths and would only dilute the comparison).
struct CorpusEntry {
    name: &'static str,
    compressed: Vec<CompressedLine>,
    bypass_lines: usize,
}

fn build_corpus(code: &ByteCode) -> Vec<CorpusEntry> {
    TracedWorkload::ALL
        .iter()
        .map(|workload| {
            let text = workload
                .padded_text()
                .unwrap_or_else(|e| panic!("{}: {e}", workload.name()));
            let lines = block::compress_image(code, &text, BlockAlignment::Word);
            let (compressed, bypassed): (Vec<_>, Vec<_>) =
                lines.into_iter().partition(|line| !line.is_bypass());
            CorpusEntry {
                name: workload.name(),
                compressed,
                bypass_lines: bypassed.len(),
            }
        })
        .collect()
}

/// Expands every compressed line of the corpus once through `expand`,
/// returning a checksum so the work cannot be optimized away.
fn expand_corpus(
    corpus: &[CorpusEntry],
    mut expand: impl FnMut(&CompressedLine, &mut [u8; LINE_SIZE]),
) -> (u64, u64) {
    let mut lines = 0u64;
    let mut checksum = 0u64;
    let mut out = [0u8; LINE_SIZE];
    for entry in corpus {
        for line in &entry.compressed {
            expand(line, &mut out);
            lines += 1;
            checksum = checksum
                .wrapping_mul(0x100_0000_01b3)
                .wrapping_add(u64::from(out[0]) | u64::from(out[LINE_SIZE - 1]) << 8);
        }
    }
    (lines, checksum)
}

/// Median seconds per full-corpus expansion over `batches` timed passes
/// (after one warmup pass), plus the total line count.
fn measure(
    corpus: &[CorpusEntry],
    mut expand: impl FnMut(&CompressedLine, &mut [u8; LINE_SIZE]),
) -> (u64, f64) {
    const BATCHES: usize = 9;
    let (lines, warm_checksum) = expand_corpus(corpus, &mut expand);
    let mut seconds: Vec<f64> = (0..BATCHES)
        .map(|_| {
            let start = Instant::now();
            let (_, checksum) = expand_corpus(corpus, &mut expand);
            assert_eq!(checksum, warm_checksum, "expansion must be deterministic");
            start.elapsed().as_secs_f64()
        })
        .collect();
    seconds.sort_by(|a, b| a.total_cmp(b));
    (lines, seconds[BATCHES / 2])
}

fn side_json(lines: u64, seconds: f64) -> Json {
    let lines_per_sec = lines as f64 / seconds;
    Json::obj([
        ("lines_per_sec", Json::F64(lines_per_sec)),
        ("ns_per_line", Json::F64(seconds * 1e9 / lines as f64)),
    ])
}

fn main() {
    let mut out_path = String::from("BENCH_decoder.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            // `cargo bench` passes --bench through to the target.
            "--bench" => {}
            other => panic!("unknown argument {other:?}"),
        }
    }

    let code = preselected_code().clone();
    let corpus = build_corpus(&code);

    let (lines, bitwalk_s) = measure(&corpus, |line, out| {
        let mut reader = BitReader::new(line.data());
        for slot in out.iter_mut() {
            *slot = code
                .decode_symbol_reference(&mut reader)
                .expect("corpus lines decode");
        }
    });
    let (table_lines, table_s) = measure(&corpus, |line, out| {
        block::decompress_line_into(&code, line, out).expect("corpus lines decode");
    });
    assert_eq!(lines, table_lines);
    let speedup = bitwalk_s / table_s;

    let corpus_json = Json::Arr(
        corpus
            .iter()
            .map(|entry| {
                Json::obj([
                    ("name", Json::str(entry.name)),
                    ("compressed_lines", Json::U64(entry.compressed.len() as u64)),
                    ("bypass_lines", Json::U64(entry.bypass_lines as u64)),
                ])
            })
            .collect(),
    );
    let report = Json::obj([
        ("schema", Json::str("ccrp-bench-decoder/1")),
        ("lookup_bits", Json::U64(u64::from(LOOKUP_BITS))),
        (
            "fast_fraction",
            Json::F64(code.decode_table().fast_fraction()),
        ),
        ("corpus", corpus_json),
        ("lines", Json::U64(lines)),
        ("bitwalk", side_json(lines, bitwalk_s)),
        ("table", side_json(lines, table_s)),
        ("speedup", Json::F64(speedup)),
    ]);
    std::fs::write(&out_path, report.to_pretty()).expect("write results file");

    println!(
        "decoder_bench: {lines} lines  bit-walk {:>10.1} lines/s  table {:>10.1} lines/s  speedup {speedup:.2}x",
        lines as f64 / bitwalk_s,
        lines as f64 / table_s,
    );
    println!("-> {out_path}");
}
