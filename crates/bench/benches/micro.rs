//! Micro-benchmarks: throughput of the building blocks (codecs, refill
//! engine, cache model, emulator, assembler).
//!
//! Uses a small std-only timing harness (median of timed batches after
//! warmup) because this environment has no crates.io access for an
//! external benchmark framework.

use std::time::Instant;

use ccrp::{CompressedImage, MemoryTiming, RefillConfig, RefillEngine};
use ccrp_compress::{block, lzw, BlockAlignment, ByteCode, ByteHistogram};
use ccrp_sim::{ICache, MemoryModel, Simulation, SystemConfig};
use ccrp_workloads::{generate_text, CodeProfile, TracedWorkload};

/// Times `f` over `batches` batches of `iters_per_batch` calls (after
/// one warmup batch) and prints the median ns/call, plus MB/s when
/// `bytes_per_iter` is known.
fn bench<T>(name: &str, bytes_per_iter: Option<usize>, mut f: impl FnMut() -> T) {
    const BATCHES: usize = 7;
    let mut iters_per_batch = 1u32;
    // Grow the batch until one takes >= 2ms, so the clock resolution
    // stays well below the measurement.
    loop {
        let start = Instant::now();
        for _ in 0..iters_per_batch {
            std::hint::black_box(f());
        }
        if start.elapsed().as_micros() >= 2_000 || iters_per_batch >= 1 << 20 {
            break;
        }
        iters_per_batch *= 2;
    }
    let mut per_call: Vec<f64> = (0..BATCHES)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters_per_batch {
                std::hint::black_box(f());
            }
            start.elapsed().as_nanos() as f64 / f64::from(iters_per_batch)
        })
        .collect();
    per_call.sort_by(|a, b| a.total_cmp(b));
    let median = per_call[BATCHES / 2];
    match bytes_per_iter {
        Some(bytes) => {
            let mbps = bytes as f64 / median * 1_000.0;
            println!("{name:<28} {median:>12.1} ns/call {mbps:>10.1} MB/s");
        }
        None => println!("{name:<28} {median:>12.1} ns/call"),
    }
}

fn codec_benches() {
    let text = generate_text(&CodeProfile::integer(), 64 * 1024, 11);
    let hist = ByteHistogram::of(&text);
    let code = ByteCode::bounded(&hist).expect("code builds");
    let n = text.len();

    println!("-- codec ({} KiB input) --", n / 1024);
    bench("histogram", Some(n), || {
        ByteHistogram::of(std::hint::black_box(&text))
    });
    bench("bounded_code_build", None, || {
        ByteCode::bounded(std::hint::black_box(&hist)).expect("code builds")
    });
    bench("huffman_encode", Some(n), || {
        code.encode(std::hint::black_box(&text))
    });
    let encoded = code.encode(&text);
    bench("huffman_decode", Some(n), || {
        code.decode(std::hint::black_box(&encoded), text.len())
            .expect("decodes")
    });
    bench("lzw_compress", Some(n), || {
        lzw::compress(std::hint::black_box(&text))
    });
    bench("block_compress_image", Some(n), || {
        block::compress_image(&code, std::hint::black_box(&text), BlockAlignment::Word)
    });
}

fn refill_benches() {
    let text = generate_text(&CodeProfile::integer(), 16 * 1024, 12);
    let code = ByteCode::preselected(&ByteHistogram::of(&text)).expect("code builds");
    let image = CompressedImage::build(0, &text, code, BlockAlignment::Word).expect("builds");

    struct Burst;
    impl MemoryTiming for Burst {
        fn read_burst(&mut self, words: u32, now: u64, arrivals: &mut Vec<u64>) {
            arrivals.clear();
            arrivals.extend((0..u64::from(words)).map(|i| now + 3 + i));
        }
    }

    println!("-- refill / cache --");
    let mut engine = RefillEngine::new(RefillConfig::default()).expect("valid config");
    let mut memory = Burst;
    let mut addr = 0u32;
    bench("refill_engine_miss", None, || {
        let outcome = engine
            .refill(&image, addr, 0, &mut memory)
            .expect("in range");
        addr = (addr + 32) % (16 * 1024);
        outcome
    });

    let mut cache = ICache::new(1024).expect("valid size");
    let mut addr = 0u32;
    bench("icache_access", None, || {
        addr = addr.wrapping_add(68) & 0xFFFF;
        cache.access(addr)
    });
}

fn system_benches() {
    let workload = TracedWorkload::Eightq.build().expect("eightq builds");
    let code = ccrp_workloads::preselected_code().clone();
    let image =
        CompressedImage::build(0, &workload.text, code, BlockAlignment::Word).expect("builds");
    let config = SystemConfig::new().with_memory(MemoryModel::Eprom);

    println!("-- simulator ({} trace entries) --", workload.trace.len());
    bench("simulate_standard", None, || {
        Simulation::new(config)
            .standard(workload.trace.iter())
            .expect("simulates")
    });
    bench("simulate_ccrp", None, || {
        Simulation::new(config)
            .ccrp(&image, workload.trace.iter())
            .expect("simulates")
    });
}

fn frontend_benches() {
    let source = TracedWorkload::Eightq.source();
    println!("-- frontend --");
    bench("assemble_eightq", None, || {
        ccrp_asm::assemble(std::hint::black_box(&source)).expect("assembles")
    });
    let image = ccrp_asm::assemble(&source).expect("assembles");
    bench("emulate_eightq", None, || {
        let mut machine = ccrp_emu::Machine::new(&image);
        machine.run(&mut ccrp_emu::NullSink).expect("runs")
    });
}

fn main() {
    codec_benches();
    refill_benches();
    system_benches();
    frontend_benches();
}
