//! Criterion micro-benchmarks: throughput of the building blocks
//! (codecs, refill engine, cache model, emulator, assembler).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use ccrp::{CompressedImage, MemoryTiming, RefillConfig, RefillEngine};
use ccrp_compress::{block, lzw, BlockAlignment, ByteCode, ByteHistogram};
use ccrp_sim::{simulate_ccrp, simulate_standard, ICache, MemoryModel, SystemConfig};
use ccrp_workloads::{generate_text, CodeProfile, TracedWorkload};

fn codec_benches(c: &mut Criterion) {
    let text = generate_text(&CodeProfile::integer(), 64 * 1024, 11);
    let hist = ByteHistogram::of(&text);
    let code = ByteCode::bounded(&hist).expect("code builds");

    let mut group = c.benchmark_group("codec");
    group.throughput(Throughput::Bytes(text.len() as u64));
    group.bench_function("histogram", |b| {
        b.iter(|| ByteHistogram::of(std::hint::black_box(&text)))
    });
    group.bench_function("bounded_code_build", |b| {
        b.iter(|| ByteCode::bounded(std::hint::black_box(&hist)).expect("code builds"))
    });
    group.bench_function("huffman_encode", |b| {
        b.iter(|| code.encode(std::hint::black_box(&text)))
    });
    let encoded = code.encode(&text);
    group.bench_function("huffman_decode", |b| {
        b.iter(|| {
            code.decode(std::hint::black_box(&encoded), text.len())
                .expect("decodes")
        })
    });
    group.bench_function("lzw_compress", |b| {
        b.iter(|| lzw::compress(std::hint::black_box(&text)))
    });
    group.bench_function("block_compress_image", |b| {
        b.iter(|| block::compress_image(&code, std::hint::black_box(&text), BlockAlignment::Word))
    });
    group.finish();
}

fn refill_benches(c: &mut Criterion) {
    let text = generate_text(&CodeProfile::integer(), 16 * 1024, 12);
    let code = ByteCode::preselected(&ByteHistogram::of(&text)).expect("code builds");
    let image = CompressedImage::build(0, &text, code, BlockAlignment::Word).expect("builds");

    struct Burst;
    impl MemoryTiming for Burst {
        fn read_burst(&mut self, words: u32, now: u64, arrivals: &mut Vec<u64>) {
            arrivals.clear();
            arrivals.extend((0..u64::from(words)).map(|i| now + 3 + i));
        }
    }

    c.bench_function("refill_engine_miss", |b| {
        let mut engine = RefillEngine::new(RefillConfig::default()).expect("valid config");
        let mut memory = Burst;
        let mut addr = 0u32;
        b.iter(|| {
            let outcome = engine
                .refill(&image, addr, 0, &mut memory)
                .expect("in range");
            addr = (addr + 32) % (16 * 1024);
            std::hint::black_box(outcome)
        })
    });

    c.bench_function("icache_access", |b| {
        let mut cache = ICache::new(1024).expect("valid size");
        let mut addr = 0u32;
        b.iter(|| {
            addr = addr.wrapping_add(68) & 0xFFFF;
            std::hint::black_box(cache.access(addr))
        })
    });
}

fn system_benches(c: &mut Criterion) {
    let workload = TracedWorkload::Eightq.build().expect("eightq builds");
    let code = ccrp_workloads::preselected_code().clone();
    let image =
        CompressedImage::build(0, &workload.text, code, BlockAlignment::Word).expect("builds");
    let config = SystemConfig {
        memory: MemoryModel::Eprom,
        ..SystemConfig::default()
    };

    let mut group = c.benchmark_group("simulator");
    group.throughput(Throughput::Elements(workload.trace.len() as u64));
    group.bench_function(BenchmarkId::new("standard", workload.trace.len()), |b| {
        b.iter(|| simulate_standard(workload.trace.iter(), &config).expect("simulates"))
    });
    group.bench_function(BenchmarkId::new("ccrp", workload.trace.len()), |b| {
        b.iter(|| simulate_ccrp(&image, workload.trace.iter(), &config).expect("simulates"))
    });
    group.finish();
}

fn frontend_benches(c: &mut Criterion) {
    let source = TracedWorkload::Eightq.source();
    c.bench_function("assemble_eightq", |b| {
        b.iter(|| ccrp_asm::assemble(std::hint::black_box(&source)).expect("assembles"))
    });
    let image = ccrp_asm::assemble(&source).expect("assembles");
    c.bench_function("emulate_eightq", |b| {
        b.iter(|| {
            let mut machine = ccrp_emu::Machine::new(&image);
            machine.run(&mut ccrp_emu::NullSink).expect("runs")
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = codec_benches, refill_benches, system_benches, frontend_benches
}
criterion_main!(benches);
