//! Regenerates Tables 11–13: the effect of data-cache miss rate on
//! relative performance (1 KB instruction cache, 16-entry CLB).

use ccrp_bench::experiments::dcache::tables_11_13;
use ccrp_bench::{fmt_rel, suite, Table};

fn main() {
    println!("\nTables 11-13 — Effect of Data Cache Miss Rate, 16-entry CLB\n");
    for (index, (name, rows)) in tables_11_13(suite()).into_iter().enumerate() {
        println!("Table {}: {name} (1024-byte instruction cache)", index + 11);
        let mut table = Table::new(&["Memory", "Dcache Miss Rate", "Relative Performance"]);
        for row in &rows {
            table.row(&[
                row.memory.name(),
                &format!("{}%", row.dcache_miss_pct),
                &fmt_rel(row.relative),
            ]);
        }
        println!("{table}");
    }
    println!(
        "Paper's observation (§4.2.4): as the data cache miss rate increases,\n\
         the effect of the CCRP on performance is reduced."
    );
}
