//! Regenerates Tables 11–13: the effect of data-cache miss rate on
//! relative performance (1 KB instruction cache, 16-entry CLB).

use ccrp_bench::{render, runner, Experiment, SweepOptions};

fn main() {
    let report = runner::run(Experiment::Tables11To13, &SweepOptions::default());
    print!("{}", render::report(&report));
    eprintln!(
        "[{} cells on {} workers in {:.2?}]",
        report.cells.len(),
        report.jobs,
        report.total_wall
    );
}
