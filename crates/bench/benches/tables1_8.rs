//! Regenerates Tables 1–8: relative performance, instruction-cache miss
//! rate, and relative memory traffic vs cache size, per workload, for
//! the EPROM and Burst EPROM models (plus DRAM for matrix25A), with a
//! 16-entry CLB and a 100% data-cache miss rate.

use ccrp_bench::experiments::perf::tables_1_to_8;
use ccrp_bench::{fmt_pct, fmt_rel, suite, Table};

fn main() {
    println!("\nTables 1-8 — 16-entry CLB, 100% data-cache miss rate\n");
    for (index, (name, points)) in tables_1_to_8(suite()).into_iter().enumerate() {
        println!("Table {}: {name}", index + 1);
        let mut table = Table::new(&[
            "Memory",
            "Cache Size",
            "Relative Performance",
            "Cache Miss Rate",
            "Memory Traffic",
        ]);
        for p in &points {
            table.row(&[
                p.memory.name(),
                &format!("{} byte", p.cache_bytes),
                &fmt_rel(p.relative_performance),
                &fmt_pct(p.miss_rate),
                &format!("{:.1}%", p.memory_traffic * 100.0),
            ]);
        }
        println!("{table}");
    }
}
