//! Regenerates Tables 1–8: relative performance, instruction-cache miss
//! rate, and relative memory traffic vs cache size, per workload, for
//! the EPROM and Burst EPROM models (plus DRAM for matrix25A), with a
//! 16-entry CLB and a 100% data-cache miss rate.

use ccrp_bench::{render, runner, Experiment, SweepOptions};

fn main() {
    let report = runner::run(Experiment::Tables1To8, &SweepOptions::default());
    print!("{}", render::report(&report));
    eprintln!(
        "[{} cells on {} workers in {:.2?}]",
        report.cells.len(),
        report.jobs,
        report.total_wall
    );
}
