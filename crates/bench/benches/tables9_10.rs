//! Regenerates Tables 9–10: CLB size effects (16/8/4 entries) on the
//! relative performance of NASA7 and espresso.

use ccrp_bench::{render, runner, Experiment, SweepOptions};

fn main() {
    let report = runner::run(Experiment::Tables9To10, &SweepOptions::default());
    print!("{}", render::report(&report));
    eprintln!(
        "[{} cells on {} workers in {:.2?}]",
        report.cells.len(),
        report.jobs,
        report.total_wall
    );
}
