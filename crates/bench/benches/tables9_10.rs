//! Regenerates Tables 9–10: CLB size effects (16/8/4 entries) on the
//! relative performance of NASA7 and espresso.

use ccrp_bench::experiments::clb::{tables_9_10, CLB_SIZES};
use ccrp_bench::{fmt_rel, suite, Table};

fn main() {
    println!("\nTables 9-10 — CLB size effects, 100% data-cache miss rate\n");
    for (index, (name, rows)) in tables_9_10(suite()).into_iter().enumerate() {
        println!("Table {}: {name}", index + 9);
        let mut table = Table::new(&[
            "Memory",
            "Cache Size",
            &format!("Rel. Perf {} CLB", CLB_SIZES[0]),
            &format!("Rel. Perf {} CLB", CLB_SIZES[1]),
            &format!("Rel. Perf {} CLB", CLB_SIZES[2]),
        ]);
        for row in &rows {
            table.row(&[
                row.memory.name(),
                &format!("{} byte", row.cache_bytes),
                &fmt_rel(row.relative[0]),
                &fmt_rel(row.relative[1]),
                &fmt_rel(row.relative[2]),
            ]);
        }
        println!("{table}");
    }
    println!(
        "Paper's observation (§4.2.2): only minor variations with respect to CLB\n\
         size over this range."
    );
}
