//! Ablations of design choices the paper argues but does not tabulate:
//! Figure 1's block alignment, §3.2's LAT encodings, and §3.4's decoder
//! throughput.

use ccrp_bench::experiments::ablate::{
    alignment_ablation, bus_bandwidth_study, compact_lat_extension, decoder_ablation, lat_ablation,
    other_isa_study, positional_extension, DECODE_RATES,
};
use ccrp_bench::{fmt_rel, suite, Table};

fn main() {
    let s = suite();

    println!("\nAblation A — block alignment (Figure 1): stored bytes incl. LAT\n");
    let mut table = Table::new(&[
        "Workload",
        "Original",
        "Byte-aligned",
        "Word-aligned",
        "Delta",
    ]);
    for row in alignment_ablation(s) {
        table.row(&[
            row.name,
            &row.original.to_string(),
            &format!(
                "{} ({:.1}%)",
                row.byte_aligned,
                f64::from(row.byte_aligned) / f64::from(row.original) * 100.0
            ),
            &format!(
                "{} ({:.1}%)",
                row.word_aligned,
                f64::from(row.word_aligned) / f64::from(row.original) * 100.0
            ),
            &format!(
                "+{:.1}%",
                f64::from(row.word_aligned - row.byte_aligned) / f64::from(row.original) * 100.0
            ),
        ]);
    }
    println!("{table}");
    println!(
        "Paper (§2.1): byte alignment compresses slightly better; word alignment\n\
         simplifies the fetch hardware.\n"
    );

    println!("Ablation B — LAT encoding (§3.2): table bytes per workload\n");
    let mut table = Table::new(&[
        "Workload",
        "Original",
        "Naive 4B/line",
        "Grouped 8B/8 lines",
    ]);
    for row in lat_ablation(s) {
        table.row(&[
            row.name,
            &row.original.to_string(),
            &format!("{} (12.5%)", row.naive_bytes),
            &format!("{} (3.125%)", row.grouped_bytes),
        ]);
    }
    println!("{table}");

    println!("Ablation C — decoder rate (§3.4): espresso, 256-byte cache\n");
    let rows = decoder_ablation(s.get("espresso"));
    let mut table = Table::new(&[
        "Memory",
        &format!("{} B/cy", DECODE_RATES[0]),
        &format!("{} B/cy (paper)", DECODE_RATES[1]),
        &format!("{} B/cy", DECODE_RATES[2]),
        &format!("{} B/cy", DECODE_RATES[3]),
    ]);
    for memory in ccrp_sim::MemoryModel::ALL {
        let series: Vec<String> = rows
            .iter()
            .filter(|r| r.memory == memory)
            .map(|r| fmt_rel(r.relative))
            .collect();
        let cells: Vec<&str> = std::iter::once(memory.name())
            .chain(series.iter().map(String::as_str))
            .collect();
        table.row(&cells);
    }
    println!("{table}");
    println!(
        "Paper (§3.4): \"The decode speed is a major limiting factor in the\n\
         performance of a CCRP system\" — visible on the fast-memory rows.\n"
    );

    println!("Extension D — positional preselected code (§5 future work)\n");
    let mut table = Table::new(&[
        "Workload",
        "Single code (bits/B)",
        "Positional (bits/B)",
        "Saving",
    ]);
    for row in positional_extension(s) {
        table.row(&[
            row.name,
            &format!("{:.3}", row.single_bits_per_byte),
            &format!("{:.3}", row.positional_bits_per_byte),
            &format!(
                "{:+.1}%",
                (row.positional_bits_per_byte / row.single_bits_per_byte - 1.0) * 100.0
            ),
        ]);
    }
    println!("{table}");
    println!(
        "Conditioning the code on the byte's position within the instruction\n\
         word (a 4-way hardwired table mux) buys extra compression for free.\n"
    );

    println!("Extension E — compact word-granular LAT (§5 future work)\n");
    let mut table = Table::new(&["Workload", "Standard 8B/8 lines", "Compact 7B/8 lines"]);
    for row in compact_lat_extension(s) {
        table.row(&[
            row.name,
            &format!("{} (3.125%)", row.standard_bytes),
            &format!("{} (2.734%)", row.compact_bytes),
        ]);
    }
    println!("{table}");
    println!("Addressing verified entry-by-entry equivalent to the standard LAT.\n");

    println!("Extension F — shared instruction bus (§5's multiprocessor question)\n");
    let mut table = Table::new(&[
        "Workload",
        "Std demand (B/cy)",
        "CCRP demand (B/cy)",
        "Std cores @4B/cy",
        "CCRP cores @4B/cy",
    ]);
    for row in bus_bandwidth_study(s) {
        table.row(&[
            row.name,
            &format!("{:.4}", row.standard_demand),
            &format!("{:.4}", row.ccrp_demand),
            &format!("{:.1}", row.standard_cores),
            &format!("{:.1}", row.ccrp_cores),
        ]);
    }
    println!("{table}");
    println!(
        "The traffic reduction §4.3 measures translates directly into more\n\
         cores per shared instruction bus — the impact §5 asks about.\n"
    );

    println!("Extension G — other instruction sets (§5 future work)\n");
    let mut table = Table::new(&["Dialect", "Entropy (bits/B)", "Preselected size"]);
    for row in other_isa_study() {
        table.row(&[
            row.dialect.name(),
            &format!("{:.3}", row.entropy_bits),
            &format!("{:.1}%", row.compressed_ratio * 100.0),
        ]);
    }
    println!("{table}");
    println!(
        "Fixed-width RISC encodings (MIPS, SPARC-like) leave similar per-byte\n\
         redundancy for a preselected code; dense CISC code leaves much less —\n\
         quantifying why the paper targets RISC embedded systems."
    );
}
