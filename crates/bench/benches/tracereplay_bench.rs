//! Trace-replay sweep engine against per-cell re-execution: the whole
//! paper sweep (`Experiment::Tables1To8`, every workload × cache size ×
//! memory model) run through both `ccrp_bench::runner` engines on one
//! worker, checking the results fold identically and reporting the
//! wall-clock ratio.
//!
//! Like `micro.rs`, this is a std-only harness (no crates.io access for
//! an external framework): best-of-3 timed passes per engine after a
//! warmup pass. Results are written as `BENCH_tracereplay.json` via the
//! suite's deterministic JSON writer (the *numbers* are host-dependent;
//! the schema is not), which `ci/bench_gate.sh` reads to enforce the
//! ≥2× trace-engine speedup.
//!
//! Usage: `cargo bench -p ccrp-bench --bench tracereplay_bench --
//! [--out PATH]` (default `BENCH_tracereplay.json` in the current
//! directory).

use std::time::Instant;

use ccrp_bench::json::Json;
use ccrp_bench::{runner, Engine, Experiment, SweepOptions, SweepReport};

const EXPERIMENT: Experiment = Experiment::Tables1To8;
const PASSES: usize = 3;

/// Best-of-`PASSES` sweep seconds for `engine` on one worker (after a
/// warmup pass), plus the last report for the equality check.
fn measure(engine: Engine) -> (f64, SweepReport) {
    let options = SweepOptions {
        jobs: 1,
        engine,
        ..Default::default()
    };
    let mut report = runner::run(EXPERIMENT, &options);
    let mut best = f64::INFINITY;
    for _ in 0..PASSES {
        let start = Instant::now();
        report = runner::run(EXPERIMENT, &options);
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, report)
}

fn side_json(seconds: f64, cells: usize) -> Json {
    Json::obj([
        ("wall_us", Json::F64(seconds * 1e6)),
        ("us_per_cell", Json::F64(seconds * 1e6 / cells as f64)),
    ])
}

fn main() {
    let mut out_path = String::from("BENCH_tracereplay.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            // `cargo bench` passes --bench through to the target.
            "--bench" => {}
            other => panic!("unknown argument {other:?}"),
        }
    }

    let (reexec_s, reexec_report) = measure(Engine::Reexec);
    let (trace_s, trace_report) = measure(Engine::Trace);
    assert_eq!(
        reexec_report.results, trace_report.results,
        "engines must fold to identical results"
    );
    let cells = trace_report.cells.len();
    let speedup = reexec_s / trace_s;

    let report = Json::obj([
        ("schema", Json::str("ccrp-bench-tracereplay/1")),
        ("experiment", Json::str(EXPERIMENT.name())),
        ("cells", Json::U64(cells as u64)),
        ("jobs", Json::U64(1)),
        ("passes", Json::U64(PASSES as u64)),
        ("reexec", side_json(reexec_s, cells)),
        ("trace", side_json(trace_s, cells)),
        ("speedup", Json::F64(speedup)),
    ]);
    std::fs::write(&out_path, report.to_pretty()).expect("write results file");

    println!(
        "tracereplay_bench: {cells} cells  reexec {:>8.1} ms  trace {:>8.1} ms  speedup {speedup:.2}x",
        reexec_s * 1e3,
        trace_s * 1e3,
    );
    println!("-> {out_path}");
}
