//! Minimal fixed-width text tables for the experiment reports.

/// A column-aligned text table builder.
///
/// # Examples
///
/// ```
/// use ccrp_bench::Table;
///
/// let mut t = Table::new(&["Cache", "Relative", "Miss"]);
/// t.row(&["256", "0.976", "5.13%"]);
/// let text = t.to_string();
/// assert!(text.contains("Cache"));
/// assert!(text.contains("0.976"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn row(&mut self, cells: &[&str]) {
        let mut row: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let print_row = |f: &mut std::fmt::Formatter<'_>, cells: &[String]| {
            let line = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ");
            writeln!(f, "{}", line.trim_end())
        };
        print_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            print_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligns_columns() {
        let mut t = Table::new(&["a", "longheader"]);
        t.row(&["xxxx", "1"]);
        let text = t.to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3); // header, rule, one row
        assert!(lines[0].contains("longheader"));
        assert!(lines[2].starts_with("xxxx"));
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(&["a", "b", "c"]);
        t.row(&["1"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        let _ = t.to_string();
    }
}
