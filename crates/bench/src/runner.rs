//! The parallel sweep runner: decomposes every paper experiment into
//! independent (workload, configuration) cells, executes them across a
//! worker pool fed by a shared index queue, and records the outcome —
//! wall time per cell, cycle counts, and the simulator's
//! [`RunStats`](ccrp_sim::RunStats)/[`ClbStats`](ccrp::ClbStats)
//! counters — into a structured [`SweepReport`] that serializes to
//! `BENCH_<experiment>.json`.
//!
//! Two [`Engine`]s execute the simulation cells:
//!
//! * [`Engine::Trace`] (the default) runs two [`parallel_map`] stages:
//!   *(workload → trace)* captures each workload's run-compacted
//!   [`AccessTrace`] once, then *(trace → config rows)* replays every
//!   one of the workload's configurations from the shared trace in one
//!   pass over per-config simulator states
//!   ([`Simulation::replay_sweep`]) — O(workloads + configs·trace)
//!   instead of O(workloads × configs);
//! * [`Engine::Reexec`] re-executes the full per-fetch trace for every
//!   cell, one [`parallel_map`] item per cell — the pre-trace-engine
//!   behaviour, kept as the cross-check baseline.
//!
//! Both engines produce bit-identical
//! [`results_json`](SweepReport::results_json) output (debug builds
//! assert one replayed cell per workload against its re-executed twin).
//!
//! Determinism: cells are generated in the exact nesting order of the
//! serial experiment functions, each cell's simulation is itself
//! deterministic, and results are merged back by cell index — so the
//! folded rows (and their JSON) are bit-identical for any worker count.
//! Only the `timing` section of the JSON varies between runs (under the
//! trace engine a cell's wall time is its workload group's one-pass
//! replay time); the `results`/`cells` sections compare byte-for-byte.

use std::ops::Range;
use std::panic;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;
use std::time::{Duration, Instant};

use ccrp_probe::{MetricSet, MetricsCollector};
use ccrp_sim::{AccessTrace, Comparison, DataCacheModel, MemoryModel, Simulation, SystemConfig};
use ccrp_workloads::figure5_corpus;

use crate::experiments::clb::{ClbRow, CLB_SIZES};
use crate::experiments::dcache::{DcacheRow, DCACHE_MISS_PCTS};
use crate::experiments::fig5::{figure5_row, weighted_average, Fig5Row};
use crate::experiments::perf::{PerfPoint, CACHE_SIZES};
use crate::json::Json;
use crate::report::ToJson;
use crate::suite::{suite_with_jobs, Suite};

/// The worker count used when the caller does not choose one: the
/// machine's available parallelism.
pub fn available_jobs() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// Maps `f` over `items` on `jobs` scoped worker threads sharing an
/// atomic index queue, returning each result with its wall time, in
/// item order regardless of which worker ran what.
///
/// With `jobs <= 1` (or a single item) this degrades to a plain serial
/// map — no threads, identical results.
///
/// # Panics
///
/// Re-raises the first worker panic on the calling thread.
pub fn parallel_map<I, T, F>(jobs: usize, items: &[I], f: F) -> Vec<(T, Duration)>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    let timed = |item: &I| {
        let start = Instant::now();
        let value = f(item);
        (value, start.elapsed())
    };
    let jobs = jobs.clamp(1, items.len().max(1));
    if jobs == 1 {
        return items.iter().map(timed).collect();
    }

    let next = AtomicUsize::new(0);
    let worker = || {
        let mut local = Vec::new();
        loop {
            let index = next.fetch_add(1, Ordering::Relaxed);
            let Some(item) = items.get(index) else {
                return local;
            };
            local.push((index, timed(item)));
        }
    };
    let mut merged: Vec<(usize, (T, Duration))> = thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs).map(|_| scope.spawn(worker)).collect();
        handles
            .into_iter()
            .flat_map(|handle| match handle.join() {
                Ok(local) => local,
                Err(payload) => panic::resume_unwind(payload),
            })
            .collect()
    });
    merged.sort_by_key(|&(index, _)| index);
    merged.into_iter().map(|(_, result)| result).collect()
}

/// The sweepable experiments (one per paper artifact the runner covers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Experiment {
    /// Figure 5: static compression of the ten-program corpus.
    Fig5,
    /// Tables 1–8: relative performance vs cache size, per workload.
    Tables1To8,
    /// Tables 9–10: CLB size effects on NASA7 and espresso.
    Tables9To10,
    /// Figure 9: relative performance vs miss rate, all models.
    Fig9,
    /// Tables 11–13: data-cache miss-rate effects.
    Tables11To13,
}

impl Experiment {
    /// Every experiment, in paper order.
    pub const ALL: [Experiment; 5] = [
        Experiment::Fig5,
        Experiment::Tables1To8,
        Experiment::Tables9To10,
        Experiment::Fig9,
        Experiment::Tables11To13,
    ];

    /// The experiment's CLI/file name (`BENCH_<name>.json`).
    pub fn name(self) -> &'static str {
        match self {
            Experiment::Fig5 => "fig5",
            Experiment::Tables1To8 => "tables1_8",
            Experiment::Tables9To10 => "tables9_10",
            Experiment::Fig9 => "fig9",
            Experiment::Tables11To13 => "tables11_13",
        }
    }

    /// Parses a CLI/file name back to the experiment.
    pub fn from_name(name: &str) -> Option<Experiment> {
        Experiment::ALL.into_iter().find(|e| e.name() == name)
    }
}

/// How a sweep executes its simulation cells (see the module docs for
/// the two-stage trace pipeline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Re-execute the full per-fetch trace for every cell.
    Reexec,
    /// Capture each workload's [`AccessTrace`] once, then replay all of
    /// its configurations from the shared trace in one pass.
    Trace,
}

impl Engine {
    /// Every engine, trace (the default) first.
    pub const ALL: [Engine; 2] = [Engine::Trace, Engine::Reexec];

    /// The engine's CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Engine::Reexec => "reexec",
            Engine::Trace => "trace",
        }
    }

    /// Parses a CLI name back to the engine.
    pub fn from_name(name: &str) -> Option<Engine> {
        Engine::ALL.into_iter().find(|e| e.name() == name)
    }
}

/// Runner knobs.
#[derive(Debug, Clone, Copy)]
pub struct SweepOptions {
    /// Worker threads (1 = serial).
    pub jobs: usize,
    /// Collect probe-derived metrics (refill-latency and bytes-per-refill
    /// histograms, CLB residency, event counts) alongside the sweep.
    /// Metrics ride in the full report only, never in
    /// [`SweepReport::results_json`], so the committed results files are
    /// unaffected. Off by default: the metrics run exercises the probed
    /// simulation path, the plain run the probe-free one.
    pub metrics: bool,
    /// Cell execution engine; [`Engine::Trace`] by default. Both
    /// engines fold to bit-identical results.
    pub engine: Engine,
}

impl Default for SweepOptions {
    fn default() -> Self {
        Self {
            jobs: available_jobs(),
            metrics: false,
            engine: Engine::Trace,
        }
    }
}

/// One executed cell: its human-readable label, the simulator counters
/// it produced (absent for the static Figure 5 cells), and how long it
/// took on its worker.
#[derive(Debug, Clone)]
pub struct CellRecord {
    /// `workload/memory/config` label, unique within the experiment.
    pub label: String,
    /// Standard-vs-CCRP counters for simulation cells.
    pub comparison: Option<Comparison>,
    /// Wall time the cell spent on its worker thread.
    pub wall: Duration,
}

/// An experiment's folded rows — the same types the serial functions in
/// [`crate::experiments`] return, so the two paths compare directly.
#[derive(Debug, Clone, PartialEq)]
pub enum ExperimentResults {
    /// Figure 5 rows plus the weighted-average bar group.
    Fig5 {
        /// One row per corpus program.
        rows: Vec<Fig5Row>,
        /// The "Weighted Averages" group.
        weighted: Fig5Row,
    },
    /// Tables 1–8, one entry per workload.
    Tables1To8(Vec<(&'static str, Vec<PerfPoint>)>),
    /// Tables 9–10, one entry per workload.
    Tables9To10(Vec<(&'static str, Vec<ClbRow>)>),
    /// Figure 9 scatter points.
    Fig9(Vec<(&'static str, PerfPoint)>),
    /// Tables 11–13, one entry per workload.
    Tables11To13(Vec<(&'static str, Vec<DcacheRow>)>),
}

/// A completed sweep: results, per-cell records, and timing.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Which experiment ran.
    pub experiment: Experiment,
    /// Worker threads used.
    pub jobs: usize,
    /// Time spent building (or waiting on) the workload suite; zero when
    /// the suite was already cached or the experiment does not need it.
    pub suite_build: Duration,
    /// End-to-end wall time, including suite build.
    pub total_wall: Duration,
    /// Every executed cell, in generation order.
    pub cells: Vec<CellRecord>,
    /// The folded experiment rows.
    pub results: ExperimentResults,
    /// Probe-derived metrics, folded over all cells in generation order
    /// (present only when [`SweepOptions::metrics`] was set).
    pub metrics: Option<MetricSet>,
}

impl SweepReport {
    /// The deterministic half of the report: schema tag, experiment
    /// name, folded rows, and per-cell counters. Two sweeps of the same
    /// experiment serialize this identically whatever `jobs` was.
    pub fn results_json(&self) -> Json {
        Json::obj([
            ("schema", Json::str("ccrp-bench-sweep/1")),
            ("experiment", Json::str(self.experiment.name())),
            ("results", results_json(&self.results)),
            (
                "cells",
                Json::Arr(self.cells.iter().map(cell_json).collect()),
            ),
        ])
    }
}

impl ToJson for SweepReport {
    /// The full report: [`results_json`](SweepReport::results_json) plus
    /// the run-specific `jobs` count, the wall-clock timing section, and
    /// (when collected) the folded probe metrics.
    fn to_json(&self) -> Json {
        let Json::Obj(mut pairs) = self.results_json() else {
            unreachable!("results_json returns an object");
        };
        pairs.push(("jobs".into(), Json::U64(self.jobs as u64)));
        pairs.push((
            "timing".into(),
            Json::obj([
                ("suite_build_us", duration_json(self.suite_build)),
                ("total_wall_us", duration_json(self.total_wall)),
                (
                    "cells",
                    Json::Arr(
                        self.cells
                            .iter()
                            .map(|cell| {
                                Json::obj([
                                    ("label", Json::str(&cell.label)),
                                    ("wall_us", duration_json(cell.wall)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ));
        if let Some(metrics) = &self.metrics {
            pairs.push(("metrics".into(), metrics.to_json()));
        }
        Json::Obj(pairs)
    }
}

fn duration_json(d: Duration) -> Json {
    Json::U64(d.as_micros() as u64)
}

fn cell_json(cell: &CellRecord) -> Json {
    match &cell.comparison {
        Some(cmp) => Json::obj([
            ("label", Json::str(&cell.label)),
            ("standard", cmp.standard.to_json()),
            ("ccrp", cmp.ccrp.to_json()),
        ]),
        None => Json::obj([("label", Json::str(&cell.label))]),
    }
}

fn perf_point_json(p: &PerfPoint) -> Json {
    Json::obj([
        ("cache_bytes", Json::U64(u64::from(p.cache_bytes))),
        ("memory", Json::str(p.memory.name())),
        ("relative_performance", Json::F64(p.relative_performance)),
        ("miss_rate", Json::F64(p.miss_rate)),
        ("memory_traffic", Json::F64(p.memory_traffic)),
    ])
}

fn fig5_row_json(row: &Fig5Row) -> Json {
    Json::obj([
        ("name", Json::str(row.name)),
        ("original_bytes", Json::U64(row.original_bytes as u64)),
        ("compress_pct", Json::F64(row.compress_pct)),
        ("traditional_pct", Json::F64(row.traditional_pct)),
        ("bounded_pct", Json::F64(row.bounded_pct)),
        ("preselected_pct", Json::F64(row.preselected_pct)),
    ])
}

fn results_json(results: &ExperimentResults) -> Json {
    let per_workload =
        |name: &str, rows: Json| Json::obj([("workload", Json::str(name)), ("rows", rows)]);
    match results {
        ExperimentResults::Fig5 { rows, weighted } => Json::obj([
            ("rows", Json::Arr(rows.iter().map(fig5_row_json).collect())),
            ("weighted_average", fig5_row_json(weighted)),
        ]),
        ExperimentResults::Tables1To8(tables) => Json::Arr(
            tables
                .iter()
                .map(|(name, points)| {
                    per_workload(
                        name,
                        Json::Arr(points.iter().map(perf_point_json).collect()),
                    )
                })
                .collect(),
        ),
        ExperimentResults::Tables9To10(tables) => Json::Arr(
            tables
                .iter()
                .map(|(name, rows)| {
                    per_workload(
                        name,
                        Json::Arr(
                            rows.iter()
                                .map(|row| {
                                    Json::obj([
                                        ("memory", Json::str(row.memory.name())),
                                        ("cache_bytes", Json::U64(u64::from(row.cache_bytes))),
                                        (
                                            "relative",
                                            Json::Arr(
                                                row.relative
                                                    .iter()
                                                    .map(|&x| Json::F64(x))
                                                    .collect(),
                                            ),
                                        ),
                                        (
                                            "clb_miss_rate",
                                            Json::Arr(
                                                row.clb_miss_rate
                                                    .iter()
                                                    .map(|&x| Json::F64(x))
                                                    .collect(),
                                            ),
                                        ),
                                    ])
                                })
                                .collect(),
                        ),
                    )
                })
                .collect(),
        ),
        ExperimentResults::Fig9(points) => Json::Arr(
            points
                .iter()
                .map(|(name, point)| {
                    Json::obj([
                        ("workload", Json::str(name)),
                        ("point", perf_point_json(point)),
                    ])
                })
                .collect(),
        ),
        ExperimentResults::Tables11To13(tables) => Json::Arr(
            tables
                .iter()
                .map(|(name, rows)| {
                    per_workload(
                        name,
                        Json::Arr(
                            rows.iter()
                                .map(|row| {
                                    Json::obj([
                                        ("memory", Json::str(row.memory.name())),
                                        (
                                            "dcache_miss_pct",
                                            Json::U64(u64::from(row.dcache_miss_pct)),
                                        ),
                                        ("relative", Json::F64(row.relative)),
                                    ])
                                })
                                .collect(),
                        ),
                    )
                })
                .collect(),
        ),
    }
}

/// One independent simulation cell: a (workload, memory, cache, CLB,
/// data-cache) configuration, generated in the serial nesting order of
/// the experiment it belongs to.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SimCell {
    pub(crate) workload: &'static str,
    memory: MemoryModel,
    cache_bytes: u32,
    clb_entries: usize,
    /// `None` models no data cache ([`DataCacheModel::NONE`]).
    dcache_miss_pct: Option<u32>,
}

impl SimCell {
    pub(crate) fn label(&self) -> String {
        let mut label = format!(
            "{}/{}/{}B/clb{}",
            self.workload,
            self.memory.name(),
            self.cache_bytes,
            self.clb_entries
        );
        if let Some(pct) = self.dcache_miss_pct {
            label.push_str(&format!("/dcache{pct}%"));
        }
        label
    }

    pub(crate) fn config(&self) -> SystemConfig {
        SystemConfig::new()
            .with_cache_bytes(self.cache_bytes)
            .with_memory(self.memory)
            .with_clb_entries(self.clb_entries)
            .with_dcache(self.dcache_miss_pct.map_or(DataCacheModel::NONE, |pct| {
                DataCacheModel::with_miss_rate(f64::from(pct) / 100.0)
            }))
    }

    pub(crate) fn simulate(&self, suite: &Suite) -> Comparison {
        let prepared = suite.get(self.workload);
        Simulation::new(self.config())
            .compare(&prepared.image, prepared.workload.trace.iter())
            .expect("paper configurations are valid")
    }

    /// Like [`simulate`](Self::simulate), but with a metrics collector
    /// attached to the CCRP side (the standard side has no refill path
    /// worth histogramming, so it runs probe-free).
    fn simulate_with_metrics(&self, suite: &Suite) -> (Comparison, MetricSet) {
        let prepared = suite.get(self.workload);
        let mut collector = MetricsCollector::new();
        let comparison = Simulation::new(self.config())
            .ccrp_probed(&mut collector)
            .compare(&prepared.image, prepared.workload.trace.iter())
            .expect("paper configurations are valid");
        (comparison, collector.into_metrics())
    }
}

/// The memory models Tables 1–8 print for `workload` (§4.2.1 adds DRAM
/// for matrix25A only).
fn tables_1_8_memories(workload: &str) -> &'static [MemoryModel] {
    if workload == "matrix25A" {
        &[
            MemoryModel::Eprom,
            MemoryModel::BurstEprom,
            MemoryModel::ScDram,
        ]
    } else {
        &[MemoryModel::Eprom, MemoryModel::BurstEprom]
    }
}

pub(crate) fn sim_cells(experiment: Experiment, suite: &Suite) -> Vec<SimCell> {
    let mut cells = Vec::new();
    let mut push = |workload, memory, cache_bytes, clb_entries, dcache_miss_pct| {
        cells.push(SimCell {
            workload,
            memory,
            cache_bytes,
            clb_entries,
            dcache_miss_pct,
        });
    };
    match experiment {
        Experiment::Fig5 => unreachable!("fig5 has no simulation cells"),
        Experiment::Tables1To8 => {
            for prepared in suite.iter() {
                let name = prepared.workload.name;
                for &memory in tables_1_8_memories(name) {
                    for &cache in &CACHE_SIZES {
                        push(name, memory, cache, 16, None);
                    }
                }
            }
        }
        Experiment::Tables9To10 => {
            for name in ["NASA7", "espresso"] {
                let name = suite.get(name).workload.name;
                for memory in [MemoryModel::Eprom, MemoryModel::BurstEprom] {
                    for &cache in &CACHE_SIZES {
                        for &clb in &CLB_SIZES {
                            push(name, memory, cache, clb, None);
                        }
                    }
                }
            }
        }
        Experiment::Fig9 => {
            for prepared in suite.iter() {
                for &memory in &MemoryModel::ALL {
                    for &cache in &CACHE_SIZES {
                        push(prepared.workload.name, memory, cache, 16, None);
                    }
                }
            }
        }
        Experiment::Tables11To13 => {
            for name in ["NASA7", "espresso", "fpppp"] {
                let name = suite.get(name).workload.name;
                for memory in [MemoryModel::Eprom, MemoryModel::BurstEprom] {
                    for &pct in &DCACHE_MISS_PCTS {
                        push(name, memory, 1024, 16, Some(pct));
                    }
                }
            }
        }
    }
    cells
}

fn perf_point(cell: &SimCell, cmp: &Comparison) -> PerfPoint {
    PerfPoint {
        cache_bytes: cell.cache_bytes,
        memory: cell.memory,
        relative_performance: cmp.relative_execution_time(),
        miss_rate: cmp.miss_rate(),
        memory_traffic: cmp.memory_traffic_ratio(),
    }
}

/// Folds the flat, index-ordered cell results back into the serial
/// experiment row types. Cells were generated in the serial nesting
/// order, so grouping is purely sequential.
fn fold(experiment: Experiment, cells: &[SimCell], outcomes: &[Comparison]) -> ExperimentResults {
    let mut iter = cells.iter().zip(outcomes);
    match experiment {
        Experiment::Fig5 => unreachable!("fig5 has no simulation cells"),
        Experiment::Tables1To8 => {
            let mut tables: Vec<(&'static str, Vec<PerfPoint>)> = Vec::new();
            for (cell, cmp) in iter {
                if tables.last().is_none_or(|(name, _)| *name != cell.workload) {
                    tables.push((cell.workload, Vec::new()));
                }
                tables
                    .last_mut()
                    .expect("pushed above")
                    .1
                    .push(perf_point(cell, cmp));
            }
            ExperimentResults::Tables1To8(tables)
        }
        Experiment::Tables9To10 => {
            let mut tables: Vec<(&'static str, Vec<ClbRow>)> = Vec::new();
            while let Some((first, first_cmp)) = iter.next() {
                let mut relative = [0.0; 3];
                let mut clb_miss = [0.0; 3];
                let mut record = |slot: usize, cmp: &Comparison| {
                    relative[slot] = cmp.relative_execution_time();
                    clb_miss[slot] = cmp.ccrp.clb.expect("CCRP runs track the CLB").miss_rate();
                };
                record(0, first_cmp);
                for slot in 1..CLB_SIZES.len() {
                    let (_, cmp) = iter.next().expect("cells come in CLB_SIZES groups");
                    record(slot, cmp);
                }
                if tables
                    .last()
                    .is_none_or(|(name, _)| *name != first.workload)
                {
                    tables.push((first.workload, Vec::new()));
                }
                tables.last_mut().expect("pushed above").1.push(ClbRow {
                    memory: first.memory,
                    cache_bytes: first.cache_bytes,
                    relative,
                    clb_miss_rate: clb_miss,
                });
            }
            ExperimentResults::Tables9To10(tables)
        }
        Experiment::Fig9 => ExperimentResults::Fig9(
            iter.map(|(cell, cmp)| (cell.workload, perf_point(cell, cmp)))
                .collect(),
        ),
        Experiment::Tables11To13 => {
            let mut tables: Vec<(&'static str, Vec<DcacheRow>)> = Vec::new();
            for (cell, cmp) in iter {
                if tables.last().is_none_or(|(name, _)| *name != cell.workload) {
                    tables.push((cell.workload, Vec::new()));
                }
                tables.last_mut().expect("pushed above").1.push(DcacheRow {
                    memory: cell.memory,
                    dcache_miss_pct: cell.dcache_miss_pct.expect("dcache sweep cell"),
                    relative: cmp.relative_execution_time(),
                });
            }
            ExperimentResults::Tables11To13(tables)
        }
    }
}

/// One contiguous range of cells sharing a workload — the unit of the
/// trace engine's second stage.
struct CellGroup<'a> {
    workload: &'static str,
    range: Range<usize>,
    trace: &'a AccessTrace,
}

/// Splits `cells` into contiguous same-workload ranges. Cell generation
/// follows the serial nesting order (workload outermost), so each
/// workload forms exactly one range.
fn workload_ranges(cells: &[SimCell]) -> Vec<(&'static str, Range<usize>)> {
    let mut ranges: Vec<(&'static str, Range<usize>)> = Vec::new();
    for (index, cell) in cells.iter().enumerate() {
        match ranges.last_mut() {
            Some((name, range)) if *name == cell.workload => range.end = index + 1,
            _ => ranges.push((cell.workload, index..index + 1)),
        }
    }
    ranges
}

/// The trace engine: stage one *(workload → trace)* captures each
/// workload's [`AccessTrace`] once; stage two *(trace → config rows)*
/// replays every cell of the workload from the shared trace — in one
/// pass over per-config states for plain sweeps, or per cell with a
/// probe attached when metrics were requested (the replayed event
/// stream is identical to the re-executed one, so the histograms
/// agree). Both stages run on [`parallel_map`], and the flattened
/// outcomes keep cell generation order, so folding is unchanged.
fn trace_engine_outcomes(
    jobs: usize,
    cells: &[SimCell],
    suite: &Suite,
    metrics: bool,
) -> Vec<((Comparison, Option<MetricSet>), Duration)> {
    let ranges = workload_ranges(cells);
    let captures = parallel_map(jobs, &ranges, |(name, _)| {
        AccessTrace::capture(suite.get(name).workload.trace.iter())
    });
    let groups: Vec<CellGroup<'_>> = ranges
        .iter()
        .zip(&captures)
        .map(|((workload, range), (trace, _))| CellGroup {
            workload,
            range: range.clone(),
            trace,
        })
        .collect();

    let replayed = parallel_map(jobs, &groups, |group| {
        let prepared = suite.get(group.workload);
        let group_cells = &cells[group.range.clone()];
        let outcomes: Vec<(Comparison, Option<MetricSet>)> = if metrics {
            group_cells
                .iter()
                .map(|cell| {
                    let mut collector = MetricsCollector::new();
                    let comparison = Simulation::new(cell.config())
                        .ccrp_probed(&mut collector)
                        .compare(&prepared.image, group.trace)
                        .expect("paper configurations are valid");
                    (comparison, Some(collector.into_metrics()))
                })
                .collect()
        } else {
            let configs: Vec<SystemConfig> = group_cells.iter().map(SimCell::config).collect();
            Simulation::replay_sweep(&prepared.image, group.trace, &configs)
                .expect("paper configurations are valid")
                .into_iter()
                .map(|comparison| (comparison, None))
                .collect()
        };
        // Cold-start consistency (debug builds): a replayed cell must
        // equal its re-executed twin — one probe per workload group.
        #[cfg(debug_assertions)]
        if let (Some(cell), Some((comparison, _))) = (group_cells.first(), outcomes.first()) {
            debug_assert_eq!(
                *comparison,
                cell.simulate(suite),
                "replayed and re-executed stats diverge for {}",
                cell.label()
            );
        }
        outcomes
    });

    let mut flat = Vec::with_capacity(cells.len());
    for (group_outcomes, wall) in replayed {
        for outcome in group_outcomes {
            flat.push((outcome, wall));
        }
    }
    flat
}

/// Runs one experiment across `options.jobs` workers.
pub fn run(experiment: Experiment, options: &SweepOptions) -> SweepReport {
    let jobs = options.jobs.max(1);
    let total_start = Instant::now();

    if experiment == Experiment::Fig5 {
        let programs = figure5_corpus();
        let outcomes = parallel_map(jobs, &programs, figure5_row);
        let cells = programs
            .iter()
            .zip(&outcomes)
            .map(|(program, (_, wall))| CellRecord {
                label: program.name.to_string(),
                comparison: None,
                wall: *wall,
            })
            .collect();
        let rows: Vec<Fig5Row> = outcomes.into_iter().map(|(row, _)| row).collect();
        let weighted = weighted_average(&rows);
        return SweepReport {
            experiment,
            jobs,
            suite_build: Duration::ZERO,
            total_wall: total_start.elapsed(),
            cells,
            results: ExperimentResults::Fig5 { rows, weighted },
            // Figure 5 is a static-compression experiment: nothing
            // refills, so a metrics run yields an empty registry.
            metrics: options.metrics.then(MetricSet::new),
        };
    }

    let build_start = Instant::now();
    let suite = suite_with_jobs(jobs);
    let suite_build = build_start.elapsed();

    let sim_cells = sim_cells(experiment, suite);
    let outcomes = match options.engine {
        Engine::Trace => trace_engine_outcomes(jobs, &sim_cells, suite, options.metrics),
        Engine::Reexec if options.metrics => parallel_map(jobs, &sim_cells, |cell| {
            let (cmp, metrics) = cell.simulate_with_metrics(suite);
            (cmp, Some(metrics))
        }),
        Engine::Reexec => parallel_map(jobs, &sim_cells, |cell| (cell.simulate(suite), None)),
    };
    let cells = sim_cells
        .iter()
        .zip(&outcomes)
        .map(|(cell, ((cmp, _), wall))| CellRecord {
            label: cell.label(),
            comparison: Some(*cmp),
            wall: *wall,
        })
        .collect();
    // Fold per-cell metrics in generation order, so the aggregate (like
    // everything else in results_json) is independent of `jobs`.
    let metrics = options.metrics.then(|| {
        let mut folded = MetricSet::new();
        for ((_, cell_metrics), _) in &outcomes {
            if let Some(cell_metrics) = cell_metrics {
                folded.merge(cell_metrics);
            }
        }
        folded
    });
    let comparisons: Vec<Comparison> = outcomes.into_iter().map(|((cmp, _), _)| cmp).collect();
    let results = fold(experiment, &sim_cells, &comparisons);

    SweepReport {
        experiment,
        jobs,
        suite_build,
        total_wall: total_start.elapsed(),
        cells,
        results,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{clb, dcache, fig5, perf};
    use crate::suite::suite;

    #[test]
    fn parallel_map_preserves_item_order() {
        let items: Vec<u32> = (0..100).collect();
        let doubled = parallel_map(8, &items, |&x| x * 2);
        let values: Vec<u32> = doubled.into_iter().map(|(v, _)| v).collect();
        assert_eq!(values, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        // Serial path produces the same mapping.
        let serial = parallel_map(1, &items, |&x| x * 2);
        assert_eq!(serial.len(), 100);
        assert_eq!(serial[7].0, 14);
    }

    #[test]
    fn parallel_map_handles_zero_items() {
        let items: Vec<u32> = Vec::new();
        assert!(parallel_map(8, &items, |&x| x * 2).is_empty());
        assert!(parallel_map(0, &items, |&x| x * 2).is_empty());
    }

    #[test]
    fn parallel_map_clamps_jobs_past_item_count() {
        // More workers than items: excess workers find the queue empty
        // and exit; results stay complete and ordered.
        let items: Vec<u32> = (0..3).collect();
        let values: Vec<u32> = parallel_map(64, &items, |&x| x + 1)
            .into_iter()
            .map(|(v, _)| v)
            .collect();
        assert_eq!(values, vec![1, 2, 3]);
    }

    #[test]
    fn parallel_map_reraises_a_worker_panic() {
        let items: Vec<u32> = (0..16).collect();
        let caught = std::panic::catch_unwind(|| {
            parallel_map(4, &items, |&x| {
                assert!(x != 9, "deliberate worker panic");
                x
            })
        });
        let payload = caught.expect_err("the worker panic must reach the caller");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
            .expect("panic payload is a string");
        assert!(message.contains("deliberate worker panic"));
    }

    #[test]
    fn experiment_names_round_trip() {
        for experiment in Experiment::ALL {
            assert_eq!(Experiment::from_name(experiment.name()), Some(experiment));
        }
        assert_eq!(Experiment::from_name("tables_1_8"), None);
    }

    #[test]
    fn runner_matches_serial_experiments() {
        // The tentpole invariant: the parallel decomposition folds back
        // to exactly what the serial experiment functions compute.
        let s = suite();
        let options = SweepOptions {
            jobs: 4,
            ..Default::default()
        };

        let report = run(Experiment::Tables1To8, &options);
        assert_eq!(
            report.results,
            ExperimentResults::Tables1To8(perf::tables_1_to_8(s))
        );
        assert_eq!(report.cells.len(), 85);

        let report = run(Experiment::Tables9To10, &options);
        assert_eq!(
            report.results,
            ExperimentResults::Tables9To10(clb::tables_9_10(s))
        );
        assert_eq!(report.cells.len(), 2 * 2 * 5 * 3);

        let report = run(Experiment::Fig9, &options);
        assert_eq!(report.results, ExperimentResults::Fig9(perf::figure9(s)));

        let report = run(Experiment::Tables11To13, &options);
        assert_eq!(
            report.results,
            ExperimentResults::Tables11To13(dcache::tables_11_13(s))
        );

        let report = run(Experiment::Fig5, &options);
        let rows = fig5::figure5();
        let weighted = fig5::weighted_average(&rows);
        assert_eq!(report.results, ExperimentResults::Fig5 { rows, weighted });
    }

    #[test]
    fn engines_fold_to_identical_results() {
        // The trace engine (two-stage capture/replay) and the reexec
        // engine (per-cell re-execution) must serialize their
        // deterministic sections byte-for-byte identically.
        for experiment in [Experiment::Tables11To13, Experiment::Tables9To10] {
            let traced = run(
                experiment,
                &SweepOptions {
                    jobs: 2,
                    engine: Engine::Trace,
                    ..Default::default()
                },
            );
            let reexecuted = run(
                experiment,
                &SweepOptions {
                    jobs: 3,
                    engine: Engine::Reexec,
                    ..Default::default()
                },
            );
            assert_eq!(traced.results, reexecuted.results, "{experiment:?}");
            assert_eq!(
                traced.results_json().to_compact(),
                reexecuted.results_json().to_compact(),
                "{experiment:?}"
            );
        }
    }

    #[test]
    fn engine_names_round_trip() {
        for engine in Engine::ALL {
            assert_eq!(Engine::from_name(engine.name()), Some(engine));
        }
        assert_eq!(Engine::from_name("replay"), None);
        assert_eq!(SweepOptions::default().engine, Engine::Trace);
    }

    #[test]
    fn report_json_sections() {
        let options = SweepOptions {
            jobs: 2,
            ..Default::default()
        };
        let report = run(Experiment::Tables11To13, &options);
        let full = report.to_json().to_pretty();
        assert!(full.contains("\"schema\": \"ccrp-bench-sweep/1\""));
        assert!(full.contains("\"timing\""));
        assert!(full.contains("\"refill_cycles\""));
        assert!(!full.contains("\"metrics\""));
        let deterministic = report.results_json().to_compact();
        assert!(!deterministic.contains("timing"));
        assert!(!deterministic.contains("wall_us"));
    }

    #[test]
    fn metrics_ride_along_without_touching_results() {
        let plain = run(
            Experiment::Tables11To13,
            &SweepOptions {
                jobs: 2,
                metrics: false,
                ..Default::default()
            },
        );
        let probed = run(
            Experiment::Tables11To13,
            &SweepOptions {
                jobs: 3,
                metrics: true,
                ..Default::default()
            },
        );
        // Probing never perturbs the simulation itself.
        assert_eq!(
            plain.results_json().to_compact(),
            probed.results_json().to_compact()
        );

        let metrics = probed.metrics.as_ref().expect("metrics were requested");
        // Every CCRP-side cache miss the simulator counted reached the
        // probe (the standard side runs probe-free, so it contributes
        // nothing to the registry).
        let ccrp_misses: u64 = probed
            .cells
            .iter()
            .map(|cell| cell.comparison.expect("sim cell").ccrp.cache.misses)
            .sum();
        assert_eq!(metrics.counter("events.cache_miss"), ccrp_misses);
        assert_eq!(metrics.counter("events.refill"), ccrp_misses);
        let latency = metrics
            .histogram("refill_latency_cycles")
            .expect("refills happened");
        assert_eq!(latency.count(), ccrp_misses);
        // The full JSON carries the registry; the deterministic half
        // never does.
        assert!(probed.to_json().to_compact().contains("\"metrics\""));
        assert!(!probed.results_json().to_compact().contains("\"metrics\""));
    }
}
