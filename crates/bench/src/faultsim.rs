//! Seeded fault-injection campaigns over the container format.
//!
//! A campaign perturbs serialized containers with single seeded faults
//! (bit flips and byte stomps from [`ccrp::FaultPlan`]) and classifies
//! what the loader and decoder do with each corrupted copy:
//!
//! * **detected** — the corruption surfaced as a structured error
//!   (`BadContainer`, `Integrity`, `CrcMismatch`, a decode error);
//! * **silent-miscompare** — the image loaded and verified but its
//!   metadata or expanded bytes differ from the pristine image (the
//!   failure CCRP hardware could not see before container v2);
//! * **benign** — the fault changed nothing observable (a stomp equal to
//!   the original byte, or a region the format never reads);
//! * **panic** — classification panicked (a no-panic contract violation;
//!   the campaign exists to prove this count is zero);
//! * **hang** — the per-trial step budget was exhausted (a watchdog
//!   backstop; bounded Huffman decode is structurally terminating).
//!
//! Each trial alternates between a version-1 container (no integrity
//! records) and a version-2 container (header + per-block CRC-32), and
//! cycles faults through every [`FaultRegion`]. Outcomes are a pure
//! function of `(seed, trial index)`, so a campaign is bit-identical
//! across `--jobs` settings and machines.

use std::panic::{self, AssertUnwindSafe};
use std::time::{Duration, Instant};

use ccrp::{CompressedImage, ContainerLayout, FaultPlan, FaultRegion};
use ccrp_compress::{BlockAlignment, ByteCode, ByteHistogram};

use crate::json::Json;
use crate::report::ToJson;
use crate::runner::parallel_map;

/// How one fault-injection trial ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// A structured error surfaced the corruption.
    Detected,
    /// The image loaded cleanly but disagrees with the pristine one.
    SilentMiscompare,
    /// The fault had no observable effect.
    Benign,
    /// Classification panicked.
    Panic,
    /// Classification exceeded its step budget.
    Hang,
}

impl Outcome {
    /// All outcomes, in report order.
    pub const ALL: [Outcome; 5] = [
        Outcome::Detected,
        Outcome::SilentMiscompare,
        Outcome::Benign,
        Outcome::Panic,
        Outcome::Hang,
    ];

    /// Stable report name.
    pub fn name(self) -> &'static str {
        match self {
            Outcome::Detected => "detected",
            Outcome::SilentMiscompare => "silent-miscompare",
            Outcome::Benign => "benign",
            Outcome::Panic => "panic",
            Outcome::Hang => "hang",
        }
    }

    /// One-letter code for the compact per-trial outcome string.
    pub fn code(self) -> char {
        match self {
            Outcome::Detected => 'D',
            Outcome::SilentMiscompare => 'S',
            Outcome::Benign => 'B',
            Outcome::Panic => 'P',
            Outcome::Hang => 'H',
        }
    }
}

/// Which container format a trial corrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Version 1: no integrity records.
    V1,
    /// Version 2: header + per-block CRC-32 records.
    V2,
}

impl Mode {
    /// Stable report name.
    pub fn name(self) -> &'static str {
        match self {
            Mode::V1 => "v1",
            Mode::V2 => "v2",
        }
    }
}

/// Campaign knobs.
#[derive(Debug, Clone, Copy)]
pub struct FaultsimOptions {
    /// Number of seeded trials.
    pub trials: usize,
    /// Campaign seed; trial `i` derives its own seed from `(seed, i)`.
    pub seed: u64,
    /// Worker threads (1 = serial). Does not affect outcomes.
    pub jobs: usize,
}

impl Default for FaultsimOptions {
    fn default() -> Self {
        Self {
            trials: 1000,
            seed: 42,
            jobs: crate::runner::available_jobs(),
        }
    }
}

/// A finished campaign.
#[derive(Debug, Clone)]
pub struct FaultsimReport {
    /// The options the campaign ran with.
    pub options: FaultsimOptions,
    /// Outcome of trial `i` at index `i`.
    pub outcomes: Vec<Outcome>,
    /// End-to-end wall time.
    pub total_wall: Duration,
}

/// The container mode trial `trial` corrupts (even = v1, odd = v2).
pub fn mode_of(trial: usize) -> Mode {
    if trial.is_multiple_of(2) {
        Mode::V1
    } else {
        Mode::V2
    }
}

/// The region trial `trial` injects into (cycling all regions per mode).
pub fn region_of(trial: usize) -> FaultRegion {
    FaultRegion::ALL[(trial / 2) % FaultRegion::ALL.len()]
}

/// Decorrelates per-trial seeds (the SplitMix64 increment constant).
fn trial_seed(seed: u64, trial: usize) -> u64 {
    seed ^ (trial as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// The deterministic program every campaign corrupts: a mix of highly
/// compressible lines and high-entropy (bypassed) lines, so faults land
/// in both kinds of stored block.
pub fn campaign_image() -> CompressedImage {
    let mut text = vec![0u8; 4096];
    let mut x = 0x1234_5678u32;
    for (i, b) in text.iter_mut().enumerate() {
        x = x.wrapping_mul(1_103_515_245).wrapping_add(12_345);
        *b = match (i / 32) % 4 {
            // Three lines of skewed, compressible bytes...
            0 => 0x24,
            1 => (i % 7) as u8,
            2 => {
                if i % 4 == 0 {
                    (x >> 28) as u8
                } else {
                    0
                }
            }
            // ...then one line of hostile bytes that will bypass.
            _ => (x >> 17) as u8,
        };
    }
    let code =
        ByteCode::preselected(&ByteHistogram::of(&text)).expect("campaign histogram is non-empty");
    CompressedImage::build(0, &text, code, BlockAlignment::Word).expect("campaign image builds")
}

/// Everything a trial needs, built once per campaign.
struct Pristine {
    image: CompressedImage,
    v1: Vec<u8>,
    v2: Vec<u8>,
    v1_layout: ContainerLayout,
    v2_layout: ContainerLayout,
    /// Expanded pristine lines, for miscompare checks.
    lines: Vec<[u8; 32]>,
}

impl Pristine {
    fn build() -> Pristine {
        let image = campaign_image();
        let v1 = image.to_bytes();
        let v2 = image.to_bytes_v2();
        let v1_layout = ContainerLayout::of(&v1).expect("pristine v1 has a layout");
        let v2_layout = ContainerLayout::of(&v2).expect("pristine v2 has a layout");
        let lines = (0..image.line_count())
            .map(|l| {
                image
                    .expand_line(l as u32 * 32)
                    .expect("pristine lines expand")
            })
            .collect();
        Pristine {
            image,
            v1,
            v2,
            v1_layout,
            v2_layout,
            lines,
        }
    }
}

/// One trial: corrupt a fresh copy of the container, then classify what
/// loading and fully expanding it does.
fn run_trial(pristine: &Pristine, seed: u64, trial: usize) -> Outcome {
    let (bytes, layout) = match mode_of(trial) {
        Mode::V1 => (&pristine.v1, &pristine.v1_layout),
        Mode::V2 => (&pristine.v2, &pristine.v2_layout),
    };
    let plan = FaultPlan::seeded(trial_seed(seed, trial), layout, region_of(trial), 1);
    let mut corrupt = bytes.clone();
    if plan.apply(&mut corrupt) == 0 {
        // Nothing changed (empty region, or a stomp matching the
        // original byte): trivially benign, skip the load.
        return Outcome::Benign;
    }
    // The whole classification runs under catch_unwind so a contract
    // violation is counted, not propagated.
    let classified = panic::catch_unwind(AssertUnwindSafe(|| classify(pristine, &corrupt)));
    classified.unwrap_or(Outcome::Panic)
}

fn classify(pristine: &Pristine, corrupt: &[u8]) -> Outcome {
    let loaded = match CompressedImage::from_bytes(corrupt) {
        Err(_) => return Outcome::Detected,
        Ok(image) => image,
    };
    // Metadata the fault may have rewritten without tripping a check.
    if loaded.text_base() != pristine.image.text_base()
        || loaded.original_bytes() != pristine.image.original_bytes()
        || loaded.alignment() != pristine.image.alignment()
        || loaded.lat_base() != pristine.image.lat_base()
    {
        return Outcome::SilentMiscompare;
    }
    if loaded.verify().is_err() {
        return Outcome::Detected;
    }
    // Expand every line and compare against the pristine program. The
    // step budget is a watchdog backstop: bounded decode cannot loop,
    // so exceeding it means a hang-class bug.
    let budget = pristine.lines.len() * 4 + 1024;
    let mut steps = 0usize;
    for (line, expected) in pristine.lines.iter().enumerate() {
        steps += 1;
        if steps > budget {
            return Outcome::Hang;
        }
        match loaded.expand_line(line as u32 * 32) {
            Err(_) => return Outcome::Detected,
            Ok(bytes) => {
                if bytes != *expected {
                    return Outcome::SilentMiscompare;
                }
            }
        }
    }
    Outcome::Benign
}

/// Runs a campaign. Outcomes depend only on `(options.seed, trial)` —
/// `options.jobs` changes wall time, never results.
pub fn run(options: FaultsimOptions) -> FaultsimReport {
    let started = Instant::now();
    let pristine = Pristine::build();
    let trials: Vec<usize> = (0..options.trials).collect();
    let outcomes = parallel_map(options.jobs, &trials, |&trial| {
        run_trial(&pristine, options.seed, trial)
    })
    .into_iter()
    .map(|(outcome, _)| outcome)
    .collect();
    FaultsimReport {
        options,
        outcomes,
        total_wall: started.elapsed(),
    }
}

impl FaultsimReport {
    /// Trials with `outcome`, optionally restricted to one mode.
    pub fn count(&self, outcome: Outcome, mode: Option<Mode>) -> usize {
        self.outcomes
            .iter()
            .enumerate()
            .filter(|&(trial, &o)| o == outcome && mode.is_none_or(|m| mode_of(trial) == m))
            .count()
    }

    /// The campaign's pass criterion: no panics, no hangs anywhere, and
    /// no silent miscompares once CRC records are in play (v2 trials).
    pub fn acceptable(&self) -> bool {
        self.count(Outcome::Panic, None) == 0
            && self.count(Outcome::Hang, None) == 0
            && self.count(Outcome::SilentMiscompare, Some(Mode::V2)) == 0
    }

    /// The compact per-trial outcome string (`outcomes[i]` = trial `i`).
    pub fn outcome_string(&self) -> String {
        self.outcomes.iter().map(|o| o.code()).collect()
    }

    fn breakdown<K: PartialEq>(
        &self,
        keys: impl IntoIterator<Item = (&'static str, K)>,
        key_of: impl Fn(usize) -> K,
    ) -> Json {
        Json::Obj(
            keys.into_iter()
                .map(|(name, key)| {
                    let counts = Outcome::ALL.map(|outcome| {
                        let n = self
                            .outcomes
                            .iter()
                            .enumerate()
                            .filter(|&(trial, &o)| o == outcome && key_of(trial) == key)
                            .count();
                        (outcome.name().to_string(), Json::U64(n as u64))
                    });
                    (name.to_string(), Json::Obj(counts.into_iter().collect()))
                })
                .collect(),
        )
    }

    /// The deterministic half of the report: identical for equal
    /// `(trials, seed)` whatever the job count or machine.
    pub fn results_json(&self) -> Json {
        Json::obj([
            ("schema", Json::str("ccrp-faultsim/1")),
            ("trials", Json::U64(self.options.trials as u64)),
            ("seed", Json::U64(self.options.seed)),
            (
                "modes",
                self.breakdown([("v1", Mode::V1), ("v2", Mode::V2)], mode_of),
            ),
            (
                "regions",
                self.breakdown(FaultRegion::ALL.map(|r| (r.name(), r)), region_of),
            ),
            ("outcomes", Json::str(&self.outcome_string())),
            ("acceptable", Json::Bool(self.acceptable())),
        ])
    }
}

impl ToJson for FaultsimReport {
    /// [`results_json`](FaultsimReport::results_json) plus the
    /// run-specific job count and wall-clock timing.
    fn to_json(&self) -> Json {
        let Json::Obj(mut pairs) = self.results_json() else {
            unreachable!("results_json returns an object");
        };
        pairs.push(("jobs".into(), Json::U64(self.options.jobs as u64)));
        pairs.push((
            "timing".into(),
            Json::obj([(
                "total_wall_us",
                Json::U64(self.total_wall.as_micros() as u64),
            )]),
        ));
        Json::Obj(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_campaign(jobs: usize) -> FaultsimReport {
        run(FaultsimOptions {
            trials: 120,
            seed: 7,
            jobs,
        })
    }

    #[test]
    fn outcomes_identical_across_job_counts() {
        let serial = small_campaign(1);
        let parallel = small_campaign(4);
        assert_eq!(serial.outcomes, parallel.outcomes);
        assert_eq!(
            serial.results_json().to_compact(),
            parallel.results_json().to_compact()
        );
    }

    #[test]
    fn no_panics_no_hangs_no_v2_silent_miscompares() {
        let report = small_campaign(4);
        assert_eq!(report.count(Outcome::Panic, None), 0, "panics");
        assert_eq!(report.count(Outcome::Hang, None), 0, "hangs");
        assert_eq!(
            report.count(Outcome::SilentMiscompare, Some(Mode::V2)),
            0,
            "v2 must turn every miscompare into a detected error"
        );
        assert!(report.acceptable());
        // The campaign is not vacuous: most faults are detected.
        assert!(report.count(Outcome::Detected, None) > 0);
    }

    #[test]
    fn v1_exhibits_the_silent_miscompare_window() {
        // With enough trials, some v1 block faults decode to valid wrong
        // bytes — the motivation for container v2. Not a hard guarantee
        // per seed, so this documents rather than gates: if the count is
        // zero the campaign is still sound (and suspiciously lucky).
        let report = run(FaultsimOptions {
            trials: 400,
            seed: 42,
            jobs: 4,
        });
        let v1_silent = report.count(Outcome::SilentMiscompare, Some(Mode::V1));
        let v2_silent = report.count(Outcome::SilentMiscompare, Some(Mode::V2));
        assert_eq!(v2_silent, 0);
        assert!(
            v1_silent >= v2_silent,
            "CRC records can only reduce silent miscompares"
        );
    }
}
