//! Segment-parallel trace replay.
//!
//! [`compare_segmented`] splits a trace into fixed-size segments and
//! replays them across the [`parallel_map`] worker pool, using the
//! checkpointable steppers ([`StandardSim`] / [`CcrpSim`]):
//!
//! 1. **Recording** — one probe-free serial pass over the trace,
//!    snapshotting both processors at every segment boundary;
//! 2. **Replay** — each segment independently restores its opening
//!    snapshot pair and replays its trace slice, returning its closing
//!    snapshot pair;
//! 3. **Fold** — closing snapshots are checked against the next
//!    segment's recorded opening snapshot *in segment order*, so a
//!    restore that desynchronized is pinned to the segment that broke
//!    ([`SegmentError::Desync`]) instead of corrupting downstream
//!    stats. The final [`Comparison`] is derived from the last
//!    segment's verified closing snapshots.
//!
//! Because every worker starts from a recorded snapshot and the fold
//! runs in segment order, the report is byte-identical across `jobs`
//! settings — the same jobs-independence contract the sweep and
//! difftest campaigns already keep.

use std::fmt;

use ccrp::CompressedImage;

use crate::runner::parallel_map;
use ccrp_sim::{
    CcrpSim, CcrpSimSnapshot, Comparison, SimError, StandardSim, StandardSimSnapshot, SystemConfig,
};

/// Why a segmented replay failed.
#[derive(Debug)]
#[non_exhaustive]
pub enum SegmentError {
    /// The replay was misconfigured (zero segment size).
    Config(String),
    /// The underlying simulation failed (bad geometry, fetch outside
    /// the image).
    Sim(SimError),
    /// A replayed segment's closing state did not match the next
    /// segment's recorded opening snapshot — a checkpointing bug, never
    /// a property of the workload.
    Desync {
        /// Index of the segment whose replay drifted.
        segment: usize,
    },
}

impl fmt::Display for SegmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SegmentError::Config(what) => write!(f, "invalid segmented replay: {what}"),
            SegmentError::Sim(err) => write!(f, "simulation failed: {err}"),
            SegmentError::Desync { segment } => write!(
                f,
                "segment {segment} replay desynchronized from the recorded checkpoint chain"
            ),
        }
    }
}

impl std::error::Error for SegmentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SegmentError::Sim(err) => Some(err),
            SegmentError::Config(_) | SegmentError::Desync { .. } => None,
        }
    }
}

impl From<SimError> for SegmentError {
    fn from(err: SimError) -> Self {
        SegmentError::Sim(err)
    }
}

/// A finished segmented replay.
#[derive(Debug, Clone)]
pub struct SegmentReplayReport {
    /// The paper's metrics, identical to [`ccrp_sim::compare`] over the
    /// same trace.
    pub comparison: Comparison,
    /// Segments the trace was split into (at least 1).
    pub segments: u64,
}

/// Replays `trace` through both processors in segments of `every`
/// entries fanned across `jobs` workers, verifying the recorded
/// checkpoint chain, and reports the same [`Comparison`] a monolithic
/// [`ccrp_sim::compare`] produces.
///
/// # Errors
///
/// [`SegmentError::Sim`] when `every == 0`, the configuration is
/// invalid, or the trace fetches outside the image;
/// [`SegmentError::Desync`] when a replayed segment fails to reproduce
/// the next recorded checkpoint.
pub fn compare_segmented(
    image: &CompressedImage,
    trace: &[(u32, u8)],
    config: &SystemConfig,
    every: usize,
    jobs: usize,
) -> Result<SegmentReplayReport, SegmentError> {
    if every == 0 {
        return Err(SegmentError::Config(
            "segment size must be at least 1".to_string(),
        ));
    }

    // Pass 1: serial recording, snapshotting at each segment boundary.
    let mut std_sim = StandardSim::new(config)?;
    let mut ccrp_sim = CcrpSim::new(config)?;
    let mut starts: Vec<(StandardSimSnapshot, CcrpSimSnapshot)> = Vec::new();
    for (index, &(pc, data)) in trace.iter().enumerate() {
        if index % every == 0 {
            starts.push((std_sim.snapshot(), ccrp_sim.snapshot()));
        }
        std_sim.step(pc, data);
        ccrp_sim.step(image, pc, data)?;
    }
    if starts.is_empty() {
        starts.push((std_sim.snapshot(), ccrp_sim.snapshot()));
    }
    let recorded_end = (std_sim.snapshot(), ccrp_sim.snapshot());

    // Pass 2: fan the segments over the worker pool. Each worker owns
    // fresh steppers, restores its opening snapshots, and replays its
    // slice of the trace.
    let indices: Vec<usize> = (0..starts.len()).collect();
    let ends = parallel_map(jobs, &indices, |&segment| {
        let lo = segment * every;
        let hi = trace.len().min(lo + every);
        let mut std_sim = StandardSim::new(config)?;
        let mut ccrp_sim = CcrpSim::new(config)?;
        std_sim.restore(&starts[segment].0);
        ccrp_sim.restore(&starts[segment].1);
        for &(pc, data) in &trace[lo..hi] {
            std_sim.step(pc, data);
            ccrp_sim.step(image, pc, data)?;
        }
        Ok::<_, SimError>((std_sim.snapshot(), ccrp_sim.snapshot()))
    });

    // Pass 3: fold in segment order, verifying each closing snapshot
    // against the next recorded opening (the recording pass's own final
    // state closes the chain).
    let mut last = None;
    for (segment, (result, _wall)) in ends.into_iter().enumerate() {
        let end = result?;
        let expected = starts.get(segment + 1).unwrap_or(&recorded_end);
        if end != *expected {
            return Err(SegmentError::Desync { segment });
        }
        last = Some(end);
    }
    let (std_end, ccrp_end) = last.expect("at least one segment");
    let mut std_sim = StandardSim::new(config)?;
    std_sim.restore(&std_end);
    let mut ccrp_sim = CcrpSim::new(config)?;
    ccrp_sim.restore(&ccrp_end);
    Ok(SegmentReplayReport {
        comparison: Comparison {
            standard: std_sim.stats(),
            ccrp: ccrp_sim.stats(),
        },
        segments: starts.len() as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{sim_cells, Experiment};
    use crate::suite::suite;

    #[test]
    fn segmented_replay_reproduces_tables_1_to_8() {
        // Every third Tables 1–8 cell (the full matrix is swept
        // monolithically elsewhere): segmented replay must reproduce the
        // monolithic RunStats exactly, for both processors.
        let s = suite();
        for cell in sim_cells(Experiment::Tables1To8, s).iter().step_by(3) {
            let monolithic = cell.simulate(s);
            let prepared = s.get(cell.workload);
            let trace: Vec<(u32, u8)> = prepared.workload.trace.iter().collect();
            let every = (trace.len() / 5).max(1);
            let segmented = compare_segmented(&prepared.image, &trace, &cell.config(), every, 2)
                .expect("segmented replay runs");
            assert_eq!(
                segmented.comparison,
                monolithic,
                "cell {} drifted under segmentation",
                cell.label()
            );
            assert_eq!(
                segmented.segments,
                trace.len().div_ceil(every).max(1) as u64
            );
        }
    }

    #[test]
    fn report_is_jobs_independent() {
        let s = suite();
        let cell = &sim_cells(Experiment::Tables1To8, s)[0];
        let prepared = s.get(cell.workload);
        let trace: Vec<(u32, u8)> = prepared.workload.trace.iter().collect();
        let serial = compare_segmented(&prepared.image, &trace, &cell.config(), 1000, 1)
            .expect("serial replay runs");
        let parallel = compare_segmented(&prepared.image, &trace, &cell.config(), 1000, 4)
            .expect("parallel replay runs");
        assert_eq!(serial.comparison, parallel.comparison);
        assert_eq!(serial.segments, parallel.segments);
    }

    #[test]
    fn zero_segment_size_is_rejected() {
        let s = suite();
        let cell = &sim_cells(Experiment::Tables1To8, s)[0];
        let prepared = s.get(cell.workload);
        let result = compare_segmented(&prepared.image, &[], &cell.config(), 0, 1);
        assert!(matches!(result, Err(SegmentError::Config(_))));
    }
}
