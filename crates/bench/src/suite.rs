//! Shared experiment context: the eight traced workloads, compressed
//! once with the preselected code, cached for every experiment.

use std::sync::OnceLock;

use ccrp::CompressedImage;
use ccrp_compress::BlockAlignment;
use ccrp_workloads::{preselected_code, TracedWorkload, Workload};

/// A workload and its compressed image, ready for simulation.
#[derive(Debug)]
pub struct Prepared {
    /// The traced workload.
    pub workload: Workload,
    /// Its text compressed with the preselected code (word-aligned
    /// blocks, as §3.1 simulates).
    pub image: CompressedImage,
}

/// The complete experiment suite.
#[derive(Debug)]
pub struct Suite {
    prepared: Vec<Prepared>,
}

impl Suite {
    /// Builds all eight workloads and their compressed images.
    ///
    /// # Panics
    ///
    /// Panics if a workload kernel fails its self-check — a bug in the
    /// workload crate, not a runtime condition.
    pub fn build() -> Suite {
        let code = preselected_code();
        let prepared = TracedWorkload::ALL
            .iter()
            .map(|&wl| {
                let workload = wl
                    .build()
                    .unwrap_or_else(|e| panic!("{} must build: {e}", wl.name()));
                let image =
                    CompressedImage::build(0, &workload.text, code.clone(), BlockAlignment::Word)
                        .unwrap_or_else(|e| panic!("{} must compress: {e}", wl.name()));
                Prepared { workload, image }
            })
            .collect();
        Suite { prepared }
    }

    /// All prepared workloads, in the paper's table order.
    pub fn iter(&self) -> impl Iterator<Item = &Prepared> {
        self.prepared.iter()
    }

    /// Looks up one workload by its paper name.
    ///
    /// # Panics
    ///
    /// Panics on an unknown name (a typo in the calling experiment).
    pub fn get(&self, name: &str) -> &Prepared {
        self.prepared
            .iter()
            .find(|p| p.workload.name == name)
            .unwrap_or_else(|| panic!("unknown workload `{name}`"))
    }
}

/// The process-wide suite, built on first use (workload construction
/// costs a few seconds; every experiment shares it).
pub fn suite() -> &'static Suite {
    static SUITE: OnceLock<Suite> = OnceLock::new();
    SUITE.get_or_init(Suite::build)
}
