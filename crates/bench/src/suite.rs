//! Shared experiment context: the eight traced workloads, compressed
//! once with the preselected code, cached for every experiment.

use std::sync::OnceLock;

use ccrp::CompressedImage;
use ccrp_compress::BlockAlignment;
use ccrp_workloads::{preselected_code, TracedWorkload, Workload};

/// A workload and its compressed image, ready for simulation.
#[derive(Debug)]
pub struct Prepared {
    /// The traced workload.
    pub workload: Workload,
    /// Its text compressed with the preselected code (word-aligned
    /// blocks, as §3.1 simulates).
    pub image: CompressedImage,
}

/// The complete experiment suite.
#[derive(Debug)]
pub struct Suite {
    prepared: Vec<Prepared>,
}

impl Suite {
    /// Builds all eight workloads and their compressed images, using the
    /// machine's available parallelism.
    ///
    /// # Panics
    ///
    /// Panics if a workload kernel fails its self-check — a bug in the
    /// workload crate, not a runtime condition.
    pub fn build() -> Suite {
        Suite::build_with_jobs(crate::runner::available_jobs())
    }

    /// Builds the suite across `jobs` worker threads (1 = serial). Each
    /// workload's assembly, tracing, and compression is an independent
    /// job; the result order is always [`TracedWorkload::ALL`]'s.
    ///
    /// # Panics
    ///
    /// As [`build`](Self::build).
    pub fn build_with_jobs(jobs: usize) -> Suite {
        let code = preselected_code();
        let prepared = crate::runner::parallel_map(jobs, &TracedWorkload::ALL, |&wl| {
            let workload = wl
                .build()
                .unwrap_or_else(|e| panic!("{} must build: {e}", wl.name()));
            let image =
                CompressedImage::build(0, &workload.text, code.clone(), BlockAlignment::Word)
                    .unwrap_or_else(|e| panic!("{} must compress: {e}", wl.name()));
            Prepared { workload, image }
        })
        .into_iter()
        .map(|(prepared, _)| prepared)
        .collect();
        Suite { prepared }
    }

    /// All prepared workloads, in the paper's table order.
    pub fn iter(&self) -> impl Iterator<Item = &Prepared> {
        self.prepared.iter()
    }

    /// Looks up one workload by its paper name.
    ///
    /// # Panics
    ///
    /// Panics on an unknown name (a typo in the calling experiment).
    pub fn get(&self, name: &str) -> &Prepared {
        self.prepared
            .iter()
            .find(|p| p.workload.name == name)
            .unwrap_or_else(|| panic!("unknown workload `{name}`"))
    }
}

static SUITE: OnceLock<Suite> = OnceLock::new();

/// The process-wide suite, built on first use (workload construction
/// costs a few seconds; every experiment shares it).
pub fn suite() -> &'static Suite {
    SUITE.get_or_init(Suite::build)
}

/// As [`suite`], but a cold build uses `jobs` worker threads. A suite
/// already cached by an earlier call is returned as-is — the prepared
/// workloads are identical whatever the worker count.
pub fn suite_with_jobs(jobs: usize) -> &'static Suite {
    SUITE.get_or_init(|| Suite::build_with_jobs(jobs))
}
