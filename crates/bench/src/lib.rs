//! Experiment harness for the CCRP reproduction.
//!
//! Every table and figure in the evaluation of Wolfe & Chanin
//! (MICRO-25 1992) has a regenerator here, exposed both as a library
//! function returning structured rows (so tests can assert the paper's
//! claims) and as a `cargo bench` target that prints the table:
//!
//! | Paper artifact | Function | Bench target |
//! |---|---|---|
//! | Figure 5 | [`experiments::fig5::figure5`] | `fig5` |
//! | Tables 1–8 | [`experiments::perf::tables_1_to_8`] | `tables1_8` |
//! | Tables 9–10 | [`experiments::clb::tables_9_10`] | `tables9_10` |
//! | Figure 9 | [`experiments::perf::figure9`] | `fig9` |
//! | Tables 11–13 | [`experiments::dcache::tables_11_13`] | `tables11_13` |
//! | §3.2/§3.4/Fig. 1 ablations | [`experiments::ablate`] | `ablations` |
//!
//! The expensive part — assembling, executing, and compressing the eight
//! workloads — happens once per process through [`suite::suite`].
//!
//! The [`runner`] module decomposes each experiment into independent
//! (workload, configuration) cells and sweeps them across a worker
//! pool; [`render`] turns the resulting rows into the paper-style text
//! tables, and [`json::Json`] serializes them into the machine-readable
//! `BENCH_<experiment>.json` results files `ccrp-tools sweep` writes.
//! The [`report`] module is the serialization face of the
//! observability layer: the [`ToJson`] trait covers every stats and
//! metric type, and [`chrome_trace`] exports probe event logs as
//! Chrome trace-event JSON for Perfetto.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codecs;
pub mod difftest;
pub mod experiments;
pub mod faultsim;
pub mod isa_compare;
pub mod json;
pub mod render;
pub mod report;
pub mod runner;
pub mod segments;
pub mod servesim;
mod suite;
mod table;

pub use report::{chrome_trace, ToJson};
pub use runner::{available_jobs, Engine, Experiment, SweepOptions, SweepReport};
pub use segments::{compare_segmented, SegmentError, SegmentReplayReport};
pub use suite::{suite, suite_with_jobs, Prepared, Suite};
pub use table::Table;

/// Formats a ratio the way the paper's tables print "Relative
/// Performance" (three decimals).
pub fn fmt_rel(value: f64) -> String {
    format!("{value:.3}")
}

/// Formats a rate as a percentage with two decimals, as in the paper's
/// "Cache Miss Rate" columns.
pub fn fmt_pct(rate: f64) -> String {
    format!("{:.2}%", rate * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_matches_table_style() {
        assert_eq!(fmt_rel(0.9764), "0.976");
        assert_eq!(fmt_pct(0.0513), "5.13%");
    }
}
