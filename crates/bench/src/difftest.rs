//! Differential co-simulation campaigns.
//!
//! Fans [`ccrp_difftest::run_trial`] out across a worker pool: each
//! trial generates a seeded random program, runs it in lockstep on the
//! plain-ROM reference and every compressed variant, then sweeps the
//! refill timing invariants. The transparency contract the campaign
//! enforces is *zero* divergences and *zero* invariant violations —
//! any other outcome carries a shrunk, disassembled repro in the
//! report.
//!
//! Trial verdicts are a pure function of `(campaign seed, trial
//! index)`, so the results section of the report is bit-identical
//! across `--jobs` settings and machines.

use std::panic::{self, AssertUnwindSafe};
use std::time::{Duration, Instant};

use ccrp_difftest::{run_trial, run_trial_rv32, run_trial_segmented, TrialOutcome, TrialReport};

use crate::json::Json;
use crate::report::ToJson;
use crate::runner::parallel_map;

/// How one differential trial ended, campaign-side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// All variants matched and every timing invariant held.
    Match,
    /// A compressed variant disagreed with the reference.
    Divergence,
    /// A refill accounting identity failed.
    TimingViolation,
    /// The generator produced an invalid program.
    GenFailure,
    /// The trial panicked (a harness bug; counted, not propagated).
    Panic,
}

impl Outcome {
    /// All outcomes, in report order.
    pub const ALL: [Outcome; 5] = [
        Outcome::Match,
        Outcome::Divergence,
        Outcome::TimingViolation,
        Outcome::GenFailure,
        Outcome::Panic,
    ];

    /// Stable report name.
    pub fn name(self) -> &'static str {
        match self {
            Outcome::Match => "match",
            Outcome::Divergence => "divergence",
            Outcome::TimingViolation => "timing-violation",
            Outcome::GenFailure => "gen-failure",
            Outcome::Panic => "panic",
        }
    }

    /// One-letter code for the compact per-trial outcome string.
    pub fn code(self) -> char {
        match self {
            Outcome::Match => 'M',
            Outcome::Divergence => 'D',
            Outcome::TimingViolation => 'T',
            Outcome::GenFailure => 'G',
            Outcome::Panic => 'P',
        }
    }
}

/// Which ISA's generator and lockstep driver a campaign runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DifftestIsa {
    /// MIPS R2000 programs through [`run_trial`].
    Mips,
    /// RV32 programs (both RV32I and RVC encodings of each, plus the
    /// cross-encoding final-state check) through [`run_trial_rv32`].
    Rv32,
}

impl DifftestIsa {
    /// Stable report name.
    pub fn name(self) -> &'static str {
        match self {
            DifftestIsa::Mips => "mips",
            DifftestIsa::Rv32 => "rv32",
        }
    }
}

/// Campaign knobs.
#[derive(Debug, Clone, Copy)]
pub struct DifftestOptions {
    /// Number of generated programs.
    pub programs: usize,
    /// Campaign seed; trial `i` derives its own seed from `(seed, i)`.
    pub seed: u64,
    /// Worker threads (1 = serial). Does not affect verdicts.
    pub jobs: usize,
    /// Checkpoint interval: `Some(n)` routes every trial through the
    /// segmented co-simulator with a checkpoint every `n` retired
    /// instructions; `None` runs monolithically. Does not affect
    /// verdicts. MIPS only — the RV32 runner has no segmented mode, so
    /// the CLI rejects the combination.
    pub checkpoint_every: Option<u64>,
    /// The instruction set the campaign generates and co-simulates.
    pub isa: DifftestIsa,
}

impl Default for DifftestOptions {
    fn default() -> Self {
        Self {
            programs: 1000,
            seed: 1,
            jobs: crate::runner::available_jobs(),
            checkpoint_every: None,
            isa: DifftestIsa::Mips,
        }
    }
}

/// One trial's campaign-side record: the verdict, the deterministic
/// workload statistics, and (for failures) the shrunk repro text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trial {
    /// The verdict.
    pub outcome: Outcome,
    /// Instructions the reference retired.
    pub instructions: u64,
    /// Text-segment size in bytes.
    pub text_bytes: u64,
    /// LAT entries the compressed build needs.
    pub lat_entries: u64,
    /// Probed refills the timing sweep performed.
    pub refills: u64,
    /// Segments the co-simulation replayed (0 for monolithic trials).
    pub segments: u64,
    /// Failure detail (rendered divergence report, violation list, or
    /// generator error); empty for matches.
    pub detail: String,
}

/// A finished campaign.
#[derive(Debug, Clone)]
pub struct DifftestReport {
    /// The options the campaign ran with.
    pub options: DifftestOptions,
    /// Trial `i`'s record at index `i`.
    pub trials: Vec<Trial>,
    /// End-to-end wall time.
    pub total_wall: Duration,
}

/// Decorrelates per-trial seeds (the SplitMix64 increment constant),
/// matching the fault-injection campaign's derivation.
pub fn trial_seed(seed: u64, trial: usize) -> u64 {
    seed ^ (trial as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

fn record(report: TrialReport) -> Trial {
    let (outcome, detail) = match &report.outcome {
        TrialOutcome::Match => (Outcome::Match, String::new()),
        TrialOutcome::Divergence(divergence) => (Outcome::Divergence, divergence.to_string()),
        TrialOutcome::TimingViolation(detail) => (Outcome::TimingViolation, detail.clone()),
        TrialOutcome::GenFailure(detail) => (Outcome::GenFailure, detail.clone()),
    };
    Trial {
        outcome,
        instructions: report.instructions,
        text_bytes: report.text_bytes,
        lat_entries: report.lat_entries,
        refills: report.refills,
        segments: report.segments,
        detail,
    }
}

/// Runs a campaign. Verdicts depend only on `(options.seed, trial)` —
/// `options.jobs` changes wall time, never results.
pub fn run(options: DifftestOptions) -> DifftestReport {
    let started = Instant::now();
    let indices: Vec<usize> = (0..options.programs).collect();
    let trials = parallel_map(options.jobs, &indices, |&trial| {
        let seed = trial_seed(options.seed, trial);
        // catch_unwind so a harness bug is counted, not propagated.
        panic::catch_unwind(AssertUnwindSafe(|| {
            record(match (options.isa, options.checkpoint_every) {
                (DifftestIsa::Rv32, _) => run_trial_rv32(seed),
                (DifftestIsa::Mips, Some(every)) => run_trial_segmented(seed, every),
                (DifftestIsa::Mips, None) => run_trial(seed),
            })
        }))
        .unwrap_or(Trial {
            outcome: Outcome::Panic,
            instructions: 0,
            text_bytes: 0,
            lat_entries: 0,
            refills: 0,
            segments: 0,
            detail: format!("trial {trial} (seed {seed}) panicked"),
        })
    })
    .into_iter()
    .map(|(trial, _)| trial)
    .collect();
    DifftestReport {
        options,
        trials,
        total_wall: started.elapsed(),
    }
}

impl DifftestReport {
    /// Trials that ended with `outcome`.
    pub fn count(&self, outcome: Outcome) -> usize {
        self.trials.iter().filter(|t| t.outcome == outcome).count()
    }

    /// The transparency contract: every trial matched.
    pub fn acceptable(&self) -> bool {
        self.trials.iter().all(|t| t.outcome == Outcome::Match)
    }

    /// The compact per-trial outcome string (`chars[i]` = trial `i`).
    pub fn outcome_string(&self) -> String {
        self.trials.iter().map(|t| t.outcome.code()).collect()
    }

    /// Details of the first `limit` failing trials, for the report.
    fn failures_json(&self, limit: usize) -> Json {
        Json::Arr(
            self.trials
                .iter()
                .enumerate()
                .filter(|(_, t)| t.outcome != Outcome::Match)
                .take(limit)
                .map(|(index, t)| {
                    Json::obj([
                        ("trial", Json::U64(index as u64)),
                        ("seed", Json::U64(trial_seed(self.options.seed, index))),
                        ("outcome", Json::str(t.outcome.name())),
                        ("detail", Json::str(&t.detail)),
                    ])
                })
                .collect(),
        )
    }

    /// The deterministic half of the report: identical for equal
    /// `(programs, seed, checkpoint_every, isa)` whatever the job count
    /// or machine. The `checkpoint_every`, `segments`, and `isa` keys
    /// appear only for segmented / non-MIPS campaigns, so default
    /// reports stay byte-for-byte compatible with the earlier schemas.
    pub fn results_json(&self) -> Json {
        let sum = |f: fn(&Trial) -> u64| Json::U64(self.trials.iter().map(f).sum());
        let base = Json::obj([
            ("schema", Json::str("ccrp-difftest/1")),
            ("programs", Json::U64(self.options.programs as u64)),
            ("seed", Json::U64(self.options.seed)),
            (
                "counts",
                Json::Obj(
                    Outcome::ALL
                        .map(|o| (o.name().to_string(), Json::U64(self.count(o) as u64)))
                        .into_iter()
                        .collect(),
                ),
            ),
            ("instructions", sum(|t| t.instructions)),
            ("text_bytes", sum(|t| t.text_bytes)),
            ("lat_entries", sum(|t| t.lat_entries)),
            ("refills", sum(|t| t.refills)),
            ("outcomes", Json::str(&self.outcome_string())),
            ("failures", self.failures_json(8)),
            ("acceptable", Json::Bool(self.acceptable())),
        ]);
        let mut pairs = match base {
            Json::Obj(pairs) => pairs,
            _ => unreachable!("Json::obj returns an object"),
        };
        let seed_at = pairs
            .iter()
            .position(|(key, _)| key == "seed")
            .expect("seed key present");
        if self.options.isa != DifftestIsa::Mips {
            pairs.insert(
                seed_at + 1,
                ("isa".into(), Json::str(self.options.isa.name())),
            );
        }
        if let Some(every) = self.options.checkpoint_every {
            let seed_at = pairs
                .iter()
                .position(|(key, _)| key == "seed")
                .expect("seed key present");
            pairs.insert(seed_at + 1, ("checkpoint_every".into(), Json::U64(every)));
            let refills_at = pairs
                .iter()
                .position(|(key, _)| key == "refills")
                .expect("refills key present");
            pairs.insert(refills_at + 1, ("segments".into(), sum(|t| t.segments)));
        }
        Json::Obj(pairs)
    }
}

impl ToJson for DifftestReport {
    /// [`results_json`](DifftestReport::results_json) plus the
    /// run-specific job count and wall-clock timing.
    fn to_json(&self) -> Json {
        let Json::Obj(mut pairs) = self.results_json() else {
            unreachable!("results_json returns an object");
        };
        pairs.push(("jobs".into(), Json::U64(self.options.jobs as u64)));
        pairs.push((
            "timing".into(),
            Json::obj([(
                "total_wall_us",
                Json::U64(self.total_wall.as_micros() as u64),
            )]),
        ));
        Json::Obj(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_campaign(jobs: usize) -> DifftestReport {
        run(DifftestOptions {
            programs: 24,
            seed: 7,
            jobs,
            ..DifftestOptions::default()
        })
    }

    #[test]
    fn segmented_campaign_matches_monolithic_results() {
        let monolithic = run(DifftestOptions {
            programs: 8,
            seed: 7,
            jobs: 2,
            ..DifftestOptions::default()
        });
        let segmented = run(DifftestOptions {
            programs: 8,
            seed: 7,
            jobs: 2,
            checkpoint_every: Some(64),
            ..DifftestOptions::default()
        });
        // Verdicts and workload statistics agree; only the segment
        // counts (and the two extra JSON keys) differ.
        for (mono, seg) in monolithic.trials.iter().zip(&segmented.trials) {
            assert!(seg.segments >= 1, "segmented trial recorded no segments");
            let mut comparable = seg.clone();
            comparable.segments = 0;
            assert_eq!(&comparable, mono);
        }
        let mono_json = monolithic.results_json().to_compact();
        let seg_json = segmented.results_json().to_compact();
        assert!(!mono_json.contains("checkpoint_every"));
        assert!(seg_json.contains("\"checkpoint_every\":64"));
        assert!(seg_json.contains("\"segments\":"));
    }

    #[test]
    fn verdicts_identical_across_job_counts() {
        let serial = small_campaign(1);
        let parallel = small_campaign(4);
        assert_eq!(serial.trials, parallel.trials);
        assert_eq!(
            serial.results_json().to_compact(),
            parallel.results_json().to_compact()
        );
    }

    #[test]
    fn rv32_campaign_is_clean_and_jobs_independent() {
        let campaign = |jobs| {
            run(DifftestOptions {
                programs: 8,
                seed: 7,
                jobs,
                isa: DifftestIsa::Rv32,
                ..DifftestOptions::default()
            })
        };
        let serial = campaign(1);
        let parallel = campaign(4);
        assert_eq!(serial.trials, parallel.trials);
        let json = serial.results_json().to_compact();
        assert_eq!(json, parallel.results_json().to_compact());
        assert!(json.contains("\"isa\":\"rv32\""));
        assert!(
            serial.acceptable(),
            "failures:\n{}",
            serial
                .trials
                .iter()
                .filter(|t| t.outcome != Outcome::Match)
                .map(|t| t.detail.as_str())
                .collect::<Vec<_>>()
                .join("\n---\n")
        );
        // The MIPS report schema is untouched by the new key.
        let mips = small_campaign(2).results_json().to_compact();
        assert!(!mips.contains("\"isa\""));
    }

    #[test]
    fn campaign_is_clean_and_not_vacuous() {
        let report = small_campaign(4);
        assert!(
            report.acceptable(),
            "failures:\n{}",
            report
                .trials
                .iter()
                .filter(|t| t.outcome != Outcome::Match)
                .map(|t| t.detail.as_str())
                .collect::<Vec<_>>()
                .join("\n---\n")
        );
        assert_eq!(report.count(Outcome::Match), 24);
        let instructions: u64 = report.trials.iter().map(|t| t.instructions).sum();
        assert!(instructions > 0, "trials retired no instructions");
        assert!(
            report.trials.iter().all(|t| t.lat_entries >= 2),
            "programs must span multiple LAT entries"
        );
    }
}
