//! Tables 9–10: the effect of CLB size (4, 8, 16 entries) on relative
//! performance for NASA7 and espresso.

use ccrp_sim::{MemoryModel, Simulation, SystemConfig};

use crate::experiments::perf::CACHE_SIZES;
use crate::suite::{Prepared, Suite};

/// The CLB capacities of §4.2.2.
pub const CLB_SIZES: [usize; 3] = [16, 8, 4];

/// One row of Table 9/10: a cache size with relative performance per
/// CLB capacity (ordered as [`CLB_SIZES`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClbRow {
    /// Memory model for this block of rows.
    pub memory: MemoryModel,
    /// Instruction-cache bytes.
    pub cache_bytes: u32,
    /// Relative performance for 16/8/4 CLB entries.
    pub relative: [f64; 3],
    /// CLB miss rate (of cache-miss probes) for 16/8/4 entries.
    pub clb_miss_rate: [f64; 3],
}

/// Runs the CLB sweep for one workload.
///
/// # Panics
///
/// Panics on simulator configuration errors (impossible for the fixed
/// paper parameters).
pub fn clb_sweep(prepared: &Prepared) -> Vec<ClbRow> {
    let mut rows = Vec::new();
    for memory in [MemoryModel::Eprom, MemoryModel::BurstEprom] {
        for &cache_bytes in &CACHE_SIZES {
            let mut relative = [0.0; 3];
            let mut clb_miss = [0.0; 3];
            for (slot, &clb_entries) in CLB_SIZES.iter().enumerate() {
                let config = SystemConfig::new()
                    .with_cache_bytes(cache_bytes)
                    .with_memory(memory)
                    .with_clb_entries(clb_entries);
                let cmp = Simulation::new(config)
                    .compare(&prepared.image, prepared.workload.trace.iter())
                    .expect("paper configurations are valid");
                relative[slot] = cmp.relative_execution_time();
                clb_miss[slot] = cmp.ccrp.clb.expect("CCRP runs track the CLB").miss_rate();
            }
            rows.push(ClbRow {
                memory,
                cache_bytes,
                relative,
                clb_miss_rate: clb_miss,
            });
        }
    }
    rows
}

/// Tables 9 and 10: NASA7 and espresso.
pub fn tables_9_10(suite: &Suite) -> Vec<(&'static str, Vec<ClbRow>)> {
    ["NASA7", "espresso"]
        .iter()
        .map(|&name| (suite.get(name).workload.name, clb_sweep(suite.get(name))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::suite;

    #[test]
    fn smaller_clb_never_helps() {
        for (name, rows) in tables_9_10(suite()) {
            for row in &rows {
                // relative[0] is the 16-entry CLB; shrinking the CLB can
                // only add LAT reads, so CCRP time (and thus the ratio)
                // must not decrease.
                assert!(
                    row.relative[1] >= row.relative[0] - 1e-12
                        && row.relative[2] >= row.relative[1] - 1e-12,
                    "{name} {:?} {}B: {:?}",
                    row.memory,
                    row.cache_bytes,
                    row.relative
                );
                assert!(
                    row.clb_miss_rate[2] >= row.clb_miss_rate[0] - 1e-12,
                    "{name}: CLB miss rate fell when shrinking"
                );
            }
        }
    }

    #[test]
    fn variations_are_minor_as_paper_observes() {
        // §4.2.2: "These programs show only minor variations with
        // respect to CLB size over this range."
        for (name, rows) in tables_9_10(suite()) {
            for row in &rows {
                let spread = row.relative[2] - row.relative[0];
                assert!(
                    spread < 0.08,
                    "{name} {:?} {}B: spread {spread:.3}",
                    row.memory,
                    row.cache_bytes
                );
            }
        }
    }
}
