//! Tables 1–8 (relative performance vs cache size) and Figure 9
//! (relative performance vs miss rate).

use ccrp_sim::{DataCacheModel, MemoryModel, Simulation, SystemConfig};

use crate::suite::Prepared;

/// The cache sizes of §4.2.1.
pub const CACHE_SIZES: [u32; 5] = [256, 512, 1024, 2048, 4096];

/// One table cell: a (workload, cache, memory) configuration's results.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfPoint {
    /// Instruction-cache bytes.
    pub cache_bytes: u32,
    /// Memory model.
    pub memory: MemoryModel,
    /// The paper's "Relative Performance": CCRP time / standard time.
    pub relative_performance: f64,
    /// Instruction-cache miss rate, 0..=1.
    pub miss_rate: f64,
    /// The paper's "Memory Traffic": CCRP bytes / standard bytes.
    pub memory_traffic: f64,
}

/// Sweeps one workload over the cache sizes for the given memory models
/// (the body of one of Tables 1–8).
///
/// # Panics
///
/// Panics on simulator configuration errors (impossible for the fixed
/// paper parameters).
pub fn performance_sweep(
    prepared: &Prepared,
    memories: &[MemoryModel],
    clb_entries: usize,
    dcache: DataCacheModel,
) -> Vec<PerfPoint> {
    let mut points = Vec::with_capacity(memories.len() * CACHE_SIZES.len());
    for &memory in memories {
        for &cache_bytes in &CACHE_SIZES {
            let config = SystemConfig::new()
                .with_cache_bytes(cache_bytes)
                .with_memory(memory)
                .with_clb_entries(clb_entries)
                .with_dcache(dcache);
            let cmp = Simulation::new(config)
                .compare(&prepared.image, prepared.workload.trace.iter())
                .expect("paper configurations are valid");
            points.push(PerfPoint {
                cache_bytes,
                memory,
                relative_performance: cmp.relative_execution_time(),
                miss_rate: cmp.miss_rate(),
                memory_traffic: cmp.memory_traffic_ratio(),
            });
        }
    }
    points
}

/// Tables 1–8: every workload under EPROM and Burst EPROM with a
/// 16-entry CLB and no data cache; the DRAM model is included for
/// matrix25A (the paper prints DRAM for a single program, noting it
/// tracks Burst EPROM closely).
pub fn tables_1_to_8(suite: &crate::suite::Suite) -> Vec<(&'static str, Vec<PerfPoint>)> {
    suite
        .iter()
        .map(|prepared| {
            let memories: &[MemoryModel] = if prepared.workload.name == "matrix25A" {
                &[
                    MemoryModel::Eprom,
                    MemoryModel::BurstEprom,
                    MemoryModel::ScDram,
                ]
            } else {
                &[MemoryModel::Eprom, MemoryModel::BurstEprom]
            };
            let points = performance_sweep(prepared, memories, 16, DataCacheModel::NONE);
            (prepared.workload.name, points)
        })
        .collect()
}

/// Figure 9's scatter: every (workload, cache, memory-model) point from
/// the Tables 1–8 sweep, under all three memory models.
pub fn figure9(suite: &crate::suite::Suite) -> Vec<(&'static str, PerfPoint)> {
    let mut points = Vec::new();
    for prepared in suite.iter() {
        for point in performance_sweep(prepared, &MemoryModel::ALL, 16, DataCacheModel::NONE) {
            points.push((prepared.workload.name, point));
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::suite;

    #[test]
    fn eprom_wins_fast_memory_loses() {
        let s = suite();
        let tables = tables_1_to_8(s);
        assert_eq!(tables.len(), 8);
        for (name, points) in &tables {
            for p in points {
                match p.memory {
                    MemoryModel::Eprom => assert!(
                        p.relative_performance <= 1.01,
                        "{name} EPROM {}B: {:.3}",
                        p.cache_bytes,
                        p.relative_performance
                    ),
                    _ => assert!(
                        p.relative_performance >= 0.999,
                        "{name} {:?} {}B: {:.3}",
                        p.memory,
                        p.cache_bytes,
                        p.relative_performance
                    ),
                }
                assert!(
                    p.memory_traffic < 1.0,
                    "{name}: traffic {:.3}",
                    p.memory_traffic
                );
            }
        }
    }

    #[test]
    fn miss_rates_decline_with_cache_size() {
        let s = suite();
        for (name, points) in tables_1_to_8(s) {
            let eprom: Vec<&PerfPoint> = points
                .iter()
                .filter(|p| p.memory == MemoryModel::Eprom)
                .collect();
            for pair in eprom.windows(2) {
                assert!(
                    pair[1].miss_rate <= pair[0].miss_rate + 1e-12,
                    "{name}: miss rate rose from {}B to {}B",
                    pair[0].cache_bytes,
                    pair[1].cache_bytes
                );
            }
        }
    }

    #[test]
    fn figure9_correlation_signs() {
        // "for slow memories, the compressed code model will outperform
        // standard code more at higher miss rates while the opposite is
        // true for faster memory" (§4.2.3).
        let s = suite();
        let points = figure9(s);
        let corr = |memory: MemoryModel| {
            let sel: Vec<(f64, f64)> = points
                .iter()
                .filter(|(_, p)| p.memory == memory && p.miss_rate > 1e-4)
                .map(|(_, p)| (p.miss_rate, p.relative_performance))
                .collect();
            let n = sel.len() as f64;
            let mx = sel.iter().map(|p| p.0).sum::<f64>() / n;
            let my = sel.iter().map(|p| p.1).sum::<f64>() / n;
            let cov: f64 = sel.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
            let vx: f64 = sel.iter().map(|p| (p.0 - mx).powi(2)).sum();
            let vy: f64 = sel.iter().map(|p| (p.1 - my).powi(2)).sum();
            cov / (vx * vy).sqrt()
        };
        assert!(
            corr(MemoryModel::Eprom) < -0.5,
            "EPROM: {:.2}",
            corr(MemoryModel::Eprom)
        );
        assert!(
            corr(MemoryModel::BurstEprom) > 0.5,
            "Burst: {:.2}",
            corr(MemoryModel::BurstEprom)
        );
        assert!(
            corr(MemoryModel::ScDram) > 0.5,
            "DRAM: {:.2}",
            corr(MemoryModel::ScDram)
        );
    }

    #[test]
    fn dram_tracks_burst_eprom() {
        // §4.2.1: "The DRAM memory model produces quite similar results
        // to the Burst EPROM memory model".
        let s = suite();
        let prepared = s.get("matrix25A");
        let points = performance_sweep(prepared, &MemoryModel::ALL, 16, DataCacheModel::NONE);
        for &cache in &CACHE_SIZES {
            let by = |m: MemoryModel| {
                points
                    .iter()
                    .find(|p| p.memory == m && p.cache_bytes == cache)
                    .expect("swept")
                    .relative_performance
            };
            let burst = by(MemoryModel::BurstEprom);
            let dram = by(MemoryModel::ScDram);
            assert!(
                (burst - dram).abs() < 0.05,
                "cache {cache}: burst {burst:.3} vs dram {dram:.3}"
            );
        }
    }
}
