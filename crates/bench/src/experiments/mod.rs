//! One module per paper table/figure (plus ablations); each exposes a
//! data-producing function used by both the `cargo bench` report targets
//! and the assertion tests.

pub mod ablate;
pub mod clb;
pub mod dcache;
pub mod fig5;
pub mod perf;
