//! Ablations of the design choices the paper discusses but does not
//! tabulate: block alignment (Figure 1), LAT encoding (§3.2), and
//! decoder throughput (§3.4).

use ccrp::{CompactLatEntry, CompressedImage, COMPACT_ENTRY_BYTES, RECORDS_PER_ENTRY};
use ccrp_compress::{BlockAlignment, PositionalCode, PositionalHistogram};
use ccrp_sim::{MemoryModel, Simulation, SystemConfig};
use ccrp_workloads::other_isa::{self, IsaDialect};
use ccrp_workloads::{figure5_corpus, preselected_code};

use crate::suite::{Prepared, Suite};

/// Stored-size comparison of byte- vs word-aligned compressed blocks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlignmentRow {
    /// Workload name.
    pub name: &'static str,
    /// Original text bytes.
    pub original: u32,
    /// Stored bytes (blocks + LAT) with byte-aligned blocks.
    pub byte_aligned: u32,
    /// Stored bytes (blocks + LAT) with word-aligned blocks.
    pub word_aligned: u32,
}

/// Figure 1's trade-off, measured: "Byte alignment provides slightly
/// better compression while word alignment simplifies accessing
/// hardware."
///
/// # Panics
///
/// Panics if an image fails to build (impossible for suite workloads).
pub fn alignment_ablation(suite: &Suite) -> Vec<AlignmentRow> {
    let code = preselected_code();
    suite
        .iter()
        .map(|p| {
            let byte =
                CompressedImage::build(0, &p.workload.text, code.clone(), BlockAlignment::Byte)
                    .expect("suite text compresses");
            AlignmentRow {
                name: p.workload.name,
                original: byte.original_bytes(),
                byte_aligned: byte.total_stored_bytes(false),
                word_aligned: p.image.total_stored_bytes(false),
            }
        })
        .collect()
}

/// LAT-encoding comparison (§3.2): the naive one-pointer-per-line table
/// against the paper's grouped 8-byte entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatRow {
    /// Workload name.
    pub name: &'static str,
    /// Original text bytes.
    pub original: u32,
    /// Bytes for a naive 4-byte pointer per 32-byte line (12.5%).
    pub naive_bytes: u32,
    /// Bytes for the grouped entry (8 bytes per 8 lines, 3.125%).
    pub grouped_bytes: u32,
}

/// Computes both LAT encodings' overhead for every workload.
pub fn lat_ablation(suite: &Suite) -> Vec<LatRow> {
    suite
        .iter()
        .map(|p| {
            let lines = p.image.line_count() as u32;
            LatRow {
                name: p.workload.name,
                original: p.image.original_bytes(),
                naive_bytes: lines * 4,
                grouped_bytes: lines.div_ceil(RECORDS_PER_ENTRY as u32) * 8,
            }
        })
        .collect()
}

/// Decoder-rate sensitivity (§3.4): relative performance as the decoder
/// retires 1, 2, 4, or 8 bytes per cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecoderRow {
    /// Memory model.
    pub memory: MemoryModel,
    /// Decoder bytes per cycle.
    pub bytes_per_cycle: u32,
    /// Relative performance at a 256-byte cache (worst case for refills).
    pub relative: f64,
}

/// The decode rates swept by the ablation.
pub const DECODE_RATES: [u32; 4] = [1, 2, 4, 8];

/// Runs the decoder-rate sweep for one workload at a 256-byte cache.
///
/// # Panics
///
/// Panics on simulator configuration errors.
pub fn decoder_ablation(prepared: &Prepared) -> Vec<DecoderRow> {
    let mut rows = Vec::new();
    for memory in MemoryModel::ALL {
        for &rate in &DECODE_RATES {
            let config = SystemConfig::new()
                .with_cache_bytes(256)
                .with_memory(memory)
                .with_decode_bytes_per_cycle(rate);
            let cmp = Simulation::new(config)
                .compare(&prepared.image, prepared.workload.trace.iter())
                .expect("paper configurations are valid");
            rows.push(DecoderRow {
                memory,
                bytes_per_cycle: rate,
                relative: cmp.relative_execution_time(),
            });
        }
    }
    rows
}

/// §5 extension study: the positional (per-byte-position) preselected
/// code against the paper's single preselected code.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PositionalRow {
    /// Workload name.
    pub name: &'static str,
    /// Compressed bits per byte under the single preselected code.
    pub single_bits_per_byte: f64,
    /// Compressed bits per byte under the positional preselected code.
    pub positional_bits_per_byte: f64,
}

/// Builds the corpus-trained positional code (the positional analogue of
/// [`preselected_code`]).
///
/// # Panics
///
/// Panics if code construction fails (impossible for the non-empty
/// corpus).
pub fn corpus_positional_code() -> PositionalCode {
    let mut histograms = PositionalHistogram::new();
    for program in figure5_corpus() {
        histograms.update(&program.text);
    }
    PositionalCode::preselected(&histograms).expect("corpus is non-empty")
}

/// Measures both preselected codes over every workload text.
pub fn positional_extension(suite: &Suite) -> Vec<PositionalRow> {
    let single = preselected_code();
    let positional = corpus_positional_code();
    suite
        .iter()
        .map(|p| {
            let text = &p.workload.text;
            let bytes = text.len() as f64;
            PositionalRow {
                name: p.workload.name,
                single_bits_per_byte: single.encoded_bits(text) as f64 / bytes,
                positional_bits_per_byte: positional.encoded_bits(text) as f64 / bytes,
            }
        })
        .collect()
}

/// §5 extension study: the compact (word-granular, 7-byte) LAT entry
/// against the paper's 8-byte entry, with addressing equivalence checked
/// entry by entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompactLatRow {
    /// Workload name.
    pub name: &'static str,
    /// Standard LAT bytes (8 B / 8 lines, 3.125%).
    pub standard_bytes: u32,
    /// Compact LAT bytes (7 B / 8 lines, 2.73%).
    pub compact_bytes: u32,
}

/// Converts every workload's LAT to the compact encoding, verifying
/// block addresses match exactly.
///
/// # Panics
///
/// Panics if a word-aligned image produces a non-word-aligned LAT entry
/// or the encodings disagree — both would be bugs in `ccrp`.
pub fn compact_lat_extension(suite: &Suite) -> Vec<CompactLatRow> {
    suite
        .iter()
        .map(|p| {
            let mut compact_bytes = 0u32;
            for entry in p.image.lat().iter() {
                let compact =
                    CompactLatEntry::from_standard(entry).expect("word-aligned images convert");
                for i in 0..RECORDS_PER_ENTRY {
                    assert_eq!(
                        compact.block_address(i),
                        entry.block_address(i),
                        "{}: compact LAT addressing must be equivalent",
                        p.workload.name
                    );
                }
                // Round-trip through the in-memory format too.
                assert_eq!(CompactLatEntry::decode(compact.encode()), compact);
                compact_bytes += COMPACT_ENTRY_BYTES as u32;
            }
            CompactLatRow {
                name: p.workload.name,
                standard_bytes: p.image.lat().storage_bytes(),
                compact_bytes,
            }
        })
        .collect()
}

/// §5's closing question — "whether or not this [bandwidth reduction]
/// can have a significant impact on the performance of multiprocessor
/// systems" — answered with a shared-bus saturation model: cores that
/// one 4-byte-per-cycle instruction bus sustains before their combined
/// fetch demand exceeds it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BusRow {
    /// Workload name.
    pub name: &'static str,
    /// Bus demand of one standard core, bytes per cycle.
    pub standard_demand: f64,
    /// Bus demand of one CCRP core, bytes per cycle.
    pub ccrp_demand: f64,
    /// Cores sustained at 4 B/cycle bus capacity, standard.
    pub standard_cores: f64,
    /// Cores sustained at 4 B/cycle bus capacity, CCRP.
    pub ccrp_cores: f64,
}

/// Computes per-core instruction-bus demand at a 256-byte cache on
/// burst EPROM (the bandwidth-hungry corner) for both processor types.
///
/// # Panics
///
/// Panics on simulator configuration errors.
pub fn bus_bandwidth_study(suite: &Suite) -> Vec<BusRow> {
    const BUS_BYTES_PER_CYCLE: f64 = 4.0;
    let config = SystemConfig::new()
        .with_cache_bytes(256)
        .with_memory(MemoryModel::BurstEprom);
    suite
        .iter()
        .map(|p| {
            let std_run = Simulation::new(config)
                .standard(p.workload.trace.iter())
                .expect("paper configurations are valid");
            let ccrp_run = Simulation::new(config)
                .ccrp(&p.image, p.workload.trace.iter())
                .expect("paper configurations are valid");
            let standard_demand = std_run.bytes_from_memory as f64 / std_run.total_cycles();
            let ccrp_demand = ccrp_run.bytes_from_memory as f64 / ccrp_run.total_cycles();
            BusRow {
                name: p.workload.name,
                standard_demand,
                ccrp_demand,
                standard_cores: BUS_BYTES_PER_CYCLE / standard_demand,
                ccrp_cores: BUS_BYTES_PER_CYCLE / ccrp_demand,
            }
        })
        .collect()
}

/// §5 extension study: "measure the effectiveness of this method on
/// instruction sets other than MIPS" — per-dialect preselected-code
/// compression on synthesized object code.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IsaRow {
    /// The dialect.
    pub dialect: IsaDialect,
    /// Byte entropy of the synthesized text, bits/byte.
    pub entropy_bits: f64,
    /// Preselected bounded-Huffman size, fraction of original.
    pub compressed_ratio: f64,
}

/// Synthesizes a 64 KiB corpus per dialect and compresses each with its
/// own preselected code.
///
/// # Panics
///
/// Panics if code construction fails (impossible for non-empty text).
pub fn other_isa_study() -> Vec<IsaRow> {
    IsaDialect::ALL
        .iter()
        .map(|&dialect| {
            let text = other_isa::generate(dialect, 64 * 1024, 42);
            let hist = ccrp_compress::ByteHistogram::of(&text);
            let code = ccrp_compress::ByteCode::preselected(&hist).expect("code builds");
            IsaRow {
                dialect,
                entropy_bits: hist.entropy_bits(),
                compressed_ratio: code.encoded_bits(&text) as f64 / (text.len() as f64 * 8.0),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::suite;

    #[test]
    fn byte_alignment_stores_less() {
        for row in alignment_ablation(suite()) {
            assert!(row.byte_aligned <= row.word_aligned, "{}", row.name);
            assert!(row.byte_aligned < row.original, "{}", row.name);
        }
    }

    #[test]
    fn grouped_lat_is_four_times_smaller() {
        for row in lat_ablation(suite()) {
            // 12.5% vs 3.125% of original size.
            assert!((f64::from(row.naive_bytes) / f64::from(row.original) - 0.125).abs() < 0.01);
            let grouped = f64::from(row.grouped_bytes) / f64::from(row.original);
            assert!((grouped - 0.03125).abs() < 0.01, "{}: {grouped}", row.name);
        }
    }

    #[test]
    fn positional_code_never_loses_much_and_usually_wins() {
        let rows = positional_extension(suite());
        let mut wins = 0;
        for row in &rows {
            assert!(
                row.positional_bits_per_byte <= row.single_bits_per_byte + 0.05,
                "{}: positional {:.3} vs single {:.3}",
                row.name,
                row.positional_bits_per_byte,
                row.single_bits_per_byte
            );
            if row.positional_bits_per_byte < row.single_bits_per_byte {
                wins += 1;
            }
        }
        assert!(
            wins >= rows.len() - 1,
            "positional should win nearly everywhere: {wins}/{}",
            rows.len()
        );
    }

    #[test]
    fn compact_lat_equivalent_and_smaller() {
        for row in compact_lat_extension(suite()) {
            assert!(row.compact_bytes < row.standard_bytes, "{}", row.name);
            assert_eq!(
                f64::from(row.compact_bytes) / f64::from(row.standard_bytes),
                7.0 / 8.0,
                "{}",
                row.name
            );
        }
    }

    #[test]
    fn ccrp_sustains_more_cores_on_a_shared_bus() {
        for row in bus_bandwidth_study(suite()) {
            assert!(
                row.ccrp_cores > row.standard_cores,
                "{}: {:.1} vs {:.1} cores",
                row.name,
                row.ccrp_cores,
                row.standard_cores
            );
        }
    }

    #[test]
    fn other_isas_tell_the_papers_story() {
        let rows = other_isa_study();
        let ratio = |d: IsaDialect| {
            rows.iter()
                .find(|r| r.dialect == d)
                .expect("swept")
                .compressed_ratio
        };
        // Both fixed-width RISCs compress well; the dense CISC encoding
        // leaves much less redundancy — the premise of §1, quantified.
        assert!(ratio(IsaDialect::MipsR2000) < 0.78);
        assert!(ratio(IsaDialect::SparcLike) < 0.78);
        assert!(ratio(IsaDialect::M68kLike) > ratio(IsaDialect::SparcLike) + 0.05);
    }

    #[test]
    fn faster_decoders_monotonically_help() {
        let rows = decoder_ablation(suite().get("espresso"));
        for memory in MemoryModel::ALL {
            let series: Vec<f64> = rows
                .iter()
                .filter(|r| r.memory == memory)
                .map(|r| r.relative)
                .collect();
            for pair in series.windows(2) {
                assert!(pair[1] <= pair[0] + 1e-12, "{memory:?}: {series:?}");
            }
        }
        // On fast memory the decoder is the bottleneck, so the rate
        // matters; §3.4 calls the decode speed "a major limiting factor".
        let burst: Vec<f64> = rows
            .iter()
            .filter(|r| r.memory == MemoryModel::BurstEprom)
            .map(|r| r.relative)
            .collect();
        assert!(
            burst[0] - burst[3] > 0.05,
            "decoder rate should matter on fast memory"
        );
    }
}
