//! Tables 11–13: the effect of a data cache on CCRP relative
//! performance (1 KB instruction cache, data-cache miss rates from 0% to
//! 100%).

use ccrp_sim::{DataCacheModel, MemoryModel, Simulation, SystemConfig};

use crate::suite::{Prepared, Suite};

/// The data-cache miss rates of §4.2.4, in percent.
pub const DCACHE_MISS_PCTS: [u32; 5] = [0, 2, 10, 25, 100];

/// One row of Tables 11–13.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DcacheRow {
    /// Memory model for this block.
    pub memory: MemoryModel,
    /// Data-cache miss rate in percent.
    pub dcache_miss_pct: u32,
    /// Relative performance at a 1024-byte instruction cache.
    pub relative: f64,
}

/// Runs the data-cache sweep for one workload.
///
/// # Panics
///
/// Panics on simulator configuration errors (impossible for the fixed
/// paper parameters).
pub fn dcache_sweep(prepared: &Prepared) -> Vec<DcacheRow> {
    let mut rows = Vec::new();
    for memory in [MemoryModel::Eprom, MemoryModel::BurstEprom] {
        for &pct in &DCACHE_MISS_PCTS {
            let config = SystemConfig::new()
                .with_cache_bytes(1024)
                .with_memory(memory)
                .with_dcache(DataCacheModel::with_miss_rate(f64::from(pct) / 100.0));
            let cmp = Simulation::new(config)
                .compare(&prepared.image, prepared.workload.trace.iter())
                .expect("paper configurations are valid");
            rows.push(DcacheRow {
                memory,
                dcache_miss_pct: pct,
                relative: cmp.relative_execution_time(),
            });
        }
    }
    rows
}

/// Tables 11–13: NASA7, espresso, and fpppp.
pub fn tables_11_13(suite: &Suite) -> Vec<(&'static str, Vec<DcacheRow>)> {
    ["NASA7", "espresso", "fpppp"]
        .iter()
        .map(|&name| (suite.get(name).workload.name, dcache_sweep(suite.get(name))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::suite;

    #[test]
    fn data_stalls_dilute_the_gap() {
        // §4.2.4: "As the data cache miss rate increases, the effect of
        // the CCRP on performance is reduced" — relative performance
        // moves monotonically toward 1.0.
        for (name, rows) in tables_11_13(suite()) {
            for memory in [MemoryModel::Eprom, MemoryModel::BurstEprom] {
                let gaps: Vec<f64> = rows
                    .iter()
                    .filter(|r| r.memory == memory)
                    .map(|r| (r.relative - 1.0).abs())
                    .collect();
                assert_eq!(gaps.len(), DCACHE_MISS_PCTS.len());
                for pair in gaps.windows(2) {
                    assert!(
                        pair[1] <= pair[0] + 1e-12,
                        "{name} {memory:?}: gap grew with data misses: {gaps:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn zero_percent_matches_pure_instruction_behaviour() {
        // At 0% data-cache misses, data accesses are free and the whole
        // difference is instruction-side; the gap must be the widest of
        // the sweep.
        for (_, rows) in tables_11_13(suite()) {
            let zero = rows
                .iter()
                .find(|r| r.memory == MemoryModel::Eprom && r.dcache_miss_pct == 0)
                .expect("0% row exists");
            let hundred = rows
                .iter()
                .find(|r| r.memory == MemoryModel::Eprom && r.dcache_miss_pct == 100)
                .expect("100% row exists");
            assert!((zero.relative - 1.0).abs() >= (hundred.relative - 1.0).abs() - 1e-12);
        }
    }
}
