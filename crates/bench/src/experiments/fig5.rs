//! Figure 5: "Four Compression Methods" — static compressed size of the
//! ten-program corpus under Unix-compress-style LZW, Traditional
//! Huffman, Bounded Huffman, and the Preselected Bounded Huffman code.
//!
//! As §2.2 specifies, the Huffman methods compress 32-byte blocks
//! (byte-aligned, with the original-encoding bypass) and per-program
//! codes carry their code table; the preselected code's table is
//! hardwired and costs nothing.

use ccrp_compress::{block, lzw, BlockAlignment, ByteCode, ByteHistogram};
use ccrp_workloads::{figure5_corpus, preselected_code, CorpusProgram};

/// One bar group of Figure 5.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Row {
    /// Program name.
    pub name: &'static str,
    /// Original program bytes.
    pub original_bytes: usize,
    /// Unix-compress (LZW) size, percent of original.
    pub compress_pct: f64,
    /// Traditional Huffman blocks + code table, percent.
    pub traditional_pct: f64,
    /// Bounded (≤16-bit) Huffman blocks + code table, percent.
    pub bounded_pct: f64,
    /// Preselected Bounded Huffman blocks (hardwired table), percent.
    pub preselected_pct: f64,
}

fn block_pct(code: &ByteCode, text: &[u8], table_bytes: u32) -> f64 {
    let lines = block::compress_image(code, text, BlockAlignment::Byte);
    let total = block::compressed_size(&lines) + table_bytes as usize;
    total as f64 / text.len() as f64 * 100.0
}

/// Computes one program's Figure 5 bar group — the unit of work the
/// parallel sweep runner distributes.
///
/// # Panics
///
/// Panics if a per-program code cannot be built (impossible for
/// non-empty programs).
pub fn figure5_row(program: &CorpusProgram) -> Fig5Row {
    let hist = ByteHistogram::of(&program.text);
    let traditional = ByteCode::traditional(&hist).expect("non-empty program");
    let bounded = ByteCode::bounded(&hist).expect("non-empty program");
    Fig5Row {
        name: program.name,
        original_bytes: program.text.len(),
        compress_pct: lzw::compress(&program.text).len() as f64 / program.text.len() as f64 * 100.0,
        traditional_pct: block_pct(
            &traditional,
            &program.text,
            traditional.table_storage_bytes(),
        ),
        bounded_pct: block_pct(&bounded, &program.text, bounded.table_storage_bytes()),
        preselected_pct: block_pct(preselected_code(), &program.text, 0),
    }
}

/// Computes every per-program row of Figure 5.
///
/// # Panics
///
/// Panics if a per-program code cannot be built (impossible for
/// non-empty programs).
pub fn figure5() -> Vec<Fig5Row> {
    figure5_corpus().iter().map(figure5_row).collect()
}

/// The "Weighted Averages" bar group: sizes weighted by original bytes.
pub fn weighted_average(rows: &[Fig5Row]) -> Fig5Row {
    let total: f64 = rows.iter().map(|r| r.original_bytes as f64).sum();
    let avg = |f: fn(&Fig5Row) -> f64| {
        rows.iter()
            .map(|r| f(r) * r.original_bytes as f64)
            .sum::<f64>()
            / total
    };
    Fig5Row {
        name: "Weighted Averages",
        original_bytes: total as usize,
        compress_pct: avg(|r| r.compress_pct),
        traditional_pct: avg(|r| r.traditional_pct),
        bounded_pct: avg(|r| r.bounded_pct),
        preselected_pct: avg(|r| r.preselected_pct),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure5_reproduces_paper_structure() {
        let rows = figure5();
        assert_eq!(rows.len(), 10);
        let avg = weighted_average(&rows);
        // The paper's ordering: compress < traditional <= bounded <=
        // preselected, all well under 100%.
        assert!(avg.compress_pct < avg.traditional_pct);
        assert!(avg.traditional_pct <= avg.bounded_pct + 1e-9);
        assert!(avg.bounded_pct <= avg.preselected_pct + 1e-9);
        assert!(
            avg.preselected_pct < 85.0,
            "preselected {:.1}%",
            avg.preselected_pct
        );
        assert!(avg.compress_pct > 50.0, "lzw implausibly strong");
        // Every method shrinks every program (the bypass guarantees the
        // Huffman methods never exceed original + table).
        for r in &rows {
            assert!(r.preselected_pct < 100.0, "{}", r.name);
            assert!(r.bounded_pct < 100.0, "{}", r.name);
        }
    }
}
