//! A minimal hand-rolled JSON value and writer for the sweep runner's
//! `BENCH_*.json` results files.
//!
//! The build environment has no crates.io access, so no serde; the
//! runner's output is small and flat enough that a tiny value tree plus
//! a deterministic writer covers it. Object keys are emitted in sorted
//! order so two reports with the same content serialize byte-identically
//! regardless of construction order — the property the determinism tests
//! rely on.

use std::error::Error;
use std::fmt::{self, Write as _};

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (counters, byte counts, cycle counts).
    U64(u64),
    /// A float; non-finite values serialize as `null` (JSON has no NaN).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys are sorted at write time.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
        Json::Obj(pairs.map(|(k, v)| (k.to_string(), v)).into())
    }

    /// Builds a string value.
    pub fn str(s: &str) -> Json {
        Json::Str(s.to_string())
    }

    /// Parses JSON text (the inverse of [`to_compact`](Self::to_compact) /
    /// [`to_pretty`](Self::to_pretty)). Non-negative integers without a
    /// fraction or exponent parse as [`Json::U64`], every other number as
    /// [`Json::F64`] — matching what the writers emit, so
    /// `parse(x.to_compact())` reproduces `x` for any tree the suite
    /// writes. Used by the smoke and determinism tests to validate and
    /// compare committed reports.
    ///
    /// # Errors
    ///
    /// [`JsonParseError`] with a byte offset on malformed input.
    pub fn parse(text: &str) -> Result<Json, JsonParseError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after value"));
        }
        Ok(value)
    }

    /// Looks up `key` in an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Removes `key` from an object, returning its value. `None` when
    /// absent or for non-objects.
    pub fn remove(&mut self, key: &str) -> Option<Json> {
        match self {
            Json::Obj(pairs) => {
                let pos = pairs.iter().position(|(k, _)| k == key)?;
                Some(pairs.remove(pos).1)
            }
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace), keys sorted.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation, keys sorted.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F64(x) if !x.is_finite() => out.push_str("null"),
            Json::F64(x) => {
                // Rust's Display prints the shortest string that parses
                // back to the same f64, so this round-trips bit-exactly.
                let _ = write!(out, "{x}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1);
            }),
            Json::Obj(pairs) => {
                let mut order: Vec<usize> = (0..pairs.len()).collect();
                order.sort_by(|&a, &b| pairs[a].0.cmp(&pairs[b].0));
                write_seq(out, indent, depth, '{', '}', order.len(), |out, i| {
                    let (key, value) = &pairs[order[i]];
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                });
            }
        }
    }
}

/// A [`Json::parse`] failure: what went wrong and where.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct JsonParseError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What the parser expected or rejected.
    pub reason: &'static str,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.reason
        )
    }
}

impl Error for JsonParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, reason: &'static str) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            reason,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, byte: u8, reason: &'static str) -> Result<(), JsonParseError> {
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(reason))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonParseError> {
        match self.bytes.get(self.pos) {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonParseError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonParseError> {
        self.eat(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.eat(b'"', "expected '\"'")?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Copy unescaped runs in one shot (input is valid UTF-8).
            while !matches!(self.bytes.get(self.pos), None | Some(b'"' | b'\\')) {
                self.pos += 1;
            }
            if self.pos > start {
                s.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.error("invalid UTF-8 in string"))?,
                );
            }
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let first = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: a \uXXXX low half must follow.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.error("invalid low surrogate"));
                                    }
                                    0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00)
                                } else {
                                    return Err(self.error("unpaired surrogate"));
                                }
                            } else {
                                first
                            };
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid code point"))?,
                            );
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                None => return Err(self.error("unterminated string")),
                Some(_) => unreachable!("copy loop stops only at quote or backslash"),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let digits = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.error("truncated \\u escape"))?;
        let text = std::str::from_utf8(digits).map_err(|_| self.error("invalid \\u escape"))?;
        let value = u32::from_str_radix(text, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos += 4;
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if integral && !text.starts_with('-') {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::U64(n));
            }
        }
        match text.parse::<f64>() {
            Ok(x) => Ok(Json::F64(x)),
            Err(_) => {
                self.pos = start;
                Err(self.error("invalid number"))
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item(out, i);
    }
    if len > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * depth));
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_sort_regardless_of_insertion() {
        let a = Json::obj([("zeta", Json::U64(1)), ("alpha", Json::U64(2))]);
        let b = Json::obj([("alpha", Json::U64(2)), ("zeta", Json::U64(1))]);
        assert_eq!(a.to_compact(), b.to_compact());
        assert_eq!(a.to_compact(), r#"{"alpha":2,"zeta":1}"#);
    }

    #[test]
    fn floats_round_trip_and_nan_is_null() {
        let v = Json::Arr(vec![
            Json::F64(0.1 + 0.2),
            Json::F64(1.0),
            Json::F64(f64::NAN),
        ]);
        let text = v.to_compact();
        assert!(text.starts_with("[0.30000000000000004,1,"));
        assert!(text.ends_with("null]"));
        let back: f64 = "0.30000000000000004".parse().unwrap();
        assert_eq!(back, 0.1 + 0.2);
    }

    #[test]
    fn strings_escape_control_characters() {
        let v = Json::str("a\"b\\c\nd\u{1}");
        assert_eq!(v.to_compact(), r#""a\"b\\c\nd\u0001""#);
    }

    #[test]
    fn pretty_nests_with_two_spaces() {
        let v = Json::obj([("a", Json::Arr(vec![Json::U64(1), Json::U64(2)]))]);
        assert_eq!(v.to_pretty(), "{\n  \"a\": [\n    1,\n    2\n  ]\n}\n");
    }

    #[test]
    fn empty_containers_stay_flat() {
        assert_eq!(Json::Arr(vec![]).to_pretty(), "[]\n");
        assert_eq!(Json::Obj(vec![]).to_compact(), "{}");
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let v = Json::obj([
            ("counts", Json::Arr(vec![Json::U64(3), Json::U64(0)])),
            ("rate", Json::F64(0.30000000000000004)),
            ("name", Json::str("NASA7 \"x\"\n")),
            ("none", Json::Null),
            ("flag", Json::Bool(true)),
            ("neg", Json::F64(-1.5e-3)),
        ]);
        for text in [v.to_compact(), v.to_pretty()] {
            let parsed = Json::parse(&text).unwrap();
            assert_eq!(parsed.to_compact(), v.to_compact());
        }
    }

    #[test]
    fn parse_classifies_numbers_like_the_writer() {
        assert_eq!(Json::parse("42").unwrap(), Json::U64(42));
        assert_eq!(Json::parse("-42").unwrap(), Json::F64(-42.0));
        assert_eq!(Json::parse("4.5").unwrap(), Json::F64(4.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::F64(1000.0));
        // Too big for u64 still parses, as a float.
        assert_eq!(
            Json::parse("99999999999999999999999").unwrap(),
            Json::F64(1e23)
        );
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "\"\\q\"",
            "1 2",
            "{\"a\" 1}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn parse_handles_unicode_escapes() {
        assert_eq!(
            Json::parse(r#""\u0041\u00e9\ud83d\ude00""#).unwrap(),
            Json::str("Aé😀")
        );
        assert!(Json::parse(r#""\ud83d""#).is_err(), "unpaired surrogate");
    }

    #[test]
    fn get_and_remove_access_objects() {
        let mut v = Json::obj([("jobs", Json::U64(8)), ("cells", Json::U64(90))]);
        assert_eq!(v.get("jobs"), Some(&Json::U64(8)));
        assert_eq!(v.remove("jobs"), Some(Json::U64(8)));
        assert_eq!(v.get("jobs"), None);
        assert_eq!(v.remove("missing"), None);
        assert_eq!(Json::U64(1).get("jobs"), None);
    }
}
