//! A minimal hand-rolled JSON value and writer for the sweep runner's
//! `BENCH_*.json` results files.
//!
//! The build environment has no crates.io access, so no serde; the
//! runner's output is small and flat enough that a tiny value tree plus
//! a deterministic writer covers it. Object keys are emitted in sorted
//! order so two reports with the same content serialize byte-identically
//! regardless of construction order — the property the determinism tests
//! rely on.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (counters, byte counts, cycle counts).
    U64(u64),
    /// A float; non-finite values serialize as `null` (JSON has no NaN).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys are sorted at write time.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
        Json::Obj(pairs.map(|(k, v)| (k.to_string(), v)).into())
    }

    /// Builds a string value.
    pub fn str(s: &str) -> Json {
        Json::Str(s.to_string())
    }

    /// Serializes compactly (no whitespace), keys sorted.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation, keys sorted.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F64(x) if !x.is_finite() => out.push_str("null"),
            Json::F64(x) => {
                // Rust's Display prints the shortest string that parses
                // back to the same f64, so this round-trips bit-exactly.
                let _ = write!(out, "{x}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1);
            }),
            Json::Obj(pairs) => {
                let mut order: Vec<usize> = (0..pairs.len()).collect();
                order.sort_by(|&a, &b| pairs[a].0.cmp(&pairs[b].0));
                write_seq(out, indent, depth, '{', '}', order.len(), |out, i| {
                    let (key, value) = &pairs[order[i]];
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item(out, i);
    }
    if len > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * depth));
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_sort_regardless_of_insertion() {
        let a = Json::obj([("zeta", Json::U64(1)), ("alpha", Json::U64(2))]);
        let b = Json::obj([("alpha", Json::U64(2)), ("zeta", Json::U64(1))]);
        assert_eq!(a.to_compact(), b.to_compact());
        assert_eq!(a.to_compact(), r#"{"alpha":2,"zeta":1}"#);
    }

    #[test]
    fn floats_round_trip_and_nan_is_null() {
        let v = Json::Arr(vec![
            Json::F64(0.1 + 0.2),
            Json::F64(1.0),
            Json::F64(f64::NAN),
        ]);
        let text = v.to_compact();
        assert!(text.starts_with("[0.30000000000000004,1,"));
        assert!(text.ends_with("null]"));
        let back: f64 = "0.30000000000000004".parse().unwrap();
        assert_eq!(back, 0.1 + 0.2);
    }

    #[test]
    fn strings_escape_control_characters() {
        let v = Json::str("a\"b\\c\nd\u{1}");
        assert_eq!(v.to_compact(), r#""a\"b\\c\nd\u0001""#);
    }

    #[test]
    fn pretty_nests_with_two_spaces() {
        let v = Json::obj([("a", Json::Arr(vec![Json::U64(1), Json::U64(2)]))]);
        assert_eq!(v.to_pretty(), "{\n  \"a\": [\n    1,\n    2\n  ]\n}\n");
    }

    #[test]
    fn empty_containers_stay_flat() {
        assert_eq!(Json::Arr(vec![]).to_pretty(), "[]\n");
        assert_eq!(Json::Obj(vec![]).to_compact(), "{}");
    }
}
