//! Hostile-client campaigns against a live `ccrp-served` instance.
//!
//! Where [`faultsim`](crate::faultsim) attacks the container *format* in
//! process, this campaign attacks the *service*: a real
//! [`ServerHandle`] is started on a loopback port and a seeded
//! generator throws fourteen kinds of client at it — honest round
//! trips, corrupted v1/v2 uploads, truncated and oversized frames,
//! garbage payloads, slow-loris stalls, runaway programs, attestation
//! challenges over pristine and corrupted images, and deliberate
//! handler panics. Every trial has a deterministic expectation computed
//! *locally* from the same pristine image the server is given, and the
//! trial's outcome records whether the server's observable behaviour
//! matched it:
//!
//! * **as-expected** — the server did exactly what the local oracle
//!   predicted (typed rejection, matching bytes, reaped connection);
//! * **wrong-response** — the server answered, but with the wrong
//!   message (including accepting what the oracle rejects or failing to
//!   reap a stalled connection);
//! * **silent-acceptance** — a corrupted *v2* container verified clean
//!   while its content differs from pristine (the failure the CRC
//!   records exist to prevent);
//! * **v1-silent** — the same silence on a *v1* container (the
//!   documented integrity window; allowed, counted separately);
//! * **transport-error** — the connection failed in a way no trial
//!   script expects (a crash-class failure);
//! * **client-timeout** — the server went quiet past the client's
//!   generous deadline (a hang-class failure).
//!
//! Outcomes are a pure function of `(seed, trial index)`: every request
//! is retried past `Overload` sheds with exponential backoff until the
//! server gives a definitive answer, the campaign server's worker and
//! queue shape is fixed regardless of `--jobs`, and `--jobs` only sets
//! the number of concurrent *clients*. A separate burst phase slams an
//! intentionally tiny server (one worker, two queue slots) with
//! concurrent runaway programs to prove admission control sheds load
//! with typed `Overload` errors and bounded latency; its tallies are
//! timing-class data and stay out of the deterministic results.

use std::io::Write as _;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use ccrp::{CompressedImage, ContainerLayout, DegradePolicy, FaultPlan, FaultRegion};
use ccrp_compress::{BlockAlignment, ByteCode, ByteHistogram};
use ccrp_served::{
    attest_digest, read_frame, Client, ClientError, ErrorKind, Request, Response, ServerHandle,
    Service, ServiceConfig, ServiceCounters,
};

use crate::faultsim::campaign_image;
use crate::json::Json;
use crate::report::ToJson;
use crate::runner::parallel_map;

/// Read timeout on honest campaign clients — generous enough that only
/// a genuinely hung server trips it.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(30);

/// How long a slow-loris client stalls mid-frame: comfortably past the
/// campaign server's 100 ms read timeout, far under [`CLIENT_TIMEOUT`].
const LORIS_STALL: Duration = Duration::from_millis(350);

/// What one hostile client does to the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrialKind {
    /// Honest compress; the returned container must be byte-identical
    /// to a local build of the same (padded) text.
    CompressRoundtrip,
    /// Verify the pristine v2 container; must come back clean.
    VerifyPristine,
    /// Upload a fault-injected v2 container for verification.
    CorruptUploadV2,
    /// Upload a fault-injected v1 container for verification.
    CorruptUploadV1,
    /// Declare a 32-byte frame, send 8 bytes, close. The server must
    /// drop the connection without replying.
    TruncatedFrame,
    /// Declare a `u32::MAX`-byte frame. The server must reject it with
    /// a typed `Malformed` error *before* allocating, then close.
    OversizedLength,
    /// A well-framed garbage payload must get a typed `Malformed`
    /// reply and leave the connection usable for an honest follow-up.
    GarbageFrame,
    /// Stall mid-frame past the server's read timeout; the connection
    /// must be reaped, never answered.
    SlowLoris,
    /// An infinite loop under default fuel must come back as a typed
    /// `Timeout`, not hang the worker.
    RunawayProgram,
    /// Honest assemble-and-run; output must match the program.
    RunOk,
    /// Attestation over the pristine v2 container must match the
    /// locally computed challenge digest.
    AttestPristine,
    /// Attestation over a fault-injected v2 container must match the
    /// local oracle: either the same typed rejection or the same
    /// (non-pristine) digest.
    AttestCorrupt,
    /// Two expand-line requests on one connection: an in-range line
    /// must match pristine bytes, an out-of-range address must be a
    /// typed `Malformed` error.
    ExpandLineReuse,
    /// A chaos request panics the handler; the panic must come back as
    /// a typed `Internal` error and the *same connection* must still
    /// verify the pristine container afterwards.
    ChaosPanic,
}

impl TrialKind {
    /// Every kind, in the order trials cycle through them.
    pub const ALL: [TrialKind; 14] = [
        TrialKind::CompressRoundtrip,
        TrialKind::VerifyPristine,
        TrialKind::CorruptUploadV2,
        TrialKind::CorruptUploadV1,
        TrialKind::TruncatedFrame,
        TrialKind::OversizedLength,
        TrialKind::GarbageFrame,
        TrialKind::SlowLoris,
        TrialKind::RunawayProgram,
        TrialKind::RunOk,
        TrialKind::AttestPristine,
        TrialKind::AttestCorrupt,
        TrialKind::ExpandLineReuse,
        TrialKind::ChaosPanic,
    ];

    /// Stable report name.
    pub fn name(self) -> &'static str {
        match self {
            TrialKind::CompressRoundtrip => "compress-roundtrip",
            TrialKind::VerifyPristine => "verify-pristine",
            TrialKind::CorruptUploadV2 => "corrupt-upload-v2",
            TrialKind::CorruptUploadV1 => "corrupt-upload-v1",
            TrialKind::TruncatedFrame => "truncated-frame",
            TrialKind::OversizedLength => "oversized-length",
            TrialKind::GarbageFrame => "garbage-frame",
            TrialKind::SlowLoris => "slow-loris",
            TrialKind::RunawayProgram => "runaway-program",
            TrialKind::RunOk => "run-ok",
            TrialKind::AttestPristine => "attest-pristine",
            TrialKind::AttestCorrupt => "attest-corrupt",
            TrialKind::ExpandLineReuse => "expand-line-reuse",
            TrialKind::ChaosPanic => "chaos-panic",
        }
    }
}

/// The kind of client trial `trial` plays.
pub fn kind_of(trial: usize) -> TrialKind {
    TrialKind::ALL[trial % TrialKind::ALL.len()]
}

/// The container region corrupt-upload trials inject into.
pub fn region_of(trial: usize) -> FaultRegion {
    FaultRegion::ALL[(trial / TrialKind::ALL.len()) % FaultRegion::ALL.len()]
}

/// Decorrelates per-trial seeds (the SplitMix64 increment constant).
fn trial_seed(seed: u64, trial: usize) -> u64 {
    seed ^ (trial as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// How one hostile-client trial ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The server matched the local oracle exactly.
    AsExpected,
    /// The server answered with the wrong message.
    WrongResponse,
    /// A corrupted v2 container verified clean with divergent content.
    SilentAcceptance,
    /// A corrupted v1 container verified clean with divergent content
    /// (the documented pre-CRC window; allowed).
    V1Silent,
    /// The connection failed in a way the trial script never expects.
    TransportError,
    /// The server went quiet past the client deadline.
    ClientTimeout,
}

impl Outcome {
    /// All outcomes, in report order.
    pub const ALL: [Outcome; 6] = [
        Outcome::AsExpected,
        Outcome::WrongResponse,
        Outcome::SilentAcceptance,
        Outcome::V1Silent,
        Outcome::TransportError,
        Outcome::ClientTimeout,
    ];

    /// Stable report name.
    pub fn name(self) -> &'static str {
        match self {
            Outcome::AsExpected => "as-expected",
            Outcome::WrongResponse => "wrong-response",
            Outcome::SilentAcceptance => "silent-acceptance",
            Outcome::V1Silent => "v1-silent",
            Outcome::TransportError => "transport-error",
            Outcome::ClientTimeout => "client-timeout",
        }
    }

    /// One-letter code for the compact outcome string.
    pub fn code(self) -> char {
        match self {
            Outcome::AsExpected => 'A',
            Outcome::WrongResponse => 'W',
            Outcome::SilentAcceptance => 'S',
            Outcome::V1Silent => 'V',
            Outcome::TransportError => 'T',
            Outcome::ClientTimeout => 'H',
        }
    }
}

/// Campaign parameters.
#[derive(Debug, Clone, Copy)]
pub struct ServesimOptions {
    /// Hostile-client trials to run.
    pub trials: usize,
    /// Campaign seed; outcomes are a pure function of `(seed, trial)`.
    pub seed: u64,
    /// Concurrent client threads (never affects outcomes).
    pub jobs: usize,
    /// Concurrent runaway programs thrown at the tiny burst server
    /// (`0` skips the burst phase).
    pub burst: usize,
}

impl Default for ServesimOptions {
    fn default() -> Self {
        Self {
            trials: 1000,
            seed: 42,
            jobs: crate::runner::available_jobs(),
            burst: 32,
        }
    }
}

/// The fixed shape of the campaign server. Independent of `--jobs` so
/// outcomes cannot depend on client concurrency: the queue is deeper
/// than any plausible client count (no sheds on honest load) and fuel,
/// not wall clock, is the binding bound on runaway programs.
fn campaign_config() -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        queue_depth: 64,
        default_fuel: 300_000,
        deadline: Duration::from_secs(10),
        read_timeout: Duration::from_millis(100),
        enable_chaos: true,
        ..ServiceConfig::default()
    }
}

/// Load-shed tallies from the burst phase (timing-class data).
#[derive(Debug, Clone, Copy, Default)]
pub struct BurstReport {
    /// Concurrent runaway programs sent.
    pub sent: usize,
    /// Answered `Ran` (finished before shedding mattered).
    pub ran: usize,
    /// Shed with a typed `Overload`.
    pub overload: usize,
    /// Answered with a typed `Timeout` (fuel or queue deadline).
    pub timeout: usize,
    /// Any other typed response.
    pub other: usize,
    /// Transport-level failures — must be zero: every burst client
    /// gets a typed answer.
    pub transport_errors: usize,
    /// Slowest burst response, microseconds.
    pub p100_us: u64,
    /// 99th-percentile burst response, microseconds.
    pub p99_us: u64,
    /// Burst wall clock.
    pub wall: Duration,
}

/// A finished campaign.
#[derive(Debug)]
pub struct ServesimReport {
    /// The options the campaign ran with.
    pub options: ServesimOptions,
    /// Outcome per trial (`outcomes[i]` = trial `i`).
    pub outcomes: Vec<Outcome>,
    /// Per-trial client latencies, microseconds, sorted ascending.
    pub latencies_us: Vec<u64>,
    /// Overload retries spent by honest clients (timing-class).
    pub overload_retries: u64,
    /// Campaign-server counters after all trials.
    pub counters: ServiceCounters,
    /// Cache hits/misses/quarantines (timing-class: eviction order
    /// depends on client interleaving).
    pub cache_hits: u64,
    /// Cache misses (timing-class, see [`cache_hits`](Self::cache_hits)).
    pub cache_misses: u64,
    /// Burst-phase tallies.
    pub burst: BurstReport,
    /// Total wall clock (trials + burst).
    pub total_wall: Duration,
}

/// Pristine material shared by every trial, plus the local oracle's
/// copy of the container bytes the server will be sent.
struct Fixture {
    v1: Vec<u8>,
    v2: Vec<u8>,
    v1_layout: ContainerLayout,
    v2_layout: ContainerLayout,
    /// The v2 image as the server will load it (CRC records attached),
    /// for local attestation digests.
    v2_image: CompressedImage,
    /// Expanded pristine lines, for miscompare checks.
    lines: Vec<[u8; 32]>,
}

impl Fixture {
    fn build() -> Fixture {
        let image = campaign_image();
        let v1 = image.to_bytes();
        let v2 = image.to_bytes_v2();
        let v1_layout = ContainerLayout::of(&v1).expect("pristine v1 has a layout");
        let v2_layout = ContainerLayout::of(&v2).expect("pristine v2 has a layout");
        let v2_image = CompressedImage::from_bytes(&v2).expect("pristine v2 loads");
        let lines = (0..image.line_count())
            .map(|l| {
                image
                    .expand_line(l as u32 * 32)
                    .expect("pristine lines expand")
            })
            .collect();
        Fixture {
            v1,
            v2,
            v1_layout,
            v2_layout,
            v2_image,
            lines,
        }
    }

    fn line_count(&self) -> u32 {
        self.lines.len() as u32
    }
}

/// What the local oracle says about an uploaded container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LocalVerdict {
    /// Loading or verifying fails with a structured error.
    Reject,
    /// Loads, verifies, and every line matches pristine.
    CleanMatch,
    /// Loads and verifies but metadata or content diverges.
    SilentDiffers,
}

fn local_verdict(fixture: &Fixture, bytes: &[u8]) -> LocalVerdict {
    let loaded = match CompressedImage::from_bytes(bytes) {
        Err(_) => return LocalVerdict::Reject,
        Ok(image) => image,
    };
    if loaded.verify().is_err() {
        return LocalVerdict::Reject;
    }
    if loaded.line_count() != fixture.lines.len() || loaded.text_base() != 0 {
        return LocalVerdict::SilentDiffers;
    }
    let mut buf = [0u8; 32];
    for (line, expected) in fixture.lines.iter().enumerate() {
        match loaded.expand_line_into(line as u32 * 32, &mut buf) {
            Ok(()) if buf == *expected => {}
            _ => return LocalVerdict::SilentDiffers,
        }
    }
    LocalVerdict::CleanMatch
}

/// A fault-injected copy of the pristine container for `trial`.
fn corrupted(fixture: &Fixture, seed: u64, trial: usize, v2: bool) -> Vec<u8> {
    let (bytes, layout) = if v2 {
        (&fixture.v2, &fixture.v2_layout)
    } else {
        (&fixture.v1, &fixture.v1_layout)
    };
    let plan = FaultPlan::seeded(trial_seed(seed, trial), layout, region_of(trial), 1);
    let mut corrupt = bytes.clone();
    plan.apply(&mut corrupt);
    corrupt
}

fn classify_client_error(error: &ClientError) -> Outcome {
    let timed_out = match error {
        ClientError::Frame(frame) => frame.is_timeout(),
        ClientError::Io(io) => matches!(
            io.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ),
        _ => false,
    };
    if timed_out {
        Outcome::ClientTimeout
    } else {
        Outcome::TransportError
    }
}

/// Issues one request, riding out `Overload` sheds with backoff until
/// the server gives a definitive answer — which keeps outcomes a pure
/// function of the request bytes, not of client concurrency.
fn call(client: &mut Client, request: &Request, retries: &AtomicU64) -> Result<Response, Outcome> {
    match client.call_with_retry(request, DegradePolicy::Retry { attempts: 10 }) {
        Ok((response, spent)) => {
            retries.fetch_add(u64::from(spent), Ordering::Relaxed);
            Ok(response)
        }
        Err(error) => Err(classify_client_error(&error)),
    }
}

fn connect(addr: SocketAddr) -> Result<Client, Outcome> {
    Client::connect(addr, CLIENT_TIMEOUT).map_err(|_| Outcome::TransportError)
}

/// A raw (un-framed) connection for wire-level hostility.
fn raw_connect(addr: SocketAddr, read_timeout: Duration) -> Result<TcpStream, Outcome> {
    let stream = TcpStream::connect(addr).map_err(|_| Outcome::TransportError)?;
    stream
        .set_read_timeout(Some(read_timeout))
        .map_err(|_| Outcome::TransportError)?;
    Ok(stream)
}

/// Seeded filler bytes from a 64-bit LCG.
fn seeded_bytes(seed: u64, len: usize) -> Vec<u8> {
    let mut x = seed | 1;
    (0..len)
        .map(|_| {
            x = x
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            (x >> 56) as u8
        })
        .collect()
}

fn run_trial(
    addr: SocketAddr,
    fixture: &Fixture,
    seed: u64,
    trial: usize,
    retries: &AtomicU64,
) -> Outcome {
    let ts = trial_seed(seed, trial);
    match kind_of(trial) {
        TrialKind::CompressRoundtrip => compress_roundtrip(addr, ts, retries),
        TrialKind::VerifyPristine => verify_expecting(
            addr,
            fixture,
            fixture.v2.clone(),
            LocalVerdict::CleanMatch,
            true,
            retries,
        ),
        TrialKind::CorruptUploadV2 => {
            let corrupt = corrupted(fixture, seed, trial, true);
            let verdict = local_verdict(fixture, &corrupt);
            verify_expecting(addr, fixture, corrupt, verdict, true, retries)
        }
        TrialKind::CorruptUploadV1 => {
            let corrupt = corrupted(fixture, seed, trial, false);
            let verdict = local_verdict(fixture, &corrupt);
            verify_expecting(addr, fixture, corrupt, verdict, false, retries)
        }
        TrialKind::TruncatedFrame => truncated_frame(addr),
        TrialKind::OversizedLength => oversized_length(addr),
        TrialKind::GarbageFrame => garbage_frame(addr, fixture, ts, retries),
        TrialKind::SlowLoris => slow_loris(addr),
        TrialKind::RunawayProgram => runaway_program(addr, retries),
        TrialKind::RunOk => run_ok(addr, ts, retries),
        TrialKind::AttestPristine => attest_pristine(addr, fixture, ts, retries),
        TrialKind::AttestCorrupt => attest_corrupt(addr, fixture, seed, trial, retries),
        TrialKind::ExpandLineReuse => expand_line_reuse(addr, fixture, ts, retries),
        TrialKind::ChaosPanic => chaos_panic(addr, fixture, retries),
    }
}

fn compress_roundtrip(addr: SocketAddr, ts: u64, retries: &AtomicU64) -> Outcome {
    let len = 64 + (ts % 509) as usize;
    let text = seeded_bytes(ts, len);
    let v2 = ts.is_multiple_of(2);
    // The local oracle builds the identical container: compression is a
    // pure function of the padded text.
    let mut padded = text.clone();
    while !padded.len().is_multiple_of(32) {
        padded.push(0);
    }
    let code = ByteCode::preselected(&ByteHistogram::of(&padded)).expect("non-empty text");
    let image =
        CompressedImage::build(0, &padded, code, BlockAlignment::Word).expect("oracle builds");
    let expected = if v2 {
        image.to_bytes_v2()
    } else {
        image.to_bytes()
    };

    let mut client = match connect(addr) {
        Ok(client) => client,
        Err(outcome) => return outcome,
    };
    match call(
        &mut client,
        &Request::Compress {
            text_base: 0,
            v2,
            text,
        },
        retries,
    ) {
        Ok(Response::Compressed { container }) if container == expected => Outcome::AsExpected,
        Ok(_) => Outcome::WrongResponse,
        Err(outcome) => outcome,
    }
}

/// Sends `container` for verification and scores the reply against the
/// local oracle's verdict.
fn verify_expecting(
    addr: SocketAddr,
    fixture: &Fixture,
    container: Vec<u8>,
    verdict: LocalVerdict,
    v2: bool,
    retries: &AtomicU64,
) -> Outcome {
    let mut client = match connect(addr) {
        Ok(client) => client,
        Err(outcome) => return outcome,
    };
    let response = match call(&mut client, &Request::Verify { container }, retries) {
        Ok(response) => response,
        Err(outcome) => return outcome,
    };
    match response {
        Response::Verified { lines, version, .. } => match verdict {
            LocalVerdict::CleanMatch => {
                let want_version = if v2 { 2 } else { 1 };
                if lines == fixture.line_count() && version == want_version {
                    Outcome::AsExpected
                } else {
                    Outcome::WrongResponse
                }
            }
            LocalVerdict::Reject => Outcome::WrongResponse,
            LocalVerdict::SilentDiffers => {
                if v2 {
                    Outcome::SilentAcceptance
                } else {
                    Outcome::V1Silent
                }
            }
        },
        Response::Error {
            kind: ErrorKind::Malformed | ErrorKind::IntegrityFailure,
            ..
        } => {
            if verdict == LocalVerdict::Reject {
                Outcome::AsExpected
            } else {
                Outcome::WrongResponse
            }
        }
        _ => Outcome::WrongResponse,
    }
}

fn truncated_frame(addr: SocketAddr) -> Outcome {
    let mut stream = match raw_connect(addr, Duration::from_secs(5)) {
        Ok(stream) => stream,
        Err(outcome) => return outcome,
    };
    let ok = stream.write_all(&32u32.to_le_bytes()).is_ok()
        && stream.write_all(&[0xAB; 8]).is_ok()
        && stream.shutdown(Shutdown::Write).is_ok();
    if !ok {
        return Outcome::TransportError;
    }
    match read_frame(&mut stream, 1 << 20) {
        // The server must drop the half-frame without answering.
        Err(error) if !error.is_timeout() => Outcome::AsExpected,
        Err(_) => Outcome::ClientTimeout,
        Ok(_) => Outcome::WrongResponse,
    }
}

fn oversized_length(addr: SocketAddr) -> Outcome {
    let mut stream = match raw_connect(addr, Duration::from_secs(5)) {
        Ok(stream) => stream,
        Err(outcome) => return outcome,
    };
    if stream.write_all(&u32::MAX.to_le_bytes()).is_err() {
        return Outcome::TransportError;
    }
    // Expect a typed Malformed reply (proving no allocation-then-crash)
    // followed by a close: the stream can never resynchronize.
    let payload = match read_frame(&mut stream, 1 << 20) {
        Ok(payload) => payload,
        Err(error) if error.is_timeout() => return Outcome::ClientTimeout,
        Err(_) => return Outcome::WrongResponse,
    };
    match Response::decode(&payload) {
        Ok(Response::Error {
            kind: ErrorKind::Malformed,
            ..
        }) => {}
        _ => return Outcome::WrongResponse,
    }
    match read_frame(&mut stream, 1 << 20) {
        Err(error) if !error.is_timeout() => Outcome::AsExpected,
        _ => Outcome::WrongResponse,
    }
}

fn garbage_frame(addr: SocketAddr, fixture: &Fixture, ts: u64, retries: &AtomicU64) -> Outcome {
    let mut client = match connect(addr) {
        Ok(client) => client,
        Err(outcome) => return outcome,
    };
    // 0xFF is never a valid request tag, so decode fails whatever the
    // seeded filler holds.
    let mut payload = vec![0xFFu8];
    payload.extend(seeded_bytes(ts, 6));
    let mut frame = (payload.len() as u32).to_le_bytes().to_vec();
    frame.extend(payload);
    if client.send_raw(&frame).is_err() {
        return Outcome::TransportError;
    }
    match client.read_raw().map(|p| Response::decode(&p)) {
        Ok(Ok(Response::Error {
            kind: ErrorKind::Malformed,
            ..
        })) => {}
        _ => return Outcome::WrongResponse,
    }
    // The frame boundary held, so the connection must still serve an
    // honest request.
    match call(
        &mut client,
        &Request::Inspect {
            container: fixture.v2.clone(),
        },
        retries,
    ) {
        Ok(Response::Inspected { lines, version, .. })
            if lines == fixture.line_count() && version == 2 =>
        {
            Outcome::AsExpected
        }
        Ok(_) => Outcome::WrongResponse,
        Err(outcome) => outcome,
    }
}

fn slow_loris(addr: SocketAddr) -> Outcome {
    let mut stream = match raw_connect(addr, Duration::from_secs(5)) {
        Ok(stream) => stream,
        Err(outcome) => return outcome,
    };
    let ok = stream.write_all(&64u32.to_le_bytes()).is_ok() && stream.write_all(&[0u8; 10]).is_ok();
    if !ok {
        return Outcome::TransportError;
    }
    thread::sleep(LORIS_STALL);
    match read_frame(&mut stream, 1 << 20) {
        // Reaped: closed or reset, never answered, never left hanging.
        Err(error) if !error.is_timeout() => Outcome::AsExpected,
        Err(_) => Outcome::WrongResponse,
        Ok(_) => Outcome::WrongResponse,
    }
}

fn runaway_program(addr: SocketAddr, retries: &AtomicU64) -> Outcome {
    let mut client = match connect(addr) {
        Ok(client) => client,
        Err(outcome) => return outcome,
    };
    match call(
        &mut client,
        &Request::Run {
            source: "main: b main".to_owned(),
            fuel: 0,
        },
        retries,
    ) {
        Ok(Response::Error {
            kind: ErrorKind::Timeout,
            ..
        }) => Outcome::AsExpected,
        Ok(_) => Outcome::WrongResponse,
        Err(outcome) => outcome,
    }
}

fn run_ok(addr: SocketAddr, ts: u64, retries: &AtomicU64) -> Outcome {
    let value = (ts % 90) as u32 + 1;
    let source = format!(
        "main:\n    li $a0, {value}\n    li $v0, 1\n    syscall\n    li $v0, 10\n    syscall\n"
    );
    let mut client = match connect(addr) {
        Ok(client) => client,
        Err(outcome) => return outcome,
    };
    match call(&mut client, &Request::Run { source, fuel: 0 }, retries) {
        Ok(Response::Ran {
            exit_code, output, ..
        }) if exit_code == 0 && output == value.to_string().into_bytes() => Outcome::AsExpected,
        Ok(_) => Outcome::WrongResponse,
        Err(outcome) => outcome,
    }
}

fn attest_pristine(addr: SocketAddr, fixture: &Fixture, ts: u64, retries: &AtomicU64) -> Outcome {
    let samples = 8 + (ts % 57) as u32;
    let (digest, sampled) =
        attest_digest(&fixture.v2_image, ts, samples).expect("pristine v2 attests");
    let mut client = match connect(addr) {
        Ok(client) => client,
        Err(outcome) => return outcome,
    };
    match call(
        &mut client,
        &Request::Attest {
            container: fixture.v2.clone(),
            nonce: ts,
            samples,
        },
        retries,
    ) {
        Ok(Response::Attested {
            digest: got,
            sampled: got_sampled,
        }) if got == digest && got_sampled == sampled => Outcome::AsExpected,
        Ok(_) => Outcome::WrongResponse,
        Err(outcome) => outcome,
    }
}

fn attest_corrupt(
    addr: SocketAddr,
    fixture: &Fixture,
    seed: u64,
    trial: usize,
    retries: &AtomicU64,
) -> Outcome {
    let ts = trial_seed(seed, trial);
    let corrupt = corrupted(fixture, seed, trial, true);
    let samples = 16u32;
    // The oracle predicts the exact digest (or rejection) the server
    // must produce for these bytes.
    let expected = CompressedImage::from_bytes(&corrupt)
        .map_err(|_| ())
        .and_then(|image| attest_digest(&image, ts, samples).map_err(|_| ()));
    let mut client = match connect(addr) {
        Ok(client) => client,
        Err(outcome) => return outcome,
    };
    let response = match call(
        &mut client,
        &Request::Attest {
            container: corrupt,
            nonce: ts,
            samples,
        },
        retries,
    ) {
        Ok(response) => response,
        Err(outcome) => return outcome,
    };
    match (response, expected) {
        (Response::Attested { digest, sampled }, Ok((want_digest, want_sampled)))
            if digest == want_digest && sampled == want_sampled =>
        {
            Outcome::AsExpected
        }
        (
            Response::Error {
                kind: ErrorKind::Malformed | ErrorKind::IntegrityFailure,
                ..
            },
            Err(()),
        ) => Outcome::AsExpected,
        _ => Outcome::WrongResponse,
    }
}

fn expand_line_reuse(addr: SocketAddr, fixture: &Fixture, ts: u64, retries: &AtomicU64) -> Outcome {
    let line = (ts % u64::from(fixture.line_count())) as u32;
    let mut client = match connect(addr) {
        Ok(client) => client,
        Err(outcome) => return outcome,
    };
    match call(
        &mut client,
        &Request::ExpandLine {
            container: fixture.v2.clone(),
            address: line * 32,
        },
        retries,
    ) {
        Ok(Response::Line { bytes }) if bytes == fixture.lines[line as usize] => {}
        Ok(_) => return Outcome::WrongResponse,
        Err(outcome) => return outcome,
    }
    // Same connection, out-of-range address: typed rejection, no drop.
    match call(
        &mut client,
        &Request::ExpandLine {
            container: fixture.v2.clone(),
            address: fixture.line_count() * 32 + 4,
        },
        retries,
    ) {
        Ok(Response::Error {
            kind: ErrorKind::Malformed,
            ..
        }) => Outcome::AsExpected,
        Ok(_) => Outcome::WrongResponse,
        Err(outcome) => outcome,
    }
}

fn chaos_panic(addr: SocketAddr, fixture: &Fixture, retries: &AtomicU64) -> Outcome {
    let mut client = match connect(addr) {
        Ok(client) => client,
        Err(outcome) => return outcome,
    };
    match call(&mut client, &Request::Chaos { kind: 0 }, retries) {
        Ok(Response::Error {
            kind: ErrorKind::Internal,
            ..
        }) => {}
        Ok(_) => return Outcome::WrongResponse,
        Err(outcome) => return outcome,
    }
    // The panic was contained: the same connection (and the same worker
    // pool) must still answer honestly.
    match call(
        &mut client,
        &Request::Verify {
            container: fixture.v2.clone(),
        },
        retries,
    ) {
        Ok(Response::Verified { lines, version, .. })
            if lines == fixture.line_count() && version == 2 =>
        {
            Outcome::AsExpected
        }
        Ok(_) => Outcome::WrongResponse,
        Err(outcome) => outcome,
    }
}

/// Slams a deliberately tiny server (one worker, two queue slots) with
/// concurrent runaway programs and tallies how it sheds.
fn run_burst(burst: usize) -> BurstReport {
    if burst == 0 {
        return BurstReport::default();
    }
    let config = ServiceConfig {
        workers: 1,
        queue_depth: 2,
        default_fuel: 300_000,
        deadline: Duration::from_secs(10),
        ..ServiceConfig::default()
    };
    let service = Arc::new(Service::new(config));
    let mut server =
        ServerHandle::start(Arc::clone(&service), "127.0.0.1:0").expect("bind loopback");
    let addr = server.addr();
    let started = Instant::now();
    let results: Vec<(Option<Response>, u64)> = thread::scope(|scope| {
        let handles: Vec<_> = (0..burst)
            .map(|_| {
                scope.spawn(move || {
                    let sent = Instant::now();
                    let response =
                        Client::connect(addr, CLIENT_TIMEOUT)
                            .ok()
                            .and_then(|mut client| {
                                client
                                    .call(&Request::Run {
                                        source: "main: b main".to_owned(),
                                        fuel: 0,
                                    })
                                    .ok()
                            });
                    (response, sent.elapsed().as_micros() as u64)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("burst client threads do not panic"))
            .collect()
    });
    let wall = started.elapsed();
    server.shutdown();
    let mut report = BurstReport {
        sent: burst,
        wall,
        ..BurstReport::default()
    };
    let mut latencies: Vec<u64> = Vec::with_capacity(burst);
    for (response, latency_us) in results {
        latencies.push(latency_us);
        match response {
            Some(Response::Ran { .. }) => report.ran += 1,
            Some(Response::Error {
                kind: ErrorKind::Overload,
                ..
            }) => report.overload += 1,
            Some(Response::Error {
                kind: ErrorKind::Timeout,
                ..
            }) => report.timeout += 1,
            Some(_) => report.other += 1,
            None => report.transport_errors += 1,
        }
    }
    latencies.sort_unstable();
    report.p100_us = latencies.last().copied().unwrap_or(0);
    report.p99_us = percentile(&latencies, 99);
    report
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn percentile(sorted: &[u64], pct: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (sorted.len() * pct).div_ceil(100).max(1);
    sorted[rank - 1]
}

/// Runs a campaign. Outcomes depend only on `(options.seed, trial)` —
/// `options.jobs` changes wall time, never results.
pub fn run(options: ServesimOptions) -> ServesimReport {
    let started = Instant::now();
    let fixture = Fixture::build();
    let service = Arc::new(Service::new(campaign_config()));
    let mut server =
        ServerHandle::start(Arc::clone(&service), "127.0.0.1:0").expect("bind loopback");
    let addr = server.addr();
    let retries = AtomicU64::new(0);
    let trials: Vec<usize> = (0..options.trials).collect();
    let results = parallel_map(options.jobs, &trials, |&trial| {
        run_trial(addr, &fixture, options.seed, trial, &retries)
    });
    let outcomes: Vec<Outcome> = results.iter().map(|&(outcome, _)| outcome).collect();
    let mut latencies_us: Vec<u64> = results
        .iter()
        .map(|(_, wall)| wall.as_micros() as u64)
        .collect();
    latencies_us.sort_unstable();
    let counters = service.counters();
    let cache = service.cache_counters();
    server.shutdown();
    let burst = run_burst(options.burst);
    ServesimReport {
        options,
        outcomes,
        latencies_us,
        overload_retries: retries.into_inner(),
        counters,
        cache_hits: cache.hits,
        cache_misses: cache.misses,
        burst,
        total_wall: started.elapsed(),
    }
}

impl ServesimReport {
    /// Trials with `outcome`, optionally restricted to one kind.
    pub fn count(&self, outcome: Outcome, kind: Option<TrialKind>) -> usize {
        self.outcomes
            .iter()
            .enumerate()
            .filter(|&(trial, &o)| o == outcome && kind.is_none_or(|k| kind_of(trial) == k))
            .count()
    }

    /// Trials that played `kind`.
    pub fn trials_of(&self, kind: TrialKind) -> usize {
        (0..self.outcomes.len())
            .filter(|&trial| kind_of(trial) == kind)
            .count()
    }

    /// The campaign's pass criterion: the server never gave a wrong
    /// answer, never silently accepted corrupt v2 content, never
    /// dropped or hung a scripted connection, contained exactly the
    /// panics the chaos trials injected, and gave every burst client a
    /// typed answer. The v1 silent window is allowed (and documented).
    pub fn acceptable(&self) -> bool {
        self.count(Outcome::WrongResponse, None) == 0
            && self.count(Outcome::SilentAcceptance, None) == 0
            && self.count(Outcome::TransportError, None) == 0
            && self.count(Outcome::ClientTimeout, None) == 0
            && self.counters.panics_caught == self.trials_of(TrialKind::ChaosPanic) as u64
            && self.burst.transport_errors == 0
    }

    /// The compact per-trial outcome string (`outcomes[i]` = trial `i`).
    pub fn outcome_string(&self) -> String {
        self.outcomes.iter().map(|o| o.code()).collect()
    }

    fn kind_breakdown(&self) -> Json {
        Json::Obj(
            TrialKind::ALL
                .map(|kind| {
                    let counts = Outcome::ALL.map(|outcome| {
                        (
                            outcome.name().to_string(),
                            Json::U64(self.count(outcome, Some(kind)) as u64),
                        )
                    });
                    (
                        kind.name().to_string(),
                        Json::Obj(counts.into_iter().collect()),
                    )
                })
                .into_iter()
                .collect(),
        )
    }

    /// The deterministic half of the report: identical for equal
    /// `(trials, seed)` whatever the job count or machine.
    pub fn results_json(&self) -> Json {
        Json::obj([
            ("schema", Json::str("ccrp-servesim/1")),
            ("trials", Json::U64(self.options.trials as u64)),
            ("seed", Json::U64(self.options.seed)),
            ("kinds", self.kind_breakdown()),
            ("outcomes", Json::str(&self.outcome_string())),
            (
                "server",
                Json::obj([
                    ("requests", Json::U64(self.counters.requests)),
                    ("failures", Json::U64(self.counters.failures)),
                    ("panics_caught", Json::U64(self.counters.panics_caught)),
                    ("rejected", Json::U64(self.counters.rejected)),
                ]),
            ),
            ("acceptable", Json::Bool(self.acceptable())),
        ])
    }
}

impl ToJson for ServesimReport {
    /// [`results_json`](ServesimReport::results_json) plus the
    /// run-specific job count and every timing-class tally.
    fn to_json(&self) -> Json {
        let Json::Obj(mut pairs) = self.results_json() else {
            unreachable!("results_json returns an object");
        };
        pairs.push(("jobs".into(), Json::U64(self.options.jobs as u64)));
        pairs.push((
            "timing".into(),
            Json::obj([
                (
                    "total_wall_us",
                    Json::U64(self.total_wall.as_micros() as u64),
                ),
                (
                    "latency_p50_us",
                    Json::U64(percentile(&self.latencies_us, 50)),
                ),
                (
                    "latency_p99_us",
                    Json::U64(percentile(&self.latencies_us, 99)),
                ),
                ("overload_retries", Json::U64(self.overload_retries)),
                ("cache_hits", Json::U64(self.cache_hits)),
                ("cache_misses", Json::U64(self.cache_misses)),
                (
                    "burst",
                    Json::obj([
                        ("sent", Json::U64(self.burst.sent as u64)),
                        ("ran", Json::U64(self.burst.ran as u64)),
                        ("overload", Json::U64(self.burst.overload as u64)),
                        ("timeout", Json::U64(self.burst.timeout as u64)),
                        ("other", Json::U64(self.burst.other as u64)),
                        (
                            "transport_errors",
                            Json::U64(self.burst.transport_errors as u64),
                        ),
                        ("p99_us", Json::U64(self.burst.p99_us)),
                        ("p100_us", Json::U64(self.burst.p100_us)),
                        ("wall_us", Json::U64(self.burst.wall.as_micros() as u64)),
                    ]),
                ),
            ]),
        ));
        Json::Obj(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_campaign(jobs: usize, burst: usize) -> ServesimReport {
        run(ServesimOptions {
            trials: 28,
            seed: 7,
            jobs,
            burst,
        })
    }

    #[test]
    fn outcomes_identical_across_job_counts() {
        let serial = small_campaign(1, 0);
        let parallel = small_campaign(3, 0);
        assert_eq!(serial.outcomes, parallel.outcomes);
        assert_eq!(
            serial.results_json().to_compact(),
            parallel.results_json().to_compact()
        );
    }

    #[test]
    fn campaign_is_acceptable_and_not_vacuous() {
        let report = small_campaign(4, 8);
        assert!(
            report.acceptable(),
            "outcomes: {} json: {}",
            report.outcome_string(),
            report.to_json().to_pretty()
        );
        // Every trial resolved to the expected behaviour (with the v1
        // silent window the only tolerated divergence).
        assert_eq!(
            report.count(Outcome::AsExpected, None) + report.count(Outcome::V1Silent, None),
            28
        );
        // Two full cycles of 14 kinds ran, including both chaos trials.
        assert_eq!(report.trials_of(TrialKind::ChaosPanic), 2);
        assert_eq!(report.counters.panics_caught, 2);
        // The burst really exercised shedding or fuel exhaustion, and
        // every client got a typed answer.
        assert_eq!(report.burst.transport_errors, 0);
        assert_eq!(
            report.burst.ran + report.burst.overload + report.burst.timeout + report.burst.other,
            8
        );
    }

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile(&[], 99), 0);
        assert_eq!(percentile(&[5], 50), 5);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), 50);
        assert_eq!(percentile(&v, 99), 99);
        assert_eq!(percentile(&v, 100), 100);
    }
}
