//! Shared report serialization: the [`ToJson`] trait plus the metrics
//! and Chrome trace-event exporters.
//!
//! Every structured result type in the workspace — simulator counters,
//! refill outcomes, metric registries, full sweep and fault-campaign
//! reports — serializes through one trait, so the JSON layout of a type
//! is defined exactly once instead of per call site. All output goes
//! through [`crate::json::Json`], which sorts object keys at write
//! time; combined with the deterministic inputs this keeps every
//! exported file bit-identical across runs and worker counts.
//!
//! The trace exporter follows the Chrome trace-event format (the JSON
//! that `chrome://tracing` and Perfetto load): `RefillDone` and
//! `MemoryBurst` become complete (`"ph": "X"`) events with a duration,
//! everything else becomes a thread-scoped instant (`"ph": "i"`).
//! Timestamps are simulated cycles, not wall time, so a trace is a pure
//! function of the workload and configuration.

use ccrp::{ClbStats, RefillOutcome};
use ccrp_probe::{Event, Histogram, MetricSet, TimedEvent};
use ccrp_sim::{CacheStats, RunStats};

use crate::json::Json;

/// Conversion into the workspace's JSON value tree.
///
/// Implemented by every structured result type so reports are built by
/// composing `to_json` calls instead of hand-formatting fields at each
/// call site.
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

impl ToJson for CacheStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("fetches", Json::U64(self.fetches)),
            ("misses", Json::U64(self.misses)),
        ])
    }
}

impl ToJson for ClbStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("hits", Json::U64(self.hits)),
            ("misses", Json::U64(self.misses)),
        ])
    }
}

impl ToJson for RunStats {
    // The cache counters stay flattened into the top level — this layout
    // is what the committed BENCH_*.json files contain, so it must not
    // change shape.
    fn to_json(&self) -> Json {
        Json::obj([
            ("instructions", Json::U64(self.instructions)),
            ("data_accesses", Json::U64(self.data_accesses)),
            ("fetches", Json::U64(self.cache.fetches)),
            ("misses", Json::U64(self.cache.misses)),
            ("refill_cycles", Json::U64(self.refill_cycles)),
            ("bytes_from_memory", Json::U64(self.bytes_from_memory)),
            ("data_stall_cycles", Json::F64(self.data_stall_cycles)),
            ("total_cycles", Json::F64(self.total_cycles())),
            ("clb", self.clb.map_or(Json::Null, |clb| clb.to_json())),
        ])
    }
}

impl ToJson for RefillOutcome {
    fn to_json(&self) -> Json {
        Json::obj([
            ("ready_at", Json::U64(self.ready_at)),
            ("bytes_fetched", Json::U64(u64::from(self.bytes_fetched))),
            ("clb_hit", Json::Bool(self.clb_hit)),
            ("bypass", Json::Bool(self.bypass)),
            ("retries", Json::U64(u64::from(self.retries))),
        ])
    }
}

impl ToJson for Histogram {
    fn to_json(&self) -> Json {
        let u64s = |values: &[u64]| Json::Arr(values.iter().map(|&v| Json::U64(v)).collect());
        Json::obj([
            ("bounds", u64s(self.bounds())),
            ("counts", u64s(self.counts())),
            ("count", Json::U64(self.count())),
            ("sum", Json::U64(self.sum())),
            ("min", self.min().map_or(Json::Null, Json::U64)),
            ("max", self.max().map_or(Json::Null, Json::U64)),
            ("mean", self.mean().map_or(Json::Null, Json::F64)),
        ])
    }
}

impl ToJson for MetricSet {
    fn to_json(&self) -> Json {
        Json::obj([
            (
                "counters",
                Json::Obj(
                    self.counters()
                        .map(|(name, value)| (name.to_string(), Json::U64(value)))
                        .collect(),
                ),
            ),
            (
                "histograms",
                Json::Obj(
                    self.histograms()
                        .map(|(name, hist)| (name.to_string(), hist.to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

/// The trace-event category a probe event files under.
fn category(event: &Event) -> &'static str {
    match event {
        Event::CacheMiss { .. } => "cache",
        Event::RefillStart { .. } | Event::RefillDone { .. } => "refill",
        Event::ClbHit { .. } | Event::ClbMiss { .. } | Event::ClbEvict { .. } => "clb",
        Event::MemoryBurst { .. } => "memory",
        Event::IntegrityFailure { .. } | Event::RetryBackoff { .. } => "fault",
        Event::RequestStart { .. }
        | Event::RequestDone { .. }
        | Event::RequestRejected { .. }
        | Event::CacheHit { .. } => "service",
        _ => "other",
    }
}

/// One probe event as a trace-event object on thread `tid`.
fn trace_event(tid: u64, timed: &TimedEvent) -> Json {
    let mut pairs = vec![
        ("name".to_string(), Json::str(timed.event.kind())),
        ("cat".to_string(), Json::str(category(&timed.event))),
        ("pid".to_string(), Json::U64(0)),
        ("tid".to_string(), Json::U64(tid)),
    ];
    let mut push = |key: &str, value: Json| pairs.push((key.to_string(), value));
    let address = |a: u32| Json::Str(format!("{a:#x}"));
    match timed.event {
        Event::RefillDone {
            address: a,
            cycles,
            bytes,
            clb_hit,
            bypass,
            retries,
        } => {
            // A complete event spanning the refill: it started `cycles`
            // before the line was ready.
            push("ph", Json::str("X"));
            push("ts", Json::U64(timed.cycle.saturating_sub(cycles)));
            push("dur", Json::U64(cycles));
            push(
                "args",
                Json::obj([
                    ("address", address(a)),
                    ("bytes", Json::U64(u64::from(bytes))),
                    ("clb_hit", Json::Bool(clb_hit)),
                    ("bypass", Json::Bool(bypass)),
                    ("retries", Json::U64(u64::from(retries))),
                ]),
            );
        }
        Event::MemoryBurst { words, done } => {
            push("ph", Json::str("X"));
            push("ts", Json::U64(timed.cycle));
            push("dur", Json::U64(done.saturating_sub(timed.cycle)));
            push("args", Json::obj([("words", Json::U64(u64::from(words)))]));
        }
        Event::RequestDone { id, ticks, ok } => {
            // A complete event spanning the request's fuel, back-dated
            // like a refill, so Perfetto shows a request-level timeline.
            push("ph", Json::str("X"));
            push("ts", Json::U64(timed.cycle.saturating_sub(ticks)));
            push("dur", Json::U64(ticks));
            push(
                "args",
                Json::obj([("id", Json::U64(id)), ("ok", Json::Bool(ok))]),
            );
        }
        ref event => {
            push("ph", Json::str("i"));
            push("s", Json::str("t"));
            push("ts", Json::U64(timed.cycle));
            let args = match *event {
                Event::CacheMiss { address: a }
                | Event::RefillStart { address: a }
                | Event::IntegrityFailure { address: a } => Json::obj([("address", address(a))]),
                Event::ClbHit { lat_index }
                | Event::ClbMiss { lat_index }
                | Event::ClbEvict { lat_index } => {
                    Json::obj([("lat_index", Json::U64(u64::from(lat_index)))])
                }
                Event::RetryBackoff {
                    address: a,
                    attempt,
                    backoff_cycles,
                } => Json::obj([
                    ("address", address(a)),
                    ("attempt", Json::U64(u64::from(attempt))),
                    ("backoff_cycles", Json::U64(backoff_cycles)),
                ]),
                Event::RequestStart { id } => Json::obj([("id", Json::U64(id))]),
                Event::RequestRejected { id, reason } => {
                    Json::obj([("id", Json::U64(id)), ("reason", Json::str(reason))])
                }
                Event::CacheHit { key } => Json::obj([("key", Json::Str(format!("{key:#018x}")))]),
                _ => Json::obj([]),
            };
            push("args", args);
        }
    }
    Json::Obj(pairs)
}

/// Exports probe event streams as a Chrome trace-event JSON document.
///
/// Each `(name, events)` track becomes one thread (a `thread_name`
/// metadata record followed by its events, in stream order) under a
/// single process, so Perfetto and `chrome://tracing` show the tracks
/// side by side on a shared simulated-cycle timebase.
pub fn chrome_trace(tracks: &[(&str, &[TimedEvent])]) -> Json {
    let mut events = Vec::new();
    for (tid, (name, track)) in tracks.iter().enumerate() {
        let tid = tid as u64;
        events.push(Json::obj([
            ("ph", Json::str("M")),
            ("pid", Json::U64(0)),
            ("tid", Json::U64(tid)),
            ("name", Json::str("thread_name")),
            ("args", Json::obj([("name", Json::str(name))])),
        ]));
        events.extend(track.iter().map(|timed| trace_event(tid, timed)));
    }
    Json::obj([
        ("displayTimeUnit", Json::str("ns")),
        ("traceEvents", Json::Arr(events)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_stats_layout_is_stable() {
        // The exact key set the committed BENCH files contain.
        let stats = RunStats {
            instructions: 100,
            data_accesses: 30,
            cache: CacheStats {
                fetches: 100,
                misses: 7,
            },
            refill_cycles: 70,
            bytes_from_memory: 224,
            data_stall_cycles: 1.5,
            clb: Some(ClbStats { hits: 5, misses: 2 }),
        };
        let compact = stats.to_json().to_compact();
        assert_eq!(
            compact,
            "{\"bytes_from_memory\":224,\"clb\":{\"hits\":5,\"misses\":2},\
             \"data_accesses\":30,\"data_stall_cycles\":1.5,\"fetches\":100,\
             \"instructions\":100,\"misses\":7,\"refill_cycles\":70,\
             \"total_cycles\":171.5}"
        );
        let no_clb = RunStats { clb: None, ..stats };
        assert!(no_clb.to_json().to_compact().contains("\"clb\":null"));
    }

    #[test]
    fn metric_set_serializes_counters_and_histograms() {
        let mut metrics = MetricSet::new();
        metrics.add("events.refill", 3);
        metrics.observe("latency", &[4, 8], 6);
        let json = metrics.to_json();
        let compact = json.to_compact();
        assert!(compact.contains("\"events.refill\":3"));
        assert!(compact.contains("\"bounds\":[4,8]"));
        assert!(compact.contains("\"counts\":[0,1,0]"));
        assert!(compact.contains("\"mean\":6"));

        let empty = MetricSet::new().to_json().to_compact();
        assert_eq!(empty, "{\"counters\":{},\"histograms\":{}}");
    }

    #[test]
    fn chrome_trace_shapes_complete_and_instant_events() {
        let events = [
            TimedEvent {
                cycle: 10,
                event: Event::CacheMiss { address: 0x40 },
            },
            TimedEvent {
                cycle: 30,
                event: Event::RefillDone {
                    address: 0x40,
                    cycles: 20,
                    bytes: 24,
                    clb_hit: false,
                    bypass: false,
                    retries: 0,
                },
            },
            TimedEvent {
                cycle: 12,
                event: Event::MemoryBurst { words: 2, done: 18 },
            },
        ];
        let trace = chrome_trace(&[("ccrp", &events)]);
        let text = trace.to_compact();
        // Parses back (well-formed), carries the three events plus the
        // thread-name metadata record.
        let parsed = Json::parse(&text).expect("trace parses");
        let Some(Json::Arr(items)) = parsed.get("traceEvents") else {
            panic!("traceEvents array");
        };
        assert_eq!(items.len(), 4);
        assert!(text.contains("\"thread_name\""));
        // The refill is a complete event back-dated to its start cycle.
        assert!(text.contains("\"dur\":20"));
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("\"ts\":10"));
        // The miss is an instant.
        assert!(text.contains("\"ph\":\"i\""));
        assert!(text.contains("\"address\":\"0x40\""));
    }

    #[test]
    fn chrome_trace_renders_request_lifecycle() {
        let events = [
            TimedEvent {
                cycle: 1,
                event: Event::RequestStart { id: 3 },
            },
            TimedEvent {
                cycle: 2,
                event: Event::CacheHit { key: 0xBEEF },
            },
            TimedEvent {
                cycle: 9,
                event: Event::RequestDone {
                    id: 3,
                    ticks: 8,
                    ok: true,
                },
            },
            TimedEvent {
                cycle: 10,
                event: Event::RequestRejected {
                    id: 4,
                    reason: "overload",
                },
            },
        ];
        let text = chrome_trace(&[("served", &events)]).to_compact();
        assert!(Json::parse(&text).is_ok());
        // The done event is a complete span back-dated to its start.
        assert!(text.contains("\"name\":\"request_done\""));
        assert!(text.contains("\"dur\":8"));
        assert!(text.contains("\"ts\":1"));
        assert!(text.contains("\"cat\":\"service\""));
        assert!(text.contains("\"reason\":\"overload\""));
        assert!(text.contains("\"key\":\"0x000000000000beef\""));
    }

    #[test]
    fn refill_outcome_reports_all_fields() {
        let outcome = RefillOutcome {
            ready_at: 42,
            bytes_fetched: 32,
            clb_hit: true,
            bypass: false,
            retries: 1,
        };
        assert_eq!(
            outcome.to_json().to_compact(),
            "{\"bypass\":false,\"bytes_fetched\":32,\"clb_hit\":true,\
             \"ready_at\":42,\"retries\":1}"
        );
    }
}
