//! The codec × memory-model ablation matrix.
//!
//! Compresses every traced workload with each [`LineCodec`] backend and
//! replays its captured trace under every memory model, charting the
//! compression-ratio vs refill-latency frontier the pluggable-codec
//! design exposes:
//!
//! * **byte-huffman** — the paper's preselected bounded Huffman code,
//!   the hardware baseline;
//! * **positional** — §5's per-byte-offset codes: better ratios for the
//!   same parallel-table decode throughput, at 4× the table storage;
//! * **lzw** — per-line bounded LZW: the strongest ratios, but its
//!   serial dictionary chase caps expansion at 1 byte/cycle, so refills
//!   stall harder.
//!
//! Every cell also re-expands the whole compressed image and compares
//! it against the original text — a correctness oracle riding along
//! with the measurement. Cells are a pure function of the workload set,
//! so a campaign is bit-identical across `--jobs` settings.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ccrp::CompressedImage;
use ccrp_compress::{BlockAlignment, CodecId, LineCodec, LzwLineCodec};
use ccrp_sim::{AccessTrace, MemoryModel, Simulation, SystemConfig};
use ccrp_workloads::{preselected_code, preselected_positional_code};

use crate::json::Json;
use crate::report::ToJson;
use crate::runner::parallel_map;
use crate::suite::{suite_with_jobs, Prepared};

/// The instruction-cache size every matrix cell simulates (one mid-range
/// point of the paper's Tables 1–8 sweep; the codec comparison holds the
/// cache fixed so only the codec and memory model vary).
pub const CACHE_BYTES: u32 = 1024;

/// The corpus-trained instance of one codec backend, as the hardwired
/// decoder of a preselected-code system would ship it.
pub fn codec_instance(id: CodecId) -> Arc<dyn LineCodec> {
    match id {
        CodecId::ByteHuffman => Arc::new(preselected_code().clone()),
        CodecId::Positional => Arc::new(preselected_positional_code().clone()),
        CodecId::Lzw => Arc::new(LzwLineCodec::new()),
    }
}

/// Campaign knobs.
#[derive(Debug, Clone, Copy)]
pub struct CodecsOptions {
    /// Worker threads (1 = serial). Does not affect results.
    pub jobs: usize,
}

impl Default for CodecsOptions {
    fn default() -> Self {
        Self {
            jobs: crate::runner::available_jobs(),
        }
    }
}

/// One matrix cell: a (workload, codec, memory-model) configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodecCell {
    /// Workload name, as in the paper's tables.
    pub workload: &'static str,
    /// The codec backend.
    pub codec: CodecId,
    /// The memory model.
    pub memory: MemoryModel,
    /// Stored size (blocks + LAT) over original size.
    pub compression_ratio: f64,
    /// CCRP time / standard time (the paper's "Relative Performance").
    pub relative_performance: f64,
    /// Instruction-cache miss rate, 0..=1.
    pub miss_rate: f64,
    /// CCRP bytes / standard bytes over the instruction bus.
    pub memory_traffic: f64,
    /// Total CCRP cycles spent waiting on line refills.
    pub refill_cycles: u64,
    /// Decoder table/dictionary storage the codec's hardware holds.
    pub table_bits: u64,
    /// The expansion rate the refill engine actually ran at, after the
    /// codec's hardware cap clamps the configured rate.
    pub effective_decode_rate: u32,
}

/// A finished campaign.
#[derive(Debug, Clone)]
pub struct CodecsReport {
    /// The options the campaign ran with.
    pub options: CodecsOptions,
    /// Every matrix cell, ordered workload-major, then codec
    /// ([`CodecId::ALL`]), then memory model ([`MemoryModel::ALL`]).
    pub cells: Vec<CodecCell>,
    /// End-to-end wall time.
    pub total_wall: Duration,
}

/// Builds `workload`'s image under `codec` and proves it expands back to
/// the original text, line for line.
///
/// # Panics
///
/// Panics when the image fails to build or any line miscompares — the
/// campaign doubles as a correctness oracle, so a codec that corrupts a
/// workload must abort the run loudly rather than skew the numbers.
fn build_checked(prepared: &Prepared, id: CodecId) -> CompressedImage {
    let name = prepared.workload.name;
    let image = match id {
        // The suite already built (and uses) the byte-Huffman image.
        CodecId::ByteHuffman => return prepared.image.clone(),
        _ => CompressedImage::build_with_codec(
            0,
            &prepared.workload.text,
            codec_instance(id),
            BlockAlignment::Word,
        )
        .unwrap_or_else(|e| panic!("{name} must compress under {id}: {e}")),
    };
    let mut line = [0u8; 32];
    for (index, chunk) in prepared.workload.text.chunks(32).enumerate() {
        image
            .expand_line_into(index as u32 * 32, &mut line)
            .unwrap_or_else(|e| panic!("{name} line {index} must expand under {id}: {e}"));
        assert_eq!(
            &line[..chunk.len()],
            chunk,
            "{name} line {index} miscompares under {id}"
        );
    }
    image
}

/// One campaign job: all memory-model cells of a (workload, codec) pair,
/// replayed over the captured trace in a single pass.
fn run_pair(prepared: &Prepared, id: CodecId) -> Vec<CodecCell> {
    let image = build_checked(prepared, id);
    let trace = AccessTrace::capture(prepared.workload.trace.iter());
    let configs: Vec<SystemConfig> = MemoryModel::ALL
        .into_iter()
        .map(|memory| {
            SystemConfig::new()
                .with_cache_bytes(CACHE_BYTES)
                .with_memory(memory)
        })
        .collect();
    let comparisons = Simulation::replay_sweep(&image, &trace, &configs)
        .unwrap_or_else(|e| panic!("{} sweep under {id}: {e}", prepared.workload.name));
    let cost = image.codec().cost();
    MemoryModel::ALL
        .into_iter()
        .zip(comparisons)
        .map(|(memory, cmp)| CodecCell {
            workload: prepared.workload.name,
            codec: id,
            memory,
            compression_ratio: image.compression_ratio(),
            relative_performance: cmp.relative_execution_time(),
            miss_rate: cmp.miss_rate(),
            memory_traffic: cmp.memory_traffic_ratio(),
            refill_cycles: cmp.ccrp.refill_cycles,
            table_bits: cost.table_bits,
            effective_decode_rate: cost
                .effective_rate(ccrp::RefillConfig::default().decode_bytes_per_cycle),
        })
        .collect()
}

/// Runs the full matrix: every workload × [`CodecId::ALL`] ×
/// [`MemoryModel::ALL`]. Results depend only on the workload set —
/// `options.jobs` changes wall time, never cells.
pub fn run(options: CodecsOptions) -> CodecsReport {
    let started = Instant::now();
    let suite = suite_with_jobs(options.jobs);
    let pairs: Vec<(&Prepared, CodecId)> = suite
        .iter()
        .flat_map(|p| CodecId::ALL.map(|id| (p, id)))
        .collect();
    let cells = parallel_map(options.jobs, &pairs, |&(prepared, id)| {
        run_pair(prepared, id)
    })
    .into_iter()
    .flat_map(|(cells, _)| cells)
    .collect();
    CodecsReport {
        options,
        cells,
        total_wall: started.elapsed(),
    }
}

impl CodecsReport {
    /// The cells of one workload, in codec-major order.
    pub fn workload_cells<'a>(&'a self, workload: &'a str) -> impl Iterator<Item = &'a CodecCell> {
        self.cells.iter().filter(move |c| c.workload == workload)
    }

    /// The deterministic half of the report: identical across job counts
    /// and machines.
    pub fn results_json(&self) -> Json {
        Json::obj([
            ("schema", Json::str("ccrp-bench-codecs/1")),
            ("cache_bytes", Json::U64(u64::from(CACHE_BYTES))),
            (
                "codecs",
                Json::Arr(
                    CodecId::ALL
                        .map(|id| Json::str(id.name()))
                        .into_iter()
                        .collect(),
                ),
            ),
            (
                "cells",
                Json::Arr(
                    self.cells
                        .iter()
                        .map(|c| {
                            Json::obj([
                                ("workload", Json::str(c.workload)),
                                ("codec", Json::str(c.codec.name())),
                                ("memory", Json::str(c.memory.name())),
                                ("compression_ratio", Json::F64(c.compression_ratio)),
                                ("relative_performance", Json::F64(c.relative_performance)),
                                ("miss_rate", Json::F64(c.miss_rate)),
                                ("memory_traffic", Json::F64(c.memory_traffic)),
                                ("refill_cycles", Json::U64(c.refill_cycles)),
                                ("table_bits", Json::U64(c.table_bits)),
                                (
                                    "effective_decode_rate",
                                    Json::U64(u64::from(c.effective_decode_rate)),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl ToJson for CodecsReport {
    /// [`results_json`](CodecsReport::results_json) plus the
    /// run-specific job count and wall-clock timing.
    fn to_json(&self) -> Json {
        let Json::Obj(mut pairs) = self.results_json() else {
            unreachable!("results_json returns an object");
        };
        pairs.push(("jobs".into(), Json::U64(self.options.jobs as u64)));
        pairs.push((
            "timing".into(),
            Json::obj([(
                "total_wall_us",
                Json::U64(self.total_wall.as_micros() as u64),
            )]),
        ));
        Json::Obj(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_every_cell_and_is_jobs_independent() {
        let serial = run(CodecsOptions { jobs: 1 });
        let parallel = run(CodecsOptions { jobs: 4 });
        assert_eq!(
            serial.cells.len(),
            8 * CodecId::ALL.len() * MemoryModel::ALL.len()
        );
        assert_eq!(serial.cells, parallel.cells);
        assert_eq!(
            serial.results_json().to_compact(),
            parallel.results_json().to_compact()
        );
    }

    #[test]
    fn frontier_shape_holds() {
        let report = run(CodecsOptions::default());
        for prepared_cells in report
            .cells
            .chunks(CodecId::ALL.len() * MemoryModel::ALL.len())
        {
            let ratio_of = |id: CodecId| {
                prepared_cells
                    .iter()
                    .find(|c| c.codec == id)
                    .expect("cell present")
                    .compression_ratio
            };
            // §5's promise: positional codes beat the plain byte code.
            assert!(
                ratio_of(CodecId::Positional) <= ratio_of(CodecId::ByteHuffman) + 1e-9,
                "{}",
                prepared_cells[0].workload
            );
            // LZW's serial decoder is rate-limited; the Huffman decoders
            // run at the full configured rate.
            for cell in prepared_cells {
                match cell.codec {
                    CodecId::Lzw => assert_eq!(cell.effective_decode_rate, 1),
                    _ => assert_eq!(cell.effective_decode_rate, 2),
                }
            }
        }
    }
}
