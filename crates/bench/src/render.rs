//! Renders sweep results as the paper-style text tables the `cargo
//! bench` targets print.
//!
//! Each renderer takes the structured rows an experiment produced
//! (serial or parallel — they are the same types) and returns the full
//! report as a `String`, so the bench binaries, the `ccrp-tools sweep`
//! command, and the golden-file tests all share one formatting path.
//! Rendering depends only on the deterministic results, never on
//! timing, so the output is stable across runs and worker counts.

use std::fmt::Write as _;

use ccrp_sim::MemoryModel;

use crate::experiments::clb::{ClbRow, CLB_SIZES};
use crate::experiments::dcache::DcacheRow;
use crate::experiments::fig5::{weighted_average, Fig5Row};
use crate::experiments::perf::PerfPoint;
use crate::runner::{ExperimentResults, SweepReport};
use crate::table::Table;
use crate::{fmt_pct, fmt_rel};

/// Renders Tables 1–8 (one table per workload).
pub fn tables_1_to_8(tables: &[(&'static str, Vec<PerfPoint>)]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "\nTables 1-8 — 16-entry CLB, 100% data-cache miss rate\n"
    );
    for (index, (name, points)) in tables.iter().enumerate() {
        let _ = writeln!(out, "Table {}: {name}", index + 1);
        let mut table = Table::new(&[
            "Memory",
            "Cache Size",
            "Relative Performance",
            "Cache Miss Rate",
            "Memory Traffic",
        ]);
        for p in points {
            table.row(&[
                p.memory.name(),
                &format!("{} byte", p.cache_bytes),
                &fmt_rel(p.relative_performance),
                &fmt_pct(p.miss_rate),
                &format!("{:.1}%", p.memory_traffic * 100.0),
            ]);
        }
        let _ = writeln!(out, "{table}");
    }
    out
}

/// Renders Figure 5 (per-program bars plus the weighted average).
pub fn fig5(rows: &[Fig5Row], weighted: &Fig5Row) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "\nFigure 5 — Four Compression Methods (size, % of original)\n"
    );
    let mut table = Table::new(&[
        "Program",
        "Bytes",
        "Unix compress",
        "Traditional Huffman",
        "Bounded Huffman",
        "Preselected Bounded",
    ]);
    for row in rows.iter().chain(std::iter::once(weighted)) {
        table.row(&[
            row.name,
            &row.original_bytes.to_string(),
            &format!("{:.1}%", row.compress_pct),
            &format!("{:.1}%", row.traditional_pct),
            &format!("{:.1}%", row.bounded_pct),
            &format!("{:.1}%", row.preselected_pct),
        ]);
    }
    let _ = writeln!(out, "{table}");
    let _ = writeln!(
        out,
        "Paper's qualitative result: compress < traditional <= bounded <= preselected,\n\
         with every method leaving the program well under its original size."
    );
    out
}

/// Renders Tables 9–10 (CLB size effects).
pub fn tables_9_10(tables: &[(&'static str, Vec<ClbRow>)]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "\nTables 9-10 — CLB size effects, 100% data-cache miss rate\n"
    );
    for (index, (name, rows)) in tables.iter().enumerate() {
        let _ = writeln!(out, "Table {}: {name}", index + 9);
        let mut table = Table::new(&[
            "Memory",
            "Cache Size",
            &format!("Rel. Perf {} CLB", CLB_SIZES[0]),
            &format!("Rel. Perf {} CLB", CLB_SIZES[1]),
            &format!("Rel. Perf {} CLB", CLB_SIZES[2]),
        ]);
        for row in rows {
            table.row(&[
                row.memory.name(),
                &format!("{} byte", row.cache_bytes),
                &fmt_rel(row.relative[0]),
                &fmt_rel(row.relative[1]),
                &fmt_rel(row.relative[2]),
            ]);
        }
        let _ = writeln!(out, "{table}");
    }
    let _ = writeln!(
        out,
        "Paper's observation (§4.2.2): only minor variations with respect to CLB\n\
         size over this range."
    );
    out
}

/// Renders Tables 11–13 (data-cache miss-rate effects).
pub fn tables_11_13(tables: &[(&'static str, Vec<DcacheRow>)]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "\nTables 11-13 — Effect of Data Cache Miss Rate, 16-entry CLB\n"
    );
    for (index, (name, rows)) in tables.iter().enumerate() {
        let _ = writeln!(
            out,
            "Table {}: {name} (1024-byte instruction cache)",
            index + 11
        );
        let mut table = Table::new(&["Memory", "Dcache Miss Rate", "Relative Performance"]);
        for row in rows {
            table.row(&[
                row.memory.name(),
                &format!("{}%", row.dcache_miss_pct),
                &fmt_rel(row.relative),
            ]);
        }
        let _ = writeln!(out, "{table}");
    }
    let _ = writeln!(
        out,
        "Paper's observation (§4.2.4): as the data cache miss rate increases,\n\
         the effect of the CCRP on performance is reduced."
    );
    out
}

fn scatter_marker(memory: MemoryModel) -> char {
    match memory {
        MemoryModel::Eprom => 'x',
        MemoryModel::BurstEprom => 'o',
        MemoryModel::ScDram => '+',
    }
}

/// Renders Figure 9 (per-model tables plus the ASCII scatter).
pub fn fig9(points: &[(&'static str, PerfPoint)]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "\nFigure 9 — Performance vs Instruction Cache Miss Rate\n"
    );
    for memory in MemoryModel::ALL {
        let _ = writeln!(out, "{} model:", memory.name());
        let mut table = Table::new(&["Workload", "Cache", "Miss Rate", "Relative Performance"]);
        let mut sorted: Vec<_> = points.iter().filter(|(_, p)| p.memory == memory).collect();
        sorted.sort_by(|a, b| a.1.miss_rate.total_cmp(&b.1.miss_rate));
        for (name, p) in sorted {
            table.row(&[
                name,
                &format!("{}B", p.cache_bytes),
                &fmt_pct(p.miss_rate),
                &fmt_rel(p.relative_performance),
            ]);
        }
        let _ = writeln!(out, "{table}");
    }

    // A text rendering of the scatter's trend per memory model.
    let _ = writeln!(
        out,
        "ASCII scatter (x = miss rate, y = relative performance):"
    );
    for memory in MemoryModel::ALL {
        let _ = writeln!(out, "  {} = {}", scatter_marker(memory), memory.name());
    }
    let max_miss = points
        .iter()
        .map(|(_, p)| p.miss_rate)
        .fold(0.0f64, f64::max);
    let rows = 18;
    let cols = 64;
    let mut grid = vec![vec![' '; cols]; rows];
    for (_, p) in points {
        let x = ((p.miss_rate / max_miss.max(1e-9)) * (cols - 1) as f64) as usize;
        // y axis: 0.85 (bottom) .. 1.45 (top)
        let y_norm = ((p.relative_performance - 0.85) / 0.60).clamp(0.0, 1.0);
        let y = rows - 1 - (y_norm * (rows - 1) as f64) as usize;
        grid[y][x] = scatter_marker(p.memory);
    }
    let _ = writeln!(out, "1.45 +{}", "-".repeat(cols));
    for row in &grid {
        let _ = writeln!(out, "     |{}", row.iter().collect::<String>());
    }
    let _ = writeln!(out, "0.85 +{}", "-".repeat(cols));
    let _ = writeln!(
        out,
        "      0%{:>width$.2}%",
        max_miss * 100.0,
        width = cols - 2
    );
    let _ = writeln!(
        out,
        "\nPaper's reading (§4.2.3): for slow memories the compressed code model\n\
         outperforms more at higher miss rates (x slopes down); the opposite\n\
         holds for faster memory (o and + slope up)."
    );
    out
}

/// Renders whatever a [`SweepReport`] holds, dispatching to the
/// experiment's table renderer.
pub fn report(report: &SweepReport) -> String {
    match &report.results {
        ExperimentResults::Fig5 { rows, weighted } => fig5(rows, weighted),
        ExperimentResults::Tables1To8(tables) => tables_1_to_8(tables),
        ExperimentResults::Tables9To10(tables) => tables_9_10(tables),
        ExperimentResults::Fig9(points) => fig9(points),
        ExperimentResults::Tables11To13(tables) => tables_11_13(tables),
    }
}

/// Re-exported so callers rendering raw Figure 5 rows can compute the
/// average the same way the runner does.
pub fn fig5_with_average(rows: &[Fig5Row]) -> String {
    fig5(rows, &weighted_average(rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccrp_sim::MemoryModel;

    #[test]
    fn renderers_are_pure_functions_of_rows() {
        let point = PerfPoint {
            cache_bytes: 1024,
            memory: MemoryModel::Eprom,
            relative_performance: 0.9,
            miss_rate: 0.05,
            memory_traffic: 0.7,
        };
        let tables = vec![("demo", vec![point])];
        let a = tables_1_to_8(&tables);
        let b = tables_1_to_8(&tables);
        assert_eq!(a, b);
        assert!(a.contains("Table 1: demo"));
        assert!(a.contains("0.900"));
        assert!(a.contains("5.00%"));

        let scatter = fig9(&[("demo", point)]);
        assert!(scatter.contains("EPROM model:"));
        assert!(scatter.contains("1.45 +"));
    }
}
