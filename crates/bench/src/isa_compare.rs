//! The cross-ISA comparison sweep: CCRP versus (and composed with) the
//! RISC-V C extension.
//!
//! The paper's §6 asks how dictionary compression of the fetch path
//! stacks up against an ISA-level dense encoding. This sweep puts four
//! systems on one axis, per workload and memory model:
//!
//! * **mips-ccrp** — the paper's system: MIPS text through the
//!   byte-Huffman CCRP, the committed Tables 1–8 configuration;
//! * **rv32i-ccrp** — the same CCRP hardware in front of a base RV32I
//!   build of the same kernel (a self-trained code, since no RV32
//!   corpus code ships);
//! * **rv32c** — the C extension alone: the RVC build fetched
//!   uncompressed, no CCRP hardware at all;
//! * **rv32c-ccrp** — the two composed: the RVC build behind CCRP,
//!   testing whether statistical compression still finds slack after
//!   the encoding-level density win.
//!
//! Every RV32 variant is measured against the **RV32I standard run**
//! (plain ROM, no compression) as its baseline, so the three rv32 rows
//! share a denominator; the MIPS row uses its own standard run, as in
//! the paper's tables. Compression ratios likewise share the RV32I
//! text as the denominator on the rv32 side. Cells are a pure function
//! of the workload set, so campaigns are bit-identical across `--jobs`
//! settings and machines.

use std::time::{Duration, Instant};

use ccrp::CompressedImage;
use ccrp_compress::{BlockAlignment, ByteCode, ByteHistogram};
use ccrp_rv32::workloads::{BuiltRv32Workload, Rv32Workload};
use ccrp_sim::{AccessTrace, MemoryModel, RunStats, Simulation, SystemConfig};

use crate::codecs::CACHE_BYTES;
use crate::json::Json;
use crate::report::ToJson;
use crate::runner::parallel_map;
use crate::suite::{suite_with_jobs, Prepared};

/// One compared system. Order is the report's row order within a
/// (workload, memory model) group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IsaVariant {
    /// MIPS text behind the byte-Huffman CCRP (the paper's system).
    MipsCcrp,
    /// RV32I text behind a self-trained byte-Huffman CCRP.
    Rv32iCcrp,
    /// The RVC build fetched plain — ISA-level compression only.
    Rv32c,
    /// The RVC build behind a self-trained CCRP — both layers.
    Rv32cCcrp,
}

impl IsaVariant {
    /// All variants, in report order.
    pub const ALL: [IsaVariant; 4] = [
        IsaVariant::MipsCcrp,
        IsaVariant::Rv32iCcrp,
        IsaVariant::Rv32c,
        IsaVariant::Rv32cCcrp,
    ];

    /// Stable report name.
    pub fn name(self) -> &'static str {
        match self {
            IsaVariant::MipsCcrp => "mips-ccrp",
            IsaVariant::Rv32iCcrp => "rv32i-ccrp",
            IsaVariant::Rv32c => "rv32c",
            IsaVariant::Rv32cCcrp => "rv32c-ccrp",
        }
    }
}

/// Campaign knobs.
#[derive(Debug, Clone, Copy)]
pub struct IsaCompareOptions {
    /// Worker threads (1 = serial). Does not affect results.
    pub jobs: usize,
}

impl Default for IsaCompareOptions {
    fn default() -> Self {
        Self {
            jobs: crate::runner::available_jobs(),
        }
    }
}

/// One cell: a (workload, variant, memory-model) measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IsaCell {
    /// Workload name, as in the paper's tables (shared across ISAs).
    pub workload: &'static str,
    /// The compared system.
    pub variant: IsaVariant,
    /// The memory model.
    pub memory: MemoryModel,
    /// Stored instruction bytes over the baseline text size (the MIPS
    /// text for `mips-ccrp`, the RV32I text for the rv32 variants).
    pub compression_ratio: f64,
    /// Variant cycles over baseline cycles (standard MIPS run for
    /// `mips-ccrp`, standard RV32I run for the rv32 variants).
    pub relative_performance: f64,
    /// The variant's own instruction-cache miss rate, 0..=1.
    pub miss_rate: f64,
    /// Variant instruction-bus bytes over baseline bytes.
    pub memory_traffic: f64,
    /// Cycles the variant stalled filling instruction lines from
    /// memory — through the CCRP decode path for the ccrp variants,
    /// plain burst fetches for `rv32c`.
    pub refill_cycles: u64,
}

/// A finished campaign.
#[derive(Debug, Clone)]
pub struct IsaCompareReport {
    /// The options the campaign ran with.
    pub options: IsaCompareOptions,
    /// Every cell, ordered workload-major (the paper's table order),
    /// then variant ([`IsaVariant::ALL`]), then memory model
    /// ([`MemoryModel::ALL`]).
    pub cells: Vec<IsaCell>,
    /// End-to-end wall time.
    pub total_wall: Duration,
}

/// Builds a self-trained byte-Huffman CCRP image over raw text bytes.
///
/// # Panics
///
/// Panics when the text fails to compress — workload texts are
/// non-empty and word-aligned by construction, so a failure is a bug.
fn self_trained(name: &str, text_base: u32, text: &[u8]) -> CompressedImage {
    let code = ByteCode::preselected(&ByteHistogram::of(text))
        .unwrap_or_else(|e| panic!("{name}: code selection failed: {e}"));
    CompressedImage::build(text_base, text, code, BlockAlignment::Word)
        .unwrap_or_else(|e| panic!("{name}: compressed image build failed: {e}"))
}

fn cell_from(
    workload: &'static str,
    variant: IsaVariant,
    memory: MemoryModel,
    compression_ratio: f64,
    run: &RunStats,
    baseline: &RunStats,
) -> IsaCell {
    IsaCell {
        workload,
        variant,
        memory,
        compression_ratio,
        relative_performance: run.total_cycles() / baseline.total_cycles(),
        miss_rate: run.cache.miss_rate(),
        memory_traffic: if baseline.bytes_from_memory == 0 {
            1.0
        } else {
            run.bytes_from_memory as f64 / baseline.bytes_from_memory as f64
        },
        refill_cycles: run.refill_cycles,
    }
}

/// One campaign job: all (variant, memory-model) cells of one workload.
/// Two [`Simulation::replay_sweep`] passes cover the four RV32 stat
/// sets (standard/CCRP over the RV32I trace, standard/CCRP over the
/// RVC trace); a third covers the MIPS pair.
fn run_workload(prepared: &Prepared, rv32: &BuiltRv32Workload) -> Vec<IsaCell> {
    let name = prepared.workload.name;
    assert_eq!(name, rv32.name, "workload order mismatch across ISAs");
    let configs: Vec<SystemConfig> = MemoryModel::ALL
        .into_iter()
        .map(|memory| {
            SystemConfig::new()
                .with_cache_bytes(CACHE_BYTES)
                .with_memory(memory)
        })
        .collect();

    let mips_trace = AccessTrace::capture(prepared.workload.trace.iter());
    let mips = Simulation::replay_sweep(&prepared.image, &mips_trace, &configs)
        .unwrap_or_else(|e| panic!("{name}: mips sweep: {e}"));

    let ccrp_i = self_trained(name, rv32.image_i.text_base(), rv32.image_i.text());
    let ccrp_c = self_trained(name, rv32.image_c.text_base(), rv32.image_c.text());
    let trace_i = AccessTrace::capture(rv32.trace_i.iter());
    let trace_c = AccessTrace::capture(rv32.trace_c.iter());
    let sweep_i = Simulation::replay_sweep(&ccrp_i, &trace_i, &configs)
        .unwrap_or_else(|e| panic!("{name}: rv32i sweep: {e}"));
    let sweep_c = Simulation::replay_sweep(&ccrp_c, &trace_c, &configs)
        .unwrap_or_else(|e| panic!("{name}: rv32c sweep: {e}"));

    let i_bytes = f64::from(rv32.image_i.text_size());
    let ratio_rv32i = ccrp_i.compression_ratio();
    let ratio_rv32c = f64::from(rv32.image_c.text_size()) / i_bytes;
    let ratio_rv32c_ccrp = f64::from(ccrp_c.total_stored_bytes(false)) / i_bytes;

    let mut cells = Vec::with_capacity(IsaVariant::ALL.len() * MemoryModel::ALL.len());
    for variant in IsaVariant::ALL {
        for (at, memory) in MemoryModel::ALL.into_iter().enumerate() {
            // Each sweep pairs one standard run with one CCRP run; the
            // RV32I standard run is every rv32 variant's baseline.
            let rv32_base = &sweep_i[at].standard;
            cells.push(match variant {
                IsaVariant::MipsCcrp => cell_from(
                    name,
                    variant,
                    memory,
                    prepared.image.compression_ratio(),
                    &mips[at].ccrp,
                    &mips[at].standard,
                ),
                IsaVariant::Rv32iCcrp => cell_from(
                    name,
                    variant,
                    memory,
                    ratio_rv32i,
                    &sweep_i[at].ccrp,
                    rv32_base,
                ),
                IsaVariant::Rv32c => cell_from(
                    name,
                    variant,
                    memory,
                    ratio_rv32c,
                    &sweep_c[at].standard,
                    rv32_base,
                ),
                IsaVariant::Rv32cCcrp => cell_from(
                    name,
                    variant,
                    memory,
                    ratio_rv32c_ccrp,
                    &sweep_c[at].ccrp,
                    rv32_base,
                ),
            });
        }
    }
    cells
}

/// Runs the full comparison: every workload × [`IsaVariant::ALL`] ×
/// [`MemoryModel::ALL`]. Results depend only on the workload set —
/// `options.jobs` changes wall time, never cells.
///
/// # Panics
///
/// Panics when an RV32 workload fails its build self-check or a sweep
/// fetches outside its image — both indicate harness bugs.
pub fn run(options: IsaCompareOptions) -> IsaCompareReport {
    let started = Instant::now();
    let suite = suite_with_jobs(options.jobs);
    let jobs: Vec<(&Prepared, Rv32Workload)> = suite.iter().zip(Rv32Workload::ALL).collect();
    let cells = parallel_map(options.jobs, &jobs, |&(prepared, workload)| {
        let rv32 = workload
            .build()
            .unwrap_or_else(|e| panic!("{}: rv32 build: {e}", workload.name()));
        run_workload(prepared, &rv32)
    })
    .into_iter()
    .flat_map(|(cells, _)| cells)
    .collect();
    IsaCompareReport {
        options,
        cells,
        total_wall: started.elapsed(),
    }
}

impl IsaCompareReport {
    /// The cells of one variant, in workload-major order.
    pub fn variant_cells(&self, variant: IsaVariant) -> impl Iterator<Item = &IsaCell> {
        self.cells.iter().filter(move |c| c.variant == variant)
    }

    /// The deterministic half of the report: identical across job
    /// counts and machines.
    pub fn results_json(&self) -> Json {
        Json::obj([
            ("schema", Json::str("ccrp-isa-compare/1")),
            ("cache_bytes", Json::U64(u64::from(CACHE_BYTES))),
            (
                "variants",
                Json::Arr(
                    IsaVariant::ALL
                        .map(|v| Json::str(v.name()))
                        .into_iter()
                        .collect(),
                ),
            ),
            (
                "cells",
                Json::Arr(
                    self.cells
                        .iter()
                        .map(|c| {
                            Json::obj([
                                ("workload", Json::str(c.workload)),
                                ("variant", Json::str(c.variant.name())),
                                ("memory", Json::str(c.memory.name())),
                                ("compression_ratio", Json::F64(c.compression_ratio)),
                                ("relative_performance", Json::F64(c.relative_performance)),
                                ("miss_rate", Json::F64(c.miss_rate)),
                                ("memory_traffic", Json::F64(c.memory_traffic)),
                                ("refill_cycles", Json::U64(c.refill_cycles)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl ToJson for IsaCompareReport {
    /// [`results_json`](IsaCompareReport::results_json) plus the
    /// run-specific job count and wall-clock timing.
    fn to_json(&self) -> Json {
        let Json::Obj(mut pairs) = self.results_json() else {
            unreachable!("results_json returns an object");
        };
        pairs.push(("jobs".into(), Json::U64(self.options.jobs as u64)));
        pairs.push((
            "timing".into(),
            Json::obj([(
                "total_wall_us",
                Json::U64(self.total_wall.as_micros() as u64),
            )]),
        ));
        Json::Obj(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_every_cell_and_is_jobs_independent() {
        let serial = run(IsaCompareOptions { jobs: 1 });
        let parallel = run(IsaCompareOptions { jobs: 4 });
        assert_eq!(
            serial.cells.len(),
            8 * IsaVariant::ALL.len() * MemoryModel::ALL.len()
        );
        assert_eq!(serial.cells, parallel.cells);
        assert_eq!(
            serial.results_json().to_compact(),
            parallel.results_json().to_compact()
        );
    }

    #[test]
    fn compression_and_composition_shape_holds() {
        let report = run(IsaCompareOptions::default());
        for group in report
            .cells
            .chunks(IsaVariant::ALL.len() * MemoryModel::ALL.len())
        {
            let ratio_of = |variant: IsaVariant| {
                group
                    .iter()
                    .find(|c| c.variant == variant)
                    .expect("cell present")
                    .compression_ratio
            };
            let workload = group[0].workload;
            // Every compression layer actually shrinks the program.
            for variant in IsaVariant::ALL {
                assert!(
                    ratio_of(variant) < 1.0,
                    "{workload}: {} ratio {} not < 1",
                    variant.name(),
                    ratio_of(variant)
                );
            }
            // Composing CCRP over RVC beats RVC alone: statistical
            // compression finds slack the dense encoding leaves.
            assert!(
                ratio_of(IsaVariant::Rv32cCcrp) < ratio_of(IsaVariant::Rv32c),
                "{workload}: composition did not improve on rvc alone"
            );
            // rv32c and rv32c-ccrp replay the same trace through the
            // same cache, so their miss rates are identical per model —
            // only the refill path differs.
            for memory in MemoryModel::ALL {
                let rate_of = |variant: IsaVariant| {
                    group
                        .iter()
                        .find(|c| c.variant == variant && c.memory == memory)
                        .expect("cell present")
                        .miss_rate
                };
                assert_eq!(
                    rate_of(IsaVariant::Rv32c),
                    rate_of(IsaVariant::Rv32cCcrp),
                    "{workload}: same trace, different miss rate"
                );
            }
        }
    }
}
