//! An LZW compressor in the style of Unix `compress` ([Welch 1984]).
//!
//! The paper uses `compress` as the reference point for its custom block
//! codes (Figure 5): file-based LZW compresses whole programs well but
//! cannot decompress individual cache lines, which is why the CCRP uses
//! Huffman blocks instead. This module reproduces that reference point.
//!
//! Faithful to `compress(1)` where it matters for output *size*:
//! variable-width codes growing from 9 to 16 bits, a dictionary reset
//! (CLEAR) when full. Header magic bytes are omitted.
//!
//! [Welch 1984]: https://doi.org/10.1109/MC.1984.1659158

use std::collections::HashMap;

use ccrp_bitstream::{BitReader, BitWriter};

use crate::error::CompressError;

const CLEAR: u32 = 256;
const FIRST_FREE: u32 = 257;
const MIN_WIDTH: u32 = 9;
const MAX_WIDTH: u32 = 16;

/// Compresses `data` with `compress`-style LZW.
///
/// # Examples
///
/// ```
/// use ccrp_compress::lzw;
///
/// let data = b"abababababababab";
/// let packed = lzw::compress(data);
/// assert!(packed.len() < data.len());
/// assert_eq!(lzw::decompress(&packed)?, data);
/// # Ok::<(), ccrp_compress::CompressError>(())
/// ```
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut out = BitWriter::with_capacity(data.len() / 2);
    let mut dict: HashMap<(u32, u8), u32> = HashMap::new();
    let mut next_code = FIRST_FREE;
    let mut width = MIN_WIDTH;
    let mut current: Option<u32> = None;

    for &byte in data {
        let cur = match current {
            None => {
                current = Some(u32::from(byte));
                continue;
            }
            Some(c) => c,
        };
        if let Some(&code) = dict.get(&(cur, byte)) {
            current = Some(code);
            continue;
        }
        out.write_bits(cur, width);
        if next_code < (1 << MAX_WIDTH) {
            dict.insert((cur, byte), next_code);
            next_code += 1;
            if next_code > (1 << width) && width < MAX_WIDTH {
                width += 1;
            }
        } else {
            // Dictionary full: emit CLEAR and start over, as block-mode
            // compress does when the ratio degrades. Resetting
            // unconditionally is simpler and close in practice.
            out.write_bits(CLEAR, width);
            dict.clear();
            next_code = FIRST_FREE;
            width = MIN_WIDTH;
        }
        current = Some(u32::from(byte));
    }
    if let Some(cur) = current {
        out.write_bits(cur, width);
    }
    out.into_bytes()
}

/// Decompresses the output of [`compress`].
///
/// # Errors
///
/// [`CompressError::BadLzwCode`] if the stream references a dictionary
/// entry that does not exist (corrupt input).
pub fn decompress(packed: &[u8]) -> Result<Vec<u8>, CompressError> {
    let mut reader = BitReader::new(packed);
    let mut out = Vec::with_capacity(packed.len() * 2);
    // Dictionary entry: (prefix code, appended byte); strings are
    // materialized by walking prefixes.
    let mut dict: Vec<(u32, u8)> = Vec::new();
    let mut width = MIN_WIDTH;
    let mut prev: Option<u32> = None;

    fn expand(dict: &[(u32, u8)], mut code: u32, out: &mut Vec<u8>) -> Result<u8, CompressError> {
        let start = out.len();
        loop {
            if code < 256 {
                out.push(code as u8);
                break;
            }
            let index = (code - FIRST_FREE) as usize;
            let &(prefix, byte) = dict.get(index).ok_or(CompressError::BadLzwCode { code })?;
            out.push(byte);
            code = prefix;
        }
        out[start..].reverse();
        Ok(out[start])
    }

    while reader.remaining() >= u64::from(width) {
        let code = reader.read_bits(width)?;
        if code == CLEAR {
            dict.clear();
            width = MIN_WIDTH;
            prev = None;
            continue;
        }
        let next_code = FIRST_FREE + dict.len() as u32;
        match prev {
            None => {
                if code >= 256 {
                    return Err(CompressError::BadLzwCode { code });
                }
                out.push(code as u8);
            }
            Some(prev_code) => {
                if code < next_code {
                    let first = expand(&dict, code, &mut out)?;
                    if next_code < (1 << MAX_WIDTH) {
                        dict.push((prev_code, first));
                    }
                } else if code == next_code && next_code < (1 << MAX_WIDTH) {
                    // The KwKwK special case: the new string is the
                    // previous one followed by its own first byte.
                    let first = expand(&dict, prev_code, &mut out)?;
                    out.push(first);
                    dict.push((prev_code, first));
                } else {
                    return Err(CompressError::BadLzwCode { code });
                }
            }
        }
        if FIRST_FREE + dict.len() as u32 + 1 > (1 << width) && width < MAX_WIDTH {
            width += 1;
        }
        prev = Some(code);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_input() {
        assert!(compress(&[]).is_empty());
        assert_eq!(decompress(&[]).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn single_byte() {
        let packed = compress(&[42]);
        assert_eq!(decompress(&packed).unwrap(), vec![42]);
    }

    #[test]
    fn kwkwk_case() {
        // "aaaa..." triggers the code == next_code path immediately.
        let data = vec![b'a'; 100];
        let packed = compress(&data);
        assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn compresses_repetitive_code() {
        // Something shaped like RISC code: repeating 4-byte patterns.
        let mut data = Vec::new();
        for i in 0..4096u32 {
            data.extend_from_slice(&(0x2402_0000u32 | (i % 37)).to_le_bytes());
        }
        let packed = compress(&data);
        assert!(
            packed.len() < data.len() / 2,
            "expected >50% compression, got {}/{}",
            packed.len(),
            data.len()
        );
        assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn survives_dictionary_reset() {
        // Enough distinct material to fill the 16-bit dictionary.
        let mut data = Vec::with_capacity(1 << 20);
        let mut x = 0x1234_5678u32;
        for _ in 0..(1 << 19) {
            x = x.wrapping_mul(1_103_515_245).wrapping_add(12_345);
            data.push((x >> 16) as u8);
        }
        let packed = compress(&data);
        assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn corrupt_stream_is_detected() {
        // A stream that immediately references an undefined entry.
        let mut w = ccrp_bitstream::BitWriter::new();
        w.write_bits(300, 9);
        let err = decompress(&w.into_bytes()).unwrap_err();
        assert!(matches!(err, CompressError::BadLzwCode { .. }));
    }

    proptest! {
        #[test]
        fn roundtrip_random(data in proptest::collection::vec(any::<u8>(), 0..5000)) {
            let packed = compress(&data);
            prop_assert_eq!(decompress(&packed).unwrap(), data);
        }

        #[test]
        fn roundtrip_low_entropy(data in proptest::collection::vec(0u8..4, 0..5000)) {
            let packed = compress(&data);
            prop_assert_eq!(decompress(&packed).unwrap(), data);
        }
    }
}
