use std::error::Error;
use std::fmt;

use ccrp_bitstream::ReadBitsError;

/// Errors from code construction and decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CompressError {
    /// A length table that violates the Kraft inequality (over-full code)
    /// or leaves the code incomplete in a way the decoder cannot handle.
    InvalidCodeLengths {
        /// Kraft sum numerator scaled by 2^max_len (== 2^max_len for a
        /// complete code).
        kraft: u64,
        /// The maximum code length in the table.
        max_len: u8,
    },
    /// An empty histogram — no symbols to code.
    EmptyHistogram,
    /// A code length exceeding the supported maximum of 32 bits.
    LengthTooLong {
        /// The offending length.
        length: u8,
    },
    /// The decoder hit a bit pattern with no assigned symbol.
    BadSymbol {
        /// Bit offset at which decoding failed.
        at_bit: u64,
    },
    /// The compressed stream ended mid-symbol.
    Truncated(ReadBitsError),
    /// An LZW code outside the dictionary.
    BadLzwCode {
        /// The offending code.
        code: u32,
    },
    /// A codec-parameter section whose size does not match what the
    /// codec id requires.
    BadCodecParams {
        /// The offending parameter-section size in bytes.
        length: usize,
    },
    /// A stored block size the LAT cannot represent: bypassed lines must
    /// be exactly 32 bytes, compressed ones 1..32.
    BadStoredLength {
        /// The offending stored size in bytes.
        length: usize,
        /// Whether the block claimed to be bypassed (uncompressed).
        bypass: bool,
    },
}

impl fmt::Display for CompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompressError::InvalidCodeLengths { kraft, max_len } => write!(
                f,
                "code lengths violate Kraft inequality (sum {kraft} for max length {max_len})"
            ),
            CompressError::EmptyHistogram => {
                write!(f, "cannot build a code from an empty histogram")
            }
            CompressError::LengthTooLong { length } => {
                write!(f, "code length {length} exceeds supported maximum")
            }
            CompressError::BadSymbol { at_bit } => {
                write!(f, "no symbol matches the bits at offset {at_bit}")
            }
            CompressError::Truncated(e) => write!(f, "compressed stream truncated: {e}"),
            CompressError::BadLzwCode { code } => write!(f, "LZW code {code} not in dictionary"),
            CompressError::BadCodecParams { length } => {
                write!(
                    f,
                    "codec parameter section of {length} bytes has the wrong size"
                )
            }
            CompressError::BadStoredLength { length, bypass } => write!(
                f,
                "stored {} block of {length} bytes is unrepresentable",
                if *bypass { "bypassed" } else { "compressed" }
            ),
        }
    }
}

impl Error for CompressError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CompressError::Truncated(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ReadBitsError> for CompressError {
    fn from(e: ReadBitsError) -> Self {
        CompressError::Truncated(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = CompressError::BadLzwCode { code: 70000 };
        assert!(e.to_string().contains("70000"));
    }
}
