//! Pluggable per-line codecs behind the [`LineCodec`] trait.
//!
//! The paper hardwires one decoder — the preselected byte-Huffman code
//! of §2.2 — but §5 proposes "more sophisticated encoding techniques in
//! addition to the block based Huffman coding". This module makes the
//! line codec a first-class axis: anything that can expand one 32-byte
//! cache line from its stored bytes, and that can state its hardware
//! cost (decoder table bits, sustainable expansion rate), can sit
//! behind the refill engine.
//!
//! Three implementations ship:
//!
//! * [`ByteCode`] — the paper's preselected bounded byte-Huffman code
//!   (the default; containers produced before codecs existed decode as
//!   this one). Its lookup-table fast path is untouched.
//! * [`PositionalCode`] — four byte-Huffman sub-codes selected by
//!   `offset mod 4`, exploiting MIPS field structure (§5 extension).
//! * [`LzwLineCodec`] — per-line bounded LZW derived from the
//!   `compress(1)`-style coder in [`crate::lzw`]. Each line is coded
//!   with a fresh dictionary, so any line can still be expanded
//!   independently — but the dictionary never warms up, which is
//!   exactly the paper's argument for why file-based LZW loses to
//!   per-block Huffman on random line access.
//!
//! Every codec also models its decoder hardware: how many bits of table
//! storage the decoder needs and how many output bytes per cycle it can
//! sustain. The refill engine charges the modeled expansion rate, so a
//! serial decoder (LZW's dictionary chase) pays higher refill latency
//! than the parallel Huffman tables — the ratio-vs-latency frontier the
//! codec sweep reports.

use std::fmt;
use std::sync::Arc;

use ccrp_bitstream::{BitReader, BitWriter};

use crate::block::LINE_SIZE;
use crate::code::ByteCode;
use crate::error::CompressError;
use crate::positional::{PositionalCode, POSITIONS};

/// Dictionary codes below this are literal bytes (shared with
/// [`crate::lzw`]'s stream format).
const FIRST_FREE: u32 = 257;
/// The `compress(1)` CLEAR code. A per-line stream never emits it (the
/// dictionary cannot fill within one line), so the decoder rejects it.
const CLEAR: u32 = 256;
/// Per-line streams never outgrow 9-bit codes: a 32-byte line creates at
/// most 31 dictionary entries, so the largest code is `257 + 30 < 512`.
const LINE_WIDTH: u32 = 9;

/// Identifies a line codec on the wire — stored in container header
/// byte 7, which every pre-codec container wrote as zero. That makes
/// zero the byte-Huffman default and keeps old images loadable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum CodecId {
    /// The paper's preselected bounded byte-Huffman code (the default).
    ByteHuffman = 0,
    /// Positional Huffman: four sub-codes selected by `offset mod 4`.
    Positional = 1,
    /// Per-line bounded LZW with a fresh dictionary per line.
    Lzw = 2,
}

impl CodecId {
    /// All codec identifiers, in wire order.
    pub const ALL: [CodecId; 3] = [CodecId::ByteHuffman, CodecId::Positional, CodecId::Lzw];

    /// The wire byte (container header offset 7).
    pub fn byte(self) -> u8 {
        self as u8
    }

    /// Parses a wire byte (`None` for unassigned values).
    pub fn from_byte(byte: u8) -> Option<CodecId> {
        match byte {
            0 => Some(CodecId::ByteHuffman),
            1 => Some(CodecId::Positional),
            2 => Some(CodecId::Lzw),
            _ => None,
        }
    }

    /// Stable report/CLI name.
    pub fn name(self) -> &'static str {
        match self {
            CodecId::ByteHuffman => "byte-huffman",
            CodecId::Positional => "positional",
            CodecId::Lzw => "lzw",
        }
    }

    /// Parses a report/CLI name.
    pub fn from_name(name: &str) -> Option<CodecId> {
        CodecId::ALL.into_iter().find(|id| id.name() == name)
    }

    /// Size in bytes of the codec-parameter section a container with
    /// this codec carries between the fixed header and the blocks:
    /// positional codes need three more 256-entry length tables beyond
    /// the one in the header's code-table slot; the other codecs need
    /// nothing extra.
    pub fn params_len(self) -> usize {
        match self {
            CodecId::ByteHuffman | CodecId::Lzw => 0,
            CodecId::Positional => (POSITIONS - 1) * 256,
        }
    }
}

impl fmt::Display for CodecId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A codec's decoder-hardware cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodecCost {
    /// Bits of decoder table/dictionary storage the hardware holds.
    pub table_bits: u64,
    /// The highest expansion rate (output bytes per cycle) the decoder
    /// can sustain regardless of provisioning; `None` when throughput
    /// scales with the configured decode rate (parallel table lookups).
    pub max_bytes_per_cycle: Option<u32>,
}

impl CodecCost {
    /// Clamps a configured decode rate to what this decoder sustains.
    pub fn effective_rate(&self, configured_bytes_per_cycle: u32) -> u32 {
        match self.max_bytes_per_cycle {
            Some(cap) => configured_bytes_per_cycle.min(cap).max(1),
            None => configured_bytes_per_cycle,
        }
    }
}

/// One pluggable line codec: compresses and expands single 32-byte
/// cache lines and models its decoder hardware.
///
/// The block layer ([`crate::block`]) handles the bypass special case —
/// a codec only ever sees lines it actually compressed. Implementations
/// must be deterministic: the same line must encode to the same bytes
/// on every call (the container round-trip and the jobs-independence
/// guarantees depend on it).
pub trait LineCodec: fmt::Debug + Send + Sync {
    /// This codec's wire identifier.
    fn id(&self) -> CodecId;

    /// Exact encoded size of `line` in bits (the compress-or-bypass
    /// decision input).
    fn encoded_bits(&self, line: &[u8]) -> u64;

    /// Appends the encoding of `line` to `writer`.
    fn encode_into(&self, line: &[u8], writer: &mut BitWriter);

    /// Expands `stored` into the caller-owned 32-byte buffer `out`.
    ///
    /// # Errors
    ///
    /// A [`CompressError`] on corrupt input; `out` then holds whatever
    /// was expanded before the failure.
    fn decode_into(&self, stored: &[u8], out: &mut [u8; LINE_SIZE]) -> Result<(), CompressError>;

    /// The decoder timing profile for `line`: entry `i` is the total
    /// number of compressed bits the decoder must have received before
    /// output byte `i` is available. The refill engine maps these bit
    /// positions onto memory-word arrival times. Only the first
    /// `line.len()` entries are written; the caller-owned array keeps
    /// this allocation-free on the refill hot path.
    fn bit_profile(&self, line: &[u8], cumulative_bits: &mut [u64; LINE_SIZE]);

    /// The decoder-hardware cost model.
    fn cost(&self) -> CodecCost;

    /// The 256-byte code-table section of the container header. Huffman
    /// codecs store canonical code lengths here; codecs without a byte
    /// table store zeros.
    fn header_table(&self) -> [u8; 256];

    /// Codec parameters serialized after the fixed header (must be
    /// exactly [`CodecId::params_len`] bytes for [`Self::id`]).
    fn extra_params(&self) -> Vec<u8>;

    /// Decoder table storage in bytes, as charged by the size
    /// accounting ([`CodecCost::table_bits`] rounded up).
    fn table_storage_bytes(&self) -> usize {
        (self.cost().table_bits as usize).div_ceil(8)
    }
}

impl LineCodec for ByteCode {
    fn id(&self) -> CodecId {
        CodecId::ByteHuffman
    }

    fn encoded_bits(&self, line: &[u8]) -> u64 {
        ByteCode::encoded_bits(self, line)
    }

    fn encode_into(&self, line: &[u8], writer: &mut BitWriter) {
        ByteCode::encode_into(self, line, writer);
    }

    fn decode_into(&self, stored: &[u8], out: &mut [u8; LINE_SIZE]) -> Result<(), CompressError> {
        ByteCode::decode_into(self, &mut BitReader::new(stored), out)
    }

    fn bit_profile(&self, line: &[u8], cumulative_bits: &mut [u64; LINE_SIZE]) {
        let mut bits = 0u64;
        for (slot, &byte) in cumulative_bits.iter_mut().zip(line) {
            bits += u64::from(self.length_of(byte));
            *slot = bits;
        }
    }

    fn cost(&self) -> CodecCost {
        CodecCost {
            table_bits: u64::from(ByteCode::table_storage_bytes(self)) * 8,
            // The paper's decoder reads the canonical tables in
            // parallel; throughput is whatever the provisioned datapath
            // width gives (§3's 2-bytes-per-cycle default).
            max_bytes_per_cycle: None,
        }
    }

    fn header_table(&self) -> [u8; 256] {
        *self.lengths()
    }

    fn extra_params(&self) -> Vec<u8> {
        Vec::new()
    }
}

impl LineCodec for PositionalCode {
    fn id(&self) -> CodecId {
        CodecId::Positional
    }

    fn encoded_bits(&self, line: &[u8]) -> u64 {
        PositionalCode::encoded_bits(self, line)
    }

    fn encode_into(&self, line: &[u8], writer: &mut BitWriter) {
        PositionalCode::encode_into(self, line, writer);
    }

    fn decode_into(&self, stored: &[u8], out: &mut [u8; LINE_SIZE]) -> Result<(), CompressError> {
        PositionalCode::decode_into(self, &mut BitReader::new(stored), out)
    }

    fn bit_profile(&self, line: &[u8], cumulative_bits: &mut [u64; LINE_SIZE]) {
        let mut bits = 0u64;
        for (i, (slot, &byte)) in cumulative_bits.iter_mut().zip(line).enumerate() {
            bits += u64::from(self.length_of(byte, i));
            *slot = bits;
        }
    }

    fn cost(&self) -> CodecCost {
        let table_bits: u64 = (0..POSITIONS)
            .map(|p| u64::from(ByteCode::table_storage_bytes(self.position(p))) * 8)
            .sum();
        CodecCost {
            table_bits,
            // A fixed four-way mux in front of the same parallel table
            // hardware: throughput still scales with provisioning.
            max_bytes_per_cycle: None,
        }
    }

    fn header_table(&self) -> [u8; 256] {
        *self.position(0).lengths()
    }

    fn extra_params(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity((POSITIONS - 1) * 256);
        for p in 1..POSITIONS {
            out.extend_from_slice(self.position(p).lengths());
        }
        out
    }
}

/// Per-line bounded LZW: the `compress(1)`-style coder of [`crate::lzw`]
/// restarted with an empty dictionary on every 32-byte line, so the
/// refill engine can still expand any line independently. Codes are a
/// fixed 9 bits (the dictionary cannot outgrow them within one line)
/// and the CLEAR code is never emitted.
///
/// The codec is parameter-free: no tables travel in the container, and
/// two instances are interchangeable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LzwLineCodec;

impl LzwLineCodec {
    /// A per-line LZW codec (stateless).
    pub fn new() -> LzwLineCodec {
        LzwLineCodec
    }
}

/// Runs the LZW encoder over `line`, returning each emitted code with
/// the number of input bytes it covers — the shared core of
/// [`LzwLineCodec`]'s size, stream, and timing views.
fn lzw_line_codes(line: &[u8]) -> Vec<(u32, usize)> {
    // The dictionary is tiny (at most 31 entries), so a linear scan
    // beats hashing and keeps this allocation-light.
    let mut dict: Vec<(u32, u8)> = Vec::new();
    let mut out = Vec::new();
    let mut current: Option<(u32, usize)> = None;
    for &byte in line {
        let Some((code, run)) = current else {
            current = Some((u32::from(byte), 1));
            continue;
        };
        if let Some(index) = dict.iter().position(|&(p, b)| p == code && b == byte) {
            current = Some((FIRST_FREE + index as u32, run + 1));
        } else {
            out.push((code, run));
            dict.push((code, byte));
            current = Some((u32::from(byte), 1));
        }
    }
    if let Some(entry) = current {
        out.push(entry);
    }
    out
}

/// Walks one dictionary chain into `out[*filled..]`, returning the
/// phrase's first byte (the byte the KwKwK rule appends).
fn lzw_expand_into(
    dict: &[(u32, u8)],
    code: u32,
    out: &mut [u8; LINE_SIZE],
    filled: &mut usize,
) -> Result<u8, CompressError> {
    let mut phrase = [0u8; LINE_SIZE];
    let mut len = 0usize;
    let mut cursor = code;
    loop {
        if len >= LINE_SIZE {
            // A phrase longer than a line cannot come from a valid
            // per-line stream.
            return Err(CompressError::BadLzwCode { code });
        }
        if cursor < 256 {
            phrase[len] = cursor as u8;
            len += 1;
            break;
        }
        let index = (cursor - FIRST_FREE) as usize;
        let &(prefix, byte) = dict
            .get(index)
            .ok_or(CompressError::BadLzwCode { code: cursor })?;
        phrase[len] = byte;
        len += 1;
        cursor = prefix;
    }
    phrase[..len].reverse();
    if *filled + len > out.len() {
        // Expanding past the line boundary means the stream is corrupt.
        return Err(CompressError::BadLzwCode { code });
    }
    out[*filled..*filled + len].copy_from_slice(&phrase[..len]);
    *filled += len;
    Ok(phrase[0])
}

impl LineCodec for LzwLineCodec {
    fn id(&self) -> CodecId {
        CodecId::Lzw
    }

    fn encoded_bits(&self, line: &[u8]) -> u64 {
        lzw_line_codes(line).len() as u64 * u64::from(LINE_WIDTH)
    }

    fn encode_into(&self, line: &[u8], writer: &mut BitWriter) {
        for (code, _) in lzw_line_codes(line) {
            writer.write_bits(code, LINE_WIDTH);
        }
    }

    fn decode_into(&self, stored: &[u8], out: &mut [u8; LINE_SIZE]) -> Result<(), CompressError> {
        let mut reader = BitReader::new(stored);
        let mut dict: Vec<(u32, u8)> = Vec::new();
        let mut filled = 0usize;
        let mut prev: Option<u32> = None;
        while filled < out.len() {
            let code = reader.read_bits(LINE_WIDTH)?;
            if code == CLEAR {
                return Err(CompressError::BadLzwCode { code });
            }
            let next_code = FIRST_FREE + dict.len() as u32;
            match prev {
                None => {
                    // The first code of a fresh dictionary must be a
                    // literal.
                    if code >= 256 {
                        return Err(CompressError::BadLzwCode { code });
                    }
                    out[filled] = code as u8;
                    filled += 1;
                }
                Some(prev_code) => {
                    if code < next_code {
                        let first = lzw_expand_into(&dict, code, out, &mut filled)?;
                        dict.push((prev_code, first));
                    } else if code == next_code {
                        // KwKwK: the new string is the previous one
                        // followed by its own first byte.
                        let first = lzw_expand_into(&dict, prev_code, out, &mut filled)?;
                        if filled >= out.len() {
                            return Err(CompressError::BadLzwCode { code });
                        }
                        out[filled] = first;
                        filled += 1;
                        dict.push((prev_code, first));
                    } else {
                        return Err(CompressError::BadLzwCode { code });
                    }
                }
            }
            prev = Some(code);
        }
        Ok(())
    }

    fn bit_profile(&self, line: &[u8], cumulative_bits: &mut [u64; LINE_SIZE]) {
        let mut bits = 0u64;
        let mut index = 0usize;
        for (_, run) in lzw_line_codes(line) {
            // Every byte a code covers becomes available only once the
            // whole code has arrived.
            bits += u64::from(LINE_WIDTH);
            for slot in &mut cumulative_bits[index..index + run] {
                *slot = bits;
            }
            index += run;
        }
    }

    fn cost(&self) -> CodecCost {
        CodecCost {
            // Dictionary RAM for the 31 possible per-line entries:
            // a 9-bit prefix code plus an 8-bit suffix byte each.
            table_bits: 31 * 17,
            // The dictionary chase is serial — one output byte per
            // cycle, no matter how wide the datapath is provisioned.
            max_bytes_per_cycle: Some(1),
        }
    }

    fn header_table(&self) -> [u8; 256] {
        [0u8; 256]
    }

    fn extra_params(&self) -> Vec<u8> {
        Vec::new()
    }
}

/// Reconstructs a codec from its container serialization: the codec id
/// (header byte 7), the 256-byte code-table section, and the
/// codec-parameter section.
///
/// # Errors
///
/// [`CompressError::BadCodecParams`] when `extra_params` is not exactly
/// [`CodecId::params_len`] bytes, and any code-construction error for
/// corrupt length tables.
pub fn codec_from_container(
    id: CodecId,
    header_table: &[u8; 256],
    extra_params: &[u8],
) -> Result<Arc<dyn LineCodec>, CompressError> {
    if extra_params.len() != id.params_len() {
        return Err(CompressError::BadCodecParams {
            length: extra_params.len(),
        });
    }
    match id {
        CodecId::ByteHuffman => Ok(Arc::new(ByteCode::from_lengths(*header_table)?)),
        CodecId::Positional => {
            let mut tables = [[0u8; 256]; POSITIONS];
            tables[0] = *header_table;
            for p in 1..POSITIONS {
                tables[p].copy_from_slice(&extra_params[(p - 1) * 256..p * 256]);
            }
            let codes = [
                ByteCode::from_lengths(tables[0])?,
                ByteCode::from_lengths(tables[1])?,
                ByteCode::from_lengths(tables[2])?,
                ByteCode::from_lengths(tables[3])?,
            ];
            Ok(Arc::new(PositionalCode::from_codes(codes)))
        }
        CodecId::Lzw => Ok(Arc::new(LzwLineCodec)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::ByteHistogram;
    use crate::positional::PositionalHistogram;
    use proptest::prelude::*;

    fn sample_line(seed: u32) -> [u8; LINE_SIZE] {
        let mut x = seed | 1;
        let mut line = [0u8; LINE_SIZE];
        for slot in &mut line {
            x = x.wrapping_mul(48271);
            *slot = (x >> 16) as u8;
        }
        line
    }

    fn codecs() -> Vec<Arc<dyn LineCodec>> {
        let text: Vec<u8> = (0..2048u32)
            .flat_map(|w| (w | 0x2400_0000).to_le_bytes())
            .collect();
        vec![
            Arc::new(ByteCode::preselected(&ByteHistogram::of(&text)).unwrap()),
            Arc::new(PositionalCode::preselected(&PositionalHistogram::of(&text)).unwrap()),
            Arc::new(LzwLineCodec),
        ]
    }

    #[test]
    fn ids_roundtrip_through_wire_bytes_and_names() {
        for id in CodecId::ALL {
            assert_eq!(CodecId::from_byte(id.byte()), Some(id));
            assert_eq!(CodecId::from_name(id.name()), Some(id));
        }
        assert_eq!(CodecId::from_byte(9), None);
        assert_eq!(CodecId::from_name("zstd"), None);
    }

    #[test]
    fn every_codec_roundtrips_lines() {
        for codec in codecs() {
            for seed in 0..32 {
                let line = sample_line(seed);
                let mut w = BitWriter::new();
                codec.encode_into(&line, &mut w);
                assert_eq!(w.bit_len(), codec.encoded_bits(&line), "{:?}", codec.id());
                let stored = w.into_bytes();
                let mut out = [0u8; LINE_SIZE];
                codec.decode_into(&stored, &mut out).unwrap();
                assert_eq!(out, line, "{:?}", codec.id());
            }
        }
    }

    #[test]
    fn bit_profiles_are_monotone_and_end_at_encoded_bits() {
        for codec in codecs() {
            let line = sample_line(77);
            let mut profile = [0u64; LINE_SIZE];
            codec.bit_profile(&line, &mut profile);
            assert!(profile.windows(2).all(|w| w[0] <= w[1]));
            assert_eq!(*profile.last().unwrap(), codec.encoded_bits(&line));
        }
    }

    #[test]
    fn container_serialization_roundtrips_every_codec() {
        for codec in codecs() {
            let table = codec.header_table();
            let params = codec.extra_params();
            assert_eq!(params.len(), codec.id().params_len());
            let back = codec_from_container(codec.id(), &table, &params).unwrap();
            assert_eq!(back.id(), codec.id());
            let line = sample_line(3);
            let mut w = BitWriter::new();
            codec.encode_into(&line, &mut w);
            let mut out = [0u8; LINE_SIZE];
            back.decode_into(&w.into_bytes(), &mut out).unwrap();
            assert_eq!(out, line);
        }
    }

    #[test]
    fn bad_params_length_is_rejected() {
        let table = [0u8; 256];
        let err = codec_from_container(CodecId::Positional, &table, &[]).unwrap_err();
        assert!(matches!(err, CompressError::BadCodecParams { length: 0 }));
    }

    #[test]
    fn lzw_rejects_clear_and_out_of_range_codes() {
        let mut w = BitWriter::new();
        w.write_bits(CLEAR, LINE_WIDTH);
        let mut out = [0u8; LINE_SIZE];
        assert!(matches!(
            LzwLineCodec.decode_into(&w.into_bytes(), &mut out),
            Err(CompressError::BadLzwCode { .. })
        ));

        let mut w = BitWriter::new();
        w.write_bits(400, LINE_WIDTH); // non-literal first code
        assert!(matches!(
            LzwLineCodec.decode_into(&w.into_bytes(), &mut out),
            Err(CompressError::BadLzwCode { .. })
        ));
    }

    #[test]
    fn lzw_truncated_stream_is_rejected() {
        let line = sample_line(5);
        let mut w = BitWriter::new();
        LzwLineCodec.encode_into(&line, &mut w);
        let stored = w.into_bytes();
        let mut out = [0u8; LINE_SIZE];
        assert!(LzwLineCodec
            .decode_into(&stored[..stored.len() / 2], &mut out)
            .is_err());
    }

    #[test]
    fn lzw_kwkwk_line_roundtrips() {
        let line = [b'a'; LINE_SIZE];
        let mut w = BitWriter::new();
        LzwLineCodec.encode_into(&line, &mut w);
        let mut out = [0u8; LINE_SIZE];
        LzwLineCodec.decode_into(&w.into_bytes(), &mut out).unwrap();
        assert_eq!(out, line);
    }

    #[test]
    fn lzw_cost_is_serial() {
        let cost = LzwLineCodec.cost();
        assert_eq!(cost.max_bytes_per_cycle, Some(1));
        assert_eq!(cost.effective_rate(4), 1);
        assert_eq!(cost.effective_rate(1), 1);
        let huffman = codecs().remove(0).cost();
        assert_eq!(huffman.effective_rate(4), 4);
    }

    proptest! {
        #[test]
        fn lzw_roundtrips_arbitrary_lines(line in proptest::collection::vec(any::<u8>(), LINE_SIZE)) {
            let mut fixed = [0u8; LINE_SIZE];
            fixed.copy_from_slice(&line);
            let mut w = BitWriter::new();
            LzwLineCodec.encode_into(&fixed, &mut w);
            let mut out = [0u8; LINE_SIZE];
            LzwLineCodec.decode_into(&w.into_bytes(), &mut out).unwrap();
            prop_assert_eq!(out, fixed);
        }

        #[test]
        fn lzw_matches_whole_stream_coder_on_sizes(line in proptest::collection::vec(0u8..8, LINE_SIZE)) {
            // The per-line coder is the lzw.rs coder with a fresh
            // dictionary and fixed 9-bit codes; on one line the
            // whole-stream coder also stays at width 9, so the sizes
            // must agree.
            let mut fixed = [0u8; LINE_SIZE];
            fixed.copy_from_slice(&line);
            let whole = crate::lzw::compress(&fixed);
            prop_assert_eq!(
                LzwLineCodec.encoded_bits(&fixed).div_ceil(8),
                whole.len() as u64
            );
        }
    }
}
