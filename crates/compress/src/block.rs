//! Cache-line block compression (Figure 1 of the paper).
//!
//! Each 32-byte instruction block is compressed independently so the
//! refill engine can expand any line on demand. Blocks that would grow
//! are stored raw ("the original block encoding"), guaranteeing no block
//! exceeds its original size — the paper's two-code special case that
//! "only requires a bypass capability in the decoder".

use ccrp_bitstream::BitWriter;

use crate::code::ByteCode;
use crate::codec::LineCodec;
use crate::error::CompressError;

/// The paper's instruction-cache line size in bytes.
pub const LINE_SIZE: usize = 32;

/// Alignment of compressed blocks in instruction memory (Figure 1):
/// "Byte alignment provides slightly better compression while word
/// alignment simplifies accessing hardware."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BlockAlignment {
    /// Blocks start on any byte boundary.
    Byte,
    /// Blocks start on 4-byte boundaries (the simulated hardware default).
    #[default]
    Word,
}

impl BlockAlignment {
    /// Rounds a byte size up to this alignment.
    pub fn round_up(self, bytes: usize) -> usize {
        match self {
            BlockAlignment::Byte => bytes,
            BlockAlignment::Word => (bytes + 3) & !3,
        }
    }
}

/// One compressed cache line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressedLine {
    data: Vec<u8>,
    bypass: bool,
}

impl CompressedLine {
    /// Reconstructs a stored line from container bytes (used when
    /// loading a serialized compressed image).
    ///
    /// # Panics
    ///
    /// Panics on stored sizes the LAT cannot represent: a bypassed line
    /// must be exactly [`LINE_SIZE`] bytes, a compressed one 1..32. Use
    /// [`from_stored_checked`](Self::from_stored_checked) when the sizes
    /// come from untrusted (possibly corrupt) container bytes.
    pub fn from_stored(data: Vec<u8>, bypass: bool) -> Self {
        match Self::from_stored_checked(data, bypass) {
            Ok(line) => line,
            Err(e) => panic!("{e}"), // panic-ok: documented constructor contract
        }
    }

    /// Non-panicking [`from_stored`](Self::from_stored): the loader's
    /// entry point for sizes read from untrusted container bytes.
    ///
    /// # Errors
    ///
    /// [`CompressError::BadStoredLength`] when the stored size is not
    /// representable (bypassed lines must be exactly [`LINE_SIZE`]
    /// bytes, compressed ones 1..32).
    pub fn from_stored_checked(data: Vec<u8>, bypass: bool) -> Result<Self, CompressError> {
        let valid = if bypass {
            data.len() == LINE_SIZE
        } else {
            (1..LINE_SIZE).contains(&data.len())
        };
        if !valid {
            return Err(CompressError::BadStoredLength {
                length: data.len(),
                bypass,
            });
        }
        Ok(Self { data, bypass })
    }

    /// The stored bytes (compressed stream, or the raw line when
    /// bypassed), padded to the chosen alignment.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Whether the line is stored uncompressed.
    pub fn is_bypass(&self) -> bool {
        self.bypass
    }

    /// Stored size in bytes (after alignment padding).
    pub fn stored_len(&self) -> usize {
        self.data.len()
    }
}

/// Compresses one cache line with `code`, bypassing if compression would
/// not shrink it below [`LINE_SIZE`] after `alignment` padding.
///
/// # Panics
///
/// Panics if `line` is not exactly [`LINE_SIZE`] bytes.
pub fn compress_line(code: &ByteCode, line: &[u8], alignment: BlockAlignment) -> CompressedLine {
    compress_line_with(code, line, alignment)
}

/// [`compress_line`] for any [`LineCodec`].
///
/// # Panics
///
/// Panics if `line` is not exactly [`LINE_SIZE`] bytes.
pub fn compress_line_with(
    codec: &dyn LineCodec,
    line: &[u8],
    alignment: BlockAlignment,
) -> CompressedLine {
    assert_eq!(line.len(), LINE_SIZE, "cache lines are {LINE_SIZE} bytes"); // panic-ok: documented contract
    let bits = codec.encoded_bits(line);
    let bytes = alignment.round_up(bits.div_ceil(8) as usize);
    if bytes >= LINE_SIZE {
        return CompressedLine {
            data: line.to_vec(),
            bypass: true,
        };
    }
    let mut w = BitWriter::with_capacity(bytes);
    codec.encode_into(line, &mut w);
    let mut data = w.into_bytes();
    data.resize(bytes, 0);
    CompressedLine {
        data,
        bypass: false,
    }
}

/// Decompresses a line produced by [`compress_line`] directly into
/// `out` — the allocation-free expansion the refill hot path uses.
/// Bypassed lines are a straight copy of the stored bytes; the decoder
/// (and its lookup table) is never consulted for them.
///
/// # Errors
///
/// Propagates decode failures on corrupt data; `out` then holds the
/// bytes expanded before the failure.
pub fn decompress_line_into(
    code: &ByteCode,
    line: &CompressedLine,
    out: &mut [u8; LINE_SIZE],
) -> Result<(), CompressError> {
    decompress_line_into_with(code, line, out)
}

/// [`decompress_line_into`] for any [`LineCodec`].
///
/// # Errors
///
/// As for [`decompress_line_into`].
pub fn decompress_line_into_with(
    codec: &dyn LineCodec,
    line: &CompressedLine,
    out: &mut [u8; LINE_SIZE],
) -> Result<(), CompressError> {
    if line.bypass {
        out.copy_from_slice(&line.data[..LINE_SIZE]);
        return Ok(());
    }
    codec.decode_into(&line.data, out)
}

/// Decompresses a line produced by [`compress_line`] (a thin wrapper
/// over [`decompress_line_into`]).
///
/// # Errors
///
/// Propagates decode failures on corrupt data.
pub fn decompress_line(
    code: &ByteCode,
    line: &CompressedLine,
) -> Result<[u8; LINE_SIZE], CompressError> {
    let mut out = [0u8; LINE_SIZE];
    decompress_line_into(code, line, &mut out)?;
    Ok(out)
}

/// Compresses a whole text segment line by line. A final partial line is
/// zero padded to [`LINE_SIZE`] first (zero is the `nop` encoding on
/// MIPS, matching how linkers pad text sections).
pub fn compress_image(
    code: &ByteCode,
    text: &[u8],
    alignment: BlockAlignment,
) -> Vec<CompressedLine> {
    compress_image_with(code, text, alignment)
}

/// [`compress_image`] for any [`LineCodec`].
pub fn compress_image_with(
    codec: &dyn LineCodec,
    text: &[u8],
    alignment: BlockAlignment,
) -> Vec<CompressedLine> {
    let mut lines = Vec::with_capacity(text.len().div_ceil(LINE_SIZE));
    for chunk in text.chunks(LINE_SIZE) {
        if chunk.len() == LINE_SIZE {
            lines.push(compress_line_with(codec, chunk, alignment));
        } else {
            let mut padded = [0u8; LINE_SIZE];
            padded[..chunk.len()].copy_from_slice(chunk);
            lines.push(compress_line_with(codec, &padded, alignment));
        }
    }
    lines
}

/// Total stored bytes of a compressed image (the sum of aligned block
/// sizes), excluding the Line Address Table and code table.
pub fn compressed_size(lines: &[CompressedLine]) -> usize {
    lines.iter().map(CompressedLine::stored_len).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::ByteHistogram;
    use proptest::prelude::*;

    fn sample_code() -> ByteCode {
        // Trained on skewed data so common bytes compress well.
        let mut data = vec![0u8; 2000];
        data.extend(std::iter::repeat_n(0x24, 500));
        data.extend(std::iter::repeat_n(0x8F, 300));
        data.extend((0u16..256).map(|b| b as u8));
        ByteCode::preselected(&ByteHistogram::of(&data)).unwrap()
    }

    #[test]
    fn compressible_line_shrinks_and_roundtrips() {
        let code = sample_code();
        let line = [0u8; LINE_SIZE];
        let c = compress_line(&code, &line, BlockAlignment::Word);
        assert!(!c.is_bypass());
        assert!(c.stored_len() < LINE_SIZE);
        assert_eq!(c.stored_len() % 4, 0);
        assert_eq!(decompress_line(&code, &c).unwrap(), line);
    }

    #[test]
    fn incompressible_line_bypasses() {
        let code = sample_code();
        // Bytes chosen from the rare end of the histogram.
        let mut line = [0u8; LINE_SIZE];
        for (i, b) in line.iter_mut().enumerate() {
            *b = 128 + (i as u8 * 3);
        }
        let c = compress_line(&code, &line, BlockAlignment::Word);
        assert!(c.is_bypass());
        assert_eq!(c.stored_len(), LINE_SIZE);
        assert_eq!(decompress_line(&code, &c).unwrap(), line);
    }

    #[test]
    fn byte_alignment_never_larger_than_word() {
        let code = sample_code();
        let line = [0x24u8; LINE_SIZE];
        let b = compress_line(&code, &line, BlockAlignment::Byte);
        let w = compress_line(&code, &line, BlockAlignment::Word);
        assert!(b.stored_len() <= w.stored_len());
    }

    #[test]
    fn image_compression_covers_partial_tail() {
        let code = sample_code();
        let text = vec![0u8; 100]; // 3 lines + 4-byte tail
        let lines = compress_image(&code, &text, BlockAlignment::Word);
        assert_eq!(lines.len(), 4);
        for line in &lines {
            let back = decompress_line(&code, line).unwrap();
            assert_eq!(back, [0u8; LINE_SIZE]);
        }
        assert!(compressed_size(&lines) < 128);
    }

    #[test]
    #[should_panic(expected = "cache lines are 32 bytes")]
    fn wrong_line_size_panics() {
        compress_line(&sample_code(), &[0u8; 16], BlockAlignment::Word);
    }

    proptest! {
        #[test]
        fn any_line_roundtrips_and_never_grows(line in proptest::collection::vec(any::<u8>(), LINE_SIZE)) {
            let code = sample_code();
            for alignment in [BlockAlignment::Byte, BlockAlignment::Word] {
                let c = compress_line(&code, &line, alignment);
                prop_assert!(c.stored_len() <= LINE_SIZE);
                let back = decompress_line(&code, &c).unwrap();
                prop_assert_eq!(&back[..], &line[..]);
            }
        }
    }
}
