use ccrp_bitstream::{BitReader, BitWriter};

use crate::bounded::{bounded_lengths, PAPER_MAX_LEN};
use crate::error::CompressError;
use crate::histogram::ByteHistogram;
use crate::huffman::traditional_lengths;
use crate::table::{DecodeTable, LOOKUP_BITS};

/// A canonical prefix code over bytes.
///
/// Construction assigns codewords in canonical order (shorter first,
/// ties by symbol value), so a code is fully described by its length
/// table — which is what the paper stores alongside per-program codes and
/// what a hardwired decoder implements for the preselected code.
///
/// # Examples
///
/// ```
/// use ccrp_compress::{ByteCode, ByteHistogram};
///
/// let code = ByteCode::traditional(&ByteHistogram::of(b"mississippi"))?;
/// let compressed = code.encode(b"mississippi");
/// let back = code.decode(&compressed, 11)?;
/// assert_eq!(back, b"mississippi");
/// # Ok::<(), ccrp_compress::CompressError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ByteCode {
    lengths: [u8; 256],
    codes: [u32; 256],
    max_len: u8,
    /// Decode acceleration: for each length, the first canonical code
    /// value, the first index into `ordered`, and the symbol count.
    first_code: [u32; 33],
    first_index: [u16; 33],
    counts: [u16; 33],
    ordered: Vec<u8>,
    /// Fast-path LUT (the software model of the paper's hardwired
    /// decoder); built once here so every decode shares it.
    table: DecodeTable,
}

impl ByteCode {
    /// Builds the canonical code for a length table.
    ///
    /// # Errors
    ///
    /// [`CompressError::InvalidCodeLengths`] if the lengths over-fill the
    /// code space (Kraft sum above 1), [`CompressError::LengthTooLong`]
    /// for lengths above 32, and [`CompressError::EmptyHistogram`] if all
    /// lengths are zero.
    pub fn from_lengths(lengths: [u8; 256]) -> Result<Self, CompressError> {
        let max_len = lengths.iter().copied().max().unwrap_or(0);
        if max_len == 0 {
            return Err(CompressError::EmptyHistogram);
        }
        if max_len > 32 {
            return Err(CompressError::LengthTooLong { length: max_len });
        }
        // Kraft check, scaled by 2^max_len to stay in integers.
        let kraft: u64 = lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 1u64 << (max_len - l))
            .sum();
        if kraft > 1u64 << max_len {
            return Err(CompressError::InvalidCodeLengths { kraft, max_len });
        }

        let mut counts = [0u16; 33];
        for &l in lengths.iter().filter(|&&l| l > 0) {
            counts[l as usize] += 1;
        }
        let mut first_code = [0u32; 33];
        let mut first_index = [0u16; 33];
        let mut code = 0u32;
        let mut index = 0u16;
        #[allow(clippy::needless_range_loop)] // len is both value and index
        for len in 1..=max_len as usize {
            code <<= 1;
            first_code[len] = code;
            first_index[len] = index;
            code += u32::from(counts[len]);
            index += counts[len];
        }

        // Canonical assignment: symbols sorted by (length, value).
        let mut ordered = Vec::with_capacity(index as usize);
        let mut codes = [0u32; 256];
        let mut next = first_code;
        #[allow(clippy::needless_range_loop)] // len is both value and index
        for len in 1..=max_len as usize {
            for sym in 0u16..256 {
                if lengths[sym as usize] as usize == len {
                    codes[sym as usize] = next[len];
                    next[len] += 1;
                    ordered.push(sym as u8);
                }
            }
        }

        let table = DecodeTable::build(&lengths, &codes)?;
        Ok(Self {
            lengths,
            codes,
            max_len,
            first_code,
            first_index,
            counts,
            ordered,
            table,
        })
    }

    /// The paper's Traditional Huffman code for `histogram`.
    ///
    /// # Errors
    ///
    /// Propagates construction failures (empty histogram).
    pub fn traditional(histogram: &ByteHistogram) -> Result<Self, CompressError> {
        Self::from_lengths(traditional_lengths(histogram)?)
    }

    /// The paper's Bounded Huffman code (≤16-bit symbols) for `histogram`.
    ///
    /// # Errors
    ///
    /// Propagates construction failures.
    pub fn bounded(histogram: &ByteHistogram) -> Result<Self, CompressError> {
        Self::from_lengths(bounded_lengths(histogram, PAPER_MAX_LEN)?)
    }

    /// A *Preselected* Bounded Huffman code: bounded, built from a
    /// (typically multi-program) histogram smoothed so every byte value
    /// decodes — required because the code will be applied to programs
    /// outside its training corpus.
    ///
    /// # Errors
    ///
    /// Propagates construction failures.
    pub fn preselected(corpus_histogram: &ByteHistogram) -> Result<Self, CompressError> {
        Self::from_lengths(bounded_lengths(
            &corpus_histogram.smoothed(),
            PAPER_MAX_LEN,
        )?)
    }

    /// Code length in bits for `byte` (0 when the byte has no code).
    pub fn length_of(&self, byte: u8) -> u8 {
        self.lengths[byte as usize]
    }

    /// The longest codeword in the table.
    pub fn max_length(&self) -> u8 {
        self.max_len
    }

    /// The length table (canonical codes are reconstructible from it).
    pub fn lengths(&self) -> &[u8; 256] {
        &self.lengths
    }

    /// Whether every byte value has a codeword (required of preselected
    /// codes).
    pub fn is_complete_alphabet(&self) -> bool {
        self.lengths.iter().all(|&l| l > 0)
    }

    /// Bytes needed to store this code table alongside a program: 5 bits
    /// per symbol length for bounded codes (lengths 0..=16), 8 bits for
    /// codes that may exceed 16 bits. The preselected code is hardwired
    /// and costs nothing — callers simply skip this term.
    pub fn table_storage_bytes(&self) -> u32 {
        if self.max_len <= 16 {
            (256 * 5_u32).div_ceil(8)
        } else {
            256
        }
    }

    /// Exact compressed size of `data` in bits (without actually encoding).
    pub fn encoded_bits(&self, data: &[u8]) -> u64 {
        data.iter()
            .map(|&b| u64::from(self.lengths[b as usize]))
            .sum()
    }

    /// Appends the code for each byte of `data` to `writer`.
    ///
    /// # Panics
    ///
    /// Panics if `data` contains a byte with no codeword; callers encode
    /// only data drawn from the code's alphabet (guaranteed for
    /// per-program codes, and by completeness for preselected codes).
    pub fn encode_into(&self, data: &[u8], writer: &mut BitWriter) {
        for &b in data {
            let len = self.lengths[b as usize];
            // panic-ok: documented contract — encoders only see alphabet bytes.
            assert!(len > 0, "byte {b:#04x} has no codeword");
            writer.write_bits(self.codes[b as usize], u32::from(len));
        }
    }

    /// Encodes `data` into a fresh byte vector (zero-padded final byte).
    pub fn encode(&self, data: &[u8]) -> Vec<u8> {
        let mut w = BitWriter::with_capacity(data.len());
        self.encode_into(data, &mut w);
        w.into_bytes()
    }

    /// The fast-path lookup table (the software model of the paper's
    /// hardwired decoder).
    pub fn decode_table(&self) -> &DecodeTable {
        &self.table
    }

    /// Decodes one symbol per slot of `out` from `reader` — the
    /// allocation-free core every decode entry point routes through.
    ///
    /// # Errors
    ///
    /// [`CompressError::Truncated`] if the stream ends mid-symbol or
    /// [`CompressError::BadSymbol`] on a pattern with no symbol; `out`
    /// holds the symbols decoded before the failure.
    pub fn decode_into(
        &self,
        reader: &mut BitReader<'_>,
        out: &mut [u8],
    ) -> Result<(), CompressError> {
        for slot in out {
            *slot = self.decode_symbol(reader)?;
        }
        Ok(())
    }

    /// Decodes exactly `count` symbols from `reader` into a fresh
    /// vector (a thin wrapper over [`decode_into`](Self::decode_into)).
    ///
    /// # Errors
    ///
    /// As for [`decode_into`](Self::decode_into).
    pub fn decode_from(
        &self,
        reader: &mut BitReader<'_>,
        count: usize,
    ) -> Result<Vec<u8>, CompressError> {
        let mut out = vec![0u8; count];
        self.decode_into(reader, &mut out)?;
        Ok(out)
    }

    /// Decodes exactly `count` symbols from `bytes`.
    ///
    /// # Errors
    ///
    /// As for [`decode_into`](Self::decode_into).
    pub fn decode(&self, bytes: &[u8], count: usize) -> Result<Vec<u8>, CompressError> {
        self.decode_from(&mut BitReader::new(bytes), count)
    }

    /// Decodes a single symbol: peek a [`LOOKUP_BITS`] window, hit the
    /// LUT, and consume only the matched codeword's bits. Windows the
    /// table cannot resolve (codes longer than the window, unassigned
    /// patterns, or ends-of-stream whose match would need padding bits)
    /// fall back to [`decode_symbol_reference`](Self::decode_symbol_reference),
    /// which also keeps the error positions of the two paths identical.
    ///
    /// # Errors
    ///
    /// As for [`decode_into`](Self::decode_into).
    #[inline]
    pub fn decode_symbol(&self, reader: &mut BitReader<'_>) -> Result<u8, CompressError> {
        let window = reader.peek_bits(LOOKUP_BITS);
        if let Some((symbol, len)) = self.table.lookup(window) {
            // Only real bits may satisfy a match: a window padded past
            // the end of the stream falls through to the reference
            // walk, which reports the same truncation the bit-by-bit
            // decoder always has.
            if u64::from(len) <= reader.remaining() {
                reader.consume_bits(u32::from(len))?;
                return Ok(symbol);
            }
        }
        self.decode_symbol_reference(reader)
    }

    /// Decodes a single symbol by the canonical bit walk over the
    /// `first_code`/`first_index` tables — one bit per iteration, the
    /// direct software transcription of canonical-Huffman decoding.
    ///
    /// This is the reference [`decode_symbol`](Self::decode_symbol) is
    /// differentially tested against (identical symbols *and* identical
    /// errors at identical bit positions), its slow path for codewords
    /// longer than [`LOOKUP_BITS`], and the baseline the
    /// `decoder_bench` target measures the LUT against.
    ///
    /// # Errors
    ///
    /// As for [`decode_into`](Self::decode_into).
    pub fn decode_symbol_reference(&self, reader: &mut BitReader<'_>) -> Result<u8, CompressError> {
        let start = reader.bit_pos();
        let mut code = 0u32;
        for len in 1..=self.max_len as usize {
            code = (code << 1) | u32::from(reader.read_bit()?);
            let offset = code.wrapping_sub(self.first_code[len]);
            if offset < u32::from(self.counts[len]) {
                let index = self.first_index[len] as usize + offset as usize;
                return Ok(self.ordered[index]);
            }
        }
        Err(CompressError::BadSymbol { at_bit: start })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn canonical_order_is_monotone() {
        let code = ByteCode::traditional(&ByteHistogram::of(b"aaaabbbccd")).unwrap();
        // 'a' is most frequent -> shortest code.
        assert!(code.length_of(b'a') <= code.length_of(b'b'));
        assert!(code.length_of(b'b') <= code.length_of(b'd'));
    }

    #[test]
    fn rejects_overfull_lengths() {
        let mut lengths = [0u8; 256];
        lengths[0] = 1;
        lengths[1] = 1;
        lengths[2] = 1; // 3 codes of length 1 cannot exist
        assert!(matches!(
            ByteCode::from_lengths(lengths),
            Err(CompressError::InvalidCodeLengths { .. })
        ));
    }

    #[test]
    fn rejects_all_zero() {
        assert!(matches!(
            ByteCode::from_lengths([0u8; 256]),
            Err(CompressError::EmptyHistogram)
        ));
    }

    #[test]
    fn incomplete_code_decodes_assigned_patterns() {
        // lengths {a:1, b:2} leaves pattern 11 unassigned.
        let mut lengths = [0u8; 256];
        lengths[b'a' as usize] = 1;
        lengths[b'b' as usize] = 2;
        let code = ByteCode::from_lengths(lengths).unwrap();
        let enc = code.encode(b"ab");
        assert_eq!(code.decode(&enc, 2).unwrap(), b"ab");
        // 0b11... decodes to nothing.
        let err = code.decode(&[0b1100_0000], 1).unwrap_err();
        assert!(matches!(err, CompressError::BadSymbol { at_bit: 0 }));
    }

    #[test]
    fn truncated_stream_errors() {
        let code = ByteCode::traditional(&ByteHistogram::of(b"abcdefgh")).unwrap();
        let enc = code.encode(b"abcdefgh");
        let err = code.decode(&enc[..1], 8).unwrap_err();
        assert!(matches!(err, CompressError::Truncated(_)));
    }

    #[test]
    fn encoded_bits_matches_actual() {
        let data = b"some sample data with repetition repetition repetition";
        let code = ByteCode::bounded(&ByteHistogram::of(data)).unwrap();
        let bits = code.encoded_bits(data);
        let mut w = BitWriter::new();
        code.encode_into(data, &mut w);
        assert_eq!(w.bit_len(), bits);
    }

    #[test]
    fn preselected_covers_foreign_bytes() {
        let corpus = ByteHistogram::of(b"only lowercase text");
        let code = ByteCode::preselected(&corpus).unwrap();
        assert!(code.is_complete_alphabet());
        let foreign = [0u8, 255, 17, 128];
        let enc = code.encode(&foreign);
        assert_eq!(code.decode(&enc, 4).unwrap(), foreign);
    }

    #[test]
    fn table_storage_sizes() {
        let bounded = ByteCode::bounded(&ByteHistogram::of(b"abc")).unwrap();
        assert_eq!(bounded.table_storage_bytes(), 160);
    }

    proptest! {
        #[test]
        fn roundtrip_traditional(data in proptest::collection::vec(any::<u8>(), 1..2000)) {
            let code = ByteCode::traditional(&ByteHistogram::of(&data)).unwrap();
            let enc = code.encode(&data);
            prop_assert_eq!(code.decode(&enc, data.len()).unwrap(), data);
        }

        #[test]
        fn roundtrip_bounded(data in proptest::collection::vec(any::<u8>(), 1..2000)) {
            let code = ByteCode::bounded(&ByteHistogram::of(&data)).unwrap();
            prop_assert!(code.max_length() <= 16);
            let enc = code.encode(&data);
            prop_assert_eq!(code.decode(&enc, data.len()).unwrap(), data);
        }

        #[test]
        fn bounded_never_beats_traditional(data in proptest::collection::vec(any::<u8>(), 1..1000)) {
            let h = ByteHistogram::of(&data);
            let t = ByteCode::traditional(&h).unwrap();
            let b = ByteCode::bounded(&h).unwrap();
            prop_assert!(t.encoded_bits(&data) <= b.encoded_bits(&data));
        }

        #[test]
        fn entropy_lower_bounds_huffman(data in proptest::collection::vec(any::<u8>(), 1..1000)) {
            let h = ByteHistogram::of(&data);
            let code = ByteCode::traditional(&h).unwrap();
            let avg_bits = code.encoded_bits(&data) as f64 / data.len() as f64;
            prop_assert!(avg_bits + 1e-9 >= h.entropy_bits());
            prop_assert!(avg_bits <= h.entropy_bits() + 1.0);
        }
    }
}
