//! Positional Huffman coding — one code per byte position within the
//! instruction word.
//!
//! This implements the first of the paper's proposed extensions (§5:
//! "We also intend to try more sophisticated encoding techniques in
//! addition to the block based Huffman coding"). MIPS words have strong
//! positional structure in little-endian storage: byte 3 holds the major
//! opcode and `rs`, byte 2 mixes `rt` with register fields, bytes 0–1
//! hold immediates. Conditioning the code on `offset mod 4` captures
//! that structure while the decoder stays a fixed four-way mux of
//! hardwired tables — barely more hardware than the paper's single
//! preselected decoder.
//!
//! Like the bounded code, every positional sub-code is length-limited to
//! 16 bits.

use ccrp_bitstream::{BitReader, BitWriter};

use crate::bounded::{bounded_lengths, PAPER_MAX_LEN};
use crate::code::ByteCode;
use crate::error::CompressError;
use crate::histogram::ByteHistogram;

/// Number of byte positions within an instruction word.
pub const POSITIONS: usize = 4;

/// Four per-position byte histograms, accumulated from word-aligned text.
#[derive(Debug, Clone, Default)]
pub struct PositionalHistogram {
    positions: [ByteHistogram; POSITIONS],
}

impl PositionalHistogram {
    /// An all-zero histogram set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds word-aligned `text` (byte `i` counts toward position
    /// `i mod 4`).
    pub fn update(&mut self, text: &[u8]) {
        for (i, &b) in text.iter().enumerate() {
            self.positions[i % POSITIONS].update(&[b]);
        }
    }

    /// Builds the histogram set of `text` in one call.
    pub fn of(text: &[u8]) -> Self {
        let mut h = Self::new();
        h.update(text);
        h
    }

    /// The histogram for one position (positions cycle mod 4, matching
    /// how bytes are attributed during [`update`](Self::update)).
    pub fn position(&self, position: usize) -> &ByteHistogram {
        &self.positions[position % POSITIONS]
    }

    /// Merges another histogram set (corpus pooling).
    pub fn merge(&mut self, other: &PositionalHistogram) {
        for (a, b) in self.positions.iter_mut().zip(&other.positions) {
            *a += b;
        }
    }
}

/// A positional prefix code: four bounded canonical codes selected by
/// `offset mod 4`.
///
/// # Examples
///
/// ```
/// use ccrp_compress::{PositionalCode, PositionalHistogram};
///
/// let text: Vec<u8> = (0..4096u32).flat_map(|w| (w | 0x2400_0000).to_le_bytes()).collect();
/// let code = PositionalCode::preselected(&PositionalHistogram::of(&text))?;
/// let packed = code.encode(&text);
/// assert_eq!(code.decode(&packed, text.len())?, text);
/// // The positional code exploits per-position structure a single
/// // byte code cannot see.
/// assert!(code.encoded_bits(&text) < 8 * text.len() as u64);
/// # Ok::<(), ccrp_compress::CompressError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PositionalCode {
    codes: [ByteCode; POSITIONS],
}

impl PositionalCode {
    /// Builds a preselected positional code from a corpus histogram set:
    /// each position's histogram is smoothed (all 256 symbols decodable)
    /// and bounded to 16 bits.
    ///
    /// # Errors
    ///
    /// Propagates code-construction failures (impossible after
    /// smoothing a non-degenerate histogram).
    pub fn preselected(histograms: &PositionalHistogram) -> Result<Self, CompressError> {
        let build = |h: &ByteHistogram| -> Result<ByteCode, CompressError> {
            ByteCode::from_lengths(bounded_lengths(&h.smoothed(), PAPER_MAX_LEN)?)
        };
        Ok(Self {
            codes: [
                build(histograms.position(0))?,
                build(histograms.position(1))?,
                build(histograms.position(2))?,
                build(histograms.position(3))?,
            ],
        })
    }

    /// Wraps four already-built sub-codes (the container loader's entry
    /// point; `codes[p]` handles word offset `p`).
    pub fn from_codes(codes: [ByteCode; POSITIONS]) -> Self {
        Self { codes }
    }

    /// The sub-code used at one position (positions cycle mod 4).
    pub fn position(&self, position: usize) -> &ByteCode {
        &self.codes[position % POSITIONS]
    }

    /// Code length in bits for `byte` at word offset `position`.
    pub fn length_of(&self, byte: u8, position: usize) -> u8 {
        self.codes[position % POSITIONS].length_of(byte)
    }

    /// Exact compressed size of word-aligned `data` in bits.
    pub fn encoded_bits(&self, data: &[u8]) -> u64 {
        data.iter()
            .enumerate()
            .map(|(i, &b)| u64::from(self.length_of(b, i)))
            .sum()
    }

    /// Appends the code for each byte of word-aligned `data`.
    ///
    /// # Panics
    ///
    /// Panics (via [`ByteCode::encode_into`]'s documented contract) if a
    /// byte has no codeword — impossible for preselected positional
    /// codes, which are smoothed complete at every position.
    pub fn encode_into(&self, data: &[u8], writer: &mut BitWriter) {
        for (i, &b) in data.iter().enumerate() {
            // Reuse the canonical encoder one byte at a time.
            self.codes[i % POSITIONS].encode_into(&[b], writer);
        }
    }

    /// Encodes word-aligned `data` into a fresh byte vector.
    pub fn encode(&self, data: &[u8]) -> Vec<u8> {
        let mut w = BitWriter::with_capacity(data.len());
        self.encode_into(data, &mut w);
        w.into_bytes()
    }

    /// Decodes exactly `count` bytes (positions cycle from 0).
    ///
    /// # Errors
    ///
    /// [`CompressError::Truncated`] or [`CompressError::BadSymbol`] on
    /// corrupt input.
    pub fn decode(&self, bytes: &[u8], count: usize) -> Result<Vec<u8>, CompressError> {
        let mut reader = BitReader::new(bytes);
        let mut out = vec![0u8; count];
        self.decode_into(&mut reader, &mut out)?;
        Ok(out)
    }

    /// Decodes exactly `out.len()` bytes into a caller-owned buffer
    /// (positions cycle from 0) — the allocation-free path the refill
    /// engine uses.
    ///
    /// # Errors
    ///
    /// As for [`decode`](Self::decode); `out` then holds the bytes
    /// decoded before the failure.
    pub fn decode_into(
        &self,
        reader: &mut BitReader<'_>,
        out: &mut [u8],
    ) -> Result<(), CompressError> {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.codes[i % POSITIONS].decode_symbol(reader)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Synthetic "code" with strong positional structure: high bytes
    /// skewed like opcodes, low bytes like immediates.
    fn structured_text(words: usize, seed: u32) -> Vec<u8> {
        let mut x = seed | 1;
        let mut out = Vec::with_capacity(words * 4);
        for _ in 0..words {
            x = x.wrapping_mul(48271);
            let opcode = [0x8Fu32, 0x27, 0xAF, 0x00, 0x24][x as usize % 5];
            let word = (opcode << 24) | (u32::from(x as u16) & 0x00FF);
            out.extend_from_slice(&word.to_le_bytes());
        }
        out
    }

    #[test]
    fn beats_single_code_on_positional_structure() {
        let text = structured_text(8192, 7);
        let single = ByteCode::preselected(&ByteHistogram::of(&text)).unwrap();
        let positional = PositionalCode::preselected(&PositionalHistogram::of(&text)).unwrap();
        let single_bits = single.encoded_bits(&text);
        let positional_bits = positional.encoded_bits(&text);
        assert!(
            positional_bits < single_bits,
            "positional {positional_bits} vs single {single_bits}"
        );
    }

    #[test]
    fn roundtrip_structured() {
        let text = structured_text(1024, 3);
        let code = PositionalCode::preselected(&PositionalHistogram::of(&text)).unwrap();
        let packed = code.encode(&text);
        assert_eq!(code.decode(&packed, text.len()).unwrap(), text);
    }

    #[test]
    fn positional_histogram_separates_positions() {
        let mut text = Vec::new();
        for _ in 0..100 {
            text.extend_from_slice(&[0xAA, 0xBB, 0xCC, 0xDD]);
        }
        let h = PositionalHistogram::of(&text);
        assert_eq!(h.position(0).count(0xAA), 100);
        assert_eq!(h.position(0).count(0xBB), 0);
        assert_eq!(h.position(3).count(0xDD), 100);
    }

    #[test]
    fn merge_pools() {
        let mut a = PositionalHistogram::of(&[1, 2, 3, 4]);
        let b = PositionalHistogram::of(&[1, 2, 3, 4]);
        a.merge(&b);
        assert_eq!(a.position(0).count(1), 2);
    }

    #[test]
    fn all_subcodes_bounded_and_complete() {
        let text = structured_text(2048, 11);
        let code = PositionalCode::preselected(&PositionalHistogram::of(&text)).unwrap();
        for p in 0..POSITIONS {
            assert!(code.position(p).max_length() <= 16);
            assert!(code.position(p).is_complete_alphabet());
        }
    }

    proptest! {
        #[test]
        fn roundtrip_random(words in proptest::collection::vec(any::<u32>(), 1..500)) {
            let text: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
            let code = PositionalCode::preselected(&PositionalHistogram::of(&text)).unwrap();
            let packed = code.encode(&text);
            prop_assert_eq!(code.decode(&packed, text.len()).unwrap(), text);
        }

        #[test]
        fn never_worse_than_sum_of_subcode_entropy(words in proptest::collection::vec(any::<u32>(), 16..200)) {
            let text: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
            let h = PositionalHistogram::of(&text);
            let code = PositionalCode::preselected(&h).unwrap();
            // Each sub-code is within one bit/byte of its position's
            // (smoothed) entropy; crude but effective sanity bound.
            let bits = code.encoded_bits(&text) as f64 / text.len() as f64;
            prop_assert!(bits <= 17.0);
        }
    }
}
