//! Length-limited Huffman codes via the package-merge algorithm
//! (Larmore & Hirschberg's coin-collector formulation).
//!
//! The paper's *Bounded Huffman* code caps symbol lengths at 16 bits so
//! the two-bytes-per-cycle decode hardware stays shallow: "A modified
//! Huffman encoding scheme was implemented such that no byte is
//! represented by a code symbol of more than 16 bits" (§2.2).

use crate::error::CompressError;
use crate::histogram::ByteHistogram;

/// The length bound used throughout the paper's experiments.
pub const PAPER_MAX_LEN: u8 = 16;

#[derive(Debug, Clone)]
struct Package {
    weight: u64,
    /// Count of each original item contained in this package, indexed by
    /// position in the sorted symbol list.
    contents: Vec<u16>,
}

/// Computes optimal code lengths subject to `max_len`, for every byte
/// with a nonzero count.
///
/// # Errors
///
/// * [`CompressError::EmptyHistogram`] if no byte occurs;
/// * [`CompressError::LengthTooLong`] if `max_len` is too small to code
///   the alphabet (needs `2^max_len >=` distinct symbols) or over 32.
///
/// # Examples
///
/// ```
/// use ccrp_compress::{bounded_lengths, ByteHistogram, PAPER_MAX_LEN};
///
/// let hist = ByteHistogram::of(b"the quick brown fox jumps over the lazy dog");
/// let lengths = bounded_lengths(&hist, PAPER_MAX_LEN)?;
/// assert!(lengths.iter().all(|&l| l <= PAPER_MAX_LEN));
/// # Ok::<(), ccrp_compress::CompressError>(())
/// ```
pub fn bounded_lengths(histogram: &ByteHistogram, max_len: u8) -> Result<[u8; 256], CompressError> {
    if max_len == 0 || max_len > 32 {
        return Err(CompressError::LengthTooLong { length: max_len });
    }
    let mut symbols: Vec<(u8, u64)> = (0u16..256)
        .map(|b| (b as u8, histogram.count(b as u8)))
        .filter(|&(_, c)| c > 0)
        .collect();
    let n = symbols.len();
    let mut lengths = [0u8; 256];
    match n {
        0 => return Err(CompressError::EmptyHistogram),
        1 => {
            lengths[symbols[0].0 as usize] = 1;
            return Ok(lengths);
        }
        _ => {}
    }
    if (max_len as u32) < 32 && n as u64 > (1u64 << max_len) {
        return Err(CompressError::LengthTooLong { length: max_len });
    }

    symbols.sort_by_key(|&(sym, count)| (count, sym));
    let items: Vec<Package> = symbols
        .iter()
        .enumerate()
        .map(|(i, &(_, count))| {
            let mut contents = vec![0u16; n];
            contents[i] = 1;
            Package {
                weight: count,
                contents,
            }
        })
        .collect();

    // Coin-collector: level `max_len` holds bare items; each shallower
    // level merges the items with pairs packaged from the level below.
    let mut current: Vec<Package> = items.clone();
    for _level in (1..max_len).rev() {
        let mut packaged: Vec<Package> = Vec::with_capacity(current.len() / 2);
        let mut iter = current.chunks_exact(2);
        for pair in &mut iter {
            let mut contents = pair[0].contents.clone();
            for (a, b) in contents.iter_mut().zip(&pair[1].contents) {
                *a += b;
            }
            packaged.push(Package {
                weight: pair[0].weight + pair[1].weight,
                contents,
            });
        }
        // Merge packaged pairs with the original items, keeping sorted
        // order by weight (both inputs are already sorted).
        let mut merged = Vec::with_capacity(items.len() + packaged.len());
        let (mut i, mut j) = (0, 0);
        while i < items.len() && j < packaged.len() {
            if items[i].weight <= packaged[j].weight {
                merged.push(items[i].clone());
                i += 1;
            } else {
                merged.push(packaged[j].clone());
                j += 1;
            }
        }
        merged.extend_from_slice(&items[i..]);
        merged.extend_from_slice(&packaged[j..]);
        current = merged;
    }

    // Select the cheapest 2(n-1) level-1 packages; each inclusion of an
    // item deepens its code by one bit.
    let take = 2 * (n - 1);
    // panic-ok: debug-build invariant of the package-merge construction.
    debug_assert!(
        current.len() >= take,
        "package-merge produced too few packages"
    );
    let mut depth = vec![0u16; n];
    for package in current.iter().take(take) {
        for (d, c) in depth.iter_mut().zip(&package.contents) {
            *d += c;
        }
    }
    for (i, &(sym, _)) in symbols.iter().enumerate() {
        lengths[sym as usize] = depth[i] as u8;
    }
    Ok(lengths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::huffman::traditional_lengths;

    fn kraft(lengths: &[u8; 256]) -> f64 {
        lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 2f64.powi(-i32::from(l)))
            .sum()
    }

    fn weighted_bits(lengths: &[u8; 256], h: &ByteHistogram) -> u64 {
        (0u16..256)
            .map(|b| u64::from(lengths[b as usize]) * h.count(b as u8))
            .sum()
    }

    fn skewed_histogram(n: u8) -> ByteHistogram {
        let mut h = ByteHistogram::new();
        let mut w = 1u64;
        let mut prev = 1u64;
        for sym in 0..n {
            for _ in 0..w {
                h.update(&[sym]);
            }
            let next = w + prev;
            prev = w;
            w = next;
        }
        h
    }

    #[test]
    fn respects_bound_and_kraft() {
        let h = skewed_histogram(24); // unbounded Huffman would exceed 16
        let unbounded = traditional_lengths(&h).unwrap();
        assert!(unbounded.iter().copied().max().unwrap() > 16);
        let bounded = bounded_lengths(&h, 16).unwrap();
        assert!(bounded.iter().all(|&l| l <= 16));
        let k = kraft(&bounded);
        assert!(k <= 1.0 + 1e-12, "kraft {k}");
    }

    #[test]
    fn matches_huffman_when_bound_is_loose() {
        // With a generous bound, package-merge's total cost equals Huffman's.
        let h = ByteHistogram::of(b"abracadabra alakazam");
        let a = traditional_lengths(&h).unwrap();
        let b = bounded_lengths(&h, 32).unwrap();
        assert_eq!(weighted_bits(&a, &h), weighted_bits(&b, &h));
    }

    #[test]
    fn optimal_among_bounded() {
        // For a small alphabet we can brute-force all monotone length
        // assignments and confirm package-merge is optimal.
        let mut h = ByteHistogram::new();
        for (sym, count) in [(0u8, 40u64), (1, 30), (2, 20), (3, 6), (4, 3), (5, 1)] {
            for _ in 0..count {
                h.update(&[sym]);
            }
        }
        let max_len = 3;
        let got = bounded_lengths(&h, max_len).unwrap();
        let got_cost = weighted_bits(&got, &h);
        // Brute force: all length tuples in 1..=3 satisfying Kraft.
        let mut best = u64::MAX;
        let lens = [1u8, 2, 3];
        for a in lens {
            for b in lens {
                for c in lens {
                    for d in lens {
                        for e in lens {
                            for f in lens {
                                let tuple = [a, b, c, d, e, f];
                                let k: f64 = tuple.iter().map(|&l| 2f64.powi(-i32::from(l))).sum();
                                if k <= 1.0 + 1e-12 {
                                    let cost: u64 = tuple
                                        .iter()
                                        .enumerate()
                                        .map(|(s, &l)| u64::from(l) * h.count(s as u8))
                                        .sum();
                                    best = best.min(cost);
                                }
                            }
                        }
                    }
                }
            }
        }
        assert_eq!(got_cost, best);
    }

    #[test]
    fn full_alphabet_fits_in_16() {
        let h = ByteHistogram::of(&(0u8..=255).collect::<Vec<_>>()).smoothed();
        let lengths = bounded_lengths(&h, PAPER_MAX_LEN).unwrap();
        assert_eq!(lengths.iter().filter(|&&l| l > 0).count(), 256);
        assert!(lengths.iter().all(|&l| l <= 16));
    }

    #[test]
    fn impossible_bound_rejected() {
        let h = ByteHistogram::of(&(0u8..=255).collect::<Vec<_>>());
        assert!(matches!(
            bounded_lengths(&h, 7),
            Err(CompressError::LengthTooLong { .. })
        ));
        assert!(bounded_lengths(&h, 8).is_ok());
    }

    #[test]
    fn empty_rejected() {
        assert!(matches!(
            bounded_lengths(&ByteHistogram::new(), 16),
            Err(CompressError::EmptyHistogram)
        ));
    }
}
