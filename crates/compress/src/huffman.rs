//! Traditional (unbounded) Huffman code-length construction.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::error::CompressError;
use crate::histogram::ByteHistogram;

/// Computes optimal Huffman code lengths for every byte with a nonzero
/// count. Zero-count bytes get length 0 (no code).
///
/// This is the paper's "Traditional Huffman" method: optimal for the
/// histogram but with worst-case symbol lengths up to 255 bits, which §2.2
/// notes would make decode hardware impractically deep — motivating the
/// Bounded variant in [`bounded_lengths`](crate::bounded_lengths).
///
/// # Errors
///
/// [`CompressError::EmptyHistogram`] when no byte has a nonzero count.
///
/// # Examples
///
/// ```
/// use ccrp_compress::{traditional_lengths, ByteHistogram};
///
/// let lengths = traditional_lengths(&ByteHistogram::of(b"aaab"))?;
/// assert_eq!(lengths[b'a' as usize], 1);
/// assert_eq!(lengths[b'b' as usize], 1);
/// assert_eq!(lengths[b'c' as usize], 0);
/// # Ok::<(), ccrp_compress::CompressError>(())
/// ```
pub fn traditional_lengths(histogram: &ByteHistogram) -> Result<[u8; 256], CompressError> {
    let mut lengths = [0u8; 256];
    let symbols: Vec<(u8, u64)> = (0u16..256)
        .map(|b| (b as u8, histogram.count(b as u8)))
        .filter(|&(_, c)| c > 0)
        .collect();
    match symbols.len() {
        0 => return Err(CompressError::EmptyHistogram),
        1 => {
            // A one-symbol alphabet still needs one bit per symbol so the
            // decoder can count symbols.
            lengths[symbols[0].0 as usize] = 1;
            return Ok(lengths);
        }
        _ => {}
    }

    // Heap of (weight, tie, node). `tie` keeps construction deterministic.
    #[derive(Debug)]
    enum Node {
        Leaf(u8),
        Internal(Box<Node>, Box<Node>),
    }
    let mut heap: BinaryHeap<Reverse<(u64, u32, usize)>> = BinaryHeap::new();
    let mut arena: Vec<Node> = Vec::with_capacity(symbols.len() * 2);
    for (i, &(sym, count)) in symbols.iter().enumerate() {
        arena.push(Node::Leaf(sym));
        heap.push(Reverse((count, i as u32, i)));
    }
    let mut tie = symbols.len() as u32;
    let root = loop {
        let Some(Reverse((w1, _, n1))) = heap.pop() else {
            // Unreachable (the heap starts with >= 2 nodes and the loop
            // leaves one), but a structured error beats a panic.
            return Err(CompressError::EmptyHistogram);
        };
        let Some(Reverse((w2, _, n2))) = heap.pop() else {
            break n1;
        };
        // Steal the two nodes out of the arena by swapping placeholders in.
        let a = std::mem::replace(&mut arena[n1], Node::Leaf(0));
        let b = std::mem::replace(&mut arena[n2], Node::Leaf(0));
        arena.push(Node::Internal(Box::new(a), Box::new(b)));
        heap.push(Reverse((w1 + w2, tie, arena.len() - 1)));
        tie += 1;
    };

    fn walk(node: &Node, depth: u8, lengths: &mut [u8; 256]) {
        match node {
            Node::Leaf(sym) => lengths[*sym as usize] = depth.max(1),
            Node::Internal(a, b) => {
                walk(a, depth + 1, lengths);
                walk(b, depth + 1, lengths);
            }
        }
    }
    walk(&arena[root], 0, &mut lengths);
    Ok(lengths)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_example() {
        // Frequencies 45,13,12,16,9,5 (CLRS) -> lengths 1,3,3,3,4,4.
        let mut h = ByteHistogram::new();
        for (sym, count) in [
            (b'a', 45u64),
            (b'b', 13),
            (b'c', 12),
            (b'd', 16),
            (b'e', 9),
            (b'f', 5),
        ] {
            for _ in 0..count {
                h.update(&[sym]);
            }
        }
        let lengths = traditional_lengths(&h).unwrap();
        assert_eq!(lengths[b'a' as usize], 1);
        assert_eq!(lengths[b'b' as usize], 3);
        assert_eq!(lengths[b'c' as usize], 3);
        assert_eq!(lengths[b'd' as usize], 3);
        assert_eq!(lengths[b'e' as usize], 4);
        assert_eq!(lengths[b'f' as usize], 4);
    }

    #[test]
    fn empty_is_error() {
        assert!(matches!(
            traditional_lengths(&ByteHistogram::new()),
            Err(CompressError::EmptyHistogram)
        ));
    }

    #[test]
    fn single_symbol_gets_one_bit() {
        let lengths = traditional_lengths(&ByteHistogram::of(&[9u8; 50])).unwrap();
        assert_eq!(lengths[9], 1);
        assert_eq!(lengths.iter().filter(|&&l| l > 0).count(), 1);
    }

    #[test]
    fn skewed_distribution_goes_deep() {
        // Fibonacci-like weights force a maximally skewed tree.
        let mut h = ByteHistogram::new();
        let mut w = 1u64;
        let mut prev = 1u64;
        for sym in 0..20u8 {
            for _ in 0..w {
                h.update(&[sym]);
            }
            let next = w + prev;
            prev = w;
            w = next;
        }
        let lengths = traditional_lengths(&h).unwrap();
        let max = lengths.iter().copied().max().unwrap();
        assert!(max >= 19, "expected deep tree, got max {max}");
    }
}
