//! The table-driven fast decode path.
//!
//! The paper's decoder is *hardwired* for the preselected code: a
//! combinational lookup recognizes a codeword per clock edge instead of
//! shifting one bit at a time. [`DecodeTable`] is the software model of
//! that lookup: a single-level 2^[`LOOKUP_BITS`] LUT, indexed by the
//! next [`LOOKUP_BITS`] bits of the stream, whose entries give the
//! decoded symbol and its code length for every codeword short enough
//! to fit the window. Longer codewords (and bit patterns no codeword
//! prefixes) carry a slow-path marker; the decoder falls back to the
//! canonical first-code/first-index bit walk, which the 16-bit bound of
//! [`bounded_lengths`](crate::bounded_lengths) keeps shallow.
//!
//! The table is built once per [`ByteCode`](crate::ByteCode) and is a
//! pure function of the length table, so two equal codes always carry
//! equal tables.

use crate::error::CompressError;

/// Width of the lookup window in bits (table size 2^11 = 2048 entries,
/// 4 KiB). Chosen so the common symbols of a bounded (≤16-bit) code hit
/// the fast path while the table still fits comfortably in L1.
pub const LOOKUP_BITS: u32 = 11;

/// A packed LUT entry: code length in the high byte (0 = slow-path
/// marker), symbol in the low byte.
type Entry = u16;

/// Single-level lookup table accelerating canonical-Huffman decode.
///
/// See the [crate docs](crate) for the model. Constructed through
/// [`ByteCode`](crate::ByteCode); exposed so benchmarks and tests can
/// reason about the fast path explicitly.
#[derive(Clone, PartialEq, Eq)]
pub struct DecodeTable {
    entries: Vec<Entry>,
}

impl DecodeTable {
    /// Builds the table for a canonical code described by per-symbol
    /// `lengths` and `codes` (as produced by
    /// [`ByteCode::from_lengths`](crate::ByteCode::from_lengths)).
    ///
    /// Never panics: a degenerate table (for example the 1-symbol code,
    /// whose single length-1 codeword leaves half the window
    /// unassigned) simply leaves slow-path markers in the unassigned
    /// slots, and inconsistent inputs are reported as errors.
    ///
    /// # Errors
    ///
    /// [`CompressError::InvalidCodeLengths`] if a codeword does not fit
    /// its stated length or its expansion would overflow the table —
    /// impossible for inputs that passed the Kraft check, but checked
    /// rather than trusted so corrupt length tables can never panic the
    /// decode path.
    pub(crate) fn build(lengths: &[u8; 256], codes: &[u32; 256]) -> Result<Self, CompressError> {
        let mut entries = vec![0_u16; 1 << LOOKUP_BITS];
        for symbol in 0u16..256 {
            let len = lengths[symbol as usize];
            if len == 0 || u32::from(len) > LOOKUP_BITS {
                continue; // uncoded symbol, or slow-path length
            }
            let code = codes[symbol as usize];
            if u64::from(code) >= 1u64 << len {
                return Err(CompressError::InvalidCodeLengths {
                    kraft: u64::from(code),
                    max_len: len,
                });
            }
            // Every window whose first `len` bits equal `code` decodes
            // to `symbol`: fill the whole padding range.
            let span = 1usize << (LOOKUP_BITS - u32::from(len));
            let first = (code as usize) << (LOOKUP_BITS - u32::from(len));
            let entry = (u16::from(len) << 8) | symbol;
            let slots =
                entries
                    .get_mut(first..first + span)
                    .ok_or(CompressError::InvalidCodeLengths {
                        kraft: u64::from(code),
                        max_len: len,
                    })?;
            slots.fill(entry);
        }
        Ok(Self { entries })
    }

    /// Looks up a [`LOOKUP_BITS`]-wide window, returning the decoded
    /// `(symbol, code_length)` when some codeword of length ≤
    /// [`LOOKUP_BITS`] is a prefix of the window, and `None` (the
    /// slow-path marker) otherwise.
    #[inline]
    pub fn lookup(&self, window: u32) -> Option<(u8, u8)> {
        let entry = self.entries[window as usize & ((1 << LOOKUP_BITS) - 1)];
        if entry >> 8 == 0 {
            return None;
        }
        Some((entry as u8, (entry >> 8) as u8))
    }

    /// How many of the 2^[`LOOKUP_BITS`] windows resolve on the fast
    /// path (diagnostics; the rest fall back to the bit walk).
    pub fn fast_fraction(&self) -> f64 {
        let hits = self.entries.iter().filter(|&&e| e >> 8 != 0).count();
        hits as f64 / self.entries.len() as f64
    }
}

impl std::fmt::Debug for DecodeTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DecodeTable")
            .field("lookup_bits", &LOOKUP_BITS)
            .field("fast_fraction", &self.fast_fraction())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_padding_ranges() {
        // lengths {a:1, b:2}: 'a' covers windows 0xxxxxxxxxx,
        // 'b' covers 10xxxxxxxxx, 11xxxxxxxxx is unassigned.
        let mut lengths = [0u8; 256];
        let mut codes = [0u32; 256];
        lengths[b'a' as usize] = 1;
        codes[b'a' as usize] = 0;
        lengths[b'b' as usize] = 2;
        codes[b'b' as usize] = 0b10;
        let table = DecodeTable::build(&lengths, &codes).unwrap();
        assert_eq!(table.lookup(0), Some((b'a', 1)));
        assert_eq!(table.lookup((1 << LOOKUP_BITS) - 1), None);
        assert_eq!(table.lookup(0b10 << (LOOKUP_BITS - 2)), Some((b'b', 2)));
        let covered = 0.5 + 0.25; // 'a' half + 'b' quarter of the window space
        assert!((table.fast_fraction() - covered).abs() < 1e-12);
    }

    #[test]
    fn long_codes_stay_on_the_slow_path() {
        let mut lengths = [0u8; 256];
        let mut codes = [0u32; 256];
        lengths[0] = 1;
        codes[0] = 0;
        lengths[1] = LOOKUP_BITS as u8 + 5;
        codes[1] = (1 << (LOOKUP_BITS + 4)) | 1;
        let table = DecodeTable::build(&lengths, &codes).unwrap();
        // The long code's window region keeps the marker.
        assert_eq!(table.lookup(1 << (LOOKUP_BITS - 1)), None);
    }

    #[test]
    fn oversized_code_value_is_an_error_not_a_panic() {
        let mut lengths = [0u8; 256];
        let mut codes = [0u32; 256];
        lengths[7] = 3;
        codes[7] = 0b1000; // does not fit in 3 bits
        assert!(matches!(
            DecodeTable::build(&lengths, &codes),
            Err(CompressError::InvalidCodeLengths { .. })
        ));
    }

    #[test]
    fn debug_is_compact() {
        let mut lengths = [0u8; 256];
        lengths[0] = 1;
        let table = DecodeTable::build(&lengths, &[0u32; 256]).unwrap();
        let text = format!("{table:?}");
        assert!(text.contains("lookup_bits"));
        assert!(text.len() < 120, "no entry dump: {text}");
    }
}
