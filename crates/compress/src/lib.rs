//! The CCRP compression stack.
//!
//! Implements every compression method evaluated in Figure 5 of
//! Wolfe & Chanin (MICRO-25 1992):
//!
//! * [`lzw`] — a Unix-`compress`-style LZW codec, the paper's file-based
//!   reference point;
//! * [`traditional_lengths`] / [`ByteCode::traditional`] — classic
//!   Huffman over byte frequencies;
//! * [`bounded_lengths`] / [`ByteCode::bounded`] — length-limited
//!   (≤16-bit) Huffman via package-merge, making the decode hardware
//!   practical;
//! * [`ByteCode::preselected`] — a single bounded code built from a
//!   program corpus, so the decoder can be hardwired and no code table
//!   ships with each program;
//! * [`block`] — independent compression of 32-byte cache lines with a
//!   raw-store bypass, the form the CCRP refill engine consumes;
//! * [`PositionalCode`] — an *extension* implementing §5's proposed
//!   "more sophisticated encoding techniques": one bounded code per
//!   byte position within the instruction word.
//!
//! Decoding is table-driven: every [`ByteCode`] carries a
//! [`DecodeTable`] — a single-level 2^[`LOOKUP_BITS`] LUT modeling the
//! paper's hardwired decoder — with a canonical bit-walk fallback for
//! codewords longer than the window.
//!
//! # Examples
//!
//! Compress a cache line with a corpus-trained preselected code:
//!
//! ```
//! use ccrp_compress::{block, ByteCode, ByteHistogram, BlockAlignment};
//!
//! let corpus = ByteHistogram::of(&vec![0u8; 1000]); // stand-in corpus
//! let code = ByteCode::preselected(&corpus)?;
//! let line = [0u8; block::LINE_SIZE];
//! let compressed = block::compress_line(&code, &line, BlockAlignment::Word);
//! assert!(compressed.stored_len() <= block::LINE_SIZE);
//! assert_eq!(block::decompress_line(&code, &compressed)?, line);
//! # Ok::<(), ccrp_compress::CompressError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
mod bounded;
mod code;
pub mod codec;
mod error;
mod histogram;
mod huffman;
pub mod lzw;
mod positional;
mod table;

pub use block::{BlockAlignment, CompressedLine, LINE_SIZE};
pub use bounded::{bounded_lengths, PAPER_MAX_LEN};
pub use code::ByteCode;
pub use codec::{codec_from_container, CodecCost, CodecId, LineCodec, LzwLineCodec};
pub use error::CompressError;
pub use histogram::ByteHistogram;
pub use huffman::traditional_lengths;
pub use positional::{PositionalCode, PositionalHistogram, POSITIONS};
pub use table::{DecodeTable, LOOKUP_BITS};

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure-5 ordering: on realistic code bytes, LZW beats
    /// traditional Huffman, which beats bounded, which beats a
    /// preselected code trained on *different* material — all of which
    /// still compress.
    #[test]
    fn method_ordering_on_codelike_data() {
        // Synthesize something code-like: strongly repeating word
        // patterns with a skewed byte distribution.
        let mut data = Vec::new();
        let mut x = 7u32;
        for i in 0..8192u32 {
            x = x.wrapping_mul(2654435761).wrapping_add(1);
            let imm = (x >> 20) as u8;
            let word = match i % 4 {
                0 => 0x2402_0000u32 | u32::from(imm),
                1 => 0x8FBF_0000u32 | u32::from(imm & 0x3C),
                2 => 0x0085_1021,
                _ => 0xAFA4_0000u32 | u32::from(imm & 0x1C),
            };
            data.extend_from_slice(&word.to_le_bytes());
        }
        let hist = ByteHistogram::of(&data);

        let lzw_size = lzw::compress(&data).len();
        let trad = ByteCode::traditional(&hist).unwrap();
        let trad_size = trad.encoded_bits(&data).div_ceil(8) as usize;
        let bnd = ByteCode::bounded(&hist).unwrap();
        let bnd_size = bnd.encoded_bits(&data).div_ceil(8) as usize;

        // A preselected code trained on slightly different material.
        let mut other = data.clone();
        other.rotate_left(1); // shifts the byte-position mix
        let pre = ByteCode::preselected(&ByteHistogram::of(&other)).unwrap();
        let pre_size = pre.encoded_bits(&data).div_ceil(8) as usize;

        assert!(lzw_size < trad_size, "lzw {lzw_size} vs trad {trad_size}");
        assert!(trad_size <= bnd_size);
        assert!(bnd_size <= pre_size);
        assert!(pre_size < data.len(), "preselected must still compress");
    }
}
