//! Differential testing of the table-driven fast decoder against the
//! canonical bit-walk reference.
//!
//! [`ByteCode::decode_symbol`] (LUT fast path with bit-walk fallback)
//! and [`ByteCode::decode_symbol_reference`] (the pre-table decoder)
//! must be observationally identical on *every* input — well-formed
//! streams, corrupt streams, truncated streams, and foreign-program
//! bytes pushed through a mismatched preselected code. Identical means:
//! the same symbols in the same order, the same error variant at the
//! same bit position, and the same reader position after every step.
//! That identity is what lets the committed BENCH files (simulated
//! cycle counts included) reproduce byte-for-byte across the decoder
//! swap.

use ccrp_bitstream::BitReader;
use ccrp_compress::{ByteCode, ByteHistogram, CompressError, LOOKUP_BITS};
use proptest::prelude::*;

/// Decodes `count` symbols through both paths in lock step, asserting
/// identical results (Ok symbol or error value) and identical reader
/// positions after every symbol.
fn assert_paths_identical(code: &ByteCode, bytes: &[u8], count: usize) {
    let mut fast = BitReader::new(bytes);
    let mut reference = BitReader::new(bytes);
    for step in 0..count {
        let a = code.decode_symbol(&mut fast);
        let b = code.decode_symbol_reference(&mut reference);
        assert_eq!(
            a,
            b,
            "paths diverged at symbol {step} (bit {})",
            reference.bit_pos()
        );
        assert_eq!(fast.bit_pos(), reference.bit_pos());
        if a.is_err() {
            break;
        }
    }
}

/// A bounded code from a seeded random histogram; seeds cover skews
/// from near-uniform (short codes, all fast path) to heavy-headed
/// (long codes past [`LOOKUP_BITS`], exercising the slow-path marker).
fn seeded_code(seed: u64) -> ByteCode {
    let mut state = seed | 1;
    let mut sample = Vec::new();
    for byte in 0u16..=255 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        // Exponential-ish weights: a few very hot symbols, a long tail.
        let weight = 1 + ((state >> 48) as usize >> ((byte / 16) % 12));
        sample.extend(std::iter::repeat_n(byte as u8, weight));
    }
    ByteCode::bounded(&ByteHistogram::of(&sample)).expect("seeded code builds")
}

proptest! {
    /// Round-trip: encoded well-formed streams decode identically (and
    /// correctly) on both paths.
    #[test]
    fn round_trip_streams_decode_identically(
        seed in any::<u64>(),
        symbols in proptest::collection::vec(any::<u8>(), 1..128),
    ) {
        let code = seeded_code(seed);
        let bytes = code.encode(&symbols);
        assert_paths_identical(&code, &bytes, symbols.len());
        // And the fast path is actually *right*, not just consistent.
        prop_assert_eq!(code.decode(&bytes, symbols.len()).unwrap(), symbols);
    }

    /// Corrupt streams: arbitrary garbage bytes produce the same symbols
    /// or the same structured error at the same bit position.
    #[test]
    fn corrupt_streams_decode_identically(
        seed in any::<u64>(),
        bytes in proptest::collection::vec(any::<u8>(), 0..96),
        count in 0usize..64,
    ) {
        assert_paths_identical(&seeded_code(seed), &bytes, count);
    }

    /// Truncated streams: cutting a valid stream mid-codeword must
    /// surface the same `Truncated`/`BadSymbol` error from both paths.
    /// The zero-padded lookup window must never fabricate a symbol the
    /// bit-walk would refuse.
    #[test]
    fn truncated_streams_fail_identically(
        seed in any::<u64>(),
        symbols in proptest::collection::vec(any::<u8>(), 1..64),
        cut_bits in any::<u16>(),
    ) {
        let code = seeded_code(seed);
        let bytes = code.encode(&symbols);
        let total_bits = bytes.len() * 8;
        let keep_bits = cut_bits as usize % total_bits.max(1);
        let mut cut = bytes[..keep_bits.div_ceil(8)].to_vec();
        if !keep_bits.is_multiple_of(8) {
            if let Some(last) = cut.last_mut() {
                // Zero the dropped tail bits of the final partial byte.
                *last &= 0xFFu8 << (8 - keep_bits % 8);
            }
        }
        assert_paths_identical(&code, &cut, symbols.len());
    }

    /// Foreign-program bytes through a preselected code: a code trained
    /// on one corpus decoding bytes from a *different* program is the
    /// paper's deployment scenario for the hardwired decoder, and a rich
    /// source of slow-path hits and BadSymbol exits.
    #[test]
    fn foreign_bytes_through_preselected_code(
        foreign in proptest::collection::vec(any::<u8>(), 1..96),
    ) {
        // Train on synthetic "code-like" material with a skewed head.
        let mut corpus = Vec::new();
        for i in 0..4096u32 {
            corpus.extend_from_slice(&(0x2402_0000u32 | (i & 0xFF)).to_le_bytes());
        }
        let code = ByteCode::preselected(&ByteHistogram::of(&corpus)).unwrap();
        assert_paths_identical(&code, &foreign, foreign.len());
    }
}

/// The degenerate 1-symbol code: a single length-1 codeword leaves half
/// the lookup window on the slow-path marker and the other half mapping
/// to the lone symbol. Table construction must succeed (never panic),
/// and both decode paths must agree on hits and on the `BadSymbol` miss.
#[test]
fn one_symbol_code_builds_and_decodes() {
    let mut lengths = [0u8; 256];
    lengths[b'x' as usize] = 1;
    let code = ByteCode::from_lengths(lengths).expect("1-symbol code builds");
    assert!(!code.is_complete_alphabet());
    assert!(code.decode_table().fast_fraction() > 0.0);

    // Codeword is `0`: a zero byte decodes to eight 'x's on both paths.
    assert_eq!(code.decode(&[0x00], 8).unwrap(), vec![b'x'; 8]);
    assert_paths_identical(&code, &[0x00], 8);

    // A `1` bit is no codeword at all: identical BadSymbol at bit 0.
    let err = code.decode(&[0x80], 1).unwrap_err();
    assert_eq!(err, CompressError::BadSymbol { at_bit: 0 });
    assert_paths_identical(&code, &[0x80], 1);
}

/// Codes whose longest codeword exceeds the lookup window still decode
/// every symbol identically — the marker entries route those codewords
/// to the reference walk.
#[test]
fn codes_longer_than_the_window_round_trip() {
    // Skewed enough that bounded() assigns lengths past LOOKUP_BITS.
    let mut sample = Vec::new();
    for byte in 0u16..=255 {
        let weight = 1usize << (14 - (byte / 20).min(13));
        sample.extend(std::iter::repeat_n(byte as u8, weight));
    }
    let code = ByteCode::bounded(&ByteHistogram::of(&sample)).unwrap();
    assert!(
        u32::from(code.max_length()) > LOOKUP_BITS,
        "corpus must force codes past the window (max {})",
        code.max_length()
    );
    let symbols: Vec<u8> = (0..=255).collect();
    let bytes = code.encode(&symbols);
    assert_eq!(code.decode(&bytes, symbols.len()).unwrap(), symbols);
    assert_paths_identical(&code, &bytes, symbols.len());
}
