//! Decoder robustness: the bounded-Huffman decode path must terminate
//! with `Ok` or a structured [`CompressError`] on *arbitrary* input
//! bytes — never panic, never loop, never return more symbols than
//! asked for. The refill engine feeds this decoder bytes read straight
//! from (possibly corrupt) ROM, so this property is what keeps a bad
//! block from taking the processor down with it.

use ccrp_compress::block::decompress_line;
use ccrp_compress::{
    bounded_lengths, ByteCode, ByteHistogram, CompressError, CompressedLine, PAPER_MAX_LEN,
};
use proptest::prelude::*;

/// A bounded code over a skewed alphabet, with symbol lengths all the
/// way up to the paper's 16-bit cap (a big alphabet with a heavy head).
fn stress_code() -> ByteCode {
    let mut sample = Vec::new();
    for byte in 0u16..=255 {
        let weight = 1 + (1usize << (12 - (byte / 24).min(12)));
        sample.extend(std::iter::repeat_n(byte as u8, weight));
    }
    ByteCode::bounded(&ByteHistogram::of(&sample)).expect("stress code builds")
}

proptest! {
    #[test]
    fn decode_of_arbitrary_bytes_terminates_structurally(
        bytes in proptest::collection::vec(any::<u8>(), 0..96),
        count in 0usize..64,
    ) {
        let code = stress_code();
        match code.decode(&bytes, count) {
            Ok(symbols) => prop_assert_eq!(symbols.len(), count),
            Err(CompressError::Truncated { .. } | CompressError::BadSymbol { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected error class: {other}"),
        }
    }

    #[test]
    fn lengths_respect_the_paper_bound(seed in any::<u64>()) {
        // Random histograms never produce a symbol longer than 16 bits.
        let mut state = seed | 1;
        let mut sample = Vec::new();
        for byte in 0u16..=255 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let weight = (state >> 56) as usize;
            sample.extend(std::iter::repeat_n(byte as u8, weight));
        }
        if sample.is_empty() {
            sample.push(0);
        }
        let lengths = bounded_lengths(&ByteHistogram::of(&sample), PAPER_MAX_LEN).unwrap();
        prop_assert!(lengths.iter().all(|&l| l <= PAPER_MAX_LEN));
    }

    #[test]
    fn stored_line_expansion_never_panics(
        stored in proptest::collection::vec(any::<u8>(), 1..=32),
        bypass in any::<bool>(),
    ) {
        // The per-line wrapper: arbitrary stored bytes either expand to
        // exactly one 32-byte line or fail with a structured error.
        let code = stress_code();
        let bypass = bypass && stored.len() == 32;
        if let Ok(line) = CompressedLine::from_stored_checked(stored, bypass) {
            match decompress_line(&code, &line) {
                Ok(expanded) => prop_assert_eq!(expanded.len(), 32),
                Err(
                    CompressError::Truncated { .. }
                    | CompressError::BadSymbol { .. }
                    | CompressError::BadStoredLength { .. },
                ) => {}
                Err(other) => prop_assert!(false, "unexpected error class: {other}"),
            }
        }
    }
}
