//! A small, dependency-free argument parser: positional operands plus
//! `--flag value` / `--switch` options.
//!
//! Two options are shared by every subcommand and parsed here rather
//! than declared per command: `--out FILE` (the command's artifact path,
//! or a redirect of its report for commands that only print) and
//! `--json` (switch the report to machine-readable JSON). The old
//! `--output`/`--out-file`/`--out-dir` aliases, deprecated since the
//! shared options landed, are no longer accepted (see CHANGELOG.md).

use std::collections::BTreeMap;

use crate::error::CliError;

/// Value options every subcommand accepts without declaring them.
pub const SHARED_VALUE_OPTIONS: &[&str] = &["out"];

/// Switches every subcommand accepts without declaring them.
pub const SHARED_SWITCHES: &[&str] = &["json"];

/// Parsed arguments for one subcommand.
#[derive(Debug, Clone, Default)]
pub struct Args {
    positional: Vec<String>,
    options: BTreeMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    /// Parses raw arguments. `value_options` lists the option names that
    /// consume a following value; any other `--name` is a switch. The
    /// shared options (`SHARED_VALUE_OPTIONS`, `SHARED_SWITCHES`) are
    /// accepted on top of both lists.
    ///
    /// # Errors
    ///
    /// [`CliError::Usage`] for an option missing its value or an unknown
    /// option.
    pub fn parse(
        raw: &[String],
        value_options: &[&str],
        switch_options: &[&str],
    ) -> Result<Args, CliError> {
        let mut args = Args::default();
        let mut iter = raw.iter();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                if value_options.contains(&name) || SHARED_VALUE_OPTIONS.contains(&name) {
                    let value = iter.next().ok_or_else(|| {
                        CliError::Usage(format!("option --{name} expects a value"))
                    })?;
                    args.options.insert(name.to_string(), value.clone());
                } else if switch_options.contains(&name) || SHARED_SWITCHES.contains(&name) {
                    args.switches.push(name.to_string());
                } else {
                    return Err(CliError::Usage(format!("unknown option --{name}")));
                }
            } else {
                args.positional.push(arg.clone());
            }
        }
        Ok(args)
    }

    /// The `index`-th positional operand.
    ///
    /// # Errors
    ///
    /// [`CliError::Usage`] when absent.
    pub fn positional(&self, index: usize, what: &str) -> Result<&str, CliError> {
        self.positional
            .get(index)
            .map(String::as_str)
            .ok_or_else(|| CliError::Usage(format!("missing {what}")))
    }

    /// Number of positional operands.
    pub fn positional_len(&self) -> usize {
        self.positional.len()
    }

    /// An option's value, if given.
    pub fn option(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// An option parsed as an integer (decimal or 0x-hex).
    ///
    /// # Errors
    ///
    /// [`CliError::Usage`] on malformed numbers.
    pub fn option_u32(&self, name: &str, default: u32) -> Result<u32, CliError> {
        match self.option(name) {
            None => Ok(default),
            Some(text) => parse_u32(text)
                .ok_or_else(|| CliError::Usage(format!("--{name}: bad number `{text}`"))),
        }
    }

    /// Whether a switch was given.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// The shared `--out` path.
    pub fn out(&self) -> Option<&str> {
        self.option("out")
    }

    /// Whether the shared `--json` switch was given.
    pub fn json(&self) -> bool {
        self.switch("json")
    }
}

/// Parses decimal or `0x` hexadecimal.
pub fn parse_u32(text: &str) -> Option<u32> {
    if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        u32::from_str_radix(hex, 16).ok()
    } else {
        text.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(raw: &[&str]) -> Vec<String> {
        raw.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_mixed() {
        let args = Args::parse(
            &strings(&["input.s", "--cache", "1024", "--verbose", "out.bin"]),
            &["cache"],
            &["verbose"],
        )
        .unwrap();
        assert_eq!(args.positional(0, "input").unwrap(), "input.s");
        assert_eq!(args.positional(1, "output").unwrap(), "out.bin");
        assert_eq!(args.option_u32("cache", 0).unwrap(), 1024);
        assert!(args.switch("verbose"));
        assert!(!args.switch("quiet"));
        assert_eq!(args.positional_len(), 2);
    }

    #[test]
    fn rejects_unknown_and_missing() {
        assert!(Args::parse(&strings(&["--bogus"]), &[], &[]).is_err());
        assert!(Args::parse(&strings(&["--cache"]), &["cache"], &[]).is_err());
    }

    #[test]
    fn shared_options_need_no_declaration() {
        let args = Args::parse(&strings(&["--out", "x.json", "--json"]), &[], &[]).unwrap();
        assert_eq!(args.out(), Some("x.json"));
        assert!(args.json());
        assert!(Args::parse(&strings(&["--out"]), &[], &[]).is_err());
    }

    #[test]
    fn removed_aliases_are_rejected() {
        // The --output/--out-file/--out-dir aliases were deprecated for
        // several releases and are now gone; they must fail loudly
        // rather than be silently ignored.
        for alias in ["--output", "--out-file", "--out-dir"] {
            let err = Args::parse(&strings(&[alias, "f.bin"]), &[], &[]).unwrap_err();
            assert!(err.to_string().contains(&alias[2..]), "{alias}");
        }
    }

    #[test]
    fn numbers_decimal_and_hex() {
        assert_eq!(parse_u32("256"), Some(256));
        assert_eq!(parse_u32("0x100"), Some(256));
        assert_eq!(parse_u32("xyz"), None);
        let args = Args::parse(&strings(&["--base", "0x400"]), &["base"], &[]).unwrap();
        assert_eq!(args.option_u32("base", 0).unwrap(), 0x400);
        let args = Args::parse(&strings(&["--base", "zz"]), &["base"], &[]).unwrap();
        assert!(args.option_u32("base", 0).is_err());
    }

    #[test]
    fn missing_positional_reports_name() {
        let args = Args::parse(&[], &[], &[]).unwrap();
        let err = args.positional(0, "input file").unwrap_err();
        assert!(err.to_string().contains("input file"));
    }
}
