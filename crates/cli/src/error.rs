use std::error::Error;
use std::fmt;

/// Top-level tool errors, each rendered as a one-line message.
#[derive(Debug)]
#[non_exhaustive]
pub enum CliError {
    /// Bad command line; the message explains what was expected.
    Usage(String),
    /// File I/O failure with the offending path.
    Io {
        /// The path being read or written.
        path: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// Assembly failure.
    Asm(ccrp_asm::AsmError),
    /// Emulation failure.
    Emu(ccrp_emu::EmuError),
    /// A checkpoint file was rejected (corrupt, truncated, wrong
    /// version, or taken on a different program).
    Checkpoint(ccrp_emu::CheckpointError),
    /// Compression/image failure.
    Ccrp(ccrp::CcrpError),
    /// Simulation failure.
    Sim(ccrp_sim::SimError),
    /// A fault-injection campaign violated the hardening contract
    /// (panics, hangs, or silent miscompares on CRC-carrying images).
    Campaign(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage: {msg}"),
            CliError::Io { path, source } => write!(f, "{path}: {source}"),
            CliError::Asm(e) => write!(f, "assembly failed: {e}"),
            CliError::Emu(e) => write!(f, "execution failed: {e}"),
            CliError::Checkpoint(e) => write!(f, "checkpoint rejected: {e}"),
            CliError::Ccrp(e) => write!(f, "compression failed: {e}"),
            CliError::Sim(e) => write!(f, "simulation failed: {e}"),
            CliError::Campaign(msg) => write!(f, "fault campaign failed: {msg}"),
        }
    }
}

impl Error for CliError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CliError::Usage(_) | CliError::Campaign(_) => None,
            CliError::Io { source, .. } => Some(source),
            CliError::Asm(e) => Some(e),
            CliError::Emu(e) => Some(e),
            CliError::Checkpoint(e) => Some(e),
            CliError::Ccrp(e) => Some(e),
            CliError::Sim(e) => Some(e),
        }
    }
}

impl From<ccrp_asm::AsmError> for CliError {
    fn from(e: ccrp_asm::AsmError) -> Self {
        CliError::Asm(e)
    }
}

impl From<ccrp_emu::EmuError> for CliError {
    fn from(e: ccrp_emu::EmuError) -> Self {
        CliError::Emu(e)
    }
}

impl From<ccrp_emu::CheckpointError> for CliError {
    fn from(e: ccrp_emu::CheckpointError) -> Self {
        CliError::Checkpoint(e)
    }
}

impl From<ccrp::CcrpError> for CliError {
    fn from(e: ccrp::CcrpError) -> Self {
        CliError::Ccrp(e)
    }
}

impl From<ccrp_sim::SimError> for CliError {
    fn from(e: ccrp_sim::SimError) -> Self {
        CliError::Sim(e)
    }
}

/// Reads a file with path-tagged errors.
pub fn read_file(path: &str) -> Result<Vec<u8>, CliError> {
    std::fs::read(path).map_err(|source| CliError::Io {
        path: path.to_string(),
        source,
    })
}

/// Reads a UTF-8 text file with path-tagged errors.
pub fn read_text(path: &str) -> Result<String, CliError> {
    std::fs::read_to_string(path).map_err(|source| CliError::Io {
        path: path.to_string(),
        source,
    })
}

/// Writes a file with path-tagged errors.
pub fn write_file(path: &str, bytes: &[u8]) -> Result<(), CliError> {
    std::fs::write(path, bytes).map_err(|source| CliError::Io {
        path: path.to_string(),
        source,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_errors_carry_paths() {
        let err = read_file("/definitely/not/a/file").unwrap_err();
        assert!(err.to_string().contains("/definitely/not/a/file"));
    }

    #[test]
    fn usage_prefix() {
        assert!(CliError::Usage("x".into())
            .to_string()
            .starts_with("usage:"));
    }
}
