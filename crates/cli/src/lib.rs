//! `ccrp-tools`: the command-line face of the CCRP reproduction.
//!
//! One binary covering the embedded development flow the paper describes
//! in §1 — compile on the host, compress with the development-system
//! tool, burn the container, and evaluate the memory-system trade-offs:
//!
//! ```text
//! ccrp-tools asm       prog.s --out prog.bin       # assemble
//! ccrp-tools disasm    prog.bin                    # inspect code
//! ccrp-tools run       prog.s --stats              # execute on the R2000 emulator
//! ccrp-tools compress  prog.s --out prog.ccrp      # the paper's "compression tool"
//! ccrp-tools inspect   prog.ccrp --disasm          # look inside the ROM image
//! ccrp-tools profile   prog.s --top 10             # hottest cache lines
//! ccrp-tools simulate  prog.s --sweep              # standard vs CCRP tables
//! ccrp-tools workloads --verify                    # the paper's benchmark suite
//! ccrp-tools sweep     --jobs 8 --out results/     # parallel experiment sweep
//! ```
//!
//! Library form exists so the subcommands are unit-testable; the binary
//! in `main.rs` is a thin dispatcher.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod args;
pub mod commands;
mod error;

pub use args::{parse_u32, Args};
pub use error::{read_file, read_text, write_file, CliError};

use std::io::Write;

/// Loads program text bytes from `path`: `.s`/`.asm` sources are
/// assembled; anything else is read as a raw little-endian text binary.
///
/// # Errors
///
/// I/O or assembly errors.
pub fn load_text_bytes(path: &str) -> Result<Vec<u8>, CliError> {
    if path.ends_with(".s") || path.ends_with(".asm") {
        let image = ccrp_asm::assemble(&read_text(path)?)?;
        Ok(image.text_bytes().to_vec())
    } else {
        read_file(path)
    }
}

/// The tool's help text.
pub const USAGE: &str = "\
ccrp-tools — Compressed Code RISC Processor toolchain

USAGE: ccrp-tools <command> [options]

COMMANDS:
  asm <in.s> [--out f] [--text-base N] [--data-base N] [--symbols]
      assemble MIPS source to a raw text binary
  disasm <in> [--base N]
      disassemble a .s file or raw text binary
  run <in.s> [--input 1,2,3] [--max-steps N] [--stats]
      [--checkpoint-every N --checkpoint-out FILE] [--resume-from FILE]
      execute on the functional R2000 emulator; --checkpoint-every
      serializes the machine state to --checkpoint-out every N retired
      instructions, --resume-from restores such a file (same program
      only) and continues from the recorded instruction
  compress <in> [--out f.ccrp] [--alignment byte|word] [--code preselected|self]
           [--codec byte-huffman|positional|lzw] [--text-base N] [--crc]
      compress into a CCRP ROM container (--codec: the line-codec
      backend, default byte-huffman; --crc: v2 container with header
      and per-line CRC-32 integrity records)
  inspect <in.ccrp> [--lines N] [--disasm]
      report a container's layout, codec, and LAT
  profile <in.s> [--top N]
      execute and rank the hottest cache lines
  simulate <in.s> [--cache N] [--memory eprom|burst|dram|all] [--clb N]
           [--dcache-miss PCT] [--code preselected|self] [--alignment byte|word] [--sweep]
      compare the standard processor against the CCRP
  trace <in.s> [--cache N] [--memory eprom|burst|dram] [--clb N]
        [--limit N] [--metrics] [--out trace.json]
      export the probed CCRP-vs-standard run as Chrome trace-event JSON
      (load in Perfetto or chrome://tracing; timestamps are simulated
      cycles); --metrics adds the counter/histogram registry
  workloads [--verify]
      list (and self-check) the paper's benchmark programs
  sweep [--experiment fig5|tables1_8|tables9_10|fig9|tables11_13|all]
        [--engine trace|reexec] [--codecs] [--jobs N] [--out DIR]
        [--tables] [--metrics]
      run the paper experiments across a worker pool and write
      machine-readable BENCH_<experiment>.json results files; the
      default trace engine executes each workload once and replays
      its captured trace for every configuration (--engine reexec
      re-executes every cell); --codecs runs the codec × memory-model
      ablation matrix into BENCH_codecs.json instead; --metrics folds
      probe-derived histograms into each report
  trace-capture <workload|in.s|file.trace> [--out f.trace]
      capture a workload or assembly program's fetch trace into the
      run-compacted .trace container the sweep engine replays, or
      summarize an existing .trace file
  faultsim [--trials N] [--seed N] [--jobs N] [--out FILE]
      run a seeded fault-injection campaign over the container format,
      write BENCH_faultsim.json, and fail on panics, hangs, or silent
      miscompares in CRC-carrying (v2) containers
  difftest [--programs N] [--seed N] [--jobs N] [--checkpoint-every N]
           [--out FILE]
      run a differential co-simulation campaign: seeded random programs
      executed in lockstep on the plain and compressed machines with
      refill timing invariants checked per program; write
      BENCH_difftest.json and fail on any divergence or violation;
      --checkpoint-every routes every trial through the segmented
      (checkpoint/restore) co-simulator with identical verdicts
  serve [--addr HOST:PORT] [--addr-file FILE] [--workers N] [--queue N]
        [--fuel N] [--deadline-ms N] [--max-requests N] [--chaos]
      start the ccrp-served daemon: a framed TCP service exposing
      compress/verify/inspect/expand-line/run/sweep-cell/attest with
      per-request isolation, watchdog deadlines, fuel budgets, and
      load shedding; --addr-file publishes the bound (ephemeral)
      address, --max-requests stops after N requests (0 = forever)
  servesim [--trials N] [--seed N] [--jobs N] [--burst N] [--out FILE]
      run a seeded hostile-client campaign (corrupt uploads, truncated
      and oversized frames, slow-loris stalls, runaway programs,
      deliberate handler panics) against a real in-process server,
      write BENCH_servesim.json, and fail on wrong responses, silent
      corrupt-v2 acceptance, hangs, or uncontained panics
  help
      print this text

SHARED OPTIONS (every command):
  --out FILE   where the command writes its artifact or results; for
               report-only commands, redirects the report to FILE
  --json       emit the report as machine-readable JSON where the
               command supports it
";

/// One subcommand's dispatch entry.
struct Command {
    name: &'static str,
    value_options: &'static [&'static str],
    switches: &'static [&'static str],
    run: fn(&Args, &mut dyn Write) -> Result<(), CliError>,
    /// Whether the command interprets `--out` itself (an artifact or
    /// results path). When false, `--out` redirects the command's
    /// report to a file via the shared dispatch path.
    owns_out: bool,
}

const COMMANDS: &[Command] = &[
    Command {
        name: "asm",
        value_options: commands::asm::VALUE_OPTIONS,
        switches: commands::asm::SWITCHES,
        run: commands::asm::run,
        owns_out: true,
    },
    Command {
        name: "disasm",
        value_options: commands::disasm::VALUE_OPTIONS,
        switches: commands::disasm::SWITCHES,
        run: commands::disasm::run,
        owns_out: false,
    },
    Command {
        name: "run",
        value_options: commands::run::VALUE_OPTIONS,
        switches: commands::run::SWITCHES,
        run: commands::run::run,
        owns_out: false,
    },
    Command {
        name: "compress",
        value_options: commands::compress::VALUE_OPTIONS,
        switches: commands::compress::SWITCHES,
        run: commands::compress::run,
        owns_out: true,
    },
    Command {
        name: "profile",
        value_options: commands::profile::VALUE_OPTIONS,
        switches: commands::profile::SWITCHES,
        run: commands::profile::run,
        owns_out: false,
    },
    Command {
        name: "inspect",
        value_options: commands::inspect::VALUE_OPTIONS,
        switches: commands::inspect::SWITCHES,
        run: commands::inspect::run,
        owns_out: false,
    },
    Command {
        name: "simulate",
        value_options: commands::simulate::VALUE_OPTIONS,
        switches: commands::simulate::SWITCHES,
        run: commands::simulate::run,
        owns_out: false,
    },
    Command {
        name: "workloads",
        value_options: commands::workloads::VALUE_OPTIONS,
        switches: commands::workloads::SWITCHES,
        run: commands::workloads::run,
        owns_out: false,
    },
    Command {
        name: "difftest",
        value_options: commands::difftest::VALUE_OPTIONS,
        switches: commands::difftest::SWITCHES,
        run: commands::difftest::run,
        owns_out: true,
    },
    Command {
        name: "faultsim",
        value_options: commands::faultsim::VALUE_OPTIONS,
        switches: commands::faultsim::SWITCHES,
        run: commands::faultsim::run,
        owns_out: true,
    },
    Command {
        name: "serve",
        value_options: commands::serve::VALUE_OPTIONS,
        switches: commands::serve::SWITCHES,
        run: commands::serve::run,
        owns_out: false,
    },
    Command {
        name: "servesim",
        value_options: commands::servesim::VALUE_OPTIONS,
        switches: commands::servesim::SWITCHES,
        run: commands::servesim::run,
        owns_out: true,
    },
    Command {
        name: "sweep",
        value_options: commands::sweep::VALUE_OPTIONS,
        switches: commands::sweep::SWITCHES,
        run: commands::sweep::run,
        owns_out: true,
    },
    Command {
        name: "trace",
        value_options: commands::trace::VALUE_OPTIONS,
        switches: commands::trace::SWITCHES,
        run: commands::trace::run,
        owns_out: true,
    },
    Command {
        name: "trace-capture",
        value_options: commands::trace_capture::VALUE_OPTIONS,
        switches: commands::trace_capture::SWITCHES,
        run: commands::trace_capture::run,
        owns_out: true,
    },
];

/// Dispatches one invocation. `argv` excludes the program name.
///
/// Every subcommand accepts the shared `--out`/`--json` options: for
/// commands that don't interpret `--out` themselves, the report is
/// captured here and written to the file instead of `out`.
///
/// # Errors
///
/// Any subcommand error; `main` prints it and exits nonzero.
pub fn dispatch(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let Some(command) = argv.first() else {
        return Err(CliError::Usage(
            "no command given; try `ccrp-tools help`".into(),
        ));
    };
    let rest = &argv[1..];
    if matches!(command.as_str(), "help" | "--help" | "-h") {
        write!(out, "{USAGE}").ok();
        return Ok(());
    }
    let Some(entry) = COMMANDS.iter().find(|c| c.name == command.as_str()) else {
        return Err(CliError::Usage(format!(
            "unknown command `{command}`; try `ccrp-tools help`"
        )));
    };
    let args = Args::parse(rest, entry.value_options, entry.switches)?;
    match args.out() {
        Some(path) if !entry.owns_out => {
            let mut captured = Vec::new();
            (entry.run)(&args, &mut captured)?;
            write_file(path, &captured)?;
            writeln!(out, "wrote report to {path}").ok();
            Ok(())
        }
        _ => (entry.run)(&args, out),
    }
}

#[cfg(test)]
pub(crate) mod test_util {
    use std::sync::atomic::{AtomicU64, Ordering};

    static COUNTER: AtomicU64 = AtomicU64::new(0);

    /// A unique path in the system temp directory.
    pub fn temp_path(tag: &str) -> String {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir()
            .join(format!("ccrp_tools_{}_{n}_{tag}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    /// Writes `contents` to a fresh temp file and returns its path.
    pub fn write_temp(tag: &str, contents: &str) -> String {
        let path = temp_path(tag);
        std::fs::write(&path, contents).expect("temp file writes");
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_and_unknown_commands() {
        let mut buffer = Vec::new();
        dispatch(&["help".to_string()], &mut buffer).unwrap();
        assert!(String::from_utf8(buffer).unwrap().contains("COMMANDS"));

        let err = dispatch(&["frobnicate".to_string()], &mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains("frobnicate"));
        assert!(dispatch(&[], &mut Vec::new()).is_err());
    }

    #[test]
    fn full_flow_through_dispatch() {
        // asm -> compress -> inspect -> simulate, all through the public
        // entry point, sharing temp files.
        let src = test_util::write_temp(
            "flow.s",
            "main: li $t0, 500\nloop: addiu $t0, $t0, -1\n bnez $t0, loop\n li $v0, 10\n syscall\n",
        );
        let container = test_util::temp_path("flow.ccrp");

        let mut buffer = Vec::new();
        dispatch(
            &[
                "compress".into(),
                src.clone(),
                "--out".into(),
                container.clone(),
                "--code".into(),
                "self".into(),
            ],
            &mut buffer,
        )
        .unwrap();
        dispatch(&["inspect".into(), container.clone()], &mut buffer).unwrap();
        dispatch(
            &[
                "simulate".into(),
                src.clone(),
                "--memory".into(),
                "eprom".into(),
                "--code".into(),
                "self".into(),
            ],
            &mut buffer,
        )
        .unwrap();
        let text = String::from_utf8(buffer).unwrap();
        assert!(text.contains("LAT:"));
        assert!(text.contains("rel. perf"));
        std::fs::remove_file(src).ok();
        std::fs::remove_file(container).ok();
    }
}
