//! The `ccrp-tools` binary: parse, dispatch, report.

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    match ccrp_cli::dispatch(&argv, &mut out) {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("ccrp-tools: {err}");
            ExitCode::FAILURE
        }
    }
}
