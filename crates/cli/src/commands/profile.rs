//! `ccrp-tools profile <input.s> [--top N]`
//!
//! Executes a program and reports its hottest 32-byte cache lines — the
//! view that explains a workload's miss-rate curve before any simulation
//! is run.

use std::collections::BTreeMap;
use std::io::Write;

use ccrp_bench::json::Json;
use ccrp_emu::{Machine, ProgramTrace};

use crate::args::Args;
use crate::error::{read_text, CliError};

/// Option names consuming a value.
pub const VALUE_OPTIONS: &[&str] = &["top"];
/// Switch names.
pub const SWITCHES: &[&str] = &[];

/// Runs the subcommand.
///
/// # Errors
///
/// Usage, I/O, assembly, or runtime errors.
pub fn run(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let input = args.positional(0, "input assembly file")?;
    let source = read_text(input)?;
    let image = ccrp_asm::assemble(&source)?;
    let mut machine = Machine::new(&image);
    let mut trace = ProgramTrace::new();
    machine.run(&mut trace)?;

    // Aggregate fetches per cache line.
    let mut per_line: BTreeMap<u32, u64> = BTreeMap::new();
    for (pc, _) in trace.iter() {
        *per_line.entry(pc & !31).or_insert(0) += 1;
    }
    let total = trace.len() as u64;
    let touched = per_line.len();

    // Symbol lookup: the greatest label at or below an address.
    let symbols: Vec<(u32, String)> = {
        let mut list: Vec<(u32, String)> = image
            .symbols()
            .filter(|&(_, addr)| addr < image.text_size())
            .map(|(name, addr)| (addr, name.to_string()))
            .collect();
        list.sort();
        list
    };
    let symbol_for = |addr: u32| -> String {
        match symbols.iter().rev().find(|&&(at, _)| at <= addr) {
            Some((at, name)) if addr == *at => name.clone(),
            Some((at, name)) => format!("{name}+{:#x}", addr - at),
            None => String::from("?"),
        }
    };

    let mut ranked: Vec<(u64, u32)> = per_line.iter().map(|(&line, &n)| (n, line)).collect();
    ranked.sort_by(|a, b| b.cmp(a));
    let top = args.option_u32("top", 10)? as usize;

    if args.json() {
        let json = Json::obj([
            ("schema", Json::str("ccrp-profile/1")),
            ("instructions", Json::U64(total)),
            ("lines_touched", Json::U64(touched as u64)),
            ("text_bytes", Json::U64(u64::from(image.text_size()))),
            ("data_accesses", Json::U64(trace.data_accesses())),
            (
                "hot_lines",
                Json::Arr(
                    ranked
                        .iter()
                        .take(top)
                        .map(|&(count, line)| {
                            Json::obj([
                                ("line", Json::Str(format!("{line:#x}"))),
                                ("fetches", Json::U64(count)),
                                ("share", Json::F64(count as f64 / total as f64)),
                                ("symbol", Json::str(&symbol_for(line))),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        write!(out, "{}", json.to_pretty()).ok();
        return Ok(());
    }

    writeln!(
        out,
        "{input}: {total} instructions over {touched} lines ({} bytes of text); {} data accesses",
        image.text_size(),
        trace.data_accesses()
    )
    .ok();
    writeln!(out, "hot-line working set is what must fit in the I-cache:").ok();
    let mut cumulative = 0u64;
    writeln!(
        out,
        "{:>10} {:>8} {:>7} {:>7}  symbol",
        "line", "fetches", "share", "cumul"
    )
    .ok();
    for &(count, line) in ranked.iter().take(top) {
        cumulative += count;
        writeln!(
            out,
            "{:>#10x} {:>8} {:>6.1}% {:>6.1}%  {}",
            line,
            count,
            count as f64 / total as f64 * 100.0,
            cumulative as f64 / total as f64 * 100.0,
            symbol_for(line)
        )
        .ok();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::write_temp;

    #[test]
    fn profiles_hot_loop() {
        let src = write_temp(
            "prof_in.s",
            "
main:   li $t0, 3000
hot:    addiu $t0, $t0, -1
        bnez $t0, hot
        jal cold
        li $v0, 10
        syscall
cold:   jr $ra
",
        );
        let args = Args::parse(
            &[src.clone(), "--top".into(), "3".into()],
            VALUE_OPTIONS,
            SWITCHES,
        )
        .unwrap();
        let mut buffer = Vec::new();
        run(&args, &mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        // The loop line dominates and is attributed to a symbol.
        assert!(text.contains("hot") || text.contains("main"), "{text}");
        let first_data_line = text.lines().nth(3).expect("has rows");
        assert!(first_data_line.contains('%'));
        std::fs::remove_file(src).ok();
    }
}
