//! `ccrp-tools sweep [--experiment NAME|all] [--engine trace|reexec]
//! [--jobs N] [--out DIR] [--codecs] [--isa-compare]`
//!
//! Drives the parallel experiment runner: every paper experiment is
//! decomposed into independent (workload, configuration) cells, swept
//! across `--jobs` worker threads, and written as a machine-readable
//! `BENCH_<experiment>.json` results file under `--out`. The default
//! `trace` engine executes each workload once, captures a compacted
//! fetch trace, and replays it for every configuration; `--engine
//! reexec` re-executes each cell from scratch. Both engines — and any
//! worker count — produce bit-identical results; only the `timing`
//! section of the JSON varies.
//!
//! `--codecs` runs the codec × memory-model ablation matrix instead:
//! every workload compressed with each [`ccrp_compress::LineCodec`]
//! backend, replayed under every memory model, written as
//! `BENCH_codecs.json`.
//!
//! `--isa-compare` runs the cross-ISA comparison instead: MIPS+CCRP,
//! RV32I+CCRP, RVC alone, and CCRP-over-RVC per workload and memory
//! model, written as `BENCH_isa_compare.json`.

use std::io::Write;
use std::path::Path;

use std::time::Duration;

use ccrp_bench::json::Json;
use ccrp_bench::{codecs, isa_compare, render, runner, Engine, Experiment, SweepOptions, ToJson};

use crate::args::Args;
use crate::error::{write_file, CliError};

/// Option names consuming a value.
pub const VALUE_OPTIONS: &[&str] = &["experiment", "engine", "jobs", "out"];
/// Switch names.
pub const SWITCHES: &[&str] = &["tables", "metrics", "codecs", "isa-compare"];

/// Runs the subcommand.
///
/// # Errors
///
/// [`CliError::Usage`] for an unknown experiment or engine name or a
/// bad `--jobs` value; [`CliError::Io`] when a results file cannot be
/// written.
pub fn run(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let experiments: Vec<Experiment> = match args.option("experiment") {
        None | Some("all") => Experiment::ALL.to_vec(),
        Some(name) => vec![Experiment::from_name(name).ok_or_else(|| {
            CliError::Usage(format!(
                "unknown experiment `{name}`; expected one of {}, or all",
                Experiment::ALL.map(Experiment::name).join(", ")
            ))
        })?],
    };
    let jobs = args.option_u32("jobs", runner::available_jobs() as u32)? as usize;
    if jobs == 0 {
        return Err(CliError::Usage("--jobs must be at least 1".into()));
    }
    let engine = match args.option("engine") {
        None => Engine::Trace,
        Some(name) => Engine::from_name(name).ok_or_else(|| {
            CliError::Usage(format!("unknown engine `{name}`; expected trace or reexec"))
        })?,
    };
    let out_dir = args.option("out").unwrap_or(".");
    let metrics = args.switch("metrics");

    // `--codecs` and `--isa-compare` run their ablation matrices
    // instead of the paper-experiment sweep.
    if args.switch("codecs") {
        let report = codecs::run(codecs::CodecsOptions { jobs });
        return write_matrix(
            args,
            out,
            out_dir,
            "codecs",
            "BENCH_codecs.json",
            report.cells.len(),
            report.total_wall,
            jobs,
            &report.to_json(),
        );
    }
    if args.switch("isa-compare") {
        let report = isa_compare::run(isa_compare::IsaCompareOptions { jobs });
        return write_matrix(
            args,
            out,
            out_dir,
            "isa-compare",
            "BENCH_isa_compare.json",
            report.cells.len(),
            report.total_wall,
            jobs,
            &report.to_json(),
        );
    }

    let mut summaries = Vec::new();
    for experiment in experiments {
        let report = runner::run(
            experiment,
            &SweepOptions {
                jobs,
                metrics,
                engine,
            },
        );
        let path = Path::new(out_dir).join(format!("BENCH_{}.json", experiment.name()));
        let path = path.to_string_lossy().into_owned();
        write_file(&path, report.to_json().to_pretty().as_bytes())?;
        if args.json() {
            summaries.push(Json::obj([
                ("experiment", Json::str(experiment.name())),
                ("cells", Json::U64(report.cells.len() as u64)),
                ("jobs", Json::U64(report.jobs as u64)),
                (
                    "wall_us",
                    Json::U64(u64::try_from(report.total_wall.as_micros()).unwrap_or(u64::MAX)),
                ),
                ("results_file", Json::str(&path)),
            ]));
            continue;
        }
        writeln!(
            out,
            "{:<12} {:>3} cells {:>2} jobs {:>9.2?}  -> {path}",
            experiment.name(),
            report.cells.len(),
            report.jobs,
            report.total_wall,
        )
        .ok();
        if args.switch("tables") {
            write!(out, "{}", render::report(&report)).ok();
        }
    }
    if args.json() {
        let json = Json::obj([
            ("schema", Json::str("ccrp-sweep-summary/1")),
            ("sweeps", Json::Arr(summaries)),
        ]);
        write!(out, "{}", json.to_pretty()).ok();
    }
    Ok(())
}

/// Writes one ablation-matrix report and its one-line (or `--json`)
/// summary, shared by `--codecs` and `--isa-compare`.
#[allow(clippy::too_many_arguments)]
fn write_matrix(
    args: &Args,
    out: &mut dyn Write,
    out_dir: &str,
    name: &str,
    file: &str,
    cells: usize,
    total_wall: Duration,
    jobs: usize,
    report: &Json,
) -> Result<(), CliError> {
    let path = Path::new(out_dir).join(file);
    let path = path.to_string_lossy().into_owned();
    write_file(&path, report.to_pretty().as_bytes())?;
    if args.json() {
        let json = Json::obj([
            ("schema", Json::str("ccrp-sweep-summary/1")),
            (
                "sweeps",
                Json::Arr(vec![Json::obj([
                    ("experiment", Json::str(name)),
                    ("cells", Json::U64(cells as u64)),
                    ("jobs", Json::U64(jobs as u64)),
                    (
                        "wall_us",
                        Json::U64(u64::try_from(total_wall.as_micros()).unwrap_or(u64::MAX)),
                    ),
                    ("results_file", Json::str(&path)),
                ])]),
            ),
        ]);
        write!(out, "{}", json.to_pretty()).ok();
    } else {
        writeln!(
            out,
            "{name:<12} {cells:>3} cells {jobs:>2} jobs {total_wall:>9.2?}  -> {path}",
        )
        .ok();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::temp_path;

    fn strings(raw: &[&str]) -> Vec<String> {
        raw.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn rejects_unknown_experiment_and_zero_jobs() {
        let args = Args::parse(
            &strings(&["--experiment", "tables_1_8"]),
            VALUE_OPTIONS,
            SWITCHES,
        )
        .unwrap();
        let err = run(&args, &mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains("tables_1_8"));
        assert!(err.to_string().contains("tables1_8"));

        let args = Args::parse(&strings(&["--jobs", "0"]), VALUE_OPTIONS, SWITCHES).unwrap();
        assert!(run(&args, &mut Vec::new()).is_err());
    }

    #[test]
    fn rejects_unknown_engine() {
        let args = Args::parse(&strings(&["--engine", "replay"]), VALUE_OPTIONS, SWITCHES).unwrap();
        let err = run(&args, &mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains("replay"));
        assert!(err.to_string().contains("reexec"));
    }

    #[test]
    fn fig5_sweep_writes_results_file() {
        // fig5 is the one experiment cheap enough for a CLI unit test;
        // the full matrix runs in the integration suite.
        let dir = temp_path("sweep_out");
        std::fs::create_dir_all(&dir).unwrap();
        let args = Args::parse(
            &strings(&[
                "--experiment",
                "fig5",
                "--jobs",
                "2",
                "--out",
                &dir,
                "--tables",
            ]),
            VALUE_OPTIONS,
            SWITCHES,
        )
        .unwrap();
        let mut buffer = Vec::new();
        run(&args, &mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        assert!(text.contains("fig5"));
        assert!(text.contains("Figure 5"));
        let json = std::fs::read_to_string(Path::new(&dir).join("BENCH_fig5.json")).unwrap();
        assert!(json.contains("\"schema\": \"ccrp-bench-sweep/1\""));
        assert!(json.contains("\"weighted_average\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn isa_compare_sweep_writes_matrix_file() {
        let dir = temp_path("sweep_isa_out");
        std::fs::create_dir_all(&dir).unwrap();
        let args = Args::parse(
            &strings(&["--isa-compare", "--jobs", "2", "--out", &dir]),
            VALUE_OPTIONS,
            SWITCHES,
        )
        .unwrap();
        let mut buffer = Vec::new();
        run(&args, &mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        assert!(text.contains("isa-compare"));
        let json = std::fs::read_to_string(Path::new(&dir).join("BENCH_isa_compare.json")).unwrap();
        assert!(json.contains("\"schema\": \"ccrp-isa-compare/1\""));
        for variant in ["mips-ccrp", "rv32i-ccrp", "rv32c", "rv32c-ccrp"] {
            assert!(
                json.contains(&format!("\"variant\": \"{variant}\"")),
                "{variant}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn codecs_sweep_writes_matrix_file() {
        let dir = temp_path("sweep_codecs_out");
        std::fs::create_dir_all(&dir).unwrap();
        let args = Args::parse(
            &strings(&["--codecs", "--jobs", "2", "--out", &dir]),
            VALUE_OPTIONS,
            SWITCHES,
        )
        .unwrap();
        let mut buffer = Vec::new();
        run(&args, &mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        assert!(text.contains("codecs"));
        let json = std::fs::read_to_string(Path::new(&dir).join("BENCH_codecs.json")).unwrap();
        assert!(json.contains("\"schema\": \"ccrp-bench-codecs/1\""));
        for codec in ["byte-huffman", "positional", "lzw"] {
            assert!(json.contains(&format!("\"codec\": \"{codec}\"")), "{codec}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
