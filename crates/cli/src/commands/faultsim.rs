//! `ccrp-tools faultsim [--trials N] [--seed N] [--jobs N] [--out FILE]`
//!
//! Runs a seeded fault-injection campaign over the container format and
//! writes the outcome counts to a machine-readable JSON file (default
//! `BENCH_faultsim.json`). Outcomes are a pure function of
//! `(--trials, --seed)`, so the results section of the JSON is
//! bit-identical for any `--jobs` value.
//!
//! The command exits nonzero when the campaign violates the hardening
//! contract: any panic, any hang, or any silent miscompare on a
//! version-2 (CRC-carrying) container.

use std::io::Write;

use ccrp::FaultRegion;
use ccrp_bench::faultsim::{self, FaultsimOptions, Mode, Outcome};
use ccrp_bench::{runner, ToJson};

use crate::args::Args;
use crate::error::{write_file, CliError};

/// Option names consuming a value.
pub const VALUE_OPTIONS: &[&str] = &["trials", "seed", "jobs", "out"];
/// Switch names.
pub const SWITCHES: &[&str] = &[];

/// Runs the subcommand.
///
/// # Errors
///
/// [`CliError::Usage`] for bad numbers, [`CliError::Io`] when the
/// results file cannot be written, and [`CliError::Campaign`] when the
/// campaign detects a panic, a hang, or a v2 silent miscompare.
pub fn run(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let trials = args.option_u32("trials", 1000)? as usize;
    if trials == 0 {
        return Err(CliError::Usage("--trials must be at least 1".into()));
    }
    let seed = match args.option("seed") {
        None => 42,
        Some(text) => text
            .parse::<u64>()
            .map_err(|_| CliError::Usage(format!("--seed: bad number `{text}`")))?,
    };
    let jobs = args.option_u32("jobs", runner::available_jobs() as u32)? as usize;
    if jobs == 0 {
        return Err(CliError::Usage("--jobs must be at least 1".into()));
    }
    let path = args.option("out").unwrap_or("BENCH_faultsim.json");

    let report = faultsim::run(FaultsimOptions { trials, seed, jobs });
    write_file(path, report.to_json().to_pretty().as_bytes())?;

    if args.json() {
        // Same document as the results file, for pipelines that read
        // stdout instead of the --out path.
        write!(out, "{}", report.to_json().to_pretty()).ok();
        return check(&report);
    }

    writeln!(
        out,
        "faultsim: {trials} trials seed {seed} {jobs} jobs {:?}  -> {path}",
        report.total_wall,
    )
    .ok();
    for outcome in Outcome::ALL {
        writeln!(
            out,
            "  {:<18} {:>6} (v1 {:>5}, v2 {:>5})",
            outcome.name(),
            report.count(outcome, None),
            report.count(outcome, Some(Mode::V1)),
            report.count(outcome, Some(Mode::V2)),
        )
        .ok();
    }
    writeln!(
        out,
        "  regions: {}",
        FaultRegion::ALL.map(FaultRegion::name).join(", ")
    )
    .ok();

    check(&report)
}

/// Maps the campaign's hardening contract onto the exit status.
fn check(report: &faultsim::FaultsimReport) -> Result<(), CliError> {
    if !report.acceptable() {
        return Err(CliError::Campaign(format!(
            "{} panic(s), {} hang(s), {} v2 silent miscompare(s)",
            report.count(Outcome::Panic, None),
            report.count(Outcome::Hang, None),
            report.count(Outcome::SilentMiscompare, Some(Mode::V2)),
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::temp_path;

    fn strings(raw: &[&str]) -> Vec<String> {
        raw.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn rejects_zero_trials_and_bad_seed() {
        let args = Args::parse(&strings(&["--trials", "0"]), VALUE_OPTIONS, SWITCHES).unwrap();
        assert!(run(&args, &mut Vec::new()).is_err());

        let args = Args::parse(&strings(&["--seed", "-3"]), VALUE_OPTIONS, SWITCHES).unwrap();
        let err = run(&args, &mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains("--seed"));
    }

    #[test]
    fn small_campaign_writes_results_file() {
        let path = temp_path("faultsim.json");
        let args = Args::parse(
            &strings(&[
                "--trials", "60", "--seed", "7", "--jobs", "2", "--out", &path,
            ]),
            VALUE_OPTIONS,
            SWITCHES,
        )
        .unwrap();
        let mut buffer = Vec::new();
        run(&args, &mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        assert!(text.contains("faultsim: 60 trials"));
        assert!(text.contains("detected"));
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"schema\": \"ccrp-faultsim/1\""));
        assert!(json.contains("\"acceptable\": true"));
        std::fs::remove_file(&path).ok();
    }
}
