//! Subcommand implementations. Each takes parsed [`Args`](crate::Args)
//! and a writer so tests can capture output.

pub mod asm;
pub mod compress;
pub mod difftest;
pub mod disasm;
pub mod faultsim;
pub mod inspect;
pub mod profile;
pub mod run;
pub mod serve;
pub mod servesim;
pub mod simulate;
pub mod sweep;
pub mod trace;
pub mod trace_capture;
pub mod workloads;
