//! `ccrp-tools simulate <input.s> [--cache N] [--memory
//! eprom|burst|dram|all] [--clb N] [--dcache-miss PCT] [--code
//! preselected|self] [--sweep]`
//!
//! Assembles a program, captures its trace, compresses it, and compares
//! the standard processor against the CCRP — one row (or a cache sweep)
//! of the paper's tables for *your* program.

use std::io::Write;

use ccrp::CompressedImage;
use ccrp_bench::json::Json;
use ccrp_bench::ToJson;
use ccrp_compress::{ByteCode, ByteHistogram};
use ccrp_emu::{Machine, ProgramTrace};
use ccrp_sim::{DataCacheModel, MemoryModel, Simulation, SystemConfig};
use ccrp_workloads::preselected_code;

use crate::args::Args;
use crate::error::{read_text, CliError};

/// Option names consuming a value.
pub const VALUE_OPTIONS: &[&str] = &["cache", "memory", "clb", "dcache-miss", "code", "alignment"];
/// Switch names.
pub const SWITCHES: &[&str] = &["sweep"];

fn memories(args: &Args) -> Result<Vec<MemoryModel>, CliError> {
    Ok(match args.option("memory").unwrap_or("all") {
        "eprom" => vec![MemoryModel::Eprom],
        "burst" => vec![MemoryModel::BurstEprom],
        "dram" => vec![MemoryModel::ScDram],
        "all" => MemoryModel::ALL.to_vec(),
        other => {
            return Err(CliError::Usage(format!(
                "--memory: `{other}` is not eprom|burst|dram|all"
            )))
        }
    })
}

/// Assembles `input`, executes it for a trace, and compresses its text
/// per the shared `--code`/`--alignment` options. Used by `simulate`
/// and `trace`.
pub(crate) fn prepare(
    args: &Args,
    input: &str,
) -> Result<(CompressedImage, ProgramTrace), CliError> {
    let source = read_text(input)?;
    let image = ccrp_asm::assemble(&source)?;
    let mut machine = Machine::new(&image);
    let mut trace = ProgramTrace::new();
    machine.run(&mut trace)?;

    let alignment = super::compress::parse_alignment(args)?;
    let code = match args.option("code").unwrap_or("preselected") {
        "preselected" => preselected_code().clone(),
        "self" => ByteCode::bounded(&ByteHistogram::of(image.text_bytes()))
            .map_err(ccrp::CcrpError::from)?,
        other => {
            return Err(CliError::Usage(format!(
                "--code: `{other}` is not preselected|self"
            )))
        }
    };
    let compressed = CompressedImage::build(0, image.text_bytes(), code, alignment)?;
    Ok((compressed, trace))
}

/// Builds the system configuration from the simulation options shared
/// by `simulate` and `trace`.
pub(crate) fn system_config(
    args: &Args,
    memory: MemoryModel,
    cache_bytes: u32,
) -> Result<SystemConfig, CliError> {
    let dcache_pct = args.option_u32("dcache-miss", 100)?;
    if dcache_pct > 100 {
        return Err(CliError::Usage("--dcache-miss: percent above 100".into()));
    }
    Ok(SystemConfig::new()
        .with_cache_bytes(cache_bytes)
        .with_memory(memory)
        .with_clb_entries(args.option_u32("clb", 16)? as usize)
        .with_dcache(DataCacheModel::with_miss_rate(
            f64::from(dcache_pct) / 100.0,
        )))
}

/// Runs the subcommand.
///
/// # Errors
///
/// Usage, I/O, assembly, runtime, or simulation errors.
pub fn run(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let input = args.positional(0, "input assembly file")?;
    let (compressed, trace) = prepare(args, input)?;

    let caches: Vec<u32> = if args.switch("sweep") {
        vec![256, 512, 1024, 2048, 4096]
    } else {
        vec![args.option_u32("cache", 1024)?]
    };

    let mut rows = Vec::new();
    for memory in memories(args)? {
        for &cache_bytes in &caches {
            let config = system_config(args, memory, cache_bytes)?;
            let result = Simulation::new(config).compare(&compressed, trace.iter())?;
            rows.push((memory, cache_bytes, result));
        }
    }

    if args.json() {
        let json = Json::obj([
            ("schema", Json::str("ccrp-simulate/1")),
            ("instructions", Json::U64(trace.len() as u64)),
            (
                "stored_pct",
                Json::F64(compressed.compression_ratio() * 100.0),
            ),
            (
                "rows",
                Json::Arr(
                    rows.iter()
                        .map(|(memory, cache_bytes, result)| {
                            Json::obj([
                                ("memory", Json::str(memory.name())),
                                ("cache_bytes", Json::U64(u64::from(*cache_bytes))),
                                (
                                    "relative_performance",
                                    Json::F64(result.relative_execution_time()),
                                ),
                                ("miss_rate", Json::F64(result.miss_rate())),
                                ("memory_traffic", Json::F64(result.memory_traffic_ratio())),
                                ("standard", result.standard.to_json()),
                                ("ccrp", result.ccrp.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        write!(out, "{}", json.to_pretty()).ok();
        return Ok(());
    }

    writeln!(
        out,
        "{input}: {} dynamic instructions, stored {:.1}% of original",
        trace.len(),
        compressed.compression_ratio() * 100.0
    )
    .ok();
    writeln!(
        out,
        "{:>12} {:>7} {:>10} {:>10} {:>9}",
        "memory", "cache", "rel. perf", "miss rate", "traffic"
    )
    .ok();
    for (memory, cache_bytes, result) in &rows {
        writeln!(
            out,
            "{:>12} {:>6}B {:>10.3} {:>9.2}% {:>8.1}%",
            memory.name(),
            cache_bytes,
            result.relative_execution_time(),
            result.miss_rate() * 100.0,
            result.memory_traffic_ratio() * 100.0
        )
        .ok();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::write_temp;

    fn looped_source() -> String {
        "main: li $t0, 2000\nloop: addiu $t0, $t0, -1\n bnez $t0, loop\n li $v0, 10\n syscall\n"
            .to_string()
    }

    #[test]
    fn simulates_single_config() {
        let src = write_temp("sim_in.s", &looped_source());
        let args = Args::parse(
            &[
                src.clone(),
                "--memory".into(),
                "eprom".into(),
                "--cache".into(),
                "256".into(),
            ],
            VALUE_OPTIONS,
            SWITCHES,
        )
        .unwrap();
        let mut buffer = Vec::new();
        run(&args, &mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        assert!(text.contains("EPROM"));
        assert!(text.contains("256B"));
        std::fs::remove_file(src).ok();
    }

    #[test]
    fn sweep_prints_all_sizes() {
        let src = write_temp("sim_sweep.s", &looped_source());
        let args = Args::parse(
            &[
                src.clone(),
                "--sweep".into(),
                "--memory".into(),
                "burst".into(),
                "--code".into(),
                "self".into(),
            ],
            VALUE_OPTIONS,
            SWITCHES,
        )
        .unwrap();
        let mut buffer = Vec::new();
        run(&args, &mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        for cache in ["256B", "512B", "1024B", "2048B", "4096B"] {
            assert!(text.contains(cache), "{cache} missing");
        }
        std::fs::remove_file(src).ok();
    }

    #[test]
    fn rejects_bad_memory_and_dcache() {
        let src = write_temp("sim_bad.s", &looped_source());
        let args = Args::parse(
            &[src.clone(), "--memory".into(), "tape".into()],
            VALUE_OPTIONS,
            SWITCHES,
        )
        .unwrap();
        assert!(run(&args, &mut Vec::new()).is_err());
        let args = Args::parse(
            &[src.clone(), "--dcache-miss".into(), "150".into()],
            VALUE_OPTIONS,
            SWITCHES,
        )
        .unwrap();
        assert!(run(&args, &mut Vec::new()).is_err());
        std::fs::remove_file(src).ok();
    }
}
