//! `ccrp-tools serve [--addr HOST:PORT] [--addr-file FILE] [--workers N]
//! [--queue N] [--fuel N] [--deadline-ms N] [--max-requests N] [--chaos]`
//!
//! Starts the `ccrp-served` daemon: a threads-and-channels TCP service
//! speaking the length-prefixed framed protocol, with per-request
//! isolation, watchdog deadlines, fuel-bounded execution, and
//! admission control. The bound address is printed (and optionally
//! written to `--addr-file` so scripts can find an ephemeral port).
//!
//! `--max-requests N` stops the server after it has dispatched or shed
//! `N` requests — the hook the tests and smoke scripts use; the default
//! (`0`) serves until the process is killed.

use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

use ccrp_served::{ServerHandle, Service, ServiceConfig};

use crate::args::Args;
use crate::error::{write_file, CliError};

/// Option names consuming a value.
pub const VALUE_OPTIONS: &[&str] = &[
    "addr",
    "addr-file",
    "workers",
    "queue",
    "fuel",
    "deadline-ms",
    "max-requests",
];
/// Switch names.
pub const SWITCHES: &[&str] = &["chaos"];

/// Runs the subcommand.
///
/// # Errors
///
/// [`CliError::Usage`] for bad numbers and [`CliError::Io`] when the
/// listener cannot bind or the address file cannot be written.
pub fn run(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let addr = args.option("addr").unwrap_or("127.0.0.1:0");
    let workers = args.option_u32("workers", 2)?.max(1) as usize;
    let queue_depth = args.option_u32("queue", 32)?.max(1) as usize;
    let default_fuel = match args.option("fuel") {
        None => ServiceConfig::default().default_fuel,
        Some(text) => text
            .parse::<u64>()
            .map_err(|_| CliError::Usage(format!("--fuel: bad number `{text}`")))?,
    };
    let deadline_ms = args.option_u32("deadline-ms", 2000)?.max(1);
    let max_requests = u64::from(args.option_u32("max-requests", 0)?);

    let config = ServiceConfig {
        workers,
        queue_depth,
        default_fuel,
        deadline: Duration::from_millis(u64::from(deadline_ms)),
        enable_chaos: args.switch("chaos"),
        ..ServiceConfig::default()
    };
    let service = Arc::new(Service::new(config));
    let mut server = ServerHandle::start(Arc::clone(&service), addr).map_err(|e| CliError::Io {
        path: addr.to_owned(),
        source: e,
    })?;
    let bound = server.addr();
    writeln!(out, "ccrp-served listening on {bound}").ok();
    if let Some(path) = args.option("addr-file") {
        write_file(path, bound.to_string().as_bytes())?;
    }

    loop {
        let counters = service.counters();
        if max_requests > 0 && counters.requests + counters.rejected >= max_requests {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    server.shutdown();
    let counters = service.counters();
    writeln!(
        out,
        "served {} request(s), {} failure(s), {} shed, {} panic(s) contained",
        counters.requests, counters.failures, counters.rejected, counters.panics_caught,
    )
    .ok();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::temp_path;
    use ccrp::DegradePolicy;
    use ccrp_served::{Client, ErrorKind, Request, Response};
    use std::net::SocketAddr;

    fn strings(raw: &[&str]) -> Vec<String> {
        raw.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn rejects_bad_fuel() {
        let args = Args::parse(&strings(&["--fuel", "lots"]), VALUE_OPTIONS, SWITCHES).unwrap();
        let err = run(&args, &mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains("--fuel"));
    }

    #[test]
    fn serves_requests_until_the_cap_then_reports() {
        let addr_file = temp_path("serve_addr.txt");
        let argv = strings(&[
            "--addr",
            "127.0.0.1:0",
            "--addr-file",
            &addr_file,
            "--max-requests",
            "2",
            "--fuel",
            "100000",
        ]);
        let server = std::thread::spawn(move || {
            let args = Args::parse(&argv, VALUE_OPTIONS, SWITCHES).unwrap();
            let mut buffer = Vec::new();
            run(&args, &mut buffer).unwrap();
            String::from_utf8(buffer).unwrap()
        });

        // Wait for the daemon to publish its ephemeral address.
        let addr: SocketAddr = loop {
            match std::fs::read_to_string(&addr_file) {
                Ok(text) if !text.is_empty() => break text.trim().parse().unwrap(),
                _ => std::thread::sleep(Duration::from_millis(5)),
            }
        };
        let mut client = Client::connect(addr, Duration::from_secs(10)).unwrap();
        let request = Request::Compress {
            text_base: 0,
            v2: true,
            text: vec![0x24; 64],
        };
        for _ in 0..2 {
            let (response, _) = client
                .call_with_retry(&request, DegradePolicy::Retry { attempts: 5 })
                .unwrap();
            match response {
                Response::Compressed { .. } => {}
                Response::Error {
                    kind: ErrorKind::Timeout,
                    ..
                } => {} // shutdown raced the second reply; still counted
                other => panic!("unexpected response: {other:?}"),
            }
        }

        let output = server.join().unwrap();
        assert!(output.contains("ccrp-served listening on"));
        assert!(output.contains("request(s)"));
        std::fs::remove_file(&addr_file).ok();
    }
}
