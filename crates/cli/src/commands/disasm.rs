//! `ccrp-tools disasm <input> [--base N]`
//!
//! Disassembles a raw little-endian text binary (as written by `asm
//! --out`), or assembles a `.s` file first and disassembles the result.

use std::io::Write;

use ccrp_isa::disassemble_word;

use crate::args::Args;
use crate::error::{read_file, CliError};
use crate::load_text_bytes;

/// Option names consuming a value.
pub const VALUE_OPTIONS: &[&str] = &["base"];
/// Switch names.
pub const SWITCHES: &[&str] = &[];

/// Runs the subcommand.
///
/// # Errors
///
/// Usage, I/O, or assembly errors.
pub fn run(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let input = args.positional(0, "input file (.s or raw text binary)")?;
    let base = args.option_u32("base", 0)?;
    let bytes = if input.ends_with(".s") || input.ends_with(".asm") {
        load_text_bytes(input)?
    } else {
        read_file(input)?
    };
    if bytes.len() % 4 != 0 {
        return Err(CliError::Usage(format!(
            "{input}: {} bytes is not a whole number of instruction words",
            bytes.len()
        )));
    }
    for (i, chunk) in bytes.chunks_exact(4).enumerate() {
        let word = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        writeln!(
            out,
            "{:#010x}: {word:08x}  {}",
            base + i as u32 * 4,
            disassemble_word(word)
        )
        .ok();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::write_temp;

    #[test]
    fn disassembles_assembled_source() {
        let src = write_temp("dis_in.s", "main: addiu $sp, $sp, -8\n jr $ra\n");
        let args = Args::parse(std::slice::from_ref(&src), VALUE_OPTIONS, SWITCHES).unwrap();
        let mut buffer = Vec::new();
        run(&args, &mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        assert!(text.contains("addiu $sp, $sp, -8"));
        assert!(text.contains("jr $ra"));
        std::fs::remove_file(src).ok();
    }

    #[test]
    fn disassembles_raw_binary_with_base() {
        let raw = write_temp("dis_raw.bin", "");
        std::fs::write(&raw, 0x03E0_0008u32.to_le_bytes()).unwrap();
        let args = Args::parse(
            &[raw.clone(), "--base".into(), "0x100".into()],
            VALUE_OPTIONS,
            SWITCHES,
        )
        .unwrap();
        let mut buffer = Vec::new();
        run(&args, &mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        assert!(text.contains("0x00000100"));
        assert!(text.contains("jr $ra"));
        std::fs::remove_file(raw).ok();
    }

    #[test]
    fn rejects_ragged_input() {
        let raw = write_temp("dis_ragged.bin", "abc");
        let args = Args::parse(std::slice::from_ref(&raw), VALUE_OPTIONS, SWITCHES).unwrap();
        assert!(run(&args, &mut Vec::new()).is_err());
        std::fs::remove_file(raw).ok();
    }
}
