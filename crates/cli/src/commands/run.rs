//! `ccrp-tools run <input.s> [--input 1,2,3] [--max-steps N] [--stats]`
//!
//! Assembles and executes a program on the functional R2000 emulator.

use std::io::Write;

use ccrp_bench::json::Json;
use ccrp_emu::{Machine, MachineConfig, ProgramTrace};

use crate::args::Args;
use crate::error::{read_text, CliError};

/// Option names consuming a value.
pub const VALUE_OPTIONS: &[&str] = &["input", "max-steps"];
/// Switch names.
pub const SWITCHES: &[&str] = &["stats"];

/// Runs the subcommand.
///
/// # Errors
///
/// Usage, I/O, assembly, or runtime errors.
pub fn run(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let input = args.positional(0, "input assembly file")?;
    let source = read_text(input)?;
    let image = ccrp_asm::assemble(&source)?;
    let mut config = MachineConfig::default();
    if args.option("max-steps").is_some() {
        config.max_steps = u64::from(args.option_u32("max-steps", 0)?);
    }
    let mut machine = Machine::with_config(&image, config);
    if let Some(list) = args.option("input") {
        let values: Result<Vec<i32>, _> = list.split(',').map(str::parse).collect();
        let values =
            values.map_err(|_| CliError::Usage(format!("--input: bad integer list `{list}`")))?;
        machine.push_input(values);
    }
    let mut trace = ProgramTrace::new();
    let summary = machine.run(&mut trace)?;
    if args.json() {
        let json = Json::obj([
            ("schema", Json::str("ccrp-run/1")),
            ("output", Json::str(machine.output())),
            ("exit_code", Json::F64(f64::from(summary.exit_code))),
            ("instructions", Json::U64(summary.instructions)),
            ("data_accesses", Json::U64(trace.data_accesses())),
        ]);
        write!(out, "{}", json.to_pretty()).ok();
        return Ok(());
    }
    write!(out, "{}", machine.output()).ok();
    if !machine.output().ends_with('\n') {
        writeln!(out).ok();
    }
    if args.switch("stats") {
        writeln!(
            out,
            "exit {} after {} instructions ({} data accesses)",
            summary.exit_code,
            summary.instructions,
            trace.data_accesses()
        )
        .ok();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::write_temp;

    #[test]
    fn runs_and_prints() {
        let src = write_temp(
            "run_in.s",
            "main: li $v0, 5\n syscall\n move $a0, $v0\n li $v0, 1\n syscall\n li $v0, 10\n syscall\n",
        );
        let args = Args::parse(
            &[src.clone(), "--input".into(), "41".into(), "--stats".into()],
            VALUE_OPTIONS,
            SWITCHES,
        )
        .unwrap();
        let mut buffer = Vec::new();
        run(&args, &mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        assert!(text.starts_with("41"));
        assert!(text.contains("exit 0"));
        std::fs::remove_file(src).ok();
    }

    #[test]
    fn reports_runtime_faults() {
        let src = write_temp("run_div0.s", "main: li $t0, 1\n li $t1, 0\n div $t0, $t1\n");
        let args = Args::parse(std::slice::from_ref(&src), VALUE_OPTIONS, SWITCHES).unwrap();
        let err = run(&args, &mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains("division by zero"));
        std::fs::remove_file(src).ok();
    }

    #[test]
    fn max_steps_caps_runaway_programs() {
        let src = write_temp("run_spin.s", "main: b main\n");
        let args = Args::parse(
            &[src.clone(), "--max-steps".into(), "1000".into()],
            VALUE_OPTIONS,
            SWITCHES,
        )
        .unwrap();
        let err = run(&args, &mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains("1000 instructions"));
        std::fs::remove_file(src).ok();
    }

    #[test]
    fn rejects_bad_input_list() {
        let src = write_temp("run_badin.s", "main: li $v0, 10\n syscall\n");
        let args = Args::parse(
            &[src.clone(), "--input".into(), "1,x".into()],
            VALUE_OPTIONS,
            SWITCHES,
        )
        .unwrap();
        assert!(run(&args, &mut Vec::new()).is_err());
        std::fs::remove_file(src).ok();
    }
}
