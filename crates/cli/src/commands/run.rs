//! `ccrp-tools run <input.s> [--input 1,2,3] [--max-steps N] [--stats]
//! [--checkpoint-every N --checkpoint-out FILE] [--resume-from FILE]`
//!
//! Assembles and executes a program on the functional R2000 emulator.
//! With `--checkpoint-every N` the machine's architectural state is
//! serialized to `--checkpoint-out` every N retired instructions;
//! `--resume-from` restores such a file (it must have been taken on the
//! same program) and continues from the recorded instruction.

use std::io::Write;

use ccrp_bench::json::Json;
use ccrp_emu::{Checkpoint, EmuError, Machine, MachineConfig, ProgramTrace, RunSummary};

use crate::args::Args;
use crate::error::{read_file, read_text, write_file, CliError};

/// Option names consuming a value.
pub const VALUE_OPTIONS: &[&str] = &[
    "input",
    "max-steps",
    "checkpoint-every",
    "checkpoint-out",
    "resume-from",
];
/// Switch names.
pub const SWITCHES: &[&str] = &["stats"];

/// Parses `--checkpoint-every`/`--checkpoint-out`, which come together
/// or not at all.
fn checkpoint_options(args: &Args) -> Result<Option<(u64, &str)>, CliError> {
    match (
        args.option("checkpoint-every"),
        args.option("checkpoint-out"),
    ) {
        (None, None) => Ok(None),
        (Some(text), Some(path)) => {
            let every = text.parse::<u64>().ok().filter(|&n| n > 0).ok_or_else(|| {
                CliError::Usage(format!("--checkpoint-every: bad interval `{text}`"))
            })?;
            Ok(Some((every, path)))
        }
        _ => Err(CliError::Usage(
            "--checkpoint-every and --checkpoint-out must be given together".into(),
        )),
    }
}

/// Runs the subcommand.
///
/// # Errors
///
/// Usage, I/O, assembly, checkpoint, or runtime errors.
pub fn run(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let input = args.positional(0, "input assembly file")?;
    let checkpointing = checkpoint_options(args)?;
    let source = read_text(input)?;
    let image = ccrp_asm::assemble(&source)?;
    let mut config = MachineConfig::default();
    if args.option("max-steps").is_some() {
        config.max_steps = u64::from(args.option_u32("max-steps", 0)?);
    }
    let max_steps = config.max_steps;
    let mut machine = Machine::with_config(&image, config);
    if let Some(path) = args.option("resume-from") {
        let checkpoint = Checkpoint::from_bytes(&read_file(path)?)?;
        machine.restore(&checkpoint)?;
    }
    if let Some(list) = args.option("input") {
        let values: Result<Vec<i32>, _> = list.split(',').map(str::parse).collect();
        let values =
            values.map_err(|_| CliError::Usage(format!("--input: bad integer list `{list}`")))?;
        machine.push_input(values);
    }
    let mut trace = ProgramTrace::new();
    let summary = match checkpointing {
        None => machine.run(&mut trace)?,
        Some((every, path)) => {
            // Machine::run, with a checkpoint written at every interval
            // boundary the program crosses while still running.
            while machine.exit_code().is_none() {
                if machine.steps() >= max_steps {
                    return Err(EmuError::StepLimitExceeded { limit: max_steps }.into());
                }
                machine.step(&mut trace)?;
                if machine.exit_code().is_none() && machine.steps().is_multiple_of(every) {
                    write_file(path, &machine.checkpoint().to_bytes())?;
                }
            }
            RunSummary {
                instructions: machine.steps(),
                exit_code: machine.exit_code().unwrap_or_default(),
            }
        }
    };
    if args.json() {
        let json = Json::obj([
            ("schema", Json::str("ccrp-run/1")),
            ("output", Json::str(machine.output())),
            ("exit_code", Json::F64(f64::from(summary.exit_code))),
            ("instructions", Json::U64(summary.instructions)),
            ("data_accesses", Json::U64(trace.data_accesses())),
        ]);
        write!(out, "{}", json.to_pretty()).ok();
        return Ok(());
    }
    write!(out, "{}", machine.output()).ok();
    if !machine.output().ends_with('\n') {
        writeln!(out).ok();
    }
    if args.switch("stats") {
        writeln!(
            out,
            "exit {} after {} instructions ({} data accesses)",
            summary.exit_code,
            summary.instructions,
            trace.data_accesses()
        )
        .ok();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{temp_path, write_temp};

    #[test]
    fn runs_and_prints() {
        let src = write_temp(
            "run_in.s",
            "main: li $v0, 5\n syscall\n move $a0, $v0\n li $v0, 1\n syscall\n li $v0, 10\n syscall\n",
        );
        let args = Args::parse(
            &[src.clone(), "--input".into(), "41".into(), "--stats".into()],
            VALUE_OPTIONS,
            SWITCHES,
        )
        .unwrap();
        let mut buffer = Vec::new();
        run(&args, &mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        assert!(text.starts_with("41"));
        assert!(text.contains("exit 0"));
        std::fs::remove_file(src).ok();
    }

    #[test]
    fn reports_runtime_faults() {
        let src = write_temp("run_div0.s", "main: li $t0, 1\n li $t1, 0\n div $t0, $t1\n");
        let args = Args::parse(std::slice::from_ref(&src), VALUE_OPTIONS, SWITCHES).unwrap();
        let err = run(&args, &mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains("division by zero"));
        std::fs::remove_file(src).ok();
    }

    #[test]
    fn max_steps_caps_runaway_programs() {
        let src = write_temp("run_spin.s", "main: b main\n");
        let args = Args::parse(
            &[src.clone(), "--max-steps".into(), "1000".into()],
            VALUE_OPTIONS,
            SWITCHES,
        )
        .unwrap();
        let err = run(&args, &mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains("1000 instructions"));
        std::fs::remove_file(src).ok();
    }

    #[test]
    fn checkpoint_resume_reproduces_the_full_run() {
        let src = write_temp(
            "run_ckpt.s",
            "main: li $t0, 0\n li $t1, 5\nloop: move $a0, $t0\n li $v0, 1\n syscall\n addi $t0, $t0, 1\n blt $t0, $t1, loop\n li $v0, 10\n syscall\n",
        );
        let ckpt = temp_path("run_ckpt.bin");
        let args = Args::parse(
            &[
                src.clone(),
                "--checkpoint-every".into(),
                "7".into(),
                "--checkpoint-out".into(),
                ckpt.clone(),
            ],
            VALUE_OPTIONS,
            SWITCHES,
        )
        .unwrap();
        let mut full = Vec::new();
        run(&args, &mut full).unwrap();
        assert!(
            std::path::Path::new(&ckpt).exists(),
            "no checkpoint written"
        );

        // Resuming the last checkpoint replays only the tail, but the
        // restored state carries the prefix's output, so the final
        // output is identical to the unbroken run's.
        let args = Args::parse(
            &[src.clone(), "--resume-from".into(), ckpt.clone()],
            VALUE_OPTIONS,
            SWITCHES,
        )
        .unwrap();
        let mut resumed = Vec::new();
        run(&args, &mut resumed).unwrap();
        assert_eq!(resumed, full);
        std::fs::remove_file(src).ok();
        std::fs::remove_file(ckpt).ok();
    }

    #[test]
    fn corrupt_checkpoint_is_rejected_not_executed() {
        let src = write_temp("run_ckpt_bad.s", "main: li $v0, 10\n syscall\n");
        let ckpt = write_temp("run_ckpt_bad.bin", "CCKPgarbage-not-a-frame");
        let args = Args::parse(
            &[src.clone(), "--resume-from".into(), ckpt.clone()],
            VALUE_OPTIONS,
            SWITCHES,
        )
        .unwrap();
        let err = run(&args, &mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains("checkpoint rejected"));
        std::fs::remove_file(src).ok();
        std::fs::remove_file(ckpt).ok();
    }

    #[test]
    fn checkpoint_options_must_come_together() {
        let src = write_temp("run_ckpt_pair.s", "main: li $v0, 10\n syscall\n");
        let args = Args::parse(
            &[src.clone(), "--checkpoint-every".into(), "5".into()],
            VALUE_OPTIONS,
            SWITCHES,
        )
        .unwrap();
        let err = run(&args, &mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains("--checkpoint-out"));
        std::fs::remove_file(src).ok();
    }

    #[test]
    fn rejects_bad_input_list() {
        let src = write_temp("run_badin.s", "main: li $v0, 10\n syscall\n");
        let args = Args::parse(
            &[src.clone(), "--input".into(), "1,x".into()],
            VALUE_OPTIONS,
            SWITCHES,
        )
        .unwrap();
        assert!(run(&args, &mut Vec::new()).is_err());
        std::fs::remove_file(src).ok();
    }
}
