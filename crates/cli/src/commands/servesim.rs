//! `ccrp-tools servesim [--trials N] [--seed N] [--jobs N] [--burst N]
//! [--out FILE]`
//!
//! Runs the hostile-client campaign against a real in-process
//! `ccrp-served` server and writes the outcome counts to a
//! machine-readable JSON file (default `BENCH_servesim.json`). Outcomes
//! are a pure function of `(--trials, --seed)`, so the results section
//! of the JSON is bit-identical for any `--jobs` value; `--burst` sizes
//! the separate load-shedding phase whose tallies ride in the `timing`
//! section only.
//!
//! The command exits nonzero when the campaign violates the service
//! contract: any wrong response, any silent acceptance of corrupt v2
//! content, any dropped or hung scripted connection, an uncontained
//! panic, or a burst client left without a typed answer.

use std::io::Write;

use ccrp_bench::servesim::{self, Outcome, ServesimOptions, TrialKind};
use ccrp_bench::{runner, ToJson};

use crate::args::Args;
use crate::error::{write_file, CliError};

/// Option names consuming a value.
pub const VALUE_OPTIONS: &[&str] = &["trials", "seed", "jobs", "burst", "out"];
/// Switch names.
pub const SWITCHES: &[&str] = &[];

/// Runs the subcommand.
///
/// # Errors
///
/// [`CliError::Usage`] for bad numbers, [`CliError::Io`] when the
/// results file cannot be written, and [`CliError::Campaign`] when the
/// campaign finds the service misbehaving.
pub fn run(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let trials = args.option_u32("trials", 1000)? as usize;
    if trials == 0 {
        return Err(CliError::Usage("--trials must be at least 1".into()));
    }
    let seed = match args.option("seed") {
        None => 42,
        Some(text) => text
            .parse::<u64>()
            .map_err(|_| CliError::Usage(format!("--seed: bad number `{text}`")))?,
    };
    let jobs = args.option_u32("jobs", runner::available_jobs() as u32)? as usize;
    if jobs == 0 {
        return Err(CliError::Usage("--jobs must be at least 1".into()));
    }
    let burst = args.option_u32("burst", 32)? as usize;
    let path = args.option("out").unwrap_or("BENCH_servesim.json");

    let report = servesim::run(ServesimOptions {
        trials,
        seed,
        jobs,
        burst,
    });
    write_file(path, report.to_json().to_pretty().as_bytes())?;

    if args.json() {
        // Same document as the results file, for pipelines that read
        // stdout instead of the --out path.
        write!(out, "{}", report.to_json().to_pretty()).ok();
        return check(&report);
    }

    writeln!(
        out,
        "servesim: {trials} trials seed {seed} {jobs} jobs burst {burst} {:?}  -> {path}",
        report.total_wall,
    )
    .ok();
    for outcome in Outcome::ALL {
        writeln!(
            out,
            "  {:<18} {:>6}",
            outcome.name(),
            report.count(outcome, None),
        )
        .ok();
    }
    writeln!(
        out,
        "  kinds: {}",
        TrialKind::ALL.map(TrialKind::name).join(", ")
    )
    .ok();
    if report.burst.sent > 0 {
        writeln!(
            out,
            "  burst: {} sent, {} ran, {} overload, {} timeout, p99 {}us",
            report.burst.sent,
            report.burst.ran,
            report.burst.overload,
            report.burst.timeout,
            report.burst.p99_us,
        )
        .ok();
    }

    check(&report)
}

/// Maps the campaign's service contract onto the exit status.
fn check(report: &servesim::ServesimReport) -> Result<(), CliError> {
    if !report.acceptable() {
        return Err(CliError::Campaign(format!(
            "{} wrong response(s), {} silent acceptance(s), {} transport error(s), \
             {} client timeout(s), {} panic(s) caught vs {} injected, \
             {} burst transport error(s)",
            report.count(Outcome::WrongResponse, None),
            report.count(Outcome::SilentAcceptance, None),
            report.count(Outcome::TransportError, None),
            report.count(Outcome::ClientTimeout, None),
            report.counters.panics_caught,
            report.trials_of(TrialKind::ChaosPanic),
            report.burst.transport_errors,
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::temp_path;

    fn strings(raw: &[&str]) -> Vec<String> {
        raw.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn rejects_zero_trials_and_bad_seed() {
        let args = Args::parse(&strings(&["--trials", "0"]), VALUE_OPTIONS, SWITCHES).unwrap();
        assert!(run(&args, &mut Vec::new()).is_err());

        let args = Args::parse(&strings(&["--seed", "-3"]), VALUE_OPTIONS, SWITCHES).unwrap();
        let err = run(&args, &mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains("--seed"));
    }

    #[test]
    fn small_campaign_writes_results_file() {
        let path = temp_path("servesim.json");
        let args = Args::parse(
            &strings(&[
                "--trials", "14", "--seed", "7", "--jobs", "2", "--burst", "4", "--out", &path,
            ]),
            VALUE_OPTIONS,
            SWITCHES,
        )
        .unwrap();
        let mut buffer = Vec::new();
        run(&args, &mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        assert!(text.contains("servesim: 14 trials"));
        assert!(text.contains("as-expected"));
        assert!(text.contains("burst: 4 sent"));
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"schema\": \"ccrp-servesim/1\""));
        assert!(json.contains("\"acceptable\": true"));
        std::fs::remove_file(&path).ok();
    }
}
