//! `ccrp-tools inspect <image.ccrp> [--lines N] [--disasm]`
//!
//! Loads a serialized CCRP container and reports its layout: sizes, LAT
//! head, per-line map, and (optionally) a decoder-path disassembly.

use std::io::Write;

use ccrp::CompressedImage;
use ccrp_bench::json::Json;
use ccrp_isa::disassemble_word;

use crate::args::Args;
use crate::error::{read_file, CliError};

/// Option names consuming a value.
pub const VALUE_OPTIONS: &[&str] = &["lines"];
/// Switch names.
pub const SWITCHES: &[&str] = &["disasm"];

/// Runs the subcommand.
///
/// # Errors
///
/// Usage, I/O, or container errors.
pub fn run(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let input = args.positional(0, "input .ccrp container")?;
    let bytes = read_file(input)?;
    let image = CompressedImage::from_bytes(&bytes)?;
    image.verify()?;
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    let show = args.option_u32("lines", 8)? as usize;

    if args.json() {
        let mut lines = Vec::new();
        for line in 0..image.line_count().min(show) {
            let addr = image.text_base() + line as u32 * 32;
            let loc = image.locate(addr)?;
            lines.push(Json::obj([
                ("address", Json::Str(format!("{addr:#x}"))),
                ("stored_bytes", Json::U64(u64::from(loc.stored_len))),
                ("physical", Json::Str(format!("{:#x}", loc.physical))),
                ("bypass", Json::Bool(loc.bypass)),
            ]));
        }
        let cost = image.codec().cost();
        let json = Json::obj([
            ("schema", Json::str("ccrp-inspect/1")),
            ("version", Json::U64(u64::from(version))),
            ("integrity", Json::Bool(image.block_crcs().is_some())),
            (
                "codec",
                Json::obj([
                    ("name", Json::str(image.codec().id().name())),
                    ("table_bits", Json::U64(cost.table_bits)),
                    (
                        "max_bytes_per_cycle",
                        match cost.max_bytes_per_cycle {
                            Some(cap) => Json::U64(u64::from(cap)),
                            None => Json::Null,
                        },
                    ),
                ]),
            ),
            (
                "original_bytes",
                Json::U64(u64::from(image.original_bytes())),
            ),
            ("text_base", Json::Str(format!("{:#x}", image.text_base()))),
            (
                "stored_bytes",
                Json::U64(u64::from(image.total_stored_bytes(false))),
            ),
            ("stored_pct", Json::F64(image.compression_ratio() * 100.0)),
            ("line_count", Json::U64(image.line_count() as u64)),
            ("bypass_count", Json::U64(image.bypass_count() as u64)),
            (
                "lat",
                Json::obj([
                    ("entries", Json::U64(image.lat().len() as u64)),
                    ("bytes", Json::U64(u64::from(image.lat().storage_bytes()))),
                    ("base", Json::Str(format!("{:#x}", image.lat_base()))),
                ]),
            ),
            ("lines", Json::Arr(lines)),
        ]);
        write!(out, "{}", json.to_pretty()).ok();
        return Ok(());
    }

    writeln!(
        out,
        "{input}: container v{version} ({}), codec {}, {} original bytes at {:#x}, stored {} ({:.1}%), {} lines, {} bypassed",
        if image.block_crcs().is_some() {
            "per-line CRC-32"
        } else {
            "no integrity records"
        },
        image.codec().id(),
        image.original_bytes(),
        image.text_base(),
        image.total_stored_bytes(false),
        image.compression_ratio() * 100.0,
        image.line_count(),
        image.bypass_count()
    )
    .ok();
    writeln!(
        out,
        "LAT: {} entries, {} bytes at physical {:#x}",
        image.lat().len(),
        image.lat().storage_bytes(),
        image.lat_base()
    )
    .ok();

    for line in 0..image.line_count().min(show) {
        let addr = image.text_base() + line as u32 * 32;
        let loc = image.locate(addr)?;
        writeln!(
            out,
            "line {:#06x}: {:>2} bytes at physical {:#06x}{}",
            addr,
            loc.stored_len,
            loc.physical,
            if loc.bypass { " (bypass)" } else { "" }
        )
        .ok();
        if args.switch("disasm") {
            let expanded = image.expand_line(addr)?;
            for (k, chunk) in expanded.chunks_exact(4).enumerate() {
                let word = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
                writeln!(
                    out,
                    "    {:#06x}: {word:08x}  {}",
                    addr + k as u32 * 4,
                    disassemble_word(word)
                )
                .ok();
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{temp_path, write_temp};

    fn make_container() -> String {
        let src = write_temp("ins_in.s", "main: li $t0, 3\n jr $ra\n");
        let out_path = temp_path("ins_image.ccrp");
        let args = crate::Args::parse(
            &[
                src.clone(),
                "--out".into(),
                out_path.clone(),
                "--code".into(),
                "self".into(),
            ],
            crate::commands::compress::VALUE_OPTIONS,
            crate::commands::compress::SWITCHES,
        )
        .unwrap();
        crate::commands::compress::run(&args, &mut Vec::new()).unwrap();
        std::fs::remove_file(src).ok();
        out_path
    }

    #[test]
    fn inspects_container() {
        let path = make_container();
        let args =
            Args::parse(&[path.clone(), "--disasm".into()], VALUE_OPTIONS, SWITCHES).unwrap();
        let mut buffer = Vec::new();
        run(&args, &mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        assert!(text.contains("container v1 (no integrity records)"));
        assert!(text.contains("codec byte-huffman"));
        assert!(text.contains("LAT:"));
        assert!(text.contains("jr $ra"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_non_container() {
        let junk = write_temp("ins_junk.ccrp", "not a container");
        let args = Args::parse(std::slice::from_ref(&junk), VALUE_OPTIONS, SWITCHES).unwrap();
        let err = run(&args, &mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains("container"));
        std::fs::remove_file(junk).ok();
    }
}
