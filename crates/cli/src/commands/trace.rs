//! `ccrp-tools trace <input.s> [--cache N] [--memory eprom|burst|dram]
//! [--clb N] [--dcache-miss PCT] [--code preselected|self]
//! [--alignment byte|word] [--limit N] [--metrics] [--out trace.json]`
//!
//! Assembles and executes a program, then re-runs its instruction trace
//! through the probed standard and CCRP simulators and exports every
//! probe event as a Chrome trace-event JSON document — loadable in
//! Perfetto or `chrome://tracing`, with two threads ("standard" and
//! "ccrp") on a shared simulated-cycle timebase. Timestamps are cycles,
//! not wall time, so the same program and options always produce a
//! byte-identical trace.
//!
//! `--metrics` adds the probe-derived metric registry (refill-latency
//! and bytes-per-refill histograms, CLB residency, event counts) under
//! a top-level `metrics` key; `--limit N` caps each thread at N events
//! (the `otherData` section reports how many were dropped).

use std::io::Write;

use ccrp_bench::json::Json;
use ccrp_bench::{chrome_trace, ToJson};
use ccrp_probe::{EventLog, MetricsCollector};
use ccrp_sim::{MemoryModel, Simulation};

use crate::args::Args;
use crate::error::{write_file, CliError};

/// Option names consuming a value.
pub const VALUE_OPTIONS: &[&str] = &[
    "cache",
    "memory",
    "clb",
    "dcache-miss",
    "code",
    "alignment",
    "limit",
];
/// Switch names.
pub const SWITCHES: &[&str] = &["metrics"];

fn memory(args: &Args) -> Result<MemoryModel, CliError> {
    Ok(match args.option("memory").unwrap_or("eprom") {
        "eprom" => MemoryModel::Eprom,
        "burst" => MemoryModel::BurstEprom,
        "dram" => MemoryModel::ScDram,
        other => {
            return Err(CliError::Usage(format!(
                "--memory: `{other}` is not eprom|burst|dram"
            )))
        }
    })
}

/// Runs the subcommand.
///
/// # Errors
///
/// Usage, I/O, assembly, runtime, or simulation errors.
pub fn run(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let input = args.positional(0, "input assembly file")?;
    let (compressed, trace) = super::simulate::prepare(args, input)?;
    let memory = memory(args)?;
    let cache_bytes = args.option_u32("cache", 1024)?;
    let config = super::simulate::system_config(args, memory, cache_bytes)?;

    let limit = args.option_u32("limit", 0)?;
    let event_log = || {
        if limit == 0 {
            EventLog::new()
        } else {
            EventLog::with_limit(limit as usize)
        }
    };

    let mut standard_log = event_log();
    let standard = Simulation::new(config)
        .standard_probed(&mut standard_log)
        .standard(trace.iter())?;
    // One pass feeds both the event log and the metrics registry.
    let mut probes = (event_log(), MetricsCollector::new());
    let ccrp = Simulation::new(config)
        .ccrp_probed(&mut probes)
        .ccrp(&compressed, trace.iter())?;
    let (ccrp_log, collector) = probes;

    let Json::Obj(mut pairs) = chrome_trace(&[
        ("standard", standard_log.events()),
        ("ccrp", ccrp_log.events()),
    ]) else {
        unreachable!("chrome_trace returns an object");
    };
    pairs.push((
        "otherData".into(),
        Json::obj([
            ("schema", Json::str("ccrp-trace/1")),
            ("memory", Json::str(memory.name())),
            ("cache_bytes", Json::U64(u64::from(cache_bytes))),
            (
                "stored_pct",
                Json::F64(compressed.compression_ratio() * 100.0),
            ),
            ("standard", standard.to_json()),
            ("ccrp", ccrp.to_json()),
            (
                "dropped_events",
                Json::U64(standard_log.dropped() + ccrp_log.dropped()),
            ),
        ]),
    ));
    if args.switch("metrics") {
        pairs.push(("metrics".into(), collector.metrics().to_json()));
    }
    let text = Json::Obj(pairs).to_pretty();

    let events = standard_log.events().len() + ccrp_log.events().len();
    match args.out() {
        Some(path) => {
            write_file(path, text.as_bytes())?;
            writeln!(out, "wrote {events} trace events to {path}").ok();
        }
        None => {
            write!(out, "{text}").ok();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{temp_path, write_temp};

    fn looped_source() -> String {
        "main: li $t0, 2000\nloop: addiu $t0, $t0, -1\n bnez $t0, loop\n li $v0, 10\n syscall\n"
            .to_string()
    }

    fn parse(raw: &[String]) -> Args {
        Args::parse(raw, VALUE_OPTIONS, SWITCHES).unwrap()
    }

    #[test]
    fn emits_parseable_chrome_trace_with_all_kinds() {
        let src = write_temp("trace_in.s", &looped_source());
        let args = parse(&[
            src.clone(),
            "--cache".into(),
            "256".into(),
            "--memory".into(),
            "eprom".into(),
            "--metrics".into(),
        ]);
        let mut buffer = Vec::new();
        run(&args, &mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        let json = Json::parse(&text).expect("trace output parses as JSON");
        let Some(Json::Arr(events)) = json.get("traceEvents") else {
            panic!("traceEvents missing");
        };
        assert!(events.len() > 4, "only {} events", events.len());
        for kind in ["\"refill\"", "\"clb\"", "\"memory\"", "\"cache\""] {
            assert!(text.contains(kind), "{kind} events missing");
        }
        assert!(json.get("metrics").is_some());
        assert!(json.get("otherData").is_some());
        std::fs::remove_file(src).ok();
    }

    #[test]
    fn out_writes_file_and_limit_caps_events() {
        let src = write_temp("trace_out.s", &looped_source());
        let path = temp_path("trace.json");
        let args = parse(&[
            src.clone(),
            "--out".into(),
            path.clone(),
            "--limit".into(),
            "3".into(),
        ]);
        let mut buffer = Vec::new();
        run(&args, &mut buffer).unwrap();
        assert!(String::from_utf8(buffer).unwrap().contains("trace events"));
        let text = std::fs::read_to_string(&path).unwrap();
        let json = Json::parse(&text).expect("file parses");
        let Some(Json::Arr(events)) = json.get("traceEvents") else {
            panic!("traceEvents missing");
        };
        // Two thread_name records plus at most 3 events per thread.
        assert!(events.len() <= 8);
        let Some(dropped) = json.get("otherData").and_then(|o| o.get("dropped_events")) else {
            panic!("dropped_events missing");
        };
        assert!(matches!(dropped, Json::U64(n) if *n > 0));
        std::fs::remove_file(src).ok();
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn trace_is_deterministic() {
        let src = write_temp("trace_det.s", &looped_source());
        let args = parse(&[src.clone(), "--cache".into(), "256".into()]);
        let mut first = Vec::new();
        run(&args, &mut first).unwrap();
        let mut second = Vec::new();
        run(&args, &mut second).unwrap();
        assert_eq!(first, second);
        std::fs::remove_file(src).ok();
    }

    #[test]
    fn rejects_all_memory_model() {
        let src = write_temp("trace_bad.s", &looped_source());
        let args = parse(&[src.clone(), "--memory".into(), "all".into()]);
        assert!(run(&args, &mut Vec::new()).is_err());
        std::fs::remove_file(src).ok();
    }
}
