//! `ccrp-tools workloads [--verify]`
//!
//! Lists the built-in paper workloads; `--verify` builds each one and
//! runs its self-check.

use std::io::Write;

use ccrp_bench::json::Json;
use ccrp_workloads::TracedWorkload;

use crate::args::Args;
use crate::error::CliError;

/// Option names consuming a value.
pub const VALUE_OPTIONS: &[&str] = &[];
/// Switch names.
pub const SWITCHES: &[&str] = &["verify"];

/// Runs the subcommand.
///
/// # Errors
///
/// A workload failing its self-check under `--verify` (a build bug, not
/// a user condition, but surfaced as an error to keep the tool honest).
pub fn run(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let description = |wl: &TracedWorkload| match wl {
        TracedWorkload::Eightq => "eight-queens backtracking",
        TracedWorkload::Matrix25A => "25x25 double matrix multiply",
        TracedWorkload::Lloop01 => "Livermore loop 1",
        TracedWorkload::Tomcatv => "mesh relaxation",
        TracedWorkload::Nasa7 => "seven NAS kernels",
        TracedWorkload::Nasa1 => "vector daxpy/dot/scale",
        TracedWorkload::Espresso => "jump-table cube operations",
        TracedWorkload::Fpppp => "huge straight-line FP block",
    };

    if args.json() {
        let mut rows = Vec::new();
        for wl in TracedWorkload::ALL {
            let mut pairs = vec![
                ("name".to_string(), Json::str(wl.name())),
                (
                    "paper_bytes".to_string(),
                    Json::U64(u64::from(wl.paper_text_bytes())),
                ),
                ("description".to_string(), Json::str(description(&wl))),
            ];
            if args.switch("verify") {
                let built = wl.build().map_err(|e| CliError::Usage(e.to_string()))?;
                pairs.push((
                    "dynamic_instructions".to_string(),
                    Json::U64(built.dynamic_instructions() as u64),
                ));
                pairs.push(("text_bytes".to_string(), Json::U64(built.text.len() as u64)));
            }
            rows.push(Json::Obj(pairs));
        }
        let json = Json::obj([
            ("schema", Json::str("ccrp-workloads/1")),
            ("workloads", Json::Arr(rows)),
        ]);
        write!(out, "{}", json.to_pretty()).ok();
        return Ok(());
    }

    writeln!(out, "{:>12} {:>12} description", "workload", "paper bytes").ok();
    for wl in TracedWorkload::ALL {
        writeln!(
            out,
            "{:>12} {:>12} {}",
            wl.name(),
            wl.paper_text_bytes(),
            description(&wl)
        )
        .ok();
        if args.switch("verify") {
            let built = wl.build().map_err(|e| CliError::Usage(e.to_string()))?;
            writeln!(
                out,
                "{:>12} ok: {} dynamic instructions, {} text bytes",
                "",
                built.dynamic_instructions(),
                built.text.len()
            )
            .ok();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lists_all_eight() {
        let args = Args::parse(&[], VALUE_OPTIONS, SWITCHES).unwrap();
        let mut buffer = Vec::new();
        run(&args, &mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        for name in ["NASA7", "espresso", "fpppp", "eightq", "tomcatv"] {
            assert!(text.contains(name), "{name} missing");
        }
    }

    #[test]
    fn verify_builds_one() {
        // Full verification of all eight runs in the workloads crate's
        // tests; here just exercise the flag path end to end.
        let args = Args::parse(&["--verify".to_string()], VALUE_OPTIONS, SWITCHES).unwrap();
        let mut buffer = Vec::new();
        run(&args, &mut buffer).unwrap();
        assert!(String::from_utf8(buffer)
            .unwrap()
            .contains("dynamic instructions"));
    }
}
