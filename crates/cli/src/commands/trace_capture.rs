//! `ccrp-tools trace-capture <workload|in.s|file.trace> [--out f.trace]`
//!
//! Captures a workload's fetch trace into the run-compacted `.trace`
//! container the sweep engine replays ([`ccrp_sim::AccessTrace`]), or
//! inspects an existing `.trace` file. The operand is one of:
//!
//! * a paper workload name (`ccrp-tools workloads` lists them) — the
//!   workload is executed once and its trace captured;
//! * an assembly file (`.s` / `.asm`) — assembled, executed on the
//!   emulator, and captured;
//! * an existing `.trace` file — loaded and summarized (no `--out`).
//!
//! The trace fingerprint is the CRC-32 of the workload name (or input
//! path), so a replayer can cheaply confirm which program a file
//! belongs to.

use std::io::Write;

use ccrp::crc32;
use ccrp_bench::json::Json;
use ccrp_emu::{Machine, ProgramTrace};
use ccrp_sim::AccessTrace;
use ccrp_workloads::TracedWorkload;

use crate::args::Args;
use crate::error::{read_file, read_text, write_file, CliError};

/// Option names consuming a value.
pub const VALUE_OPTIONS: &[&str] = &[];
/// Switch names.
pub const SWITCHES: &[&str] = &[];

/// A captured or loaded trace plus its provenance.
struct Captured {
    trace: AccessTrace,
    fingerprint: u32,
    /// What the trace was captured from (name, path, or file).
    origin: String,
    /// Raw per-fetch entries before compaction, when known.
    raw_entries: Option<u64>,
}

fn capture(input: &str) -> Result<Captured, CliError> {
    if input.ends_with(".trace") {
        let bytes = read_file(input)?;
        let (trace, fingerprint) = AccessTrace::from_bytes(&bytes)
            .map_err(|e| CliError::Usage(format!("{input}: {e}")))?;
        return Ok(Captured {
            trace,
            fingerprint,
            origin: input.to_string(),
            raw_entries: None,
        });
    }
    if input.ends_with(".s") || input.ends_with(".asm") {
        let image = ccrp_asm::assemble(&read_text(input)?)?;
        let mut machine = Machine::new(&image);
        let mut program_trace = ProgramTrace::new();
        machine.run(&mut program_trace)?;
        return Ok(Captured {
            trace: AccessTrace::capture(program_trace.iter()),
            fingerprint: crc32(input.as_bytes()),
            origin: input.to_string(),
            raw_entries: Some(program_trace.len() as u64),
        });
    }
    let Some(workload) = TracedWorkload::ALL.into_iter().find(|w| w.name() == input) else {
        return Err(CliError::Usage(format!(
            "`{input}` is not a workload name, .s/.asm source, or .trace file; \
             workloads: {}",
            TracedWorkload::ALL.map(TracedWorkload::name).join(", ")
        )));
    };
    let built = workload
        .build()
        .map_err(|e| CliError::Usage(format!("{input}: {e}")))?;
    Ok(Captured {
        trace: AccessTrace::capture(built.trace.iter()),
        fingerprint: crc32(input.as_bytes()),
        origin: input.to_string(),
        raw_entries: Some(built.trace.len() as u64),
    })
}

/// Runs the subcommand.
///
/// # Errors
///
/// [`CliError::Usage`] for an unknown workload or a malformed `.trace`
/// file; [`CliError::Io`] on file errors; assembly or runtime errors
/// for `.s` inputs.
pub fn run(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let input = args.positional(0, "workload name, .s file, or .trace file")?;
    let captured = capture(input)?;
    let runs = captured.trace.runs().len() as u64;
    let fetches = captured.trace.fetches();

    let written = match args.out() {
        Some(path) if !input.ends_with(".trace") => {
            let bytes = captured.trace.to_bytes(captured.fingerprint);
            write_file(path, &bytes)?;
            Some((path.to_string(), bytes.len() as u64))
        }
        Some(_) => {
            return Err(CliError::Usage(
                "--out only applies when capturing (the input is already a .trace file)".into(),
            ))
        }
        None => None,
    };

    if args.json() {
        let mut pairs: Vec<(String, Json)> = vec![
            ("schema".into(), Json::str("ccrp-trace-capture/1")),
            ("input".into(), Json::str(&captured.origin)),
            (
                "fingerprint".into(),
                Json::U64(u64::from(captured.fingerprint)),
            ),
            ("runs".into(), Json::U64(runs)),
            ("fetches".into(), Json::U64(fetches)),
            (
                "data_accesses".into(),
                Json::U64(captured.trace.data_accesses()),
            ),
        ];
        if let Some(raw) = captured.raw_entries {
            pairs.push(("raw_entries".into(), Json::U64(raw)));
        }
        if let Some((path, bytes)) = &written {
            pairs.push(("out".into(), Json::str(path)));
            pairs.push(("bytes".into(), Json::U64(*bytes)));
        }
        write!(out, "{}", Json::Obj(pairs).to_pretty()).ok();
        return Ok(());
    }

    writeln!(
        out,
        "{}: {} fetches in {} line runs ({} data accesses), fingerprint {:#010x}",
        captured.origin,
        fetches,
        runs,
        captured.trace.data_accesses(),
        captured.fingerprint,
    )
    .ok();
    if let Some(raw) = captured.raw_entries {
        let ratio = raw as f64 / (runs.max(1)) as f64;
        writeln!(
            out,
            "compaction: {raw} trace entries -> {runs} runs ({ratio:.1}x)"
        )
        .ok();
    }
    if let Some((path, bytes)) = written {
        writeln!(out, "wrote {bytes} bytes to {path}").ok();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{temp_path, write_temp};

    fn strings(raw: &[&str]) -> Vec<String> {
        raw.iter().map(|s| s.to_string()).collect()
    }

    fn run_with(raw: &[&str]) -> Result<String, CliError> {
        let args = Args::parse(&strings(raw), VALUE_OPTIONS, SWITCHES)?;
        let mut buffer = Vec::new();
        run(&args, &mut buffer)?;
        Ok(String::from_utf8(buffer).unwrap())
    }

    #[test]
    fn captures_workload_and_reinspects_the_file() {
        let path = temp_path("eightq.trace");
        let text = run_with(&["eightq", "--out", &path]).unwrap();
        assert!(text.contains("eightq"));
        assert!(text.contains("compaction"));
        assert!(text.contains(&path));

        // Round trip: the written file loads and reports the same totals.
        let captured = run_with(&[&path]).unwrap();
        let fetches = text.split(' ').find(|w| w.parse::<u64>().is_ok()).unwrap();
        assert!(captured.contains(fetches));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn captures_assembly_source_as_json() {
        let src = write_temp(
            "capture.s",
            "main: li $t0, 40\nloop: addiu $t0, $t0, -1\n bnez $t0, loop\n li $v0, 10\n syscall\n",
        );
        let text = run_with(&[&src, "--json"]).unwrap();
        assert!(text.contains("\"schema\": \"ccrp-trace-capture/1\""));
        assert!(text.contains("\"raw_entries\""));
        std::fs::remove_file(&src).ok();
    }

    #[test]
    fn rejects_unknown_inputs_and_bad_files() {
        let err = run_with(&["not_a_workload"]).unwrap_err();
        assert!(err.to_string().contains("eightq"));

        let bogus = write_temp("bogus.trace", "not a trace container");
        assert!(run_with(&[&bogus]).is_err());
        std::fs::remove_file(&bogus).ok();

        // --out is capture-only.
        let path = temp_path("real.trace");
        let trace = AccessTrace::capture([(0u32, 0u8), (4, 1), (64, 0)]);
        std::fs::write(&path, trace.to_bytes(0)).unwrap();
        let err = run_with(&[&path, "--out", "elsewhere.trace"]).unwrap_err();
        assert!(err.to_string().contains("--out"));
        std::fs::remove_file(&path).ok();
    }
}
