//! `ccrp-tools asm <input.s> [--out text.bin] [--text-base N] [--symbols]`
//!
//! Assembles MIPS source and optionally writes the raw little-endian
//! text segment.

use std::io::Write;

use ccrp_asm::{assemble_with, AssembleOptions};

use crate::args::Args;
use crate::error::{read_text, write_file, CliError};

/// Option names consuming a value.
pub const VALUE_OPTIONS: &[&str] = &["out", "text-base", "data-base"];
/// Switch names.
pub const SWITCHES: &[&str] = &["symbols"];

/// Runs the subcommand.
///
/// # Errors
///
/// Usage, I/O, or assembly errors.
pub fn run(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let input = args.positional(0, "input assembly file")?;
    let source = read_text(input)?;
    let options = AssembleOptions {
        text_base: args.option_u32("text-base", 0)?,
        data_base: args.option_u32("data-base", 0x0040_0000)?,
        ..AssembleOptions::default()
    };
    let image = assemble_with(&source, options)?;
    writeln!(
        out,
        "{input}: {} text bytes at {:#x}, {} data bytes at {:#x}, entry {:#x}",
        image.text_size(),
        image.text_base(),
        image.data_bytes().len(),
        image.data_base(),
        image.entry()
    )
    .ok();
    if args.switch("symbols") {
        for (name, addr) in image.symbols() {
            writeln!(out, "  {addr:#010x} {name}").ok();
        }
    }
    if let Some(path) = args.option("out") {
        write_file(path, image.text_bytes())?;
        writeln!(out, "wrote {} bytes to {path}", image.text_size()).ok();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{temp_path, write_temp};

    #[test]
    fn assembles_and_writes() {
        let src = write_temp("asm_in.s", "main: li $t0, 1\n jr $ra\n");
        let out_path = temp_path("asm_out.bin");
        let args = Args::parse(
            &[
                src.clone(),
                "--out".into(),
                out_path.clone(),
                "--symbols".into(),
            ],
            VALUE_OPTIONS,
            SWITCHES,
        )
        .unwrap();
        let mut buffer = Vec::new();
        run(&args, &mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        assert!(text.contains("text bytes"));
        assert!(text.contains("main"));
        let written = std::fs::read(&out_path).unwrap();
        assert_eq!(written.len() % 4, 0);
        assert!(!written.is_empty());
        std::fs::remove_file(src).ok();
        std::fs::remove_file(out_path).ok();
    }

    #[test]
    fn reports_assembly_errors() {
        let src = write_temp("asm_bad.s", "bogus $t9\n");
        let args = Args::parse(std::slice::from_ref(&src), VALUE_OPTIONS, SWITCHES).unwrap();
        let err = run(&args, &mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains("assembly failed"));
        std::fs::remove_file(src).ok();
    }
}
