//! `ccrp-tools difftest [--programs N] [--seed N] [--jobs N]
//! [--isa mips|rv32] [--checkpoint-every N] [--out FILE]`
//!
//! Runs a differential co-simulation campaign: N seeded random programs
//! executed in lockstep on the plain-ROM reference machine and on every
//! compressed-ROM variant, with the refill timing invariants swept per
//! program. `--isa rv32` generates RV32 programs instead of MIPS,
//! running each in **both** encodings (RV32I and RVC) with a
//! cross-encoding final-state check, and defaults the results file to
//! `BENCH_difftest_rv32.json`. With `--checkpoint-every` (MIPS only)
//! each trial runs through the segmented co-simulator: a
//! checkpoint-recording pass over the reference, then per-segment
//! restore-and-replay — same verdicts, exercising the checkpoint path
//! on every program. Results go to a machine-readable JSON file
//! (default `BENCH_difftest.json`). Verdicts are a pure function of
//! `(--programs, --seed, --isa, --checkpoint-every)`, so the results
//! section of the JSON is bit-identical for any `--jobs` value.
//!
//! The command exits nonzero on any divergence, timing-invariant
//! violation, generator failure, or panic — the transparency contract
//! is that all four counts are zero.

use std::io::Write;

use ccrp_bench::difftest::{self, DifftestIsa, DifftestOptions, Outcome};
use ccrp_bench::{runner, ToJson};

use crate::args::Args;
use crate::error::{write_file, CliError};

/// Option names consuming a value.
pub const VALUE_OPTIONS: &[&str] = &["programs", "seed", "jobs", "isa", "checkpoint-every", "out"];
/// Switch names.
pub const SWITCHES: &[&str] = &[];

/// Runs the subcommand.
///
/// # Errors
///
/// [`CliError::Usage`] for bad numbers, [`CliError::Io`] when the
/// results file cannot be written, and [`CliError::Campaign`] when any
/// trial fails the transparency contract.
pub fn run(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let programs = args.option_u32("programs", 1000)? as usize;
    if programs == 0 {
        return Err(CliError::Usage("--programs must be at least 1".into()));
    }
    let seed = match args.option("seed") {
        None => 1,
        Some(text) => text
            .parse::<u64>()
            .map_err(|_| CliError::Usage(format!("--seed: bad number `{text}`")))?,
    };
    let jobs = args.option_u32("jobs", runner::available_jobs() as u32)? as usize;
    if jobs == 0 {
        return Err(CliError::Usage("--jobs must be at least 1".into()));
    }
    let isa = match args.option("isa") {
        None | Some("mips") => DifftestIsa::Mips,
        Some("rv32") => DifftestIsa::Rv32,
        Some(other) => {
            return Err(CliError::Usage(format!(
                "--isa: unknown isa `{other}`; expected mips or rv32"
            )));
        }
    };
    let checkpoint_every = match args.option("checkpoint-every") {
        None => None,
        Some(text) => Some(text.parse::<u64>().ok().filter(|&n| n > 0).ok_or_else(|| {
            CliError::Usage(format!("--checkpoint-every: bad interval `{text}`"))
        })?),
    };
    if isa == DifftestIsa::Rv32 && checkpoint_every.is_some() {
        return Err(CliError::Usage(
            "--checkpoint-every is not supported with --isa rv32".into(),
        ));
    }
    let default_out = match isa {
        DifftestIsa::Mips => "BENCH_difftest.json",
        DifftestIsa::Rv32 => "BENCH_difftest_rv32.json",
    };
    let path = args.option("out").unwrap_or(default_out);

    let report = difftest::run(DifftestOptions {
        programs,
        seed,
        jobs,
        checkpoint_every,
        isa,
    });
    write_file(path, report.to_json().to_pretty().as_bytes())?;

    if args.json() {
        // Same document as the results file, for pipelines that read
        // stdout instead of the --out path.
        write!(out, "{}", report.to_json().to_pretty()).ok();
        return check(&report);
    }

    writeln!(
        out,
        "difftest: {programs} {} programs seed {seed} {jobs} jobs {:?}  -> {path}",
        isa.name(),
        report.total_wall,
    )
    .ok();
    for outcome in Outcome::ALL {
        writeln!(out, "  {:<18} {:>6}", outcome.name(), report.count(outcome)).ok();
    }
    let sum = |f: fn(&difftest::Trial) -> u64| report.trials.iter().map(f).sum::<u64>();
    writeln!(
        out,
        "  instructions {} text-bytes {} lat-entries {} refills {}",
        sum(|t| t.instructions),
        sum(|t| t.text_bytes),
        sum(|t| t.lat_entries),
        sum(|t| t.refills),
    )
    .ok();
    for trial in report.trials.iter().filter(|t| t.outcome != Outcome::Match) {
        writeln!(out, "--- {} ---", trial.outcome.name()).ok();
        for line in trial.detail.lines() {
            writeln!(out, "  {line}").ok();
        }
    }

    check(&report)
}

/// Maps the transparency contract onto the exit status.
fn check(report: &difftest::DifftestReport) -> Result<(), CliError> {
    if !report.acceptable() {
        return Err(CliError::Campaign(format!(
            "{} divergence(s), {} timing violation(s), {} generator failure(s), {} panic(s)",
            report.count(Outcome::Divergence),
            report.count(Outcome::TimingViolation),
            report.count(Outcome::GenFailure),
            report.count(Outcome::Panic),
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::temp_path;

    fn strings(raw: &[&str]) -> Vec<String> {
        raw.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn rejects_zero_programs_and_bad_seed() {
        let args = Args::parse(&strings(&["--programs", "0"]), VALUE_OPTIONS, SWITCHES).unwrap();
        assert!(run(&args, &mut Vec::new()).is_err());

        let args = Args::parse(&strings(&["--seed", "x"]), VALUE_OPTIONS, SWITCHES).unwrap();
        let err = run(&args, &mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains("--seed"));
    }

    #[test]
    fn segmented_campaign_records_segments() {
        let path = temp_path("difftest_seg.json");
        let args = Args::parse(
            &strings(&[
                "--programs",
                "4",
                "--seed",
                "7",
                "--jobs",
                "2",
                "--checkpoint-every",
                "50",
                "--out",
                &path,
            ]),
            VALUE_OPTIONS,
            SWITCHES,
        )
        .unwrap();
        run(&args, &mut Vec::new()).unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"checkpoint_every\": 50"));
        assert!(json.contains("\"segments\":"));
        std::fs::remove_file(&path).ok();

        let args = Args::parse(
            &strings(&["--checkpoint-every", "0"]),
            VALUE_OPTIONS,
            SWITCHES,
        )
        .unwrap();
        assert!(run(&args, &mut Vec::new()).is_err());
    }

    #[test]
    fn rv32_campaign_writes_results_file_and_rejects_checkpointing() {
        let path = temp_path("difftest_rv32.json");
        let args = Args::parse(
            &strings(&[
                "--programs",
                "4",
                "--seed",
                "7",
                "--jobs",
                "2",
                "--isa",
                "rv32",
                "--out",
                &path,
            ]),
            VALUE_OPTIONS,
            SWITCHES,
        )
        .unwrap();
        let mut buffer = Vec::new();
        run(&args, &mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        assert!(text.contains("difftest: 4 rv32 programs"));
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"isa\": \"rv32\""));
        assert!(json.contains("\"acceptable\": true"));
        std::fs::remove_file(&path).ok();

        let args = Args::parse(
            &strings(&["--isa", "rv32", "--checkpoint-every", "50"]),
            VALUE_OPTIONS,
            SWITCHES,
        )
        .unwrap();
        let err = run(&args, &mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains("--checkpoint-every"));

        let args = Args::parse(&strings(&["--isa", "arm"]), VALUE_OPTIONS, SWITCHES).unwrap();
        let err = run(&args, &mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains("arm"));
    }

    #[test]
    fn small_campaign_writes_results_file() {
        let path = temp_path("difftest.json");
        let args = Args::parse(
            &strings(&[
                "--programs",
                "8",
                "--seed",
                "7",
                "--jobs",
                "2",
                "--out",
                &path,
            ]),
            VALUE_OPTIONS,
            SWITCHES,
        )
        .unwrap();
        let mut buffer = Vec::new();
        run(&args, &mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        assert!(text.contains("difftest: 8 mips programs"));
        assert!(text.contains("match"));
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"schema\": \"ccrp-difftest/1\""));
        assert!(json.contains("\"acceptable\": true"));
        std::fs::remove_file(&path).ok();
    }
}
