//! `ccrp-tools compress <input.s> [--out image.ccrp] [--alignment
//! byte|word] [--codec byte-huffman|positional|lzw]
//! [--code preselected|self] [--crc]`
//!
//! Compresses a program into a CCRP image (and optionally writes the
//! container an embedded build would burn to ROM). `--codec` picks the
//! line-codec backend (default: the paper's byte-Huffman); `--code`
//! picks the Huffman training source — the corpus-trained preselected
//! tables, or tables trained on the input itself (`self`; ignored by
//! the parameter-free LZW codec). `--crc` writes a version-2 container
//! carrying a header CRC-32 and one CRC-32 record per cache line, so
//! corruption is detected instead of silently decoding to wrong
//! instructions.

use std::io::Write;
use std::sync::Arc;

use ccrp::CompressedImage;
use ccrp_compress::{
    BlockAlignment, ByteCode, ByteHistogram, CodecId, LineCodec, LzwLineCodec, PositionalCode,
    PositionalHistogram,
};
use ccrp_workloads::{preselected_code, preselected_positional_code};

use crate::args::Args;
use crate::error::{write_file, CliError};
use crate::load_text_bytes;

/// Option names consuming a value.
pub const VALUE_OPTIONS: &[&str] = &["out", "alignment", "codec", "code", "text-base"];
/// Switch names.
pub const SWITCHES: &[&str] = &["crc"];

pub(crate) fn parse_alignment(args: &Args) -> Result<BlockAlignment, CliError> {
    match args.option("alignment").unwrap_or("word") {
        "word" => Ok(BlockAlignment::Word),
        "byte" => Ok(BlockAlignment::Byte),
        other => Err(CliError::Usage(format!(
            "--alignment: `{other}` is not byte|word"
        ))),
    }
}

/// Runs the subcommand.
///
/// # Errors
///
/// Usage, I/O, assembly, or compression errors.
pub fn run(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let input = args.positional(0, "input file (.s or raw text binary)")?;
    let text = load_text_bytes(input)?;
    let alignment = parse_alignment(args)?;
    let codec_id = match args.option("codec") {
        None => CodecId::ByteHuffman,
        Some(name) => CodecId::from_name(name).ok_or_else(|| {
            CliError::Usage(format!(
                "--codec: `{name}` is not one of {}",
                CodecId::ALL.map(CodecId::name).join("|")
            ))
        })?,
    };
    let self_trained = match args.option("code").unwrap_or("preselected") {
        "preselected" => false,
        "self" => true,
        other => {
            return Err(CliError::Usage(format!(
                "--code: `{other}` is not preselected|self"
            )))
        }
    };
    let codec: Arc<dyn LineCodec> = match (codec_id, self_trained) {
        (CodecId::ByteHuffman, false) => Arc::new(preselected_code().clone()),
        (CodecId::ByteHuffman, true) => {
            Arc::new(ByteCode::bounded(&ByteHistogram::of(&text)).map_err(ccrp::CcrpError::from)?)
        }
        (CodecId::Positional, false) => Arc::new(preselected_positional_code().clone()),
        (CodecId::Positional, true) => Arc::new(
            PositionalCode::preselected(&PositionalHistogram::of(&text))
                .map_err(ccrp::CcrpError::from)?,
        ),
        (CodecId::Lzw, _) => Arc::new(LzwLineCodec::new()),
    };
    let text_base = args.option_u32("text-base", 0)?;
    let image = CompressedImage::build_with_codec(text_base, &text, codec, alignment)?;
    image.verify()?;
    writeln!(
        out,
        "{input}: {} -> {} bytes ({:.1}%) with {} in {} lines ({} bypassed), LAT {} bytes at {:#x}",
        image.original_bytes(),
        image.total_stored_bytes(false),
        image.compression_ratio() * 100.0,
        image.codec().id(),
        image.line_count(),
        image.bypass_count(),
        image.lat().storage_bytes(),
        image.lat_base()
    )
    .ok();
    if let Some(path) = args.option("out") {
        let (container, kind) = if args.switch("crc") {
            (image.to_bytes_v2(), "v2 (CRC)")
        } else {
            (image.to_bytes(), "v1")
        };
        write_file(path, &container)?;
        writeln!(
            out,
            "wrote {} {kind} container bytes to {path}",
            container.len()
        )
        .ok();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{temp_path, write_temp};

    #[test]
    fn compresses_and_writes_container() {
        let src = write_temp(
            "cmp_in.s",
            "main: li $t0, 100\nloop: addiu $t0, $t0, -1\n bnez $t0, loop\n jr $ra\n",
        );
        let out_path = temp_path("cmp_out.ccrp");
        let args = Args::parse(
            &[
                src.clone(),
                "--out".into(),
                out_path.clone(),
                "--code".into(),
                "self".into(),
            ],
            VALUE_OPTIONS,
            SWITCHES,
        )
        .unwrap();
        let mut buffer = Vec::new();
        run(&args, &mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        assert!(text.contains("container bytes"));
        // The container loads back.
        let bytes = std::fs::read(&out_path).unwrap();
        let image = CompressedImage::from_bytes(&bytes).unwrap();
        image.verify().unwrap();
        std::fs::remove_file(src).ok();
        std::fs::remove_file(out_path).ok();
    }

    #[test]
    fn crc_switch_writes_a_v2_container() {
        let src = write_temp("cmp_crc.s", "main: li $t0, 7\n jr $ra\n");
        let out_path = temp_path("cmp_crc.ccrp");
        let args = Args::parse(
            &[
                src.clone(),
                "--out".into(),
                out_path.clone(),
                "--code".into(),
                "self".into(),
                "--crc".into(),
            ],
            VALUE_OPTIONS,
            SWITCHES,
        )
        .unwrap();
        let mut buffer = Vec::new();
        run(&args, &mut buffer).unwrap();
        assert!(String::from_utf8(buffer).unwrap().contains("v2 (CRC)"));
        let bytes = std::fs::read(&out_path).unwrap();
        assert_eq!(u16::from_le_bytes([bytes[4], bytes[5]]), 2);
        let image = CompressedImage::from_bytes(&bytes).unwrap();
        assert!(image.block_crcs().is_some());
        std::fs::remove_file(src).ok();
        std::fs::remove_file(out_path).ok();
    }

    #[test]
    fn non_default_codecs_roundtrip_through_the_container() {
        let src = write_temp(
            "cmp_codec.s",
            "main: li $t0, 100\nloop: addiu $t0, $t0, -1\n bnez $t0, loop\n jr $ra\n",
        );
        for codec in ["positional", "lzw"] {
            let out_path = temp_path(&format!("cmp_{codec}.ccrp"));
            let args = Args::parse(
                &[
                    src.clone(),
                    "--out".into(),
                    out_path.clone(),
                    "--codec".into(),
                    codec.into(),
                    "--code".into(),
                    "self".into(),
                    "--crc".into(),
                ],
                VALUE_OPTIONS,
                SWITCHES,
            )
            .unwrap();
            let mut buffer = Vec::new();
            run(&args, &mut buffer).unwrap();
            assert!(String::from_utf8(buffer).unwrap().contains(codec));
            let bytes = std::fs::read(&out_path).unwrap();
            let image = CompressedImage::from_bytes(&bytes).unwrap();
            image.verify().unwrap();
            assert_eq!(image.codec().id().name(), codec);
            std::fs::remove_file(out_path).ok();
        }
        std::fs::remove_file(src).ok();
    }

    #[test]
    fn rejects_bad_flags() {
        let src = write_temp("cmp_bad.s", "main: jr $ra\n");
        for (flag, value) in [
            ("--alignment", "diagonal"),
            ("--code", "magic"),
            ("--codec", "arithmetic"),
        ] {
            let raw = vec![src.clone(), flag.to_string(), value.to_string()];
            let args = Args::parse(&raw, VALUE_OPTIONS, SWITCHES).unwrap();
            assert!(run(&args, &mut Vec::new()).is_err(), "{flag} {value}");
        }
        std::fs::remove_file(src).ok();
    }
}
