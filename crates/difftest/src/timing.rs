//! Refill timing-invariant checker.
//!
//! Drives the cycle-accurate [`RefillEngine`] over every line of a
//! compressed image — twice per line, under a deliberately tiny CLB so
//! both the miss and hit paths are exercised — and checks the probe
//! event stream against the accounting identities the paper's cost
//! model rests on:
//!
//! * **A (bus accounting)** — the bytes a refill reports equal 4× the
//!   words of the memory bursts it issued; cycles charged equal the
//!   `RefillStart` → `RefillDone` span.
//! * **B (bypass path)** — an uncompressed (bypass) line completes the
//!   cycle its last burst word arrives: the decoder is never touched.
//!   A compressed line always finishes strictly later.
//! * **C (CLB path)** — a CLB hit issues exactly one burst (the block);
//!   a miss exactly two (LAT entry + block). Hits never re-read the LAT.
//! * **E (integrity is free of side effects)** — `Fast` and `Full`
//!   integrity produce identical [`RefillOutcome`]s on a pristine image.

use ccrp::{
    CompressedImage, DegradePolicy, IntegrityCheck, MemoryTiming, RefillConfig, RefillEngine,
    RefillOutcome,
};
use ccrp_probe::{Event, EventLog};

/// A fixed-latency burst memory: word `i` of a burst issued at `now`
/// arrives at `now + LATENCY + i`, the same model the refill engine's
/// own tests use.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinearMemory;

/// First-word latency of [`LinearMemory`] in cycles.
pub const FIRST_WORD_LATENCY: u64 = 4;

impl MemoryTiming for LinearMemory {
    fn read_burst(&mut self, words: u32, now: u64, arrivals: &mut Vec<u64>) {
        arrivals.clear();
        arrivals.extend((0..u64::from(words)).map(|i| now + FIRST_WORD_LATENCY + i));
    }
}

/// Result of a timing-invariant sweep over one image.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TimingReport {
    /// Refills performed (lines × passes × integrity levels).
    pub refills: u64,
    /// Human-readable invariant violations; empty on success.
    pub violations: Vec<String>,
}

impl TimingReport {
    /// True when every invariant held.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// CLB capacity used by the sweep: small enough that multi-entry images
/// evict, so the hit, miss, *and* re-fetch-after-evict paths all run.
pub const SWEEP_CLB_ENTRIES: usize = 2;

/// Sweeps every line of `image` twice under both integrity levels and
/// checks invariants A–C per refill and E across levels.
pub fn check_refill_invariants(image: &CompressedImage) -> TimingReport {
    let mut report = TimingReport::default();
    let mut outcomes_by_level: Vec<Vec<RefillOutcome>> = Vec::new();
    for integrity in [IntegrityCheck::Fast, IntegrityCheck::Full] {
        match sweep(image, integrity, &mut report) {
            Ok(outcomes) => outcomes_by_level.push(outcomes),
            Err(violation) => report.violations.push(violation),
        }
    }
    if let [fast, full] = outcomes_by_level.as_slice() {
        if fast != full {
            report.violations.push(
                "invariant E: Fast and Full integrity outcomes differ on a pristine image"
                    .to_string(),
            );
        }
    }
    report
}

fn sweep(
    image: &CompressedImage,
    integrity: IntegrityCheck,
    report: &mut TimingReport,
) -> Result<Vec<RefillOutcome>, String> {
    let mut engine = RefillEngine::new(RefillConfig {
        clb_entries: SWEEP_CLB_ENTRIES,
        decode_bytes_per_cycle: 2,
        policy: DegradePolicy::Abort,
        integrity,
    })
    .map_err(|e| format!("refill engine construction failed: {e}"))?;
    let mut memory = LinearMemory;
    let mut outcomes = Vec::new();
    let mut now: u64 = 0;
    for pass in 0..2u32 {
        for line in 0..image.line_count() {
            let address = image.text_base() + line as u32 * 32;
            let mut log = EventLog::new();
            let outcome = engine
                .refill_probed(image, address, now, &mut memory, &mut log)
                .map_err(|e| {
                    format!("pristine refill failed at {address:#010x} pass {pass}: {e}")
                })?;
            report.refills += 1;
            check_refill(&log, outcome, address, now, pass, &mut report.violations);
            outcomes.push(outcome);
            now = outcome.ready_at + 1;
        }
    }
    Ok(outcomes)
}

/// Checks invariants A–C for one probed refill.
fn check_refill(
    log: &EventLog,
    outcome: RefillOutcome,
    address: u32,
    now: u64,
    pass: u32,
    violations: &mut Vec<String>,
) {
    let mut fail = |invariant: &str, detail: String| {
        violations.push(format!(
            "invariant {invariant} at {address:#010x} pass {pass}: {detail}"
        ));
    };
    let Some(start) = log.events_of_kind("refill_start").next() else {
        fail("A", "no RefillStart event".to_string());
        return;
    };
    if start.cycle != now {
        fail(
            "A",
            format!(
                "RefillStart at cycle {}, refill issued at {now}",
                start.cycle
            ),
        );
    }
    let Some(done) = log.events_of_kind("refill").last() else {
        fail("A", "no RefillDone event".to_string());
        return;
    };
    let Event::RefillDone {
        cycles,
        bytes,
        clb_hit,
        bypass,
        retries,
        ..
    } = done.event
    else {
        return;
    };
    if done.cycle != outcome.ready_at || cycles != outcome.ready_at.saturating_sub(now) {
        fail(
            "A",
            format!(
                "RefillDone at cycle {} reporting {cycles} cycles; outcome ready_at {}",
                done.cycle, outcome.ready_at
            ),
        );
    }
    if (bytes, clb_hit, bypass, retries)
        != (
            outcome.bytes_fetched,
            outcome.clb_hit,
            outcome.bypass,
            outcome.retries,
        )
    {
        fail(
            "A",
            format!(
                "RefillDone fields {:?} disagree with outcome {outcome:?}",
                done.event
            ),
        );
    }
    let bursts: Vec<(u32, u64)> = log
        .events_of_kind("memory_burst")
        .filter_map(|t| match t.event {
            Event::MemoryBurst { words, done } => Some((words, done)),
            _ => None,
        })
        .collect();
    let burst_words: u32 = bursts.iter().map(|&(words, _)| words).sum();
    if bytes != burst_words * 4 {
        fail(
            "A",
            format!(
                "{bytes} bytes charged, bursts moved {} bytes",
                burst_words * 4
            ),
        );
    }
    let expected_bursts = if clb_hit { 1 } else { 2 };
    if bursts.len() != expected_bursts {
        fail(
            "C",
            format!(
                "clb_hit={clb_hit} refill issued {} bursts, expected {expected_bursts} \
                 (hits must not re-read the LAT)",
                bursts.len()
            ),
        );
    }
    if clb_hit && log.events_of_kind("clb_hit").next().is_none() {
        fail("C", "outcome says CLB hit but no ClbHit event".to_string());
    }
    let Some(&(_, last_arrival)) = bursts.last() else {
        fail("B", "refill issued no memory burst".to_string());
        return;
    };
    if bypass && outcome.ready_at != last_arrival {
        fail(
            "B",
            format!(
                "bypass line ready at {} but last word arrived at {last_arrival} \
                 (bypass must never touch the decoder)",
                outcome.ready_at
            ),
        );
    }
    if !bypass && outcome.ready_at <= last_arrival {
        fail(
            "B",
            format!(
                "compressed line ready at {} not after last arrival {last_arrival}",
                outcome.ready_at
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cosim::build_rom;
    use crate::progen::ProgGen;
    use ccrp_asm::assemble;

    #[test]
    fn pristine_generated_images_satisfy_all_invariants() {
        for seed in 0..8 {
            let image = assemble(&ProgGen::generate(seed).source()).expect("assembles");
            let rom = build_rom(&image).expect("builds");
            let report = check_refill_invariants(&rom);
            assert!(
                report.clean(),
                "seed {seed} violations:\n{}",
                report.violations.join("\n")
            );
            // Two passes × two integrity levels over every line.
            assert_eq!(report.refills, u64::from(rom.line_count() as u32) * 4);
        }
    }

    #[test]
    fn sweep_exercises_both_hit_and_miss_paths() {
        let image = assemble(&ProgGen::generate(1).source()).expect("assembles");
        let rom = build_rom(&image).expect("builds");
        let mut engine = RefillEngine::new(RefillConfig {
            clb_entries: SWEEP_CLB_ENTRIES,
            decode_bytes_per_cycle: 2,
            policy: DegradePolicy::Abort,
            integrity: IntegrityCheck::Fast,
        })
        .expect("engine");
        let mut memory = LinearMemory;
        let (mut hits, mut misses) = (0u32, 0u32);
        let mut now = 0;
        for _ in 0..2 {
            for line in 0..rom.line_count() {
                let address = rom.text_base() + line as u32 * 32;
                let outcome = engine
                    .refill(&rom, address, now, &mut memory)
                    .expect("refills");
                if outcome.clb_hit {
                    hits += 1;
                } else {
                    misses += 1;
                }
                now = outcome.ready_at + 1;
            }
        }
        assert!(hits > 0, "sweep never hit the CLB");
        assert!(misses > 0, "sweep never missed the CLB");
    }
}
