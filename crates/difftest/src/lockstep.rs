//! The ISA-generic lockstep driver.
//!
//! [`run_lockstep`] is the co-simulation loop itself, factored out of
//! the MIPS-specific [`cosim`](crate::cosim) module and made generic
//! over [`IsaCore`]: one reference machine and any number of variant
//! machines execute the same program an instruction at a time, and
//! after every retired instruction a caller-supplied comparator checks
//! the full architectural state. The MIPS path
//! ([`run_cosim_with`](crate::cosim::run_cosim_with)) and the RV32 path
//! ([`run_rv32_cosim`](crate::rv32::run_rv32_cosim)) are both thin
//! wrappers: they construct the machines and supply the per-ISA
//! comparator and disassembly-window hooks, while the stepping,
//! fault-matching, budget, and reporting logic lives here once.
//!
//! The driver's observable behaviour is pinned by the MIPS campaign's
//! committed `BENCH_difftest.json`: construction failures surface as
//! step-0 divergences, matching faults on both sides end the run as an
//! infrastructure error (the *generated program* is broken, not the
//! compression), and the first state mismatch wins.

use ccrp::StepBudget;
use ccrp_emu::IsaCore;
use ccrp_isa::Isa;

use crate::cosim::{CosimVerdict, DivergenceReport, RecordingSink};

/// One variant machine for [`run_lockstep`]: a label plus either the
/// constructed machine or the construction failure's rendered detail
/// (reported as a step-0 divergence — for compressed ROMs, eager
/// expansion of a corrupt image fails here).
pub struct LockstepVariant<M> {
    /// Display label, e.g. `"v1-trap"`.
    pub label: &'static str,
    /// The machine, or why it could not be built.
    pub machine: Result<M, String>,
}

/// Runs `reference` and every variant in lockstep until the reference
/// exits, comparing with `compare` after each retired instruction and
/// rendering divergence windows with `window`. `entry` is the program
/// entry point (the PC reported for construction failures).
///
/// # Errors
///
/// Infrastructure failures: the reference exceeded `max_steps`, or it
/// faulted and every variant reproduced the identical fault — either
/// way the generated program is invalid, which is a harness bug rather
/// than a compression divergence.
pub fn run_lockstep<M, C, W>(
    mut reference: M,
    variants: Vec<LockstepVariant<M>>,
    entry: u32,
    max_steps: u64,
    compare: C,
    window: W,
) -> Result<CosimVerdict, String>
where
    M: IsaCore,
    C: Fn(&M, &M, &[(u32, bool)], &[(u32, bool)]) -> Option<(String, String)>,
    W: Fn(u32) -> Vec<String>,
{
    let mut running: Vec<(&'static str, M, RecordingSink)> = Vec::new();
    for variant in variants {
        match variant.machine {
            Ok(machine) => running.push((variant.label, machine, RecordingSink::default())),
            Err(err) => {
                return Ok(CosimVerdict::Divergence(Box::new(DivergenceReport {
                    step: 0,
                    pc: entry,
                    variant: variant.label,
                    field: "construction".to_string(),
                    detail: format!("reference constructed, variant failed: {err}"),
                    window: window(entry),
                    minimized: None,
                })));
            }
        }
    }
    let mut ref_sink = RecordingSink::default();
    // The fuel guard backing the generator's termination-by-construction
    // invariant: if a generated program ever loops, the campaign reports
    // a budget error instead of hanging a worker.
    let mut budget = StepBudget::limited(max_steps);
    let mut step: u64 = 0;
    loop {
        if budget.charge(1).is_err() {
            return Err(format!("reference exceeded step budget {max_steps}"));
        }
        let pc = reference.pc();
        ref_sink.accesses.clear();
        let ref_result = reference.step_traced(&mut ref_sink);
        step += 1;
        for (label, machine, sink) in &mut running {
            sink.accesses.clear();
            let var_result = machine.step_traced(sink);
            let mismatch = match (&ref_result, &var_result) {
                (Ok(()), Ok(())) => {
                    compare(&reference, machine, &ref_sink.accesses, &sink.accesses)
                }
                (Err(a), Err(b)) if a == b => None,
                (a, b) => Some(("fault".to_string(), format!("reference {a:?} vs {b:?}"))),
            };
            if let Some((field, detail)) = mismatch {
                return Ok(CosimVerdict::Divergence(Box::new(DivergenceReport {
                    step,
                    pc,
                    variant: label,
                    field,
                    detail,
                    window: window(pc),
                    minimized: None,
                })));
            }
        }
        if let Err(err) = ref_result {
            // All variants reproduced the same fault (else we returned
            // above), so this is a generator bug, not a divergence.
            return Err(format!("generated program faulted identically: {err:?}"));
        }
        if reference.exit_code().is_some() {
            return Ok(CosimVerdict::Match { instructions: step });
        }
    }
}

/// The ISA-generic half of a state comparison: PC, every GPR (named via
/// [`Isa::gpr_name`]), exit status, the ordered data-access log, the
/// memory words this instruction touched, and console output — in that
/// order, mirroring the MIPS comparator so reports read the same across
/// architectures. ISA-private state (MIPS HI/LO, the FPA file) is the
/// per-ISA comparator's job; this function covers everything the
/// [`IsaCore`] surface exposes.
pub fn compare_cores<M: IsaCore>(
    reference: &M,
    variant: &M,
    ref_accesses: &[(u32, bool)],
    var_accesses: &[(u32, bool)],
) -> Option<(String, String)> {
    if reference.pc() != variant.pc() {
        return Some((
            "pc".to_string(),
            format!("{:#010x} vs {:#010x}", reference.pc(), variant.pc()),
        ));
    }
    for index in 0..<M::Isa as Isa>::GPR_COUNT {
        let (a, b) = (reference.gpr(index), variant.gpr(index));
        if a != b {
            return Some((
                <M::Isa as Isa>::gpr_name(index).to_string(),
                format!("{a:#010x} vs {b:#010x}"),
            ));
        }
    }
    if reference.exit_code() != variant.exit_code() {
        return Some((
            "exit_code".to_string(),
            format!("{:?} vs {:?}", reference.exit_code(), variant.exit_code()),
        ));
    }
    if ref_accesses != var_accesses {
        return Some((
            "data-access log".to_string(),
            format!("{ref_accesses:x?} vs {var_accesses:x?}"),
        ));
    }
    for &(addr, _store) in ref_accesses {
        let word = addr & !3;
        let (a, b) = (reference.read_word(word), variant.read_word(word));
        if a != b {
            return Some((format!("mem[{word:#010x}]"), format!("{a:x?} vs {b:x?}")));
        }
    }
    if reference.output() != variant.output() {
        return Some((
            "output".to_string(),
            format!("{:?} vs {:?}", reference.output(), variant.output()),
        ));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccrp_emu::{Machine, MachineConfig};
    use ccrp_isa::Mips;

    fn machine(source: &str) -> Machine {
        let image = ccrp_asm::assemble(source).expect("assembles");
        Machine::with_config(&image, MachineConfig::default())
    }

    const EXITING: &str = "
        main:
            li   $t0, 3
            li   $v0, 10
            syscall
        ";

    #[test]
    fn identical_machines_match_through_the_generic_driver() {
        let verdict = run_lockstep(
            machine(EXITING),
            vec![LockstepVariant {
                label: "twin",
                machine: Ok(machine(EXITING)),
            }],
            0,
            1000,
            compare_cores::<Machine>,
            |_| Vec::new(),
        )
        .expect("runs");
        assert!(matches!(verdict, CosimVerdict::Match { instructions: 3 }));
    }

    #[test]
    fn construction_failure_is_a_step_zero_divergence() {
        let verdict = run_lockstep(
            machine(EXITING),
            vec![LockstepVariant {
                label: "broken",
                machine: Err("deliberately unbuildable".to_string()),
            }],
            0x40_0000,
            1000,
            compare_cores::<Machine>,
            |pc| vec![format!("window at {pc:#x}")],
        )
        .expect("runs");
        let CosimVerdict::Divergence(report) = verdict else {
            panic!("expected a divergence");
        };
        assert_eq!(report.step, 0);
        assert_eq!(report.pc, 0x40_0000);
        assert_eq!(report.field, "construction");
        assert!(report.detail.contains("deliberately unbuildable"));
    }

    #[test]
    fn diverging_machines_are_caught_with_the_gpr_named() {
        // Same length, same exit path, one differing register value.
        let other = "
        main:
            li   $t0, 4
            li   $v0, 10
            syscall
        ";
        let verdict = run_lockstep(
            machine(EXITING),
            vec![LockstepVariant {
                label: "other",
                machine: Ok(machine(other)),
            }],
            0,
            1000,
            compare_cores::<Machine>,
            |_| Vec::new(),
        )
        .expect("runs");
        let CosimVerdict::Divergence(report) = verdict else {
            panic!("expected a divergence");
        };
        assert_eq!(report.step, 1);
        assert_eq!(report.field, Mips::gpr_name(8), "diverged in $t0");
    }

    #[test]
    fn budget_exhaustion_is_an_infrastructure_error() {
        let looping = "
        main:
            j    main
        ";
        let err = run_lockstep(
            machine(looping),
            vec![LockstepVariant {
                label: "twin",
                machine: Ok(machine(looping)),
            }],
            0,
            16,
            compare_cores::<Machine>,
            |_| Vec::new(),
        )
        .expect_err("must trip the budget");
        assert!(err.contains("step budget"), "{err}");
    }
}
