//! Differential co-simulation for the CCRP workspace.
//!
//! The paper's central claim is that compressed-program execution is
//! *transparent*: a program run out of the compressed instruction ROM
//! retires exactly the instruction stream its uncompressed build does,
//! with the compression visible only in the refill timing. The unit
//! oracles in each crate check components; this crate checks the claim
//! end to end, on programs nobody hand-picked:
//!
//! * [`ProgGen`] — a seeded, ISA-aware random program
//!   generator emitting valid, terminating MIPS R2000 assembly sized to
//!   span several Line Address Table entries;
//! * [`run_cosim`] — a lockstep co-simulator running
//!   each program on a plain-ROM reference and on compressed variants
//!   (direct, v1 container, v2 container — one per degradation policy),
//!   comparing full architectural state after every retired
//!   instruction and shrinking any failure to a minimal repro;
//! * [`check_refill_invariants`] — a
//!   probe-event checker asserting the refill engine's accounting
//!   identities (bus bytes, bypass latency, CLB/LAT traffic) on the
//!   same images.
//!
//! [`run_trial`] composes the three into one deterministic trial — a
//! pure function of the seed — which `ccrp-bench` fans out across
//! workers and `ccrp-tools difftest` exposes on the command line.
//!
//! The loop itself is ISA-generic: [`run_lockstep`] drives any
//! [`IsaCore`](ccrp_emu::IsaCore) machine pair, and the [`rv32`]
//! module reuses it for an RV32I/RVC campaign ([`run_trial_rv32`])
//! that additionally cross-checks the two encodings of each generated
//! program against each other.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cosim;
pub mod lockstep;
pub mod progen;
pub mod rng;
pub mod rv32;
pub mod segmented;
pub mod timing;

pub use cosim::{
    build_rom, minimize_lines, run_cosim, run_cosim_with, CosimVariant, CosimVerdict,
    DivergenceReport, RecordingSink,
};
pub use lockstep::{compare_cores, run_lockstep, LockstepVariant};
pub use progen::{GeneratedProgram, ProgGen, SCRATCH_BASE, SCRATCH_SIZE};
pub use rng::SplitMix64;
pub use rv32::{build_rv32_rom, run_rv32_cosim, run_trial_rv32};
pub use segmented::{run_cosim_segmented, SegmentedVerdict};
pub use timing::{check_refill_invariants, LinearMemory, TimingReport};

use ccrp_asm::assemble;

/// Per-trial instruction budget. Generated programs retire well under
/// 100k instructions; hitting this means the generator broke.
pub const TRIAL_MAX_STEPS: u64 = 2_000_000;

/// Re-run budget for the divergence shrinker.
pub const SHRINK_BUDGET: usize = 200;

/// How one trial ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrialOutcome {
    /// Every variant matched and every timing invariant held.
    Match,
    /// A compressed variant disagreed with the reference.
    Divergence(Box<DivergenceReport>),
    /// A refill accounting identity failed.
    TimingViolation(String),
    /// The generator produced an invalid program (assembly failure,
    /// reference fault, or budget exhaustion) — a harness bug.
    GenFailure(String),
}

impl TrialOutcome {
    /// Stable one-character code for campaign summaries.
    pub fn code(&self) -> char {
        match self {
            TrialOutcome::Match => 'M',
            TrialOutcome::Divergence(_) => 'D',
            TrialOutcome::TimingViolation(_) => 'T',
            TrialOutcome::GenFailure(_) => 'G',
        }
    }
}

/// Everything one trial produced: the verdict plus deterministic
/// workload statistics (pure functions of the seed, so campaign
/// aggregates are jobs-independent).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialReport {
    /// The verdict.
    pub outcome: TrialOutcome,
    /// Instructions the reference retired (0 unless `Match`).
    pub instructions: u64,
    /// Text-segment size in bytes.
    pub text_bytes: u64,
    /// Line Address Table entries the compressed build needs.
    pub lat_entries: u64,
    /// Probed refills the timing sweep performed (0 unless it ran).
    pub refills: u64,
    /// Segments the co-simulation replayed (0 for monolithic runs).
    pub segments: u64,
}

/// Runs the full differential trial for `seed`: generate, assemble,
/// co-simulate every variant in lockstep, then sweep the refill timing
/// invariants. On divergence the repro is shrunk before reporting.
/// Deterministic: the report is a pure function of `seed`.
pub fn run_trial(seed: u64) -> TrialReport {
    let generated = ProgGen::generate(seed);
    let mut report = TrialReport {
        outcome: TrialOutcome::Match,
        instructions: 0,
        text_bytes: 0,
        lat_entries: 0,
        refills: 0,
        segments: 0,
    };
    let image = match assemble(&generated.source()) {
        Ok(image) => image,
        Err(err) => {
            report.outcome = TrialOutcome::GenFailure(format!("assembly failed: {err}"));
            return report;
        }
    };
    report.text_bytes = u64::from(image.text_size());
    report.lat_entries = u64::from(image.text_lines().div_ceil(8));
    match run_cosim(&image, TRIAL_MAX_STEPS) {
        Err(err) => {
            report.outcome = TrialOutcome::GenFailure(err);
            return report;
        }
        Ok(CosimVerdict::Divergence(mut divergence)) => {
            let minimal = minimize_lines(
                &generated.lines,
                &generated.removable,
                SHRINK_BUDGET,
                |source| match assemble(source) {
                    Ok(image) => cosim::diverges(&run_cosim(&image, TRIAL_MAX_STEPS)),
                    Err(_) => false,
                },
            );
            divergence.minimized = Some(minimal.join("\n"));
            report.outcome = TrialOutcome::Divergence(divergence);
            return report;
        }
        Ok(CosimVerdict::Match { instructions }) => {
            report.instructions = instructions;
        }
    }
    match build_rom(&image) {
        Ok(rom) => {
            let timing = check_refill_invariants(&rom);
            report.refills = timing.refills;
            if !timing.clean() {
                report.outcome = TrialOutcome::TimingViolation(timing.violations.join("; "));
            }
        }
        Err(err) => {
            report.outcome = TrialOutcome::GenFailure(err);
        }
    }
    report
}

/// Runs the same differential trial as [`run_trial`], but drives the
/// co-simulation through the checkpoint-segmented runner with a
/// checkpoint every `every` retired instructions. The verdict is
/// byte-identical to the monolithic trial's; only
/// [`TrialReport::segments`] differs (the segment count instead of 0).
/// On divergence the shrinker re-checks candidates with the monolithic
/// runner — the verdicts agree, and the monolithic path is cheaper.
pub fn run_trial_segmented(seed: u64, every: u64) -> TrialReport {
    let generated = ProgGen::generate(seed);
    let mut report = TrialReport {
        outcome: TrialOutcome::Match,
        instructions: 0,
        text_bytes: 0,
        lat_entries: 0,
        refills: 0,
        segments: 0,
    };
    let image = match assemble(&generated.source()) {
        Ok(image) => image,
        Err(err) => {
            report.outcome = TrialOutcome::GenFailure(format!("assembly failed: {err}"));
            return report;
        }
    };
    report.text_bytes = u64::from(image.text_size());
    report.lat_entries = u64::from(image.text_lines().div_ceil(8));
    match run_cosim_segmented(&image, TRIAL_MAX_STEPS, every) {
        Err(err) => {
            report.outcome = TrialOutcome::GenFailure(err);
            return report;
        }
        Ok(segmented) => {
            report.segments = segmented.segments;
            match segmented.verdict {
                CosimVerdict::Divergence(mut divergence) => {
                    let minimal = minimize_lines(
                        &generated.lines,
                        &generated.removable,
                        SHRINK_BUDGET,
                        |source| match assemble(source) {
                            Ok(image) => cosim::diverges(&run_cosim(&image, TRIAL_MAX_STEPS)),
                            Err(_) => false,
                        },
                    );
                    divergence.minimized = Some(minimal.join("\n"));
                    report.outcome = TrialOutcome::Divergence(divergence);
                    return report;
                }
                CosimVerdict::Match { instructions } => {
                    report.instructions = instructions;
                }
            }
        }
    }
    match build_rom(&image) {
        Ok(rom) => {
            let timing = check_refill_invariants(&rom);
            report.refills = timing.refills;
            if !timing.clean() {
                report.outcome = TrialOutcome::TimingViolation(timing.violations.join("; "));
            }
        }
        Err(err) => {
            report.outcome = TrialOutcome::GenFailure(err);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trials_match_and_are_deterministic() {
        for seed in [1u64, 2, 42] {
            let a = run_trial(seed);
            let b = run_trial(seed);
            assert_eq!(a, b, "seed {seed} not deterministic");
            assert_eq!(
                a.outcome,
                TrialOutcome::Match,
                "seed {seed}: {:?}",
                a.outcome
            );
            assert!(a.instructions > 0);
            assert!(
                a.lat_entries >= 2,
                "seed {seed} too small to stress the LAT"
            );
            assert!(a.refills > 0);
        }
    }

    #[test]
    fn segmented_trial_matches_monolithic_trial() {
        for seed in [1u64, 42] {
            let monolithic = run_trial(seed);
            let segmented = run_trial_segmented(seed, 64);
            assert!(segmented.segments >= 1, "seed {seed} recorded no segments");
            let mut comparable = segmented.clone();
            comparable.segments = 0;
            assert_eq!(comparable, monolithic, "seed {seed} drifted");
        }
    }

    #[test]
    fn outcome_codes_are_stable() {
        assert_eq!(TrialOutcome::Match.code(), 'M');
        assert_eq!(TrialOutcome::TimingViolation(String::new()).code(), 'T');
        assert_eq!(TrialOutcome::GenFailure(String::new()).code(), 'G');
    }
}
